"""Scenario: the same sum, the same compiler — different answers at -O3.

The single largest real-world source of floating-point divergence across
optimization levels is auto-vectorization reordering reductions: a scalar
sum folds strictly left, a vectorized sum accumulates per lane and then
tree-reduces the lanes, and the two association orders round differently.
This example compiles one dot-product kernel with the modeled clang at
``-O1`` (scalar) and ``-O3`` (8-lane vectorization), shows the bitwise
divergence, then lets the triage bisector name the responsible pass.

Usage:
    python examples/vectorization_divergence.py [trips] [seed]
"""

import sys

from repro import OptLevel, SplittableRng
from repro.fp.bits import double_to_hex
from repro.generation.inputs import InputProfile, generate_inputs
from repro.toolchains import ClangCompiler, default_compilers
from repro.triage import bisect_cell

SOURCE_TEMPLATE = """\
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double *a, double *b, double s, int n) {{
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {{
    comp += a[i] * b[i] + sin(s + i);
  }}
  printf("%.17g\\n", comp);
}}

int main(int argc, char **argv) {{
  double in_a[{trips}];
  double in_b[{trips}];
  for (int i = 0; i < {trips}; ++i) {{
    in_a[i] = atof(argv[1 + i]);
    in_b[i] = atof(argv[1 + {trips} + i]);
  }}
  compute(in_a, in_b, atof(argv[1 + 2 * {trips}]), atoi(argv[2 + 2 * {trips}]));
  return 0;
}}
"""


def main() -> None:
    # 8-lane clang needs >= 2 vector iterations (16+ trips) before its
    # ladder reduction stops coinciding with the scalar left fold.
    trips = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    source = SOURCE_TEMPLATE.format(trips=trips)
    rng = SplittableRng(seed, "vectorization-divergence")
    inputs = generate_inputs(
        rng,
        ["double*", "double*", "double", "int"],
        InputProfile.PLAUSIBLE,
        max_trip=trips,
        array_len=trips,
    )
    # Run the full array so the vector main loop actually engages.
    inputs = inputs[:-1] + (trips,)

    clang = ClangCompiler()
    print(f"dot-product reduction, {inputs[-1]} trips, clang model:\n")
    results = {}
    for level in (OptLevel.O1, OptLevel.O3):
        binary = clang.compile_source(source, level)
        result = binary.run(inputs)
        assert result.ok, result.error
        results[level] = result.value
        passes = ", ".join(clang.pipeline(level).names) or "(none)"
        print(f"  clang/{level:<3}  {result.value!r:>24}"
              f"  bits {double_to_hex(result.value)}  passes: {passes}")

    o1, o3 = results[OptLevel.O1], results[OptLevel.O3]
    if double_to_hex(o1) == double_to_hex(o3):
        # Tiny trip counts can round identically; the default 24 diverges.
        print("\nno bitwise divergence at these inputs — try more trips")
        return

    print("\nscalar (O1) and vectorized (O3) sums bitwise-diverge: the")
    print("8-lane partial sums + ladder reduction round differently than")
    print("the strict left fold.\n")

    # The vectorization tier also splits *compilers*: same width at O3,
    # but gcc reduces lanes pairwise (adjacent) while clang extracts them
    # sequentially (ladder).  Bisect the divergent cell to name the pass.
    result = bisect_cell(
        source, inputs, *_host_pair(), OptLevel.O3
    )
    print(f"gcc-vs-clang at O3: responsible = {result.responsible}")
    for line in result.trace:
        print(f"  {line}")


def _host_pair():
    compilers = {c.name: c for c in default_compilers()}
    return compilers["gcc"], compilers["clang"]


if __name__ == "__main__":
    main()
