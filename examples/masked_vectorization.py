"""Scenario: the same guarded sum — a branch at -O2, masked lanes at -O3.

A conditional loop body has no straight-line form to widen, so below
``-O3`` the modeled hosts leave it a scalar branch.  At ``-O3`` the
vectorizer if-converts it first: the branch becomes a select, every lane
evaluates **both** arms, and a mask blends the results — which changes
the association order of the reduction and bitwise-diverges from the
branchy scalar fold.  This example compiles one guarded reduction with
the modeled gcc at ``-O2`` (scalar branch) and ``-O3`` (8-lane masked),
shows the divergence, lets the compare stage tag the gcc-vs-clang cell
``masked-lane``, and has the triage bisector name the responsible pass.

Usage:
    python examples/masked_vectorization.py [trips] [seed]
"""

import sys

from repro import OptLevel, SplittableRng
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.fp.bits import double_to_hex
from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.program import GeneratedProgram
from repro.toolchains import ClangCompiler, GccCompiler
from repro.triage import bisect_cell

SOURCE_TEMPLATE = """\
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double *a, double s, int n) {{
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {{
    if (a[i] > 0.0) {{
      comp += a[i];
    }} else {{
      comp += s * a[i];
    }}
  }}
  printf("%.17g\\n", comp);
}}

int main(int argc, char **argv) {{
  double in_a[{trips}];
  for (int i = 0; i < {trips}; ++i) {{
    in_a[i] = atof(argv[1 + i]);
  }}
  compute(in_a, atof(argv[1 + {trips}]), atoi(argv[2 + {trips}]));
  return 0;
}}
"""


def main() -> None:
    # 8-lane masked vectorization needs >= 2 vector iterations (16+
    # trips) before the blended partial sums stop coinciding with the
    # scalar branchy fold.
    trips = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    source = SOURCE_TEMPLATE.format(trips=trips)
    rng = SplittableRng(seed, "masked-vectorization")
    inputs = generate_inputs(
        rng,
        ["double*", "double", "int"],
        InputProfile.PLAUSIBLE,
        max_trip=trips,
        array_len=trips,
    )
    inputs = inputs[:-1] + (trips,)  # run the full array

    gcc = GccCompiler()
    print(f"guarded reduction, {inputs[-1]} trips, gcc model:\n")
    results = {}
    for level in (OptLevel.O2, OptLevel.O3):
        binary = gcc.compile_source(source, level)
        result = binary.run(inputs)
        assert result.ok, result.error
        results[level] = result.value
        passes = ", ".join(gcc.pipeline(level).names) or "(none)"
        print(
            f"  gcc/{level:<3}  {result.value!r:>24}"
            f"  bits {double_to_hex(result.value)}  passes: {passes}"
        )

    o2, o3 = results[OptLevel.O2], results[OptLevel.O3]
    if double_to_hex(o2) == double_to_hex(o3):
        # Tiny trip counts can round identically; the default 24 diverges.
        print("\nno bitwise divergence at these inputs — try more trips")
        return

    print("\nthe branch (O2) and the if-converted masked lanes (O3)")
    print("bitwise-diverge: every lane evaluated both arms, the mask")
    print("blended them, and the lane partials tree-reduced — a rounding")
    print("sequence the scalar branchy loop never executed.\n")

    # The masking tier also splits compilers: both hosts if-convert at
    # O3, but gcc reduces lanes pairwise (adjacent) while clang extracts
    # them sequentially (ladder).  The compare stage tags that cell.
    engine = CampaignEngine(
        [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
    )
    outcome = engine.test_program(
        0, GeneratedProgram(source=source, inputs=inputs)
    )
    tags = sorted(
        {c.tag for c in outcome.inconsistent_comparisons if c.tag is not None}
    )
    print(f"gcc-vs-clang structural tags: {', '.join(tags) or '(none)'}")

    result = bisect_cell(
        source, inputs, GccCompiler(), ClangCompiler(), OptLevel.O3
    )
    print(f"gcc-vs-clang at O3: responsible = {result.responsible}")
    for line in result.trace:
        print(f"  {line}")


if __name__ == "__main__":
    main()
