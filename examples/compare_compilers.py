"""Scenario: which compiler should an HPC team trust for reproducibility?

The paper's intended practical use (abstract, §1): numerical-software
developers compare compilers and pick the configuration with the most
consistent floating-point behaviour.  This example runs one LLM4FP
campaign, then ranks (compiler, level) configurations by how often each
disagrees with the IEEE-most-compliant baseline (its own O0_nofma), and
ranks compiler *pairs* by cross-compiler disagreement — ending with a
concrete recommendation.

Usage:
    python examples/compare_compilers.py [budget] [seed]
"""

import sys
from collections import Counter

from repro import (
    CampaignConfig,
    CampaignReport,
    SplittableRng,
    default_compilers,
    make_generator,
    run_campaign,
)
from repro.utils.tables import TextTable


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    rng = SplittableRng(seed)
    generator = make_generator("llm4fp", rng)
    result = run_campaign(
        generator, default_compilers(), CampaignConfig(budget=budget, seed=seed)
    )
    report = CampaignReport(result)

    # -- within-compiler stability (RQ4 view) ------------------------------
    rates = report.vs_o0_nofma()
    table = TextTable(
        ["Compiler", "Level", "Disagrees with own O0_nofma"],
        title="Within-compiler stability (lower = more reproducible)",
    )
    for compiler, by_level in rates.items():
        for level, rate in by_level.items():
            table.add_row([compiler, str(level), f"{rate * 100:.2f}%"])
    print(table.render())
    print()

    totals = report.vs_o0_nofma_totals()
    most_stable = min(totals, key=totals.get)
    least_stable = max(totals, key=totals.get)

    # -- cross-compiler agreement (RQ3 view) ----------------------------------
    pair_totals = report.pair_totals()
    table = TextTable(
        ["Compiler pair", "Inconsistency rate"],
        title="Cross-compiler disagreement (share of all comparisons)",
    )
    for (a, b), rate in sorted(pair_totals.items(), key=lambda kv: kv[1]):
        table.add_row([f"{a} vs {b}", f"{rate * 100:.2f}%"])
    print(table.render())
    print()

    # -- which level is risky? ---------------------------------------------------
    by_level: Counter = Counter()
    for c in result.comparisons:
        if not c.consistent:
            by_level[c.level] += 1
    worst_level = max(by_level, key=by_level.get) if by_level else None

    print("Recommendation")
    print("--------------")
    print(f"* most self-stable compiler across levels: {most_stable} "
          f"({totals[most_stable] * 100:.2f}% total drift)")
    print(f"* least self-stable: {least_stable} "
          f"({totals[least_stable] * 100:.2f}%)")
    if worst_level is not None:
        print(f"* riskiest optimization level: {worst_level} "
              f"({by_level[worst_level]} of {result.inconsistencies} inconsistencies)")
    print("* host and device toolchains disagree far more than two host")
    print("  compilers do — pin one toolchain per deployment, and treat")
    print("  fast-math flags as a reproducibility decision, not a free win.")


if __name__ == "__main__":
    main()
