"""Quickstart: find floating-point inconsistencies with LLM4FP in ~a minute.

Runs a small LLM4FP campaign across the simulated gcc/clang/nvcc toolchains
at all six optimization levels (paper Table 1), prints the inconsistency
rate and kinds, and shows one triggering program with the exact outputs
each compiler produced.

Usage:
    python examples/quickstart.py [budget] [seed]
"""

import sys

from repro import (
    CampaignConfig,
    CampaignReport,
    SplittableRng,
    default_compilers,
    make_generator,
    run_campaign,
)
from repro.toolchains import ALL_LEVELS, flags_for


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print("Optimization levels under test (paper Table 1):")
    for level in ALL_LEVELS:
        print(
            f"  {str(level):<12} host: {flags_for('gcc', level):<22}"
            f" nvcc: {flags_for('nvcc', level)}"
        )
    print()

    rng = SplittableRng(seed)
    generator = make_generator("llm4fp", rng)
    compilers = default_compilers()
    print(f"Running LLM4FP campaign: {budget} programs x "
          f"{len(compilers)} compilers x {len(ALL_LEVELS)} levels ...")
    result = run_campaign(generator, compilers, CampaignConfig(budget=budget, seed=seed))

    report = CampaignReport(result)
    s = report.summary()
    print()
    print(f"total comparisons:   {s['total_comparisons']:,}")
    print(f"inconsistencies:     {s['inconsistencies']:,}")
    print(f"inconsistency rate:  {s['inconsistency_rate'] * 100:.2f}%")
    print(f"triggering programs: {s['triggering_programs']} / {budget}")
    print("kinds:", report.kind_counts().as_labels())
    print()

    # Show the first triggering program and what each side printed.
    for outcome in result.outcomes:
        if not outcome.triggered:
            continue
        record = outcome.inconsistent_comparisons[0]
        print("=" * 70)
        print(f"program #{outcome.index} "
              f"(strategy: {outcome.program.strategy}) triggered "
              f"{len(outcome.inconsistent_comparisons)} inconsistent comparisons")
        print(f"first: {record.compiler_a} vs {record.compiler_b} at {record.level}")
        print(f"  {record.compiler_a}: {record.value_a!r}")
        print(f"  {record.compiler_b}: {record.value_b!r}")
        print(f"  differing hex digits: {record.digit_diff}/16")
        print("-" * 70)
        print(outcome.program.source)
        print(f"inputs: {outcome.program.inputs}")
        break


if __name__ == "__main__":
    main()
