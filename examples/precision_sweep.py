"""FP64 vs FP32 campaigns — the precision extension the paper sketches.

§3.1.3: "By default, the programs use double-precision floating-point
arithmetic, i.e., FP64, but they could be easily extended to other
precisions such as single-precision, i.e., FP32."  This example runs the
same LLM4FP campaign at both precisions and contrasts:

* the inconsistency rate (FP32 kernels additionally hit the device's
  fast-math FTZ / approximate-division units under O3_fastmath, which
  FP64 kernels do not — see `repro.toolchains.nvcc`);
* the inconsistency-kind mix per precision.

Usage:
    python examples/precision_sweep.py [budget] [seed]
"""

import sys

from repro import (
    CampaignConfig,
    CampaignReport,
    SplittableRng,
    make_generator,
    run_campaign,
)
from repro.difftest.classify import kind_label
from repro.fp.formats import Precision
from repro.toolchains import ClangCompiler, GccCompiler, NvccCompiler


def run_at(precision: Precision, budget: int, seed: int, fmad_prob=None):
    rng = SplittableRng(seed, f"precision-{precision.value}")
    generator = make_generator("llm4fp", rng, precision=precision)
    nvcc = (
        NvccCompiler(precision=precision)
        if fmad_prob is None
        else NvccCompiler(precision=precision, fmad_prob=fmad_prob)
    )
    compilers = [GccCompiler(), ClangCompiler(), nvcc]
    return run_campaign(generator, compilers, CampaignConfig(budget=budget))


def show(title: str, result) -> None:
    report = CampaignReport(result)
    summary = report.summary()
    print(f"== {title} ==")
    print(
        f"  inconsistency rate: {summary['inconsistency_rate'] * 100:.2f}%"
        f"  ({summary['inconsistencies']} / {summary['total_comparisons']})"
    )
    kinds = report.kind_counts()
    for kind, count in sorted(kinds.counts.items(), key=lambda kv: -kv[1]):
        print(f"  {kind_label(kind):20s} {count}")
    print()


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7

    show("FP64 (double)", run_at(Precision.DOUBLE, budget, seed))

    # C promotes float math-call arguments to double (`sin` has no float
    # overload in C): the libraries' sub-ulp double divergences are then
    # absorbed when the result narrows back to float, so a plain FP32
    # campaign is much quieter than FP64 — double rounding as a shield.
    show("FP32 (float), default toolchains", run_at(Precision.SINGLE, budget, seed))

    # Where FP32 *does* diverge: FMA contraction at float granularity.
    # Forcing ptxas to fuse every eligible site makes the device's fused
    # float multiply-adds visible against the hosts' unfused ones.
    show(
        "FP32 (float), nvcc fusing every site (--fmad aggressive)",
        run_at(Precision.SINGLE, budget, seed, fmad_prob=1.0),
    )


if __name__ == "__main__":
    main()
