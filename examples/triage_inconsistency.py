"""Scenario: triage one inconsistency like a compiler engineer would.

Takes a known-triggering program and walks the automatic triage flow
(`repro.triage`): test it across the full (compiler, level) matrix,
delta-debug it down to a minimal trigger, bisect the responsible
toolchain's pass pipeline and FP-environment deltas to name exactly what
flipped the comparison, and render the ranked triage report — the same
pipeline `llm4fp triage` runs over campaign checkpoints.

`--verbose` additionally prints the manual 18-way output matrix (hex
encodings, agreement classes, pairwise digit differences) that this
automation replaces.

Usage:
    python examples/triage_inconsistency.py [--verbose]
"""

import argparse
from collections import defaultdict
from itertools import combinations

from repro import CampaignConfig, CampaignEngine, default_compilers
from repro.difftest.compare import digit_difference
from repro.fp.bits import double_to_hex
from repro.toolchains import ALL_LEVELS
from repro.triage import (
    bisect_signature,
    canonical_signature,
    distilled_trigger,
    reduce_program,
    signatures_of,
    triage_single,
)

#: A distilled trigger: a transcendental feeding an FMA-shaped update in a
#: loop — host/device libm differences plus device-only FMA contraction.
PROGRAM = distilled_trigger()


def manual_matrix() -> None:
    """The hand-inspection step the triage subsystem automates."""
    compilers = default_compilers()
    results: dict[tuple[str, object], float] = {}
    print(f"{'config':<20} {'hex encoding':<18} value")
    print("-" * 60)
    for compiler in compilers:
        for level in ALL_LEVELS:
            binary = compiler.compile_source(PROGRAM.source, level)
            run = binary.run(PROGRAM.inputs)
            assert run.ok, run.error
            results[(compiler.name, level)] = run.value
            print(f"{binary.label:<20} {double_to_hex(run.value):<18} {run.value!r}")

    print()
    print("agreement classes per level:")
    for level in ALL_LEVELS:
        classes: dict[str, list[str]] = defaultdict(list)
        for compiler in compilers:
            v = results[(compiler.name, level)]
            classes[double_to_hex(v)].append(compiler.name)
        desc = "  ".join("{" + ",".join(names) + "}" for names in classes.values())
        print(f"  {str(level):<12} {desc}")

    print()
    print("pairwise digit differences (of 16 hex digits):")
    for level in ALL_LEVELS:
        cells = []
        for ca, cb in combinations(compilers, 2):
            a = results[(ca.name, level)]
            b = results[(cb.name, level)]
            d = digit_difference(double_to_hex(a), double_to_hex(b))
            cells.append(f"{ca.name}-{cb.name}:{d}")
        print(f"  {str(level):<12} " + "  ".join(cells))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print the manual 18-way output matrix",
    )
    args = parser.parse_args()

    compilers = default_compilers()
    print("program under triage:")
    print(PROGRAM.source)
    print(f"inputs: {PROGRAM.inputs}")
    print()

    if args.verbose:
        manual_matrix()
        print()

    # 1. Detect: one pass through the full (compiler, level) matrix.
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, PROGRAM)
    assert outcome.triggered, "the distilled trigger should diverge"
    sigs = signatures_of(outcome)
    print(f"divergent cells ({len(sigs)}):")
    for sig in sigs:
        print(f"  {sig.label()}")

    # 2. Reduce: shrink while the canonical cell keeps the same kind.
    target = canonical_signature(outcome)
    print()
    print(f"reducing against {target.label()} ...")
    reduction = reduce_program(PROGRAM.source, PROGRAM.inputs, target, compilers)
    print(
        f"  {reduction.original_nodes} -> {reduction.reduced_nodes} AST nodes "
        f"({reduction.accepted_edits} edits, {reduction.tests} oracle tests)"
    )
    print()
    print(reduction.reduced_source)

    # 3. Bisect: name the first pass / env delta that flips the comparison.
    bisection = bisect_signature(PROGRAM.source, PROGRAM.inputs, target, compilers)
    print(f"bisection of {target.cell}:")
    for line in bisection.trace:
        print(f"  {line}")
    print(f"  => responsible: {bisection.responsible}")
    if bisection.env_delta is not None:
        print(f"  => environment delta: {bisection.env_delta.label()}")

    # 4. Cluster: the ranked report `llm4fp triage` would emit.
    report = triage_single(outcome, compilers, label="example")
    print()
    print(report.render(show_traces=False), end="")


if __name__ == "__main__":
    main()
