"""Scenario: triage one inconsistency like a compiler engineer would.

Takes a known-triggering program, compiles it with every simulated
(compiler, level) configuration, and prints the full 18-way output matrix:
the hex encoding of each result, which configurations agree, and a
per-level pairwise digit-difference breakdown.  This is the manual
inspection step that follows a fuzzing campaign, and it demonstrates the
library's toolchain API directly (no campaign harness involved).

Usage:
    python examples/triage_inconsistency.py
"""

from collections import defaultdict
from itertools import combinations

from repro.difftest.compare import digit_difference
from repro.fp.bits import double_to_hex
from repro.toolchains import ALL_LEVELS, default_compilers

#: A distilled trigger: a transcendental feeding an FMA-shaped update in a
#: loop — host/device libm differences plus device-only FMA contraction.
PROGRAM = """
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double x, double scale, int steps) {
  double comp = 0.0;
  double k = sin(0.731);
  for (int i = 0; i < steps; ++i) {
    comp += sin(x + i) * scale + k;
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""

INPUTS = (0.37, 1.91, 23)


def main() -> None:
    compilers = default_compilers()
    print("program under triage:")
    print(PROGRAM)
    print(f"inputs: {INPUTS}")
    print()

    # Full output matrix.
    results: dict[tuple[str, object], float] = {}
    print(f"{'config':<20} {'hex encoding':<18} value")
    print("-" * 60)
    for compiler in compilers:
        for level in ALL_LEVELS:
            binary = compiler.compile_source(PROGRAM, level)
            run = binary.run(INPUTS)
            assert run.ok, run.error
            results[(compiler.name, level)] = run.value
            print(f"{binary.label:<20} {double_to_hex(run.value):<18} {run.value!r}")

    # Equivalence classes per level.
    print()
    print("agreement classes per level:")
    for level in ALL_LEVELS:
        classes: dict[str, list[str]] = defaultdict(list)
        for compiler in compilers:
            v = results[(compiler.name, level)]
            classes[double_to_hex(v)].append(compiler.name)
        desc = "  ".join("{" + ",".join(names) + "}" for names in classes.values())
        print(f"  {str(level):<12} {desc}")

    # Digit differences between compiler pairs.
    print()
    print("pairwise digit differences (of 16 hex digits):")
    for level in ALL_LEVELS:
        cells = []
        for ca, cb in combinations(compilers, 2):
            a = results[(ca.name, level)]
            b = results[(cb.name, level)]
            d = digit_difference(double_to_hex(a), double_to_hex(b))
            cells.append(f"{ca.name}-{cb.name}:{d}")
        print(f"  {str(level):<12} " + "  ".join(cells))

    print()
    print("reading the matrix: host compilers agree with each other at")
    print("O0 (same glibc model, no folding yet), nvcc differs everywhere")
    print("(CUDA libm + default FMA contraction), and O3_fastmath splits")
    print("the hosts too (different reassociation orders).")


if __name__ == "__main__":
    main()
