"""Scenario: inside the feedback loop (paper §2.3.2 / Figure 1).

Shows the Feedback-Based Mutation machinery in the open: builds the exact
prompts the framework sends, lets the SimLLM mutate a real triggering
program, and tracks how the successful set and the grammar/mutation
strategy split (0.3/0.7) evolve over a short campaign.

Usage:
    python examples/mutation_campaign.py [budget] [seed]
"""

import sys
from collections import Counter

from repro import CampaignConfig, SplittableRng, default_compilers, make_generator
from repro.difftest.harness import DifferentialHarness
from repro.generation.prompts import mutation_prompt


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    rng = SplittableRng(seed)
    generator = make_generator("llm4fp", rng)
    config = CampaignConfig(budget=budget, seed=seed)
    harness = DifferentialHarness(default_compilers(), config)

    strategies: Counter = Counter()
    first_success_source = None
    first_mutant_source = None

    for i in range(budget):
        program = generator.generate()
        strategies[program.strategy] += 1
        outcome = harness.test_program(i, program)
        if outcome.triggered:
            generator.notify_success(program)
            if first_success_source is None:
                first_success_source = program.source
        if program.strategy == "mutation" and first_mutant_source is None:
            first_mutant_source = program.source
        print(
            f"#{i:>3} strategy={program.strategy:<8} "
            f"triggered={'yes' if outcome.triggered else 'no ':<3} "
            f"successful-set={len(generator.successes)}"
        )

    print()
    print(f"strategy mix over {budget} programs: {dict(strategies)}")
    print("(the paper picks mutation with probability 0.7 once the")
    print(" successful set is non-empty; the first program is always grammar-based)")

    if first_success_source and first_mutant_source:
        print()
        print("=" * 70)
        print("A successful program that seeded mutations:")
        print("-" * 70)
        print(first_success_source)
        print("=" * 70)
        print("The exact prompt the framework would build from it:")
        print("-" * 70)
        prompt = mutation_prompt(first_success_source)
        print(prompt[:1200] + ("..." if len(prompt) > 1200 else ""))
        print("=" * 70)
        print("A mutant generated during the campaign:")
        print("-" * 70)
        print(first_mutant_source)


if __name__ == "__main__":
    main()
