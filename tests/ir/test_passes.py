"""Optimizer passes: folding, contraction, reassociation, fast-math."""

import math

import pytest

from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes import (
    ConstantFold,
    FiniteMathSimplify,
    FmaContract,
    FunctionSubstitution,
    PassPipeline,
    Reassociate,
    ReciprocalDivision,
)


def kernel_for(body, params="double a, double b, int n"):
    n_params = len(params.split(","))
    args = ", ".join(["1.0"] * n_params)
    src = (
        f"void compute({params}) {{ {body} }}"
        f"int main() {{ compute({args}); return 0; }}"
    )
    return lower_compute(check_program(parse_program(src)))


def first_value(kernel):
    return kernel.body[0].value


class TestConstantFold:
    def test_int_arith(self):
        k = ConstantFold().run(kernel_for("int i = 2 + 3 * 4;"))
        assert first_value(k) == ir.IConst(14)

    def test_c_division_truncates(self):
        k = ConstantFold().run(kernel_for("int i = -7 / 2;"))
        assert first_value(k) == ir.IConst(-3)  # not -4

    def test_c_remainder_sign(self):
        k = ConstantFold().run(kernel_for("int i = -7 % 2;"))
        assert first_value(k) == ir.IConst(-1)

    def test_fp_arith(self):
        k = ConstantFold().run(kernel_for("double c = 0.1 + 0.2;"))
        assert first_value(k) == ir.FConst(0.1 + 0.2, "double")

    def test_calls_not_folded_by_default(self):
        k = ConstantFold().run(kernel_for("double c = sin(0.5);"))
        assert isinstance(first_value(k), ir.FCall)

    def test_calls_folded_when_enabled(self):
        k = ConstantFold(fold_calls=True).run(kernel_for("double c = sin(0.5);"))
        assert first_value(k) == ir.FConst(math.sin(0.5), "double")

    def test_propagation_reaches_call(self):
        body = "double k = 0.5; double c = sin(k);"
        lit_only = ConstantFold(fold_calls=True, propagate=False).run(kernel_for(body))
        assert isinstance(lit_only.body[1].value, ir.FCall)
        prop = ConstantFold(fold_calls=True, propagate=True).run(kernel_for(body))
        assert prop.body[1].value == ir.FConst(math.sin(0.5), "double")

    def test_propagation_killed_by_branch(self):
        body = (
            "double k = 0.5;"
            " if (a > 0.0) { k = 1.5; }"
            " double c = sin(k);"
        )
        k = ConstantFold(fold_calls=True, propagate=True).run(kernel_for(body))
        assert isinstance(k.body[-1].value, ir.FCall)

    def test_propagation_killed_by_loop(self):
        body = (
            "double k = 0.5;"
            " for (int i = 0; i < n; ++i) { k = k + 1.0; }"
            " double c = sin(k);"
        )
        k = ConstantFold(fold_calls=True, propagate=True).run(kernel_for(body))
        assert isinstance(k.body[-1].value, ir.FCall)

    def test_propagation_merges_equal_branches(self):
        body = (
            "double k = 0.5;"
            " if (a > 0.0) { double t = 1.0; } else { double u = 2.0; }"
            " double c = cos(k);"
        )
        k = ConstantFold(fold_calls=True, propagate=True).run(kernel_for(body))
        assert k.body[-1].value == ir.FConst(math.cos(0.5), "double")

    def test_div_by_zero_not_folded_int(self):
        k = ConstantFold().run(kernel_for("int z = n - n; int i = 5 / (0 * z + 0 + 1);"))
        # 5 / 1 folds fine; just checks no crash on the zero-mul path
        assert isinstance(k.body[-1], ir.SAssign)

    def test_conversions_folded(self):
        k = ConstantFold().run(kernel_for("double c = (double)3;"))
        assert first_value(k) == ir.FConst(3.0, "double")

    def test_compare_and_select_folded(self):
        k = ConstantFold().run(kernel_for("double c = 1.0 > 2.0 ? a : b;"))
        v = first_value(k)
        assert isinstance(v, ir.Load) and v.name == "b"


class TestFmaContract:
    def test_mul_add(self):
        k = FmaContract().run(kernel_for("double c = a * b + 1.0;"))
        assert isinstance(first_value(k), ir.Fma)

    def test_add_mul_right(self):
        k = FmaContract().run(kernel_for("double c = 1.0 + a * b;"))
        v = first_value(k)
        assert isinstance(v, ir.Fma)
        assert v.c == ir.FConst(1.0, "double")

    def test_mul_sub(self):
        k = FmaContract().run(kernel_for("double c = a * b - 1.0;"))
        v = first_value(k)
        assert isinstance(v, ir.Fma) and isinstance(v.c, ir.FNeg)

    def test_sub_mul(self):
        k = FmaContract().run(kernel_for("double c = 1.0 - a * b;"))
        v = first_value(k)
        assert isinstance(v, ir.Fma) and isinstance(v.a, ir.FNeg)

    def test_left_preference(self):
        k = FmaContract().run(kernel_for("double c = a * a + b * b;"))
        v = first_value(k)
        assert isinstance(v, ir.Fma)
        assert isinstance(v.c, ir.FBin) and v.c.op == "*"

    def test_plain_add_untouched(self):
        k = FmaContract().run(kernel_for("double c = a + b;"))
        assert isinstance(first_value(k), ir.FBin)

    def test_no_cross_precision_contraction(self):
        k = FmaContract().run(kernel_for("float f = 1.0f; double c = f * f + a;", params="double a"))
        # (double)(f*f as float widened)... the product is float-typed,
        # the add double-typed: no contraction across the rounding step.
        v = k.body[1].value
        assert not isinstance(v, ir.Fma)


class TestReassociate:
    def test_short_chain_untouched(self):
        k = Reassociate("balanced").run(kernel_for("double c = a + b;"))
        assert first_value(k) == ir.FBin(
            "+", ir.Load("a", "double"), ir.Load("b", "double"), "double"
        )

    def test_balanced_regroups(self):
        src = "double c = a + b + a + b;"
        strict = kernel_for(src)
        k = Reassociate("balanced").run(kernel_for(src))
        v = first_value(k)
        # ((a+b)+a)+b becomes (a+b)+(a+b)
        assert isinstance(v.left, ir.FBin) and isinstance(v.right, ir.FBin)
        assert v != first_value(strict)

    def test_ranked_deterministic(self):
        src = "double c = a + b + 1.5 + a;"
        k1 = Reassociate("ranked").run(kernel_for(src))
        k2 = Reassociate("ranked").run(kernel_for(src))
        assert first_value(k1) == first_value(k2)

    def test_styles_differ(self):
        src = "double c = a + b + 1.5 + a + b;"
        bal = Reassociate("balanced").run(kernel_for(src))
        rank = Reassociate("ranked").run(kernel_for(src))
        assert first_value(bal) != first_value(rank)

    def test_subtraction_normalized(self):
        k = Reassociate("balanced").run(kernel_for("double c = a - b + a + b;"))
        # must have regrouped: at least one FNeg present in the tree
        assert any(isinstance(x, ir.FNeg) for x in ir.walk(first_value(k)))

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            Reassociate("zigzag")


class TestReciprocalDivision:
    def test_rewrites_division(self):
        k = ReciprocalDivision().run(kernel_for("double c = a / b;"))
        v = first_value(k)
        assert isinstance(v, ir.FBin) and v.op == "*"
        assert isinstance(v.right, ir.FBin) and v.right.op == "/"
        assert v.right.left == ir.FConst(1.0, "double")

    def test_constants_only_mode(self):
        p = ReciprocalDivision(constants_only=True)
        k1 = p.run(kernel_for("double c = a / b;"))
        assert first_value(k1).op == "/"
        k2 = p.run(kernel_for("double c = a / 3.0;"))
        assert first_value(k2).op == "*"

    def test_inner_reciprocal_not_rewritten_again(self):
        k = ReciprocalDivision().run(kernel_for("double c = a / b / a;"))
        # should terminate and produce a finite tree
        assert isinstance(first_value(k), ir.FBin)


class TestFiniteMath:
    def test_x_minus_x(self):
        k = FiniteMathSimplify().run(kernel_for("double c = a - a;"))
        assert first_value(k) == ir.FConst(0.0, "double")

    def test_x_div_x(self):
        k = FiniteMathSimplify().run(kernel_for("double c = a / a;"))
        assert first_value(k) == ir.FConst(1.0, "double")

    def test_mul_zero(self):
        k = FiniteMathSimplify().run(kernel_for("double c = a * 0.0;"))
        assert first_value(k) == ir.FConst(0.0, "double")

    def test_add_zero(self):
        k = FiniteMathSimplify().run(kernel_for("double c = a + 0.0;"))
        assert first_value(k) == ir.Load("a", "double")

    def test_mul_one(self):
        k = FiniteMathSimplify().run(kernel_for("double c = 1.0 * a;"))
        assert first_value(k) == ir.Load("a", "double")

    def test_sqrt_of_square(self):
        k = FiniteMathSimplify().run(kernel_for("double c = sqrt(a * a);"))
        v = first_value(k)
        assert isinstance(v, ir.FCall) and v.name == "fabs"

    def test_different_subtrees_untouched(self):
        k = FiniteMathSimplify().run(kernel_for("double c = a - b;"))
        assert isinstance(first_value(k), ir.FBin)


class TestFunctionSubstitution:
    def test_pow_two(self):
        k = FunctionSubstitution().run(kernel_for("double c = pow(a, 2.0);"))
        v = first_value(k)
        assert isinstance(v, ir.FBin) and v.op == "*"

    def test_pow_half(self):
        k = FunctionSubstitution(pow_half_to_sqrt=True).run(
            kernel_for("double c = pow(a, 0.5);")
        )
        assert first_value(k).name == "sqrt"

    def test_pow_half_kept_when_disabled(self):
        k = FunctionSubstitution(pow_half_to_sqrt=False).run(
            kernel_for("double c = pow(a, 0.5);")
        )
        assert first_value(k).name == "pow"

    def test_pow_negative_exponent(self):
        k = FunctionSubstitution().run(kernel_for("double c = pow(a, -2.0);"))
        v = first_value(k)
        assert isinstance(v, ir.FBin) and v.op == "/"

    def test_pow_zero(self):
        k = FunctionSubstitution().run(kernel_for("double c = pow(a, 0.0);"))
        assert first_value(k) == ir.FConst(1.0, "double")

    def test_threshold_respected(self):
        k = FunctionSubstitution(max_pow_expand=2).run(
            kernel_for("double c = pow(a, 3.0);")
        )
        assert first_value(k).name == "pow"

    def test_variable_exponent_untouched(self):
        k = FunctionSubstitution().run(kernel_for("double c = pow(a, b);"))
        assert first_value(k).name == "pow"


class TestPipeline:
    def test_order_matters(self):
        src = "double c = sin(0.25) * 1.0;"
        fold_then_simplify = PassPipeline(
            [ConstantFold(fold_calls=True), FiniteMathSimplify()]
        ).run(kernel_for(src))
        assert fold_then_simplify.body[0].value == ir.FConst(math.sin(0.25), "double")

    def test_pipeline_names(self):
        p = PassPipeline([ConstantFold(), FmaContract()])
        assert p.names == ["constant-fold", "fma-contract"]

    def test_empty_pipeline_identity(self):
        k = kernel_for("double c = a + b;")
        assert PassPipeline().run(k) is k
