"""AST -> IR lowering: conversions, renaming, compound ops."""


from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute


def lower(src):
    return lower_compute(check_program(parse_program(src)))


def lower_body(body, params="double a, double b, int n"):
    src = (
        f"void compute({params}) {{ {body} }}"
        "int main() { compute(1.0, 2.0, 3); return 0; }"
    )
    # fix main call arity for differing params
    n_params = len(params.split(","))
    args = ", ".join(["1.0"] * n_params)
    src = (
        f"void compute({params}) {{ {body} }}"
        f"int main() {{ compute({args}); return 0; }}"
    )
    return lower(src)


class TestKernelShape:
    def test_params(self):
        k = lower_body("double c = a + b;")
        assert [p.name for p in k.params] == ["a", "b", "n"]
        assert k.params[2].ty == "int"

    def test_pointer_param(self):
        k = lower_body("double c = p[0];", params="double *p")
        assert k.params[0].is_pointer
        assert k.params[0].scalar_ty == "double"

    def test_var_types_recorded(self):
        k = lower_body("double c = a; int i = n;")
        assert k.var_types["c"] == "double"
        assert k.var_types["i"] == "int"


class TestConversions:
    def test_int_to_double(self):
        k = lower_body("double c = a + n;")
        assign = k.body[0]
        assert isinstance(assign.value, ir.FBin)
        assert isinstance(assign.value.right, ir.SiToFp)

    def test_float_literal_narrowing(self):
        k = lower_body("float f = 0.1f; double c = f + a;")
        f_assign = k.body[0]
        assert f_assign.value.ty == "float"
        c_assign = k.body[1]
        assert isinstance(c_assign.value.left, ir.FpExt)

    def test_double_to_float_trunc(self):
        k = lower_body("float f = a;")
        assert isinstance(k.body[0].value, ir.FpTrunc)

    def test_fp_to_int_cast(self):
        k = lower_body("int i = (int)a;")
        assert isinstance(k.body[0].value, ir.FpToSi)

    def test_libm_args_promoted(self):
        k = lower_body("float f = 1.0f; double c = sin(f);")
        call = k.body[1].value
        assert isinstance(call, ir.FCall)
        assert isinstance(call.args[0], ir.FpExt)


class TestCompoundOps:
    def test_plus_equals(self):
        k = lower_body("double c = 0.0; c += a;")
        second = k.body[1]
        assert isinstance(second.value, ir.FBin) and second.value.op == "+"
        assert isinstance(second.value.left, ir.Load)

    def test_incdec(self):
        k = lower_body("int i = 0; i++;")
        inc = k.body[1]
        assert isinstance(inc.value, ir.IBin) and inc.value.op == "+"

    def test_array_compound_store(self):
        k = lower_body("double t[2] = {1.0, 2.0}; t[0] *= a;")
        store = k.body[1]
        assert isinstance(store, ir.SStoreElem)
        assert isinstance(store.value, ir.FBin) and store.value.op == "*"


class TestControlFlow:
    def test_for_loop(self):
        k = lower_body("double c = 0.0; for (int i = 0; i < n; ++i) { c += a; }")
        loop = k.body[1]
        assert isinstance(loop, ir.SFor)
        assert isinstance(loop.cond, ir.Compare) and not loop.cond.fp

    def test_if_else(self):
        k = lower_body("double c = 0.0; if (a > b) { c = a; } else { c = b; }")
        st = k.body[1]
        assert isinstance(st, ir.SIf)
        assert st.cond.fp

    def test_while(self):
        k = lower_body("double c = a; while (c > 1.0) { c /= 2.0; }")
        assert isinstance(k.body[1], ir.SWhile)

    def test_return_lowered(self):
        k = lower_body("double c = a; return;")
        assert isinstance(k.body[1], ir.SReturn)


class TestShadowRenaming:
    def test_nested_shadow_gets_unique_name(self):
        k = lower_body("double x = a; { double x = b; double y = x; }")
        names = [s.name for s in k.body if isinstance(s, ir.SAssign)]
        assert "x" in names and "x__2" in names
        y_assign = [s for s in k.body if isinstance(s, ir.SAssign) and s.name == "y"][0]
        assert y_assign.value.name == "x__2"

    def test_loop_var_scoped(self):
        k = lower_body(
            "double c = 0.0;"
            " for (int i = 0; i < n; ++i) { c += i; }"
            " for (int i = 0; i < n; ++i) { c -= i; }"
        )
        loops = [s for s in k.body if isinstance(s, ir.SFor)]
        first = loops[0].init[0].name
        second = loops[1].init[0].name
        assert first != second


class TestPrintf:
    def test_print_lowered(self):
        k = lower_body('double c = a; printf("%.17g\\n", c);')
        pr = k.body[1]
        assert isinstance(pr, ir.SPrint)
        assert pr.fmt == "%.17g\\n"
        assert len(pr.values) == 1

    def test_ternary_lowered(self):
        k = lower_body("double c = a > b ? a : b;")
        assert isinstance(k.body[0].value, ir.Select)
