"""If-conversion: select-form rewrites, refusals, and masked widening."""

from repro.execution.result import ExecStatus
from repro.execution.worker import run_kernel
from repro.fp.env import FPEnvironment
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes import IfConvert, LoopUnroll, Vectorize

MAIN_8 = """
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atof(argv[9]), atoi(argv[10]));
  return 0;
}
"""

MAIN_16 = """
int main(int argc, char **argv) {
  double in_a[16] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                     atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8]),
                     atof(argv[9]), atof(argv[10]), atof(argv[11]), atof(argv[12]),
                     atof(argv[13]), atof(argv[14]), atof(argv[15]), atof(argv[16])};
  compute(in_a, atof(argv[17]), atoi(argv[18]));
  return 0;
}
"""

GUARDED_SUM = (
    """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > s) {
      comp += a[i];
    }
  }
  printf("%.17g\\n", comp);
}
"""
    + MAIN_16
)

TWO_ARMED = (
    """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      comp += a[i] * s;
    } else {
      comp += a[i] * a[i];
    }
  }
  printf("%.17g\\n", comp);
}
"""
    + MAIN_8
)

# Mixed-sign, cancellation-heavy values (association order visibly
# rounds; verified: with the ``> 0.0`` guard below, the masked ladder and
# butterfly widenings bitwise-diverge from the scalar fold, and width 8
# diverges from width 4).
ARR16 = (
    -2.161244991344777, 16.744850325199423, -2140.123310536274,
    -667.4296376438043, 33.12432414736006, 8604.15565518937,
    4.366101377828139, -373427.6696042438, -13.557686496180793,
    -856.9062739358501, 2.8392700153319588, 46.56981918402771,
    6.836221364114393, 21.37550366737585, -134.8944261290064,
    294524.6182501556,
)
ARR8 = ARR16[:8]
INPUTS = (ARR16, 0.0, 16)
INPUTS_8 = (ARR8, 0.0, 8)


def kernel_of(source):
    return lower_compute(check_program(parse_program(source)))


def run(kernel, inputs, env=None):
    result = run_kernel(kernel, env or FPEnvironment(), inputs)
    assert result.ok, result.error
    return result.signature()


def count_nodes(kernel, node_type):
    return sum(
        1
        for s in ir.walk_stmts(kernel.body)
        for top in ir.stmt_exprs(s)
        for e in ir.walk(top)
        if isinstance(e, node_type)
    )


class TestIfConvertScalar:
    def test_guarded_sum_converts_to_factored_select(self):
        converted = IfConvert().run(kernel_of(GUARDED_SUM))
        assert not any(isinstance(s, ir.SIf) for s in ir.walk_stmts(converted.body))
        loops = [
            s for s in ir.walk_stmts(converted.body) if isinstance(s, ir.SFor)
        ]
        body = loops[0].body
        assert len(body) == 1 and isinstance(body[0], ir.SAssign)
        v = body[0].value
        # comp = comp + Select(cond, a[i], 0.0): the reduction shape
        # Vectorize recognizes
        assert isinstance(v, ir.FBin) and v.op == "+"
        assert isinstance(v.left, ir.Load) and v.left.name == "comp"
        assert isinstance(v.right, ir.Select)
        assert isinstance(v.right.other, ir.FConst) and v.right.other.value == 0.0

    def test_conversion_is_bitwise_semantics_preserving(self):
        for src, inputs in ((GUARDED_SUM, INPUTS), (TWO_ARMED, INPUTS_8)):
            kernel = kernel_of(src)
            converted = IfConvert().run(kernel)
            assert converted != kernel
            assert run(converted, inputs) == run(kernel, inputs)

    def test_two_armed_same_op_factors_accumulator(self):
        converted = IfConvert().run(kernel_of(TWO_ARMED))
        selects = count_nodes(converted, ir.Select)
        assert selects == 1
        assert not any(isinstance(s, ir.SIf) for s in ir.walk_stmts(converted.body))

    def test_one_armed_store_becomes_scalar_masked_store(self):
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      a[i] = a[i] * s;
    }
  }
  printf("%.17g\\n", a[0]);
}
"""
            + MAIN_8
        )
        kernel = kernel_of(src)
        converted = IfConvert().run(kernel)
        stores = [
            s for s in ir.walk_stmts(converted.body)
            if isinstance(s, ir.SMaskedStore)
        ]
        assert len(stores) == 1 and stores[0].lanes == 1
        assert run(converted, INPUTS_8) == run(kernel, INPUTS_8)

    def test_else_only_store_masks_on_negated_condition(self):
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double unused = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      unused += 1.0;
    } else {
      a[i] = s;
    }
  }
  printf("%.17g\\n", a[0] + unused);
}
"""
            + MAIN_8
        )
        kernel = kernel_of(src)
        converted = IfConvert().run(kernel)
        stores = [
            s for s in ir.walk_stmts(converted.body)
            if isinstance(s, ir.SMaskedStore)
        ]
        assert len(stores) == 1 and isinstance(stores[0].mask, ir.Not)
        assert run(converted, INPUTS_8) == run(kernel, INPUTS_8)

    def test_both_armed_store_same_index_becomes_select_store(self):
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      a[i] = a[i] * s;
    } else {
      a[i] = 0.0;
    }
  }
  printf("%.17g\\n", a[0]);
}
"""
            + MAIN_8
        )
        kernel = kernel_of(src)
        converted = IfConvert().run(kernel)
        assert not any(isinstance(s, ir.SIf) for s in ir.walk_stmts(converted.body))
        assert not any(
            isinstance(s, ir.SMaskedStore) for s in ir.walk_stmts(converted.body)
        )
        assert run(converted, INPUTS_8) == run(kernel, INPUTS_8)


class TestIfConvertRefusals:
    def _unchanged(self, src):
        kernel = kernel_of(src)
        assert IfConvert().run(kernel) == kernel

    def test_nested_if_refused(self):
        self._unchanged(
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      if (a[i] > s) { comp += a[i]; }
    }
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )

    def test_print_in_arm_refused(self):
        self._unchanged(
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      printf("%g\\n", a[i]);
    }
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )

    def test_arm_reading_other_assigned_variable_refused(self):
        # t and comp are both written; comp's arm reads t, so a blend
        # against pre-conditional state would be wrong.
        self._unchanged(
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      t = a[i] * s;
      comp = comp + t;
    }
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )

    def test_condition_reading_one_of_two_stored_arrays_refused(self):
        # With two stores the second one re-evaluates the condition after
        # the first wrote memory the condition reads — not a blend.
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double b[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      a[i] = s;
    } else {
      b[i] = s;
    }
  }
  printf("%.17g\\n", a[0] + b[0]);
}
"""
            + MAIN_8
        )
        self._unchanged(src)

    def test_arms_storing_different_indices_refused(self):
        self._unchanged(
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  for (int i = 0; i < n - 1; ++i) {
    if (s > 0.0) {
      a[i] = s;
    } else {
      a[i + 1] = s;
    }
  }
  printf("%.17g\\n", a[0]);
}
"""
            + MAIN_8
        )

    def test_outer_loop_of_a_nest_refused(self):
        # Only innermost loops if-convert; the outer SIf stays a branch.
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int j = 0; j < n; ++j) {
    if (s > 0.0) {
      comp += 1.0;
    }
    for (int i = 0; i < n; ++i) {
      comp += a[i];
    }
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )
        kernel = kernel_of(src)
        converted = IfConvert().run(kernel)
        assert any(isinstance(s, ir.SIf) for s in ir.walk_stmts(converted.body))


class TestMaskedWidening:
    def test_masked_vectorization_diverges_bitwise(self):
        kernel = kernel_of(GUARDED_SUM)
        converted = IfConvert().run(kernel)
        scalar = run(kernel, INPUTS)
        sigs = {
            style: run(Vectorize(4, style, masked=True).run(converted), INPUTS)
            for style in ("adjacent", "ladder", "butterfly")
        }
        wide8 = run(Vectorize(8, "adjacent", masked=True).run(converted), INPUTS)
        # the masked widenings bitwise-diverge from the scalar branchy
        # fold, across reduction styles, and across widths
        assert any(sig != scalar for sig in sigs.values())
        assert len(set(sigs.values())) >= 2
        assert wide8 != sigs["adjacent"]

    def test_widened_loop_carries_mask_nodes(self):
        converted = IfConvert().run(kernel_of(GUARDED_SUM))
        vec = Vectorize(4, "adjacent", masked=True).run(converted)
        assert count_nodes(vec, ir.VecCmp) >= 1
        assert count_nodes(vec, ir.VecSelect) >= 1
        assert count_nodes(vec, ir.VecMaskedLoad) >= 1

    def test_unmasked_vectorizer_still_refuses_select_form(self):
        converted = IfConvert().run(kernel_of(GUARDED_SUM))
        assert Vectorize(4, "adjacent").run(converted) == converted

    def test_unroll_then_vectorize_is_vectorize_on_select_form(self):
        converted = IfConvert().run(kernel_of(GUARDED_SUM))
        direct = Vectorize(4, "adjacent", masked=True).run(converted)
        staged = Vectorize(4, "adjacent", masked=True).run(
            LoopUnroll(4).run(converted)
        )
        assert staged == direct

    def test_short_trip_counts_bitwise_untouched(self):
        kernel = kernel_of(GUARDED_SUM)
        vec = Vectorize(8, "butterfly", masked=True).run(IfConvert().run(kernel))
        short = (ARR16, 4.192660422628809, 5)  # 5 < 8 lanes
        assert run(vec, short) == run(kernel, short)

    def test_masked_map_store_widens_and_matches_scalar(self):
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      a[i] = a[i] * s;
    }
  }
  for (int i = 0; i < n; ++i) {
    comp += a[i];
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )
        kernel = kernel_of(src)
        vec = Vectorize(4, "adjacent", masked=True).run(IfConvert().run(kernel))
        wide = [
            s for s in ir.walk_stmts(vec.body)
            if isinstance(s, ir.SMaskedStore) and s.lanes == 4
        ]
        assert len(wide) == 1
        # Map lanes are lane-wise identical to scalar stores; only the
        # trailing reduction reassociates, so values stay finite and ok.
        result = run_kernel(vec, FPEnvironment(), INPUTS_8)
        assert result.ok, result.error

    def test_int_condition_stays_scalar(self):
        # Mask widening accepts floating comparisons only; an integer
        # guard if-converts (scalar select short-circuits harmlessly) but
        # must not widen.
        src = (
            """
#include <stdio.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (i < 4) {
      comp += a[i];
    }
  }
  printf("%.17g\\n", comp);
}
"""
            + MAIN_8
        )
        converted = IfConvert().run(kernel_of(src))
        vec = Vectorize(4, "adjacent", masked=True).run(converted)
        assert count_nodes(vec, ir.VecSelect) == 0
        assert run(vec, INPUTS_8) == run(kernel_of(src), INPUTS_8)


class TestMaskedInterp:
    def test_vecselect_evaluates_both_arms(self):
        # then-arm divides by zero in lanes the mask discards: the value
        # is computed (inf) but blended away — both arms execute.
        env = FPEnvironment()
        mask = ir.VecCmp(
            ">",
            ir.VecConst((1.0, -1.0, 2.0, -2.0), "double"),
            ir.VecConst((0.0,) * 4, "double"),
            4,
        )
        then = ir.VecBin(
            "/",
            ir.VecConst((1.0,) * 4, "double"),
            ir.VecConst((1.0, 0.0, 2.0, 0.0), "double"),
            4,
        )
        other = ir.VecConst((9.0,) * 4, "double")
        node = ir.VecSelect(mask, then, other, 4)
        kernel = ir.Kernel(
            "compute",
            (),
            (
                ir.SPrint(
                    "%.17g\\n",
                    (ir.VecReduce("+", node, 4, "double", "ladder"),),
                ),
            ),
        )
        result = run_kernel(kernel, env, ())
        assert result.ok
        # lanes: 1.0, 9.0, 0.5, 9.0 -> ladder sum 19.5
        assert result.printed[0] == 19.5

    def test_masked_load_inactive_lane_never_traps(self):
        # Lane 3 of the load would be out of bounds; its mask bit is off,
        # so zeroing masking must skip the access entirely.
        mask = ir.VecCmp(
            ">",
            ir.VecConst((1.0, 1.0, 1.0, -1.0), "double"),
            ir.VecConst((0.0,) * 4, "double"),
            4,
        )
        load = ir.VecMaskedLoad("a", ir.IConst(1), mask, 4, "double")
        kernel = ir.Kernel(
            "compute",
            (ir.Param("a", "double*"),),
            (
                ir.SPrint(
                    "%.17g\\n",
                    (ir.VecReduce("+", load, 4, "double", "ladder"),),
                ),
            ),
        )
        result = run_kernel(kernel, FPEnvironment(), ((1.0, 2.0, 3.0, 4.0),))
        assert result.ok, result.error
        assert result.printed[0] == 2.0 + 3.0 + 4.0  # lane 3: 0.0, no read

    def test_masked_load_active_lane_out_of_bounds_traps(self):
        mask = ir.VecCmp(
            ">",
            ir.VecConst((1.0,) * 4, "double"),
            ir.VecConst((0.0,) * 4, "double"),
            4,
        )
        load = ir.VecMaskedLoad("a", ir.IConst(1), mask, 4, "double")
        kernel = ir.Kernel(
            "compute",
            (ir.Param("a", "double*"),),
            (ir.SAssign("x", ir.VecReduce("+", load, 4, "double", "ladder"), "double"),),
        )
        result = run_kernel(kernel, FPEnvironment(), ((1.0, 2.0, 3.0, 4.0),))
        assert result.status is ExecStatus.TRAP
        assert "out of bounds" in result.error

    def test_inverted_masked_load_reads_complement(self):
        mask = ir.VecCmp(
            ">",
            ir.VecConst((1.0, -1.0, 1.0, -1.0), "double"),
            ir.VecConst((0.0,) * 4, "double"),
            4,
        )
        load = ir.VecMaskedLoad("a", ir.IConst(0), mask, 4, "double", invert=True)
        kernel = ir.Kernel(
            "compute",
            (ir.Param("a", "double*"),),
            (
                ir.SPrint(
                    "%.17g\\n",
                    (ir.VecReduce("+", load, 4, "double", "ladder"),),
                ),
            ),
        )
        result = run_kernel(kernel, FPEnvironment(), ((1.0, 2.0, 3.0, 4.0),))
        assert result.ok
        assert result.printed[0] == 2.0 + 4.0  # inverted: lanes 1 and 3

    def test_nan_condition_selects_else_arm(self):
        # NaN makes every ordered predicate false, scalar and lane alike.
        nan = float("nan")
        mask = ir.VecCmp(
            ">",
            ir.VecConst((nan, 1.0), "double"),
            ir.VecConst((0.0, 0.0), "double"),
            2,
        )
        node = ir.VecSelect(
            mask,
            ir.VecConst((100.0, 100.0), "double"),
            ir.VecConst((7.0, 7.0), "double"),
            2,
        )
        kernel = ir.Kernel(
            "compute",
            (),
            (ir.SPrint("%.17g\\n", (ir.VecReduce("+", node, 2, "double", "ladder"),)),),
        )
        result = run_kernel(kernel, FPEnvironment(), ())
        assert result.printed[0] == 107.0
