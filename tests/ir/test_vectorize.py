"""The vectorization tier: loop unrolling and SLP widening semantics."""

import pytest

from repro.execution.worker import run_kernel
from repro.fp.env import FPEnvironment
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes import LoopUnroll, Vectorize

REDUCTION = """
#include <stdio.h>
#include <math.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += a[i] * s + sin(s + i);
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[16] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                     atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8]),
                     atof(argv[9]), atof(argv[10]), atof(argv[11]), atof(argv[12]),
                     atof(argv[13]), atof(argv[14]), atof(argv[15]), atof(argv[16])};
  compute(in_a, atof(argv[17]), atoi(argv[18]));
  return 0;
}
"""

MAP_AND_REDUCE = """
#include <stdio.h>
void compute(double *a, double *b, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    b[i] = a[i] * s;
  }
  for (int i = 0; i < n; ++i) {
    comp += b[i];
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  double in_b[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  compute(in_a, in_b, atof(argv[9]), atoi(argv[10]));
  return 0;
}
"""

GUARDED = """
#include <stdio.h>
void compute(double *a, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      comp += a[i];
    }
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atoi(argv[9]));
  return 0;
}
"""

CARRIED = """
#include <stdio.h>
void compute(double *a, int n) {
  double comp = 0.0;
  for (int i = 1; i < n; ++i) {
    a[i] = a[i - 1] * 0.5;
  }
  for (int i = 0; i < n; ++i) {
    comp += a[i];
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atoi(argv[9]));
  return 0;
}
"""


def kernel_of(source):
    return lower_compute(check_program(parse_program(source)))


def run(kernel, inputs, env=None):
    result = run_kernel(kernel, env or FPEnvironment(), inputs)
    assert result.ok, result.error
    return result.signature()


# Mixed-magnitude, cancellation-heavy values: association order visibly
# changes the rounding (verified: scalar, 4-adjacent, 4-ladder and
# 8-adjacent all produce distinct bit patterns on these inputs).
ARR16 = (
    -2.161244991344777, 16.744850325199423, -2140.123310536274,
    -667.4296376438043, 33.12432414736006, 8604.15565518937,
    4.366101377828139, -373427.6696042438, -13.557686496180793,
    -856.9062739358501, 2.8392700153319588, 46.56981918402771,
    6.836221364114393, 21.37550366737585, -134.8944261290064,
    294524.6182501556,
)
S = 4.192660422628809
RED_INPUTS = (ARR16, S, 16)

MAP_ARR8 = (
    42869.4493338854, 109.57731139657534, -0.022239508948297276,
    0.021187453593671603, 1.0647925511248872, 60.92579414005787,
    -83.52201034354079, 0.05264898307283457,
)
MAP_S = 4.127069422459008

PROD_ARR16 = (
    9.187652339343733, 0.7075804624127352, -13.446260492951494,
    10.665903515251744, -0.19804782243742552, 0.09093279076650851,
    -5.0683830300710575, -0.9675488144963441, 0.1444142426033629,
    218.89030969559963, -50.846291275375634, 0.06266134301080216,
    0.32087678497263944, 131.17544801784507, -2.310709997306091,
    -37.20895027630921,
)


def count_nodes(kernel, node_type):
    return sum(
        1
        for s in ir.walk_stmts(kernel.body)
        for top in ir.stmt_exprs(s)
        for e in ir.walk(top)
        if isinstance(e, node_type)
    )


class TestLoopUnroll:
    def test_unroll_preserves_semantics_bitwise(self):
        kernel = kernel_of(REDUCTION)
        for factor in (2, 4, 8):
            unrolled = LoopUnroll(factor).run(kernel)
            assert run(unrolled, RED_INPUTS) == run(kernel, RED_INPUTS)

    def test_unroll_is_idempotent_on_its_output(self):
        kernel = kernel_of(REDUCTION)
        once = LoopUnroll(4).run(kernel)
        assert LoopUnroll(4).run(once) == once

    def test_unroll_skips_guarded_loops(self):
        kernel = kernel_of(GUARDED)
        assert LoopUnroll(4).run(kernel) == kernel

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            LoopUnroll(1)


class TestVectorize:
    def test_vectorized_reduction_diverges_bitwise(self):
        kernel = kernel_of(REDUCTION)
        scalar = run(kernel, RED_INPUTS)
        vec = Vectorize(4, "adjacent").run(kernel)
        assert count_nodes(vec, ir.VecReduce) == 1
        assert run(vec, RED_INPUTS) != scalar

    def test_widths_and_styles_diverge_from_each_other(self):
        kernel = kernel_of(REDUCTION)
        sigs = {
            (w, style): run(Vectorize(w, style).run(kernel), RED_INPUTS)
            for w, style in [(4, "adjacent"), (4, "ladder"), (8, "adjacent")]
        }
        assert len(set(sigs.values())) == 3

    def test_short_trip_counts_bitwise_untouched(self):
        """The runtime guard: fewer trips than lanes never enters the
        vector body, so the result is exactly the scalar one."""
        kernel = kernel_of(REDUCTION)
        vec = Vectorize(32, "butterfly").run(kernel)
        short = (ARR16, S, 13)  # 13 < 32 lanes
        assert run(vec, short) == run(kernel, short)

    def test_unroll_then_vectorize_is_vectorize(self):
        """Pass ordering: the SLP packer re-rolls an unrolled loop into
        the exact kernel direct widening produces — structurally, not
        just behaviourally."""
        kernel = kernel_of(REDUCTION)
        direct = Vectorize(4, "adjacent").run(kernel)
        staged = Vectorize(4, "adjacent").run(LoopUnroll(4).run(kernel))
        assert staged == direct

    def test_vectorize_is_idempotent(self):
        kernel = kernel_of(REDUCTION)
        once = Vectorize(4, "adjacent").run(kernel)
        assert Vectorize(4, "adjacent").run(once) == once

    def test_map_loop_vectorizes_without_divergence(self):
        """Vector stores are lane-wise identical to scalar stores; only
        reductions reassociate."""
        kernel = kernel_of(MAP_AND_REDUCE)
        vec = Vectorize(4, "adjacent").run(kernel)
        assert count_nodes(vec, ir.VecLoad) >= 1
        assert any(
            isinstance(s, ir.SVecStore) for s in ir.walk_stmts(vec.body)
        )
        inputs = (MAP_ARR8, (0.0,) * 8, MAP_S, 8)
        scalar = run(kernel, inputs)
        vec_sig = run(vec, inputs)
        # full kernel diverges (the reduction reassociates) ...
        assert vec_sig != scalar
        # ... but with a trip count below the width both loops stay scalar
        short = (MAP_ARR8, (0.0,) * 8, MAP_S, 3)
        assert run(vec, short) == run(kernel, short)

    def test_guarded_loop_refused(self):
        kernel = kernel_of(GUARDED)
        assert Vectorize(4, "adjacent").run(kernel) == kernel

    def test_hand_unrolled_source_loop_left_alone(self):
        """Regression: a *source* loop that happens to be stride-W with a
        ``i + (W-1) < n`` guard is NOT LoopUnroll output — it has no
        trailing epilogue, so re-rolling it and appending one would run
        tail trips the original program skipped.  It must stay scalar."""
        src = """
#include <stdio.h>
void compute(double *a, int n) {
  double comp = 0.0;
  for (int i = 0; i + 3 < n; i = i + 4) {
    comp = comp + a[i];
    comp = comp + a[i + 1];
    comp = comp + a[i + 2];
    comp = comp + a[i + 3];
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atoi(argv[9]));
  return 0;
}
"""
        kernel = kernel_of(src)
        vec = Vectorize(4, "adjacent").run(kernel)
        assert vec == kernel  # refused: no unroller epilogue follows
        inputs = ((1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0), 6)
        # n=6: the source loop sums a[0..3] only; semantics preserved
        assert run(vec, inputs) == run(kernel, inputs)

    def test_stride_w_loop_with_branch_refused_not_crashed(self):
        """Regression: a stride-W source loop whose body contains an if
        must make the re-roll *decline*, not raise from
        substitute_induction."""
        src = """
#include <stdio.h>
void compute(double *a, int n) {
  double comp = 0.0;
  for (int i = 0; i + 3 < n; i = i + 4) {
    if (a[i] > 0.0) {
      comp = comp + a[i];
    }
    comp = comp + a[i + 1];
    comp = comp + a[i + 2];
    comp = comp + a[i + 3];
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atoi(argv[9]));
  return 0;
}
"""
        kernel = kernel_of(src)
        assert Vectorize(4, "adjacent").run(kernel) == kernel

    def test_loop_carried_dependence_refused(self):
        kernel = kernel_of(CARRIED)
        vec = Vectorize(4, "adjacent").run(kernel)
        # first loop (a[i] = a[i-1] * .5) must stay scalar; the reduction
        # loop may vectorize — semantics must match scalar prefix behaviour
        assert not any(
            isinstance(s, ir.SVecStore) for s in ir.walk_stmts(vec.body)
        )

    def test_product_reduction(self):
        src = REDUCTION.replace(
            "comp += a[i] * s + sin(s + i);", "comp *= (1.0 + 0.125 * a[i]);"
        ).replace("double comp = 0.0;", "double comp = 1.0;")
        kernel = kernel_of(src)
        vec = Vectorize(4, "ladder").run(kernel)
        assert count_nodes(vec, ir.VecReduce) == 1
        [red] = [
            e
            for s in ir.walk_stmts(vec.body)
            for top in ir.stmt_exprs(s)
            for e in ir.walk(top)
            if isinstance(e, ir.VecReduce)
        ]
        assert red.op == "*"
        inputs = (PROD_ARR16, S, 16)
        assert run(vec, inputs) != run(kernel, inputs)

    def test_subtraction_reduction(self):
        src = REDUCTION.replace("comp +=", "comp -=")
        kernel = kernel_of(src)
        vec = Vectorize(4, "adjacent").run(kernel)
        assert count_nodes(vec, ir.VecReduce) == 1
        # lanes accumulate with '+', the combine subtracts the partial sum
        assert run(vec, RED_INPUTS) != run(kernel, RED_INPUTS)

    def test_bad_width_and_style_rejected(self):
        with pytest.raises(ValueError):
            Vectorize(1)
        with pytest.raises(ValueError):
            Vectorize(4, style="mystery")


class TestTierFlags:
    """The full-profile widening flags: integer guards and mixed precision.

    Both default off; the baseline vectorizer must keep refusing these
    constructs byte-for-byte so pre-registry pipelines are unchanged.
    """

    INT_GUARDED = GUARDED.replace("a[i] > 0.0", "i < n - 2")
    MIXED = REDUCTION.replace(
        "comp += a[i] * s + sin(s + i);",
        "comp += (float)(a[i]) * (float)(s);",
    )
    # slice picked so the masked adjacent partial sums round differently
    # from the scalar left fold (verified bitwise)
    GUARD_INPUTS = (ARR16[5:13], 8)

    def test_int_guard_refused_without_the_flag(self):
        from repro.ir.passes import IfConvert

        kernel = IfConvert().run(kernel_of(self.INT_GUARDED))
        vec = Vectorize(4, "adjacent", masked=True).run(kernel)
        assert vec == kernel  # integer mask: baseline declines

    def test_int_guard_widens_to_iota_vs_splat_compare(self):
        from repro.ir.passes import IfConvert

        kernel = IfConvert().run(kernel_of(self.INT_GUARDED))
        vec = Vectorize(4, "adjacent", masked=True, int_guards=True).run(kernel)
        assert vec != kernel
        cmps = [
            e
            for s in ir.walk_stmts(vec.body)
            for top in ir.stmt_exprs(s)
            for e in ir.walk(top)
            if isinstance(e, ir.VecCmp)
        ]
        assert cmps and all(
            isinstance(c.left, ir.VecIota) and isinstance(c.right, ir.VecSplat)
            for c in cmps
        )

    def test_int_guard_lanes_reassociate_the_reduction(self):
        from repro.ir.passes import IfConvert

        kernel = IfConvert().run(kernel_of(self.INT_GUARDED))
        vec = Vectorize(4, "adjacent", masked=True, int_guards=True).run(kernel)
        assert run(vec, self.GUARD_INPUTS) != run(kernel, self.GUARD_INPUTS)
        short = (ARR16[5:13], 3)  # below the width: the guard stays scalar
        assert run(vec, short) == run(kernel, short)

    def test_mixed_refused_without_the_flag(self):
        kernel = kernel_of(self.MIXED)
        assert Vectorize(4, "adjacent").run(kernel) == kernel

    def test_mixed_widens_the_precision_conversions(self):
        kernel = kernel_of(self.MIXED)
        vec = Vectorize(4, "adjacent", mixed=True).run(kernel)
        assert count_nodes(vec, ir.VecFpTrunc) >= 1
        assert count_nodes(vec, ir.VecReduce) == 1
        # the scalar epilogue loop keeps its scalar conversions
        assert count_nodes(vec, ir.FpTrunc) >= 1

    # Float32 products span enough binades here that double-precision
    # accumulation rounds, so association order is visible; narrow-spread
    # float terms (like ARR16's) sum *exactly* in double and would hide
    # the reassociation.
    MIXED_ARR16 = (
        -857168.0368232641, -0.008670182292, -567611381.0612221,
        -0.000436261748, -73.057777878741, -6.44769e-07,
        17178.571051320545, 0.00836564006, 221631212.73369572,
        -7.86303e-07, -0.557625126964, 1793125.5291513093,
        -0.031267196541, 3.442340657534, -4.083e-09, -0.768062131208,
    )

    def test_mixed_lanes_reassociate_the_reduction(self):
        kernel = kernel_of(self.MIXED)
        vec = Vectorize(4, "adjacent", mixed=True).run(kernel)
        inputs = (self.MIXED_ARR16, S, 16)
        assert run(vec, inputs) != run(kernel, inputs)
        short = (self.MIXED_ARR16, S, 3)
        assert run(vec, short) == run(kernel, short)

    def test_flags_default_off(self):
        pass_ = Vectorize(4, "adjacent")
        assert not pass_.masked and not pass_.int_guards and not pass_.mixed


class TestVectorInterp:
    def test_reduce_styles_model_distinct_association_orders(self):
        env = FPEnvironment()
        lanes = ir.VecConst((1e16, 1.0, -1e16, 1.0), "double")
        results = {
            style: ir.VecReduce("+", lanes, 4, "double", style)
            for style in ir.REDUCE_STYLES
        }
        values = {
            style: run_kernel(
                ir.Kernel(
                    "compute",
                    (),
                    (ir.SPrint("%.17g\\n", (node,)),),
                ),
                env,
                (),
            ).printed[0]
            for style, node in results.items()
        }
        # butterfly (x0+x2)+(x1+x3): (1e16-1e16)+(1+1)          = 2.0
        # ladder ((x0+x1)+x2)+x3:    ((1e16+1 -> 1e16)-1e16)+1  = 1.0
        # adjacent (x0+x1)+(x2+x3):  (1e16) + (-1e16)           = 0.0
        assert values["butterfly"] == 2.0
        assert values["ladder"] == 1.0
        assert values["adjacent"] == 0.0

    def test_vector_load_bounds_trap(self):
        from repro.execution.result import ExecStatus

        kernel = ir.Kernel(
            "compute",
            (ir.Param("a", "double*"),),
            (
                ir.SAssign(
                    "v",
                    ir.VecLoad("a", ir.IConst(6), 4, "double"),
                    "double",
                ),
            ),
        )
        result = run_kernel(kernel, FPEnvironment(), ((1.0,) * 8,))
        assert result.status is ExecStatus.TRAP
        assert "out of bounds" in result.error
