"""SimLLM behaviour: validity, prompt sensitivity, penalties, mutation."""

import pytest

from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.fp.formats import Precision
from repro.generation.llm.base import GenerationConfig, LatencyModel, SuccessSet
from repro.generation.llm.generator import LLMProgramGenerator
from repro.generation.llm.mutator import Mutator
from repro.generation.llm.simllm import SimLLM
from repro.generation.prompts import direct_prompt, grammar_prompt, mutation_prompt
from repro.utils.rng import SplittableRng

EXAMPLE = """#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double x, double y, int n) {
  double comp = 0.0;
  double t = sin(x) * cos(y);
  for (int i = 0; i < n; ++i) {
    comp += t * x + 0.5;
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


def llm(seed=1, **cfg):
    config = GenerationConfig(**cfg) if cfg else None
    return SimLLM(SplittableRng(seed), config=config)


class TestValidity:
    @pytest.mark.parametrize("builder", [direct_prompt, grammar_prompt])
    def test_outputs_valid_programs(self, builder):
        model = llm()
        for _ in range(25):
            source = model.complete(builder())
            check_program(parse_program(source))  # must not raise

    def test_mutations_valid(self):
        model = llm(3)
        prompt = mutation_prompt(EXAMPLE)
        for _ in range(15):
            check_program(parse_program(model.complete(prompt)))

    def test_output_is_plain_code(self):
        source = llm().complete(grammar_prompt())
        assert not source.startswith("```")
        assert source.startswith("#include")


class TestPromptSensitivity:
    def test_single_precision_respected(self):
        source = llm(5).complete(grammar_prompt(Precision.SINGLE))
        unit = parse_program(source)
        compute = unit.function("compute")
        fp_params = [p for p in compute.params if p.type.base != "int"]
        assert all(p.type.base == "float" for p in fp_params)

    def test_grammar_prompt_avoids_non_grammar_constructs(self):
        model = llm(7)
        for _ in range(20):
            source = model.complete(grammar_prompt())
            unit = parse_program(source)
            stmts = list(ast.walk_stmts(unit.function("compute").body))
            assert not any(isinstance(s, ast.While) for s in stmts)

    def test_direct_prompt_sometimes_freer(self):
        model = llm(11)
        saw_free = False
        for _ in range(40):
            source = model.complete(direct_prompt())
            if "while (" in source or "?" in source:
                saw_free = True
                break
        assert saw_free

    def test_mutation_preserves_structure(self):
        source = llm(13).complete(mutation_prompt(EXAMPLE))
        unit = parse_program(source)
        compute = unit.function("compute")
        assert [p.type.base for p in compute.params] == ["double", "double", "int"]

    def test_mutation_changes_program(self):
        source = llm(17).complete(mutation_prompt(EXAMPLE))
        assert source.strip() != EXAMPLE.strip()

    def test_unparsable_example_falls_back(self):
        source = llm(19).complete(mutation_prompt("not C at all {{{"))
        check_program(parse_program(source))  # fresh valid program


class TestSampling:
    def test_deterministic_given_seed(self):
        a = llm(23).complete(grammar_prompt())
        b = llm(23).complete(grammar_prompt())
        assert a == b

    def test_calls_counted(self):
        model = llm()
        model.complete(direct_prompt())
        model.complete(direct_prompt())
        assert model.calls == 2

    def test_latency_model_charges(self):
        latency = LatencyModel(SplittableRng(1), mean_seconds=2.0)
        model = SimLLM(SplittableRng(2), latency=latency)
        model.complete(direct_prompt())
        model.complete(direct_prompt())
        assert latency.calls == 2
        assert model.simulated_latency_seconds > 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GenerationConfig(temperature=0.0)
        with pytest.raises(ValueError):
            GenerationConfig(frequency_penalty=3.0)


class TestSuccessSet:
    def test_add_and_sample(self):
        s = SuccessSet(SplittableRng(1))
        s.add("prog-a")
        assert s.sample() == "prog-a"

    def test_deduplicates(self):
        s = SuccessSet(SplittableRng(1))
        s.add("x")
        s.add("x")
        assert len(s) == 1

    def test_empty_sample_raises(self):
        with pytest.raises(LookupError):
            SuccessSet(SplittableRng(1)).sample()

    def test_capacity_bounds(self):
        s = SuccessSet(SplittableRng(1), capacity=3)
        for i in range(5):
            s.add(f"p{i}")
        assert len(s) == 3


class TestLLMProgramGenerator:
    def test_direct_config_never_mutates(self):
        gen = LLMProgramGenerator(
            "direct-prompt",
            llm(29),
            SplittableRng(29),
            use_grammar=False,
            use_feedback=False,
        )
        p = gen.generate()
        gen.notify_success(p)  # ignored
        strategies = {gen.generate().strategy for _ in range(10)}
        assert strategies == {"direct"}

    def test_llm4fp_first_program_is_grammar(self):
        gen = LLMProgramGenerator(
            "llm4fp", llm(31), SplittableRng(31), use_grammar=True, use_feedback=True
        )
        assert gen.generate().strategy == "grammar"

    def test_llm4fp_mutates_after_success(self):
        gen = LLMProgramGenerator(
            "llm4fp",
            llm(37),
            SplittableRng(37),
            use_grammar=True,
            use_feedback=True,
            mutation_prob=1.0,
        )
        p = gen.generate()
        gen.notify_success(p)
        assert gen.generate().strategy == "mutation"

    def test_inputs_match_signature(self):
        gen = LLMProgramGenerator(
            "grammar-guided", llm(41), SplittableRng(41), use_grammar=True
        )
        for _ in range(10):
            p = gen.generate()
            unit = parse_program(p.source)
            assert len(p.inputs) == len(unit.function("compute").params)

    def test_mutation_prob_validated(self):
        with pytest.raises(ValueError):
            LLMProgramGenerator(
                "x", llm(), SplittableRng(1), mutation_prob=1.5
            )


class TestMutator:
    def test_returns_none_on_garbage(self):
        m = Mutator(GenerationConfig())
        assert m.mutate(SplittableRng(1), "not a program", Precision.DOUBLE) is None

    def test_mutations_recorded(self):
        m = Mutator(GenerationConfig())
        out = m.mutate(SplittableRng(2), EXAMPLE, Precision.DOUBLE)
        assert out is not None
        source, applied = out
        assert applied  # at least one strategy applied
        check_program(parse_program(source))

    def test_mutation_keeps_transcendental_sites(self):
        m = Mutator(GenerationConfig())
        kept = 0
        for seed in range(10):
            out = m.mutate(SplittableRng(seed), EXAMPLE, Precision.DOUBLE)
            if out is None:
                continue
            source, _ = out
            if any(fn in source for fn in ("sin(", "cos(", "tanh(", "atan(", "erf(", "cbrt(")):
                kept += 1
        assert kept >= 8  # effective trigger patterns survive mutation
