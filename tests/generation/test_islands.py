"""Island-model units: SUS selection, the novelty-fitness census, peer
path derivation, and the coordinator's exchange/record protocol."""

from collections import Counter

import pytest

from repro.generation.islands import (
    EMIGRANTS_PER_MERGE,
    IslandCoordinator,
    MutationFitness,
    derive_peer_paths,
    stochastic_universal_sampling,
)
from repro.generation.program import GeneratedProgram
from repro.generation.prompts import MUTATION_STRATEGIES
from repro.utils.rng import SplittableRng


class TestStochasticUniversalSampling:
    def test_deterministic_for_a_fixed_rng(self):
        a = stochastic_universal_sampling(SplittableRng(1, "sus"), [1, 2, 3], 5)
        b = stochastic_universal_sampling(SplittableRng(1, "sus"), [1, 2, 3], 5)
        assert a == b

    def test_zero_weight_entries_never_picked(self):
        for seed in range(20):
            picks = stochastic_universal_sampling(
                SplittableRng(seed, "sus"), [0.0, 1.0, 0.0], 4
            )
            assert set(picks) == {1}

    def test_picks_track_weights_proportionally(self):
        # One spin with k pointers: a weight holding half the wheel gets
        # floor(k/2) or ceil(k/2) picks — SUS's low-variance guarantee.
        counts = Counter()
        for seed in range(50):
            picks = stochastic_universal_sampling(
                SplittableRng(seed, "sus"), [1.0, 1.0, 2.0], 8
            )
            counts.update(picks)
            assert picks.count(2) == 4  # exactly half the pointers
        assert counts[0] + counts[1] == counts[2]

    def test_invalid_inputs_rejected(self):
        rng = SplittableRng(1, "sus")
        with pytest.raises(ValueError):
            stochastic_universal_sampling(rng, [1.0], 0)
        with pytest.raises(ValueError):
            stochastic_universal_sampling(rng, [0.0, 0.0], 1)
        with pytest.raises(ValueError):
            stochastic_universal_sampling(rng, [1.0, -0.5], 1)


class TestMutationFitness:
    def test_novelty_decays_with_repetition(self):
        fitness = MutationFitness()
        assert fitness.observe("sig-a") == 1.0
        assert fitness.observe("sig-a") == 0.5
        assert fitness.observe("sig-a") == pytest.approx(1 / 3)
        assert fitness.observe("sig-b") == 1.0

    def test_empty_census_is_uniform(self):
        weights = MutationFitness().weights()
        assert weights == tuple(1.0 for _ in MUTATION_STRATEGIES)

    def test_credited_strategy_gains_weight(self):
        fitness = MutationFitness()
        target = MUTATION_STRATEGIES[0]
        fitness.observe("sig-a", target)
        weights = dict(zip(fitness.strategies, fitness.weights()))
        assert weights[target] == 2.0
        assert all(w == 1.0 for s, w in weights.items() if s != target)
        # uncredited observations (immigrants) only touch the census
        fitness.observe("sig-b", None)
        fitness.observe("sig-c", "not-a-strategy")
        assert dict(zip(fitness.strategies, fitness.weights())) == weights

    def test_state_round_trips(self):
        fitness = MutationFitness()
        fitness.observe("sig-a", MUTATION_STRATEGIES[0])
        fitness.observe("sig-a", MUTATION_STRATEGIES[1])
        restored = MutationFitness()
        restored.import_state(fitness.export_state())
        assert restored.census == fitness.census
        assert restored.weights() == fitness.weights()


class TestDerivePeerPaths:
    @pytest.mark.parametrize(
        "name, expected",
        [
            # the fleet's layout, the experiment runner's, and a manual one
            ("shard1_of_4.jsonl", ["shard0_of_4.jsonl", "shard1_of_4.jsonl",
                                   "shard2_of_4.jsonl", "shard3_of_4.jsonl"]),
            ("llm4fp-shard1of4.jsonl", ["llm4fp-shard0of4.jsonl",
                                        "llm4fp-shard1of4.jsonl",
                                        "llm4fp-shard2of4.jsonl",
                                        "llm4fp-shard3of4.jsonl"]),
            ("shard1.jsonl", ["shard0.jsonl", "shard1.jsonl",
                              "shard2.jsonl", "shard3.jsonl"]),
        ],
    )
    def test_known_layouts(self, tmp_path, name, expected):
        peers = derive_peer_paths(tmp_path / name, 1, 4)
        assert [p.name for p in peers] == expected
        assert all(p.parent == tmp_path for p in peers)

    def test_shard1_does_not_match_shard12(self, tmp_path):
        # the token must stop at a digit boundary: shard 1 of 16 must not
        # rewrite the "shard12" in a sibling-ish name prefix
        peers = derive_peer_paths(tmp_path / "shard12.jsonl", 12, 16)
        assert peers[0].name == "shard0.jsonl"
        with pytest.raises(ValueError, match="shard1"):
            derive_peer_paths(tmp_path / "shard12.jsonl", 1, 16)

    def test_missing_token_rejected_with_guidance(self, tmp_path):
        with pytest.raises(ValueError, match="shard2_of_4.jsonl"):
            derive_peer_paths(tmp_path / "campaign.jsonl", 2, 4)


class _StubGenerator:
    """A feedback generator double with a scripted migrant buffer."""

    name = "stub"

    def __init__(self):
        self.bound = None
        self.observed = []
        self.imported = []
        self._buffer = []

    def bind(self, shard_index, shard_count, rng_seed):
        self.bound = (shard_index, shard_count, rng_seed)

    def generate(self):
        return GeneratedProgram(source=f"p{len(self.observed)}", inputs=())

    def observe(self, outcome):
        self.observed.append(outcome)
        if getattr(outcome, "triggered", False):
            self._buffer.append(
                {"source": outcome.program.source, "signature": [[], []],
                 "strategy": None}
            )

    def export_migrants(self, limit):
        drained, self._buffer = self._buffer[:limit], []
        return drained

    def import_migrants(self, migrants):
        self.imported.append(list(migrants))


class _Outcome:
    def __init__(self, index, triggered=False):
        self.index = index
        self.triggered = triggered
        self.program = GeneratedProgram(source=f"src{index}", inputs=())


class TestIslandCoordinator:
    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError, match="islands"):
            IslandCoordinator(_StubGenerator(), islands=0, merge_every=1, seed=1)
        with pytest.raises(ValueError, match="merge_every"):
            IslandCoordinator(_StubGenerator(), islands=1, merge_every=0, seed=1)
        with pytest.raises(ValueError, match="one island per shard"):
            IslandCoordinator(
                _StubGenerator(), islands=4, merge_every=1, seed=1,
                shard_index=0, shard_count=2,
            )
        with pytest.raises(ValueError, match="peer checkpoint path"):
            IslandCoordinator(
                _StubGenerator(), islands=2, merge_every=1, seed=1,
                shard_index=0, shard_count=2, peer_paths=["only-one"],
            )

    def test_each_island_is_bound_to_its_partition(self):
        template = _StubGenerator()
        coordinator = IslandCoordinator(
            template, islands=3, merge_every=2, seed=9
        )
        for k in range(3):
            gen = coordinator._generators[k]
            assert gen.bound == (k, 3, 9)
            assert coordinator.owner(k) == k
            assert coordinator.owner(k + 3) == k

    def test_merge_record_shape_and_cadence(self):
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=2, merge_every=2, seed=1
        )
        # island 0 owns 0, 2, 4, ...: its first boundary is after its
        # 2nd owned program (budget index 2)
        assert coordinator.observe(0, _Outcome(0, triggered=True)) == []
        records = coordinator.observe(2, _Outcome(2, triggered=True))
        assert records == [
            {
                "kind": "island",
                "island": 0,
                "generation": 1,
                "after": 2,
                "migrants": [
                    {"source": "src0", "signature": [[], []], "strategy": None},
                    {"source": "src2", "signature": [[], []], "strategy": None},
                ],
            }
        ]

    def test_ladder_topology_imports_only_lower_islands(self):
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=2, merge_every=1, seed=1
        )
        g0, g1 = coordinator._generators[0], coordinator._generators[1]
        coordinator.observe(0, _Outcome(0, triggered=True))
        coordinator.complete_boundary(0)
        coordinator.observe(1, _Outcome(1, triggered=True))
        coordinator.complete_boundary(1)
        assert g0.imported == []  # island 0 imports from no one
        assert g1.imported == [[{"source": "src0", "signature": [[], []],
                                 "strategy": None}]]

    def test_migrant_cap_is_emigrants_per_merge(self):
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=1, merge_every=EMIGRANTS_PER_MERGE + 2,
            seed=1,
        )
        for i in range(EMIGRANTS_PER_MERGE + 2):
            records = coordinator.observe(i, _Outcome(i, triggered=True))
        assert len(records) == 1
        assert len(records[0]["migrants"]) == EMIGRANTS_PER_MERGE

    def test_feedback_free_generator_yields_empty_records(self):
        class Plain:
            def bind(self, *a):
                pass

            def observe(self, outcome):
                pass

        coordinator = IslandCoordinator(Plain(), islands=1, merge_every=2, seed=1)
        coordinator.observe(0, _Outcome(0, triggered=True))
        records = coordinator.observe(1, _Outcome(1, triggered=True))
        assert records == [
            {"kind": "island", "island": 0, "generation": 1, "after": 1,
             "migrants": []}
        ]
        coordinator.complete_boundary(1)  # no import_migrants: a no-op

    def test_resume_replays_matching_records_silently(self):
        record = {
            "kind": "island", "island": 0, "generation": 1, "after": 1,
            "migrants": [{"source": "src0", "signature": [[], []],
                          "strategy": None},
                         {"source": "src1", "signature": [[], []],
                          "strategy": None}],
        }
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=1, merge_every=2, seed=1,
            existing_records=[record],
        )
        coordinator.observe(0, _Outcome(0, triggered=True))
        # already durable: nothing to append again
        assert coordinator.observe(1, _Outcome(1, triggered=True)) == []

    def test_resume_rejects_foreign_records(self):
        foreign = {
            "kind": "island", "island": 0, "generation": 1, "after": 1,
            "migrants": [{"source": "other", "signature": [[], []],
                          "strategy": None}],
        }
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=1, merge_every=2, seed=1,
            existing_records=[foreign],
        )
        coordinator.observe(0, _Outcome(0, triggered=True))
        with pytest.raises(ValueError, match="island record mismatch"):
            coordinator.observe(1, _Outcome(1, triggered=True))

    def test_sharded_import_times_out_with_a_pointer(self, tmp_path):
        paths = [tmp_path / f"shard{i}.jsonl" for i in range(2)]
        coordinator = IslandCoordinator(
            _StubGenerator(), islands=2, merge_every=1, seed=1,
            shard_index=1, shard_count=2, peer_paths=paths,
            import_timeout=0.2,
        )
        coordinator.observe(1, _Outcome(1, triggered=True))
        with pytest.raises(RuntimeError, match="island 0 generation 1"):
            coordinator.complete_boundary(1)
