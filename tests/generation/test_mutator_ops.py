"""The mutation operators added for the feedback loop's RQ1 behaviour:
trigger-enriching insertions, pattern grafting, seed thinning, statement
reordering, update dropping, and the never-identical guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.fp.formats import Precision
from repro.generation.llm.base import GenerationConfig, SuccessSet
from repro.generation.llm.mutator import (
    Mutator,
    _fp_scalars,
    _insert_random,
    _stmt_names,
    _swappable,
    _synthesize_snippet,
    _token_stream,
)
from repro.utils.rng import SplittableRng

EXAMPLE = """
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double x, double y, int n) {
  double comp = x * 0.5;
  double t = sin(x) * cos(y);
  comp += t;
  for (int i = 0; i < n; ++i) {
    comp += tanh(x + i) / (fabs(y) + 1.5);
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


def mutate(seed: int):
    m = Mutator(GenerationConfig())
    return m.mutate(SplittableRng(seed), EXAMPLE, Precision.DOUBLE)


class TestMutateContract:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=60, deadline=None)
    def test_valid_and_different(self, seed):
        out = mutate(seed)
        if out is None:
            return  # mutation may fail; the SimLLM falls back to grammar
        source, applied = out
        # Valid program...
        check_program(parse_program(source))
        # ...that is never token-identical to its seed.
        assert _token_stream(source) != _token_stream(EXAMPLE)
        assert applied

    def test_strategies_recorded_from_prompt_list(self):
        known = {
            "change-constants", "swap-math-functions", "nest-arithmetic",
            "add-loop", "add-conditional", "insert-intermediate",
            "insert-transcendental", "insert-fma-chain", "insert-guarded-div",
            "graft-pattern", "reorder-statements", "drop-update",
            "rename-locals", "thin-seed",
        }
        for seed in range(20):
            out = mutate(seed)
            if out is None:
                continue
            _, applied = out
            assert set(applied) <= known, applied

    def test_keeps_high_level_structure(self):
        for seed in range(10):
            out = mutate(seed)
            if out is None:
                continue
            unit = parse_program(out[0])
            names = [f.name for f in unit.functions]
            assert names == ["compute", "main"]
            compute = unit.function("compute")
            # Parameter list is preserved (§2.3.2: structure is kept).
            assert [p.name for p in compute.params] == ["x", "y", "n"]

    def test_mutants_differ_across_seeds(self):
        outs = {mutate(seed)[0] for seed in range(6) if mutate(seed)}
        assert len(outs) >= 5


class TestScalarPool:
    def test_fp_scalars_params_and_comp(self):
        unit = parse_program(EXAMPLE)
        assert _fp_scalars(unit) == ("x", "y", "comp")

    def test_fp_scalars_no_compute(self):
        unit = parse_program("int main() { return 0; }")
        assert _fp_scalars(unit) == ("comp",)


class TestSnippetSynthesis:
    def test_snippet_parses_and_accumulates(self):
        stmts = _synthesize_snippet(
            SplittableRng(3), ("x", "y"), Precision.DOUBLE
        )
        assert stmts
        # Grafts must read or write comp so they affect the output.
        text = " ".join(str(s) for s in stmts)
        assert "comp" in text

    def test_snippet_prefix_isolates_names(self):
        a = _synthesize_snippet(SplittableRng(3), ("x",), Precision.DOUBLE, "g0")
        b = _synthesize_snippet(SplittableRng(3), ("x",), Precision.DOUBLE, "g1")
        names_a = {d.name for s in a if isinstance(s, ast.Decl) for d in s.declarators}
        names_b = {d.name for s in b if isinstance(s, ast.Decl) for d in s.declarators}
        assert not names_a & names_b or not names_a

    def test_snippet_single_precision(self):
        stmts = _synthesize_snippet(SplittableRng(9), ("x",), Precision.SINGLE)
        decls = [s for s in stmts if isinstance(s, ast.Decl)]
        assert all(d.base.base == "float" for d in decls) or not decls


class TestInsertRandom:
    def test_insert_before_print(self):
        unit = parse_program(EXAMPLE)
        block = unit.function("compute").body
        marker = ast.Assign(ast.Ident("comp"), "+=", ast.FloatLit(9.5))
        for seed in range(10):
            out = _insert_random(SplittableRng(seed), block, [marker])
            stmts = list(out.stmts)
            at = stmts.index(marker)
            # Never first (comp's declaration), never after the print.
            assert 1 <= at < len(stmts)
            assert isinstance(stmts[-1], ast.ExprStmt)


class TestSwappable:
    def _stmts(self, src):
        return parse_program(
            "void compute(double a) {" + src + "} int main() { return 0; }"
        ).function("compute").body.stmts

    def test_decl_use_dependency_blocks_swap(self):
        s = self._stmts("double t = a; double u = t + 1.0;")
        assert not _swappable(s[0], s[1])

    def test_independent_decls_swap(self):
        s = self._stmts("double t = a; double u = a * 2.0;")
        assert _swappable(s[0], s[1])

    def test_stmt_names_sees_loop_decl(self):
        s = self._stmts("for (int i = 0; i < 4; ++i) { a += i; }")
        declared, used = _stmt_names(s[0])
        assert "i" in declared and "a" in used


class TestRecencyBias:
    def test_recent_seeds_sampled_more(self):
        s = SuccessSet(SplittableRng(42))
        for i in range(20):
            s.add(f"prog-{i}")
        draws = [s.sample() for _ in range(400)]
        early = sum(1 for d in draws if int(d.split("-")[1]) < 10)
        late = sum(1 for d in draws if int(d.split("-")[1]) >= 10)
        assert late > early

    def test_single_item(self):
        s = SuccessSet(SplittableRng(1))
        s.add("only")
        assert s.sample() == "only"

    def test_empty_raises(self):
        with pytest.raises(LookupError):
            SuccessSet(SplittableRng(1)).sample()
