"""Prompt builders and the SimLLM's prompt parsing."""

from repro.fp.formats import Precision
from repro.generation.llm.parsing import PromptKind, parse_prompt
from repro.generation.prompts import (
    GUIDELINES,
    MUTATION_STRATEGIES,
    direct_prompt,
    grammar_prompt,
    mutation_prompt,
)

EXAMPLE = (
    "#include <stdio.h>\n#include <math.h>\n"
    "void compute(double x) { double comp = sin(x);"
    ' printf("%.17g\\n", comp); }\n'
    "int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }"
)


class TestPromptContents:
    def test_direct_has_no_grammar(self):
        p = direct_prompt()
        assert "grammar" not in p.lower()
        assert "stdio.h" in p  # guidelines present

    def test_grammar_prompt_embeds_figure2(self):
        p = grammar_prompt()
        assert "must follow this grammar" in p
        assert "<for-loop-block>" in p

    def test_mutation_prompt_embeds_example_and_strategies(self):
        p = mutation_prompt(EXAMPLE)
        assert "behaves differently" in p
        assert EXAMPLE.strip() in p
        for s in MUTATION_STRATEGIES:
            assert s in p

    def test_guidelines_cover_paper_rules(self):
        assert "stdio.h" in GUIDELINES
        assert "stdlib.h" in GUIDELINES
        assert "math.h" in GUIDELINES
        assert "Initialize" in GUIDELINES
        assert "undefined behavior" in GUIDELINES

    def test_precision_stated(self):
        assert "double precision" in direct_prompt(Precision.DOUBLE)
        assert "single precision" in grammar_prompt(Precision.SINGLE)

    def test_plain_code_instruction_last(self):
        for p in (direct_prompt(), grammar_prompt(), mutation_prompt(EXAMPLE)):
            assert p.rstrip().endswith("explanation.")


class TestPromptParsing:
    def test_direct_roundtrip(self):
        req = parse_prompt(direct_prompt())
        assert req.kind is PromptKind.DIRECT
        assert req.precision is Precision.DOUBLE

    def test_grammar_roundtrip(self):
        req = parse_prompt(grammar_prompt())
        assert req.kind is PromptKind.GRAMMAR

    def test_single_precision_detected(self):
        req = parse_prompt(grammar_prompt(Precision.SINGLE))
        assert req.precision is Precision.SINGLE

    def test_mutation_roundtrip(self):
        req = parse_prompt(mutation_prompt(EXAMPLE))
        assert req.kind is PromptKind.MUTATION
        assert req.example is not None
        assert "compute" in req.example
        assert len(req.strategies) == len(MUTATION_STRATEGIES)

    def test_prompt_without_grammar_parses_direct(self):
        # The SimLLM honours the prompt, not the caller's intent.
        p = direct_prompt().replace("Create a random", "Please create a")
        assert parse_prompt(p).kind is PromptKind.DIRECT
