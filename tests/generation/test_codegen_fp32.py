"""FP32 synthesis: float programs must stay in binary32 arithmetic.

Unsuffixed C literals are doubles; mixing them into float expressions
promotes the arithmetic to double and the final narrowing absorbs sub-ulp
library divergences (hiding single-precision effects).  The synthesizer
therefore emits 'f'-suffixed literals in float programs.
"""

import re

from repro.fp.formats import Precision
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.generation.llm.base import GenerationConfig
from repro.generation.llm.codegen import ProgramSynthesizer
from repro.generation.llm.parsing import PromptKind
from repro.utils.rng import SplittableRng

_FLOAT_LIT = re.compile(r"\d\.\d+(?![0-9fF])")


def synth(seed: int, precision: Precision) -> str:
    s = ProgramSynthesizer(GenerationConfig())
    source, _ = s.synthesize(
        SplittableRng(seed), PromptKind.GRAMMAR, precision, []
    )
    return source


class TestFloatLiterals:
    def test_float_programs_use_f_suffix(self):
        # Exactly representable dyadic constants (0.0, 0.5, 1.0, ...) may
        # stay unsuffixed: promoting through double is lossless for them.
        exact = {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}
        for seed in range(8):
            source = synth(seed, Precision.SINGLE)
            compute = source.split("int main")[0]
            bare = [
                m.group(0)
                for m in _FLOAT_LIT.finditer(compute)
                if float(m.group(0)) not in exact
            ]
            assert not bare, (seed, bare, compute)

    def test_double_programs_have_no_f_suffix(self):
        for seed in range(8):
            source = synth(seed, Precision.DOUBLE)
            assert not re.search(r"\d\.\d+f", source), seed

    def test_float_programs_valid(self):
        for seed in range(8):
            source = synth(seed, Precision.SINGLE)
            check_program(parse_program(source))

    def test_float_programs_declare_float(self):
        source = synth(3, Precision.SINGLE)
        compute = parse_program(source).function("compute")
        fp_params = [p for p in compute.params if p.type.base in ("float", "double")]
        assert fp_params and all(p.type.base == "float" for p in fp_params)


class TestRescalePattern:
    def test_rescale_gain_appears(self):
        seen = False
        for seed in range(40):
            source = synth(seed, Precision.DOUBLE)
            if re.search(r"comp \*= ", source):
                seen = True
                break
        assert seen, "rescale_gain never sampled in 40 programs"
