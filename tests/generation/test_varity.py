"""Varity baseline generator: validity, determinism, character."""

from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.generation.varity import VarityGenerator
from repro.utils.rng import SplittableRng


def make(seed=1):
    return VarityGenerator(SplittableRng(seed))


class TestValidity:
    def test_programs_parse_and_check(self):
        gen = make()
        ok = 0
        for _ in range(40):
            p = gen.generate()
            try:
                check_program(parse_program(p.source))
                ok += 1
            except Exception:
                pass
        # Varity emits well-formed programs by construction.
        assert ok >= 38

    def test_has_compute_and_main(self):
        p = make().generate()
        unit = parse_program(p.source)
        assert {f.name for f in unit.functions} == {"compute", "main"}

    def test_prints_result(self):
        p = make().generate()
        assert 'printf("%.17g\\n", comp);' in p.source

    def test_inputs_match_params(self):
        gen = make(7)
        for _ in range(20):
            p = gen.generate()
            unit = parse_program(p.source)
            compute = unit.function("compute")
            assert len(p.inputs) == len(compute.params)
            for param, value in zip(compute.params, p.inputs):
                if param.type.pointers:
                    assert isinstance(value, tuple)
                elif param.type.base == "int":
                    assert isinstance(value, int)
                else:
                    assert isinstance(value, float)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        g1, g2 = make(42), make(42)
        for _ in range(5):
            assert g1.generate().source == g2.generate().source

    def test_distinct_programs_in_sequence(self):
        gen = make(3)
        sources = {gen.generate().source for _ in range(20)}
        assert len(sources) >= 19  # no degenerate repetition

    def test_inputs_unique_per_program(self):
        gen = make(5)
        inputs = [gen.generate().inputs for _ in range(10)]
        assert len(set(inputs)) == len(inputs)


class TestCharacter:
    def test_wide_input_profile(self):
        gen = make(11)
        magnitudes = []
        for _ in range(60):
            for v in gen.generate().inputs:
                if isinstance(v, float) and v != 0.0:
                    magnitudes.append(abs(v))
        assert any(m > 1e50 for m in magnitudes)  # huge inputs occur
        assert any(m < 1e-50 for m in magnitudes)  # tiny inputs occur

    def test_unguarded_divisions_exist(self):
        gen = make(13)
        assert any("/" in gen.generate().source for _ in range(10))

    def test_meta_strategy(self):
        assert make().generate().strategy == "varity"

    def test_notify_success_is_noop(self):
        gen = make()
        p = gen.generate()
        gen.notify_success(p)  # must not raise or change behaviour
        assert gen.generate().source != p.source
