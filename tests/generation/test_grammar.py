"""Grammar spec and its prompt rendering."""

from repro.fp.formats import Precision
from repro.generation.grammar import DEFAULT_GRAMMAR, GrammarSpec


class TestGrammarSpec:
    def test_default_is_double(self):
        assert DEFAULT_GRAMMAR.precision is Precision.DOUBLE
        assert DEFAULT_GRAMMAR.fp_type == "double"

    def test_single_precision_render(self):
        g = GrammarSpec(precision=Precision.SINGLE)
        text = g.render()
        assert '"float"' in text
        assert '"double"' not in text

    def test_render_contains_figure2_productions(self):
        text = DEFAULT_GRAMMAR.render()
        for fragment in (
            "<function>",
            "<param-list>",
            "<assignment>",
            '"comp"',
            "<for-loop-block>",
            "<if-block>",
            "<loop-header>",
        ):
            assert fragment in text

    def test_operators_rendered(self):
        text = DEFAULT_GRAMMAR.render()
        assert '"+" | "-" | "*" | "/"' in text

    def test_functions_cover_math_registry(self):
        from repro.fp.mathlib import MATH_FUNCTIONS

        for fn in DEFAULT_GRAMMAR.functions:
            assert fn in MATH_FUNCTIONS
