"""The generator lifecycle protocol: declared capabilities, bind
partitioning, export/import state round-trips, and the hard error that
replaced the pre-lifecycle ``use_feedback`` deprecation bridge."""

import json
import warnings

import pytest

from repro.difftest.record import ComparisonRecord, ProgramOutcome
from repro.experiments.approaches import ALL_APPROACHES, make_generator
from repro.generation.program import (
    GeneratedProgram,
    GeneratorCapabilities,
    bind_generator,
    generator_capabilities,
    observe_outcome,
)
from repro.toolchains import OptLevel
from repro.utils.rng import SplittableRng


def _generator(approach, seed=7):
    return make_generator(approach, SplittableRng(seed, f"lifecycle-{approach}"))


def _programs(gen, n):
    return [(p.source, p.inputs) for p in (gen.generate() for _ in range(n))]


def _triggering_outcome(program, index=0):
    """A minimal triggered verdict for feeding ``observe``."""
    return ProgramOutcome(
        index=index,
        program=program,
        triggered=True,
        compiled={"gcc/O3": True, "clang/O3": True},
        ran={"gcc/O3": True, "clang/O3": True},
        signatures={"gcc/O3": "a", "clang/O3": "b"},
        values={"gcc/O3": 1.0, "clang/O3": 2.0},
        comparisons=[
            ComparisonRecord(
                index, "gcc", "clang", OptLevel.O3, False,
                value_a=1.0, value_b=2.0, digit_diff=13,
            )
        ],
    )


class TestCapabilities:
    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_every_approach_declares_capabilities(self, approach):
        caps = generator_capabilities(_generator(approach))
        assert isinstance(caps, GeneratorCapabilities)
        # Only the paper's feedback loop feeds verdicts back; everything
        # is shardable — feedback via islands, the rest classically.
        assert caps.feedback == (approach == "llm4fp")
        assert caps.shardable

    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_lifecycle_generators_emit_no_deprecation_warning(self, approach):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            generator_capabilities(_generator(approach))

    def test_use_feedback_probe_is_a_hard_error(self):
        # The PR-8 attribute-probe bridge lasted exactly one release;
        # a bare use_feedback now names the migration instead of guessing
        # sharding semantics from it.
        class Legacy:
            name = "legacy"
            use_feedback = True

        with pytest.raises(TypeError, match="use_feedback"):
            generator_capabilities(Legacy())

        class LegacyOff:
            use_feedback = False

        # The value never mattered for the error: the *declaration style*
        # is what's gone, so False trips the same migration message.
        with pytest.raises(TypeError, match="capabilities"):
            generator_capabilities(LegacyOff())

    def test_capabilities_declaration_beats_use_feedback_attribute(self):
        # A generator that declares capabilities may keep a use_feedback
        # attribute for its own bookkeeping (LLMProgramGenerator does) —
        # the declaration wins and no error is raised.
        class Declared:
            name = "declared"
            use_feedback = True
            capabilities = GeneratorCapabilities(feedback=True, shardable=True)

        assert generator_capabilities(Declared()).feedback

    def test_undeclared_generator_defaults_to_feedback_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            caps = generator_capabilities(object())
        assert caps == GeneratorCapabilities(feedback=False, shardable=True)


class TestBind:
    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_whole_stream_bind_is_identity(self, approach):
        # bind(0, 1, *) must keep the constructor-seeded stream: classic
        # sharding replays it on every shard, and every pre-lifecycle
        # checkpoint was produced by exactly that stream.
        unbound = _generator(approach)
        bound = _generator(approach)
        bound.bind(0, 1, 999)  # rng_seed ignored for the identity bind
        assert _programs(bound, 5) == _programs(unbound, 5)

    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_island_bind_rederives_the_stream(self, approach):
        # Two instances constructed from *different* seeds converge once
        # bound to the same partition: the island stream depends only on
        # (rng_seed, k, n), never on which process constructed it.
        a, b = _generator(approach, seed=1), _generator(approach, seed=2)
        a.bind(1, 3, 42)
        b.bind(1, 3, 42)
        assert _programs(a, 5) == _programs(b, 5)

    def test_islands_of_one_partition_diverge(self):
        a, b = _generator("llm4fp"), _generator("llm4fp")
        a.bind(0, 2, 42)
        b.bind(1, 2, 42)
        assert _programs(a, 5) != _programs(b, 5)

    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    @pytest.mark.parametrize("partition", [(-1, 2), (2, 2), (0, 0)])
    def test_invalid_partition_rejected(self, approach, partition):
        with pytest.raises(ValueError, match="partition"):
            _generator(approach).bind(*partition, 42)

    def test_bind_generator_tolerates_pre_lifecycle_generators(self):
        bind_generator(object(), 0, 1, 42)  # no bind attr: a no-op


class TestStateRoundTrip:
    @pytest.mark.parametrize("approach", ALL_APPROACHES)
    def test_export_import_resumes_the_stream(self, approach):
        # Drive A halfway (observing a trigger so feedback state is
        # non-trivial), snapshot, restore into a fresh same-seed B: both
        # must continue with identical programs.
        a = _generator(approach)
        for i in range(4):
            program = a.generate()
            a.observe(_triggering_outcome(program, index=i))
        state = json.loads(json.dumps(a.export_state()))  # must survive JSON
        b = _generator(approach)
        b.import_state(state)
        assert _programs(b, 4) == _programs(a, 4)

    def test_island_state_round_trips_fitness_and_migrants(self):
        a = _generator("llm4fp")
        a.bind(0, 2, 42)
        for i in range(6):
            program = a.generate()
            a.observe(_triggering_outcome(program, index=i))
        state = json.loads(json.dumps(a.export_state()))
        b = _generator("llm4fp", seed=123)  # constructor seed is irrelevant
        b.bind(0, 2, 42)
        b.import_state(state)
        assert b.export_migrants(3) == a.export_migrants(3)
        assert _programs(b, 4) == _programs(a, 4)


class TestObserveOutcome:
    def test_observe_hook_preferred(self):
        calls = []

        class Gen:
            def observe(self, outcome):
                calls.append(outcome)

        program = GeneratedProgram(source="s", inputs=())
        outcome = _triggering_outcome(program)
        observe_outcome(Gen(), outcome)
        assert calls == [outcome]

    def test_legacy_notify_success_fallback(self):
        calls = []

        class Legacy:
            def notify_success(self, program):
                calls.append(program)

        program = GeneratedProgram(source="s", inputs=())
        observe_outcome(Legacy(), _triggering_outcome(program))
        assert calls == [program]
        # non-triggering outcomes never reach the legacy hook
        quiet = ProgramOutcome(index=1, program=program, triggered=False)
        observe_outcome(Legacy(), quiet)
        assert calls == [program]
