"""Sharded table runs: classically shardable approaches run, the rest
are skipped with a per-approach note instead of failing the whole
``llm4fp tables`` invocation."""

from repro.experiments.approaches import APPROACHES
from repro.experiments.runner import ExperimentContext
from repro.experiments.settings import ExperimentSettings


def _ctx(**overrides):
    defaults = dict(budget=4, shard="0/2")
    defaults.update(overrides)
    return ExperimentContext(ExperimentSettings(**defaults))


class TestSkipReason:
    def test_unsharded_runs_everything(self):
        ctx = _ctx(shard=None)
        assert [ctx.skip_reason(a) for a in APPROACHES] == [None] * 4
        assert ctx.runnable(APPROACHES) == list(APPROACHES)
        assert ctx.skip_notes(APPROACHES) == []

    def test_sharded_skips_only_the_feedback_approach(self):
        ctx = _ctx()
        assert ctx.runnable(APPROACHES) == [
            "varity", "direct-prompt", "grammar-guided"
        ]
        reason = ctx.skip_reason("llm4fp")
        assert "feedback" in reason and "island" in reason
        notes = ctx.skip_notes(APPROACHES)
        assert notes == [f"note: skipped llm4fp on this shard — {reason}"]

    def test_sharded_islands_with_checkpoints_runs_everything(self, tmp_path):
        ctx = _ctx(islands=2, checkpoint_dir=str(tmp_path))
        assert ctx.runnable(APPROACHES) == list(APPROACHES)

    def test_sharded_islands_without_checkpoints_skips_all(self):
        ctx = _ctx(islands=2)
        reason = ctx.skip_reason("varity")
        assert "--checkpoint-dir" in reason
        assert ctx.runnable(APPROACHES) == []


class TestShardedTableOutput:
    def test_table2_renders_with_a_skip_note(self):
        from repro.experiments.table2 import run

        out = run(_ctx())
        assert "varity" in out and "grammar-guided" in out
        assert "note: skipped llm4fp on this shard" in out

    def test_table3_reduces_to_its_skip_note(self):
        from repro.experiments.table3 import run

        out = run(_ctx())
        assert out.startswith("note: skipped table3 on this shard")
        assert "feedback" in out

    def test_figure3_renders_the_remaining_series(self):
        from repro.experiments.figure3 import run

        out = run(_ctx())
        assert "Figure 3" in out
        assert "note: skipped llm4fp on this shard" in out
