"""ExperimentSettings environment knobs and the ENV_KNOBS registry.

``ENV_KNOBS`` is the single source of truth that ``docs/configuration.md``
doctests against and ``scripts/check_docs.py`` greps the docs for — a
settings field added without registering its knob fails here first.
"""

import dataclasses

import pytest

from repro.experiments.settings import ENV_KNOBS, ExperimentSettings


class TestEnvKnobsRegistry:
    def test_every_field_is_registered_except_levels(self):
        fields = {f.name for f in dataclasses.fields(ExperimentSettings)}
        assert fields - set(ENV_KNOBS) == {"levels"}, (
            "new ExperimentSettings field without an ENV_KNOBS entry "
            "(register it and document it in docs/configuration.md)"
        )
        assert set(ENV_KNOBS) <= fields, "ENV_KNOBS names a missing field"

    def test_knob_names_follow_the_repro_prefix(self):
        assert all(env.startswith("REPRO_") for env in ENV_KNOBS.values())
        assert len(set(ENV_KNOBS.values())) == len(ENV_KNOBS)  # no aliases


class TestFleetKnobs:
    def test_defaults(self):
        s = ExperimentSettings()
        assert s.fleet_workers == 2
        assert s.fleet_heartbeat == 2.0
        assert s.fleet_stall_timeout == 300.0
        assert s.fleet_max_retries == 2

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_WORKERS", "8")
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "0.5")
        monkeypatch.setenv("REPRO_FLEET_STALL", "45")
        monkeypatch.setenv("REPRO_FLEET_RETRIES", "0")
        s = ExperimentSettings()
        assert s.fleet_workers == 8
        assert s.fleet_heartbeat == 0.5
        assert s.fleet_stall_timeout == 45.0
        assert s.fleet_max_retries == 0

    def test_malformed_environment_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HEARTBEAT", "fast")
        with pytest.raises(ValueError, match="REPRO_FLEET_HEARTBEAT"):
            ExperimentSettings()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(fleet_workers=0),
            dict(fleet_heartbeat=0),
            dict(fleet_stall_timeout=-1),
            dict(fleet_max_retries=-1),
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentSettings(**kwargs)


class TestCorpusKnob:
    def test_default_is_no_corpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORPUS_PATH", raising=False)
        assert ExperimentSettings().corpus_path is None

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_PATH", "/data/corpus.jsonl")
        assert ExperimentSettings().corpus_path == "/data/corpus.jsonl"

    def test_empty_string_means_off(self, monkeypatch):
        # unsetting the knob with REPRO_CORPUS_PATH="" must not leave a
        # truthy empty path that every campaign then tries to open
        monkeypatch.setenv("REPRO_CORPUS_PATH", "")
        assert ExperimentSettings().corpus_path is None
