"""Bit-pattern conversions and the paper's hex encoding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.bits import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    double_to_hex,
    hex_to_double,
    single_to_bits,
    single_to_hex,
)


class TestDoubleBits:
    def test_zero(self):
        assert double_to_bits(0.0) == 0
        assert double_to_bits(-0.0) == 1 << 63

    def test_one(self):
        assert double_to_bits(1.0) == 0x3FF0000000000000

    def test_infinities(self):
        assert double_to_bits(math.inf) == 0x7FF0000000000000
        assert double_to_bits(-math.inf) == 0xFFF0000000000000

    def test_nan_is_nan_pattern(self):
        bits = double_to_bits(math.nan)
        assert (bits >> 52) & 0x7FF == 0x7FF
        assert bits & ((1 << 52) - 1) != 0

    def test_roundtrip_smallest_subnormal(self):
        assert bits_to_double(1) == 5e-324

    def test_bits_range_check(self):
        with pytest.raises(ValueError):
            bits_to_double(1 << 64)
        with pytest.raises(ValueError):
            bits_to_double(-1)

    @given(st.floats(allow_nan=False))
    def test_roundtrip_random(self, x):
        assert bits_to_double(double_to_bits(x)) == x

    @given(st.floats(allow_nan=False))
    def test_sign_bit(self, x):
        assert bool(double_to_bits(x) >> 63) == (math.copysign(1.0, x) < 0)


class TestHexEncoding:
    def test_sixteen_chars(self):
        assert len(double_to_hex(3.14)) == 16

    def test_lowercase(self):
        s = double_to_hex(-1.5e300)
        assert s == s.lower()

    def test_known_value(self):
        assert double_to_hex(1.0) == "3ff0000000000000"

    def test_hex_roundtrip_nan_payload(self):
        s = double_to_hex(math.nan)
        assert math.isnan(hex_to_double(s))

    def test_hex_to_double_rejects_short(self):
        with pytest.raises(ValueError):
            hex_to_double("3ff")

    @given(st.floats(allow_nan=False))
    def test_roundtrip(self, x):
        assert hex_to_double(double_to_hex(x)) == x

    def test_distinct_values_distinct_hex(self):
        # The entire differential-testing comparison rests on this.
        assert double_to_hex(0.1 + 0.2) != double_to_hex(0.3)


class TestSingleBits:
    def test_one(self):
        assert single_to_bits(1.0) == 0x3F800000

    def test_hex_width(self):
        assert len(single_to_hex(2.5)) == 8

    def test_range_check(self):
        with pytest.raises(ValueError):
            bits_to_single(1 << 32)

    @given(st.floats(width=32, allow_nan=False))
    def test_roundtrip_binary32(self, x):
        assert bits_to_single(single_to_bits(x)) == x
