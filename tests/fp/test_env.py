"""FPEnvironment semantics: per-op precision, FTZ, approximate units."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import CudaLibm, HostLibm
from repro.fp.ulp import ulp_distance

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestDoubleArithmetic:
    def setup_method(self):
        self.env = FPEnvironment()

    def test_basic_ops(self):
        assert self.env.add(1.5, 2.25) == 3.75
        assert self.env.sub(1.0, 0.25) == 0.75
        assert self.env.mul(3.0, 4.0) == 12.0
        assert self.env.div(1.0, 8.0) == 0.125

    def test_div_by_zero_is_inf(self):
        assert self.env.div(1.0, 0.0) == math.inf
        assert self.env.div(-1.0, 0.0) == -math.inf

    def test_zero_div_zero_is_nan(self):
        assert math.isnan(self.env.div(0.0, 0.0))

    def test_overflow_to_inf(self):
        assert self.env.mul(1e308, 1e308) == math.inf

    def test_neg(self):
        assert self.env.neg(2.0) == -2.0
        assert math.copysign(1.0, self.env.neg(0.0)) == -1.0

    def test_fma_single_rounding(self):
        a = 1.0 + 2.0**-30
        assert self.env.fma(a, a, -1.0) != self.env.add(self.env.mul(a, a), -1.0)

    @given(finite, finite)
    @settings(max_examples=200)
    def test_matches_native_double(self, a, b):
        assert self.env.add(a, b) == a + b or (
            math.isnan(self.env.add(a, b)) and math.isnan(a + b)
        )


class TestSingleArithmetic:
    def setup_method(self):
        self.env = FPEnvironment()

    def test_rounding_to_single(self):
        # 1 + 2^-25 is not representable in binary32.
        assert self.env.add(1.0, 2.0**-25, "float") == 1.0

    def test_single_overflow(self):
        assert self.env.mul(1e38, 10.0, "float") == math.inf

    def test_canon(self):
        assert self.env.canon(0.1, "float") == float.fromhex("0x1.99999a0000000p-4")

    def test_fma_single(self):
        assert self.env.fma(3.0, 5.0, 7.0, "float") == 22.0

    def test_single_div(self):
        r = self.env.div(1.0, 3.0, "float")
        assert r == float.fromhex("0x1.5555560000000p-2")


class TestFtz:
    def test_subnormal_result_flushed(self):
        env = FPEnvironment(ftz=True)
        r = env.mul(1e-308, 1e-10)  # subnormal product
        assert r == 0.0

    def test_subnormal_input_flushed(self):
        env = FPEnvironment(ftz=True)
        assert env.add(5e-324, 0.0) == 0.0

    def test_sign_preserved(self):
        env = FPEnvironment(ftz=True)
        r = env.mul(-1e-308, 1e-10)
        assert r == 0.0 and math.copysign(1.0, r) == -1.0

    def test_normals_untouched(self):
        env = FPEnvironment(ftz=True)
        assert env.add(1.0, 2.0) == 3.0

    def test_no_ftz_keeps_subnormal(self):
        env = FPEnvironment(ftz=False)
        assert env.mul(1e-308, 1e-10) != 0.0

    def test_single_ftz_threshold(self):
        env = FPEnvironment(ftz=True)
        # subnormal in binary32, normal in binary64
        assert env.add(1e-40, 0.0, "float") == 0.0
        assert env.add(1e-40, 0.0, "double") == 1e-40


class TestApproxUnits:
    def test_approx_div_within_two_ulp(self):
        strict = FPEnvironment()
        approx = FPEnvironment(approx_div=True)
        worst, diffs = 0, 0
        for i in range(1, 300):
            a, b = 1.0 + i * 0.013, 3.0 + i * 0.007
            r1, r2 = strict.div(a, b), approx.div(a, b)
            if r1 != r2:
                diffs += 1
                worst = max(worst, ulp_distance(r1, r2))
        assert diffs > 30  # the approximation is visible
        assert worst <= 2  # ... but bounded like the hardware unit

    def test_approx_sqrt(self):
        strict = FPEnvironment()
        approx = FPEnvironment(approx_sqrt=True)
        diffs = sum(
            strict.call("sqrt", (1.0 + 0.1 * i,)) != approx.call("sqrt", (1.0 + 0.1 * i,))
            for i in range(200)
        )
        assert diffs > 20

    def test_approx_div_deterministic(self):
        env = FPEnvironment(approx_div=True)
        assert env.div(7.3, 1.9) == env.div(7.3, 1.9)


class TestLibmBinding:
    def test_host_vs_device_calls_differ_somewhere(self):
        host = FPEnvironment(libm=HostLibm())
        dev = FPEnvironment(libm=CudaLibm())
        diffs = sum(
            host.call("sin", (0.2 + 0.03 * i,)) != dev.call("sin", (0.2 + 0.03 * i,))
            for i in range(200)
        )
        assert diffs > 30

    def test_describe(self):
        env = FPEnvironment(libm=CudaLibm(), ftz=True, approx_div=True)
        s = env.describe()
        assert "cuda" in s and "ftz" in s and "approx-div" in s
