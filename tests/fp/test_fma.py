"""Correctness of the exact FMA against a Fraction-based oracle."""

import math
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import double_to_bits
from repro.fp.fma import fma, round_scaled_int
from repro.fp.formats import FP32
from repro.fp.ulp import next_down, next_up

finite = st.floats(allow_nan=False, allow_infinity=False)


def oracle_round(value: Fraction) -> float:
    """Round an exact rational (denominator a power of two) to binary64 by
    bisection on the double lattice — slow but unimpeachable."""
    if value == 0:
        return 0.0
    try:
        return float(value)  # correctly rounded per CPython (true for Fraction)
    except OverflowError:
        return math.inf if value > 0 else -math.inf


class TestRoundScaledInt:
    def test_zero(self):
        assert round_scaled_int(0, 0) == 0.0

    def test_small_ints_exact(self):
        for n in range(-100, 100):
            assert round_scaled_int(n, 0) == float(n)

    def test_powers_of_two(self):
        assert round_scaled_int(1, 100) == 2.0**100
        assert round_scaled_int(1, -100) == 2.0**-100

    def test_overflow_to_inf(self):
        assert round_scaled_int(1, 2000) == math.inf
        assert round_scaled_int(-1, 2000) == -math.inf

    def test_subnormal_rounding(self):
        # 1.5 * 2**-1074 is exactly between 1 and 2 subnormal steps:
        # ties-to-even picks the even significand (2 steps -> 2 * 5e-324).
        assert round_scaled_int(3, -1075) == 2 * 5e-324

    def test_underflow_to_zero(self):
        # 0.25 * 2**-1074 rounds to zero.
        assert round_scaled_int(1, -1077) == 0.0

    def test_ties_to_even(self):
        # 2**53 + 1 is exactly halfway between representable doubles.
        assert round_scaled_int(2**53 + 1, 0) == float(2**53)
        assert round_scaled_int(2**53 + 3, 0) == float(2**53 + 4)

    def test_fp32_precision(self):
        # 2**24 + 1 halfway in binary32 -> rounds to even 2**24.
        assert round_scaled_int(2**24 + 1, 0, FP32) == float(2**24)

    def test_fp32_overflow(self):
        assert round_scaled_int(1, 400, FP32) == math.inf

    @given(st.integers(min_value=-(2**200), max_value=2**200),
           st.integers(min_value=-300, max_value=300))
    @settings(max_examples=300)
    def test_against_fraction_oracle(self, n, e):
        expected = oracle_round(Fraction(n) * Fraction(2) ** e)
        assert round_scaled_int(n, e) == expected or (
            math.isinf(expected) and math.isinf(round_scaled_int(n, e))
        )


class TestFmaSpecials:
    def test_nan_propagates(self):
        assert math.isnan(fma(math.nan, 1.0, 1.0))
        assert math.isnan(fma(1.0, math.nan, 1.0))
        assert math.isnan(fma(1.0, 1.0, math.nan))

    def test_zero_times_inf(self):
        assert math.isnan(fma(0.0, math.inf, 1.0))
        assert math.isnan(fma(math.inf, 0.0, 5.0))

    def test_inf_minus_inf(self):
        assert math.isnan(fma(math.inf, 1.0, -math.inf))

    def test_inf_product_dominates(self):
        assert fma(math.inf, 2.0, -1e308) == math.inf
        assert fma(-math.inf, 2.0, 1e308) == -math.inf

    def test_c_inf(self):
        assert fma(1.0, 1.0, math.inf) == math.inf

    def test_zero_product_signed(self):
        assert math.copysign(1.0, fma(-0.0, 5.0, 0.0)) == 1.0
        assert math.copysign(1.0, fma(-0.0, 5.0, -0.0)) == -1.0

    def test_exact_cancellation_positive_zero(self):
        assert math.copysign(1.0, fma(1.0, 1.0, -1.0)) == 1.0


class TestFmaValues:
    def test_differs_from_two_step(self):
        # The canonical example: single vs double rounding must disagree
        # somewhere, else FMA contraction would never matter.
        a = 1.0 + 2.0**-30
        b = 1.0 + 2.0**-30
        assert fma(a, b, -1.0) == 2.0**-29 + 2.0**-60
        assert a * b - 1.0 != fma(a, b, -1.0)

    def test_exact_when_product_representable(self):
        assert fma(2.0, 3.0, 4.0) == 10.0
        assert fma(1.5, 2.0, 0.25) == 3.25

    def test_overflow(self):
        assert fma(1e308, 10.0, 0.0) == math.inf

    @given(finite, finite, finite)
    @settings(max_examples=300)
    def test_against_fraction_oracle(self, a, b, c):
        exact = Fraction(a) * Fraction(b) + Fraction(c)
        got = fma(a, b, c)
        expected = oracle_round(exact)
        if math.isinf(expected):
            assert math.isinf(got) and math.copysign(1.0, got) == math.copysign(
                1.0, expected
            )
        elif expected == 0.0 and exact != 0:
            assert got == 0.0
        else:
            assert double_to_bits(got) == double_to_bits(expected) or got == expected

    @given(finite, finite, finite)
    @settings(max_examples=200)
    def test_monotone_vs_exact(self, a, b, c):
        """The fused result never over/undershoots the exact value by more
        than half an ulp of itself (i.e. rounding is faithful)."""
        fused = fma(a, b, c)
        if math.isfinite(fused) and fused != 0.0:
            exact = Fraction(a) * Fraction(b) + Fraction(c)
            lo, hi = sorted((next_down(fused), next_up(fused)))
            # An infinite neighbour (fused at the ends of the finite range)
            # leaves that side unbounded.
            if math.isfinite(lo):
                assert Fraction(lo) <= exact
            if math.isfinite(hi):
                assert exact <= Fraction(hi)
