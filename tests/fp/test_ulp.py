"""Lattice walking and ulp distances used by the libm models."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fp.bits import bits_to_double
from repro.fp.ulp import next_down, next_up, offset_by_ulps, ulp_distance

finite = st.floats(allow_nan=False, allow_infinity=False)


class TestUlpDistance:
    def test_identical(self):
        assert ulp_distance(1.0, 1.0) == 0

    def test_adjacent(self):
        assert ulp_distance(1.0, math.nextafter(1.0, 2.0)) == 1

    def test_signed_zeros_one_apart(self):
        # Their hex encodings differ, so the comparison logic must see them
        # as distinct; we model that as distance 1.
        assert ulp_distance(0.0, -0.0) == 1

    def test_across_zero(self):
        a = bits_to_double(1)  # smallest positive subnormal
        assert ulp_distance(a, -a) == 2

    def test_nan_far_from_everything(self):
        assert ulp_distance(math.nan, 1.0) == 1 << 64

    def test_same_nan_payload_is_zero(self):
        assert ulp_distance(math.nan, math.nan) == 0

    def test_symmetry_example(self):
        assert ulp_distance(1.0, 2.0) == ulp_distance(2.0, 1.0)

    @given(finite, finite)
    def test_symmetry(self, a, b):
        assert ulp_distance(a, b) == ulp_distance(b, a)

    @given(finite)
    def test_next_up_is_one_ulp(self, x):
        up = next_up(x)
        if not math.isinf(up):
            assert 1 <= ulp_distance(x, up) <= 1 or x == 0.0


class TestOffset:
    def test_offset_zero_is_identity(self):
        assert offset_by_ulps(1.5, 0) == 1.5

    def test_offset_roundtrips(self):
        x = 3.141592653589793
        assert offset_by_ulps(offset_by_ulps(x, 7), -7) == x

    def test_saturates_to_inf(self):
        assert offset_by_ulps(1.7976931348623157e308, 5) == math.inf
        assert offset_by_ulps(-1.7976931348623157e308, -5) == -math.inf

    def test_inf_fixed_point(self):
        assert offset_by_ulps(math.inf, 3) == math.inf

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            offset_by_ulps(math.nan, 1)

    @given(finite, st.integers(min_value=-100, max_value=100))
    def test_distance_consistent(self, x, n):
        y = offset_by_ulps(x, n)
        if not math.isinf(y) and not (x == 0.0 and n != 0):
            assert ulp_distance(x, y) <= abs(n)


class TestNeighbours:
    def test_next_up_down_inverse(self):
        x = 2.718281828459045
        assert next_down(next_up(x)) == x

    def test_next_up_from_zero(self):
        assert next_up(0.0) == 5e-324

    def test_next_down_from_zero(self):
        assert next_down(0.0) == -5e-324

    def test_matches_math_nextafter(self):
        for x in (1.0, -1.0, 1e-308, 1e308, 0.5):
            assert next_up(x) == math.nextafter(x, math.inf)
            assert next_down(x) == math.nextafter(x, -math.inf)
