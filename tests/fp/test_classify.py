"""The paper's five-way result classification (RQ2, Section 3.3.1)."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.fp.classify import CLASS_ORDER, FPClass, classify_double


class TestClassify:
    def test_normal_is_real(self):
        assert classify_double(1.5) is FPClass.REAL

    def test_subnormal_is_real(self):
        # The paper counts subnormals in the Real class.
        assert classify_double(5e-324) is FPClass.REAL
        assert classify_double(-1e-310) is FPClass.REAL

    def test_signed_zeros_are_zero(self):
        assert classify_double(0.0) is FPClass.ZERO
        assert classify_double(-0.0) is FPClass.ZERO

    def test_infinities_are_signed(self):
        assert classify_double(math.inf) is FPClass.POS_INF
        assert classify_double(-math.inf) is FPClass.NEG_INF

    def test_nan(self):
        assert classify_double(math.nan) is FPClass.NAN
        assert classify_double(-math.nan) is FPClass.NAN

    def test_max_finite_is_real(self):
        assert classify_double(1.7976931348623157e308) is FPClass.REAL

    def test_class_order_covers_all(self):
        assert set(CLASS_ORDER) == set(FPClass)

    def test_str_labels_match_paper(self):
        assert str(FPClass.REAL) == "Real"
        assert str(FPClass.POS_INF) == "+Inf"
        assert str(FPClass.NEG_INF) == "-Inf"
        assert str(FPClass.NAN) == "NaN"
        assert str(FPClass.ZERO) == "Zero"

    @given(st.floats())
    def test_total_function(self, x):
        assert classify_double(x) in FPClass
