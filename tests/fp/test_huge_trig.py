"""Huge-argument trig decorrelation in the library models.

Past ``huge_trig_threshold``, each library's argument reduction returns its
own deterministic value — the mechanism behind Varity's large digit
differences and {Real, NaN}-type inconsistencies at every level (RQ2/RQ3).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.mathlib import (
    CorrectlyRoundedLibm,
    CudaLibm,
    FastCudaLibm,
    HostLibm,
    PerturbedLibm,
)

HUGE = 3.7e115


class TestThresholdBehaviour:
    def test_below_threshold_tracks_reference(self):
        host = HostLibm()
        cr = CorrectlyRoundedLibm()
        # Within 1 ulp of the correctly rounded value below the threshold.
        x = 12345.678
        got, ref = host.call("sin", (x,)), cr.call("sin", (x,))
        assert abs(got - ref) <= 2 * abs(ref) * 2**-52 + 1e-300

    def test_above_threshold_decorrelates_libraries(self):
        host, cuda = HostLibm(), CudaLibm()
        diffs = sum(
            host.call("sin", (HUGE * (1 + i),)) != cuda.call("sin", (HUGE * (1 + i),))
            for i in range(20)
        )
        assert diffs >= 18  # reductions agree on (almost) nothing

    def test_huge_deterministic(self):
        cuda = CudaLibm()
        assert cuda.call("cos", (HUGE,)) == cuda.call("cos", (HUGE,))

    def test_huge_sin_cos_bounded_or_nan(self):
        host = HostLibm()
        for i in range(50):
            v = host.call("sin", (HUGE * (1 + i),))
            assert math.isnan(v) or -1.0 <= v <= 1.0

    def test_huge_tan_can_exceed_unit(self):
        host = HostLibm()
        values = [host.call("tan", (HUGE * (1 + i),)) for i in range(200)]
        assert any(not math.isnan(v) and abs(v) > 1.0 for v in values)

    def test_nan_probability_ordering(self):
        """The CUDA model fails reduction more often than glibc's."""
        host, cuda = HostLibm(), CudaLibm()
        host_nans = sum(
            math.isnan(host.call("sin", (HUGE * (1 + i),))) for i in range(400)
        )
        cuda_nans = sum(
            math.isnan(cuda.call("sin", (HUGE * (1 + i),))) for i in range(400)
        )
        assert cuda_nans > host_nans

    def test_infinite_argument_still_nan(self):
        # C99: sin(inf) is NaN — the decorrelation only covers finite args.
        assert math.isnan(HostLibm().call("sin", (math.inf,)))

    def test_non_trig_unaffected(self):
        host = HostLibm()
        # exp of a huge argument overflows identically to the reference.
        assert host.call("exp", (1e9,)) == math.inf

    def test_nan_prob_validated(self):
        with pytest.raises(ValueError):
            PerturbedLibm("x", salt="s", max_ulps=1, perturb_prob=0.5,
                          huge_trig_nan_prob=1.5)

    @given(st.floats(min_value=1e9, max_value=1e300))
    @settings(max_examples=100)
    def test_huge_results_valid_class(self, x):
        for lib in (HostLibm(), CudaLibm(), FastCudaLibm()):
            v = lib.call("sin", (x,))
            assert math.isnan(v) or -1.0 <= v <= 1.0
