"""Math-library model contracts: determinism, accuracy bounds, decorrelation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.formats import FP32
from repro.fp.mathlib import (
    MATH_FUNCTIONS,
    CorrectlyRoundedLibm,
    CudaLibm,
    FastCudaLibm,
    FastHostLibm,
    HostLibm,
)
from repro.fp.ulp import ulp_distance

args_f = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestRegistry:
    def test_known_functions_present(self):
        for name in ("sin", "cos", "exp", "log", "sqrt", "pow", "atan2", "fmin"):
            assert name in MATH_FUNCTIONS

    def test_exact_flags(self):
        assert MATH_FUNCTIONS["sqrt"].exact
        assert MATH_FUNCTIONS["fabs"].exact
        assert not MATH_FUNCTIONS["sin"].exact
        assert not MATH_FUNCTIONS["pow"].exact

    def test_arities(self):
        assert MATH_FUNCTIONS["sin"].arity == 1
        assert MATH_FUNCTIONS["pow"].arity == 2
        assert MATH_FUNCTIONS["fmod"].arity == 2


class TestCorrectlyRounded:
    def test_matches_python_math(self):
        cr = CorrectlyRoundedLibm()
        assert cr.call("sin", (1.0,)) == math.sin(1.0)
        assert cr.call("exp", (2.5,)) == math.exp(2.5)

    def test_domain_errors_give_nan(self):
        cr = CorrectlyRoundedLibm()
        assert math.isnan(cr.call("log", (-1.0,)))
        assert math.isnan(cr.call("sqrt", (-4.0,)))
        assert math.isnan(cr.call("asin", (2.0,)))

    def test_overflow_gives_inf(self):
        cr = CorrectlyRoundedLibm()
        assert cr.call("exp", (1e4,)) == math.inf
        assert cr.call("cosh", (1e4,)) == math.inf

    def test_pow_edge_cases(self):
        cr = CorrectlyRoundedLibm()
        assert cr.call("pow", (0.0, 0.0)) == 1.0
        assert cr.call("pow", (2.0, 10.0)) == 1024.0

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            CorrectlyRoundedLibm().call("frobnicate", (1.0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(TypeError):
            CorrectlyRoundedLibm().call("sin", (1.0, 2.0))

    def test_fp32_rounds_to_single(self):
        cr = CorrectlyRoundedLibm()
        r = cr.call("sin", (1.0,), FP32)
        import struct

        assert struct.unpack("<f", struct.pack("<f", r))[0] == r


class TestPerturbedContracts:
    def test_deterministic(self):
        lib = HostLibm()
        assert lib.call("sin", (1.2345,)) == lib.call("sin", (1.2345,))

    def test_fresh_instances_agree(self):
        assert HostLibm().call("log", (7.7,)) == HostLibm().call("log", (7.7,))

    def test_exact_functions_never_perturbed(self):
        cr = CorrectlyRoundedLibm()
        for lib in (HostLibm(), CudaLibm(), FastCudaLibm()):
            for x in (2.0, 3.7, 123.456, 1e-20):
                assert lib.call("sqrt", (x,)) == cr.call("sqrt", (x,))
                assert lib.call("fabs", (-x,)) == x

    def test_trivial_points_exact(self):
        for lib in (HostLibm(), CudaLibm()):
            assert lib.call("sin", (0.0,)) == 0.0
            assert lib.call("exp", (0.0,)) == 1.0
            assert lib.call("cos", (0.0,)) == 1.0
            assert lib.call("pow", (2.0, 10.0)) == 1024.0

    @given(args_f)
    @settings(max_examples=200)
    def test_host_within_one_ulp(self, x):
        cr = CorrectlyRoundedLibm().call("sin", (x,))
        host = HostLibm().call("sin", (x,))
        if math.isfinite(cr) and math.isfinite(host):
            assert ulp_distance(cr, host) <= 1

    @given(args_f)
    @settings(max_examples=200)
    def test_cuda_within_two_ulp(self, x):
        cr = CorrectlyRoundedLibm().call("exp", (x,))
        dev = CudaLibm().call("exp", (x,))
        if math.isfinite(cr) and math.isfinite(dev):
            assert ulp_distance(cr, dev) <= 2

    def test_host_and_cuda_decorrelate(self):
        """The libraries must disagree on a healthy fraction of inputs —
        this is the host-device inconsistency engine."""
        host, dev = HostLibm(), CudaLibm()
        diffs = sum(
            host.call("sin", (0.1 + 0.01 * i,)) != dev.call("sin", (0.1 + 0.01 * i,))
            for i in range(200)
        )
        assert 40 <= diffs <= 190

    def test_host_self_consistent_across_functions(self):
        """Two *host* compilers linking the same libm agree everywhere."""
        a, b = HostLibm(), HostLibm()
        for i in range(100):
            x = 0.05 + 0.037 * i
            for fn in ("sin", "log", "exp", "tanh"):
                assert a.call(fn, (x,)) == b.call(fn, (x,))

    def test_fast_libms_coarser(self):
        cr = CorrectlyRoundedLibm()
        fast = FastCudaLibm()
        worst = 0
        for i in range(200):
            x = 0.3 + 0.05 * i
            r, f = cr.call("sin", (x,)), fast.call("sin", (x,))
            if math.isfinite(r) and math.isfinite(f):
                worst = max(worst, ulp_distance(r, f))
        assert worst > 2  # visibly worse than the precise libraries
        assert worst <= 8

    def test_nan_inf_zero_never_perturbed(self):
        for lib in (HostLibm(), CudaLibm(), FastHostLibm()):
            assert math.isnan(lib.call("log", (-5.0,)))
            assert lib.call("exp", (1e5,)) == math.inf
            assert lib.call("atan", (0.0,)) == 0.0
