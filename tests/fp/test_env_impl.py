"""The specialized impls must be bit-identical to the generic methods.

``FPEnvironment.op_impl``/``neg_impl``/``fma_impl``/``call_impl``/
``canon_impl`` are the tape executor's fast paths; any bit divergence from
the numpy-backed methods (NaN sign or payload, signed zeros, subnormal
flushing order, approximate-unit perturbation keying) would silently break
tree-vs-tape equivalence.  This file hammers every impl against its method
across every environment axis with directed specials plus a deterministic
random sweep, comparing raw IEEE bits.
"""

import itertools
import math
import random
import struct

import pytest

from repro.fp.bits import double_to_bits
from repro.fp.env import FPEnvironment
from repro.fp.mathlib import MATH_FUNCTIONS, CudaLibm, HostLibm

_NAN_PAYLOAD = struct.unpack("<d", b"\x39\x05\x00\x00\x00\x00\xf0\x7f")[0]
_NEG_NAN = struct.unpack("<d", b"\x00\x00\x00\x00\x00\x00\xf8\xff")[0]

#: Directed specials covering every branch of the fast paths: signed
#: zeros/infs, quiet NaNs of both signs, payloads, f32/f64 subnormals and
#: normal-range boundaries, f32 overflow and rounding-tie neighborhoods.
SPECIALS = [
    0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 3.0, 1.5,
    math.inf, -math.inf, math.nan, -math.nan, _NAN_PAYLOAD, _NEG_NAN,
    5e-324, -5e-324, 2.2250738585072014e-308, -2.2250738585072014e-308,
    1.1754943508222875e-38, -1.1754943508222875e-38,  # f32 min normal
    1e-39, -1e-39, 1e-45, -1e-45,  # f32 subnormal range (as doubles)
    3.4028234663852886e38, -3.4028234663852886e38,  # f32 max
    3.5e38, -3.5e38, 1.8e308, -1.8e308, 1e308,
    1.0 + 2.0**-25, 1.0 + 2.0**-24,  # f32 rounding ties
    1.0000000000000002, 0.1, -0.1, math.pi, 1e-8, 123456.789,
]


def _rand_doubles(seed: int, n: int) -> list[float]:
    rng = random.Random(seed)
    out = []
    while len(out) < n:
        bits = rng.getrandbits(64)
        out.append(struct.unpack("<d", bits.to_bytes(8, "little"))[0])
    return out


def _bits(x: float) -> int:
    return double_to_bits(x)


def _envs() -> list[FPEnvironment]:
    envs = []
    for ftz, approx_div, approx_sqrt in itertools.product((False, True), repeat=3):
        envs.append(
            FPEnvironment(ftz=ftz, approx_div=approx_div, approx_sqrt=approx_sqrt)
        )
    envs.append(FPEnvironment(libm=HostLibm()))
    envs.append(FPEnvironment(libm=CudaLibm(), ftz=True, approx_div=True))
    return envs


def _pairs() -> list[tuple[float, float]]:
    values = SPECIALS + _rand_doubles(20260808, 120)
    rng = random.Random(7)
    pairs = [(a, b) for a in SPECIALS for b in SPECIALS]
    pairs += [(rng.choice(values), rng.choice(values)) for _ in range(600)]
    return pairs


@pytest.mark.parametrize("env", _envs(), ids=lambda e: e.describe())
@pytest.mark.parametrize("ty", ["double", "float"])
class TestImplBitIdentity:
    def test_binary_ops(self, env, ty):
        methods = {"+": env.add, "-": env.sub, "*": env.mul, "/": env.div}
        for op, method in methods.items():
            impl = env.op_impl(op, ty)
            for a, b in _pairs():
                assert _bits(impl(a, b)) == _bits(method(a, b, ty)), (op, a, b)

    def test_neg(self, env, ty):
        impl = env.neg_impl(ty)
        for v in SPECIALS + _rand_doubles(3, 200):
            assert _bits(impl(v)) == _bits(env.neg(v, ty)), v

    def test_fma(self, env, ty):
        impl = env.fma_impl(ty)
        values = SPECIALS + _rand_doubles(11, 40)
        rng = random.Random(13)
        triples = [(rng.choice(values), rng.choice(values), rng.choice(values))
                   for _ in range(400)]
        triples += [(1.0 + 2.0**-30, 1.0 + 2.0**-30, -1.0), (0.0, math.inf, 1.0)]
        for a, b, c in triples:
            assert _bits(impl(a, b, c)) == _bits(env.fma(a, b, c, ty)), (a, b, c)

    def test_calls(self, env, ty):
        def outcome(fn, *call_args):
            # mathlib's FP32 rounding overflows on finite doubles beyond
            # f32 range; the impl must surface exactly what the method does.
            try:
                return _bits(fn(*call_args))
            except OverflowError:
                return "overflow"

        values = SPECIALS + _rand_doubles(17, 60)
        rng = random.Random(19)
        for name, spec in sorted(MATH_FUNCTIONS.items()):
            impl = env.call_impl(name, ty)
            for _ in range(40):
                args = tuple(rng.choice(values) for _ in range(spec.arity))
                assert outcome(impl, args) == outcome(env.call, name, args, ty), (
                    name, args,
                )

    def test_canon(self, env, ty):
        impl = env.canon_impl(ty)
        for v in SPECIALS + _rand_doubles(23, 400):
            assert _bits(impl(v)) == _bits(env.canon(v, ty)), v


def test_impls_are_plain_callables():
    """Impl lookups happen at compile time; calls must not touch numpy."""
    env = FPEnvironment()
    add = env.op_impl("+", "double")
    assert add(1.5, 2.25) == 3.75
    assert type(add(0.1, 0.2)) is float
    assert type(env.op_impl("/", "float")(1.0, 3.0)) is float
