"""Bisector: pass attribution, environment deltas, determinism."""

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.errors import TriageError
from repro.toolchains import (
    ClangCompiler,
    GccCompiler,
    NvccCompiler,
    OptLevel,
    default_compilers,
)
from repro.triage import (
    bisect_cell,
    bisect_signature,
    distilled_trigger,
    signatures_of,
)

#: Host-host divergence: clang's front end folds sin(1.01) with the
#: correctly-rounded model at every level, gcc calls glibc at run time,
#: and the two values differ by an ulp at this point.
FOLD_TRIGGER = """
#include <stdio.h>
#include <math.h>
void compute(double x) {
  double k = sin(1.01);
  printf("%.17g\\n", k + x);
}
int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }
"""

#: Pure environment divergence: no pipeline touches sin(x) at O0_nofma,
#: but glibc and the CUDA Math Library round 2.37 differently.
LIBM_TRIGGER = """
#include <stdio.h>
#include <math.h>
void compute(double x) {
  printf("%.17g\\n", sin(x));
}
int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }
"""


@pytest.fixture(scope="module")
def compilers():
    return default_compilers()


def test_distilled_trigger_names_fma_contraction(compilers):
    """The acceptance scenario: the distilled trigger's host-vs-device
    divergence is pinned on nvcc's FMA contraction, with the libm swap as
    the first observable environment delta."""
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = next(
        s
        for s in signatures_of(outcome)
        if s.pair == ("gcc", "nvcc") and s.level is OptLevel.O0
    )
    result = bisect_signature(program.source, program.inputs, sig, compilers)
    assert result.responsible_pass is not None
    assert result.responsible_pass.name == "fma-contract"
    assert result.responsible_pass.compiler == "nvcc"
    assert result.responsible == "nvcc:fma-contract"
    assert result.env_delta is not None
    assert result.env_delta.field == "libm"
    assert result.env_delta.label() == "libm: glibc -> cuda"
    # The replay trace records the flip at nvcc's pass, not before it.
    assert any("fma-contract" in line and "DIVERGES" in line for line in result.trace)


def test_host_pair_divergence_names_constant_fold():
    result = bisect_cell(
        FOLD_TRIGGER, (0.25,), GccCompiler(), ClangCompiler(), OptLevel.O0
    )
    assert result.responsible == "clang:constant-fold"
    # Same environment on both sides: no delta to report.
    assert result.env_deltas == ()
    assert result.env_delta is None


def test_environment_only_divergence(compilers):
    """With empty pipelines on both sides (O0_nofma) the bisector must
    blame the environment, and name libm as the delta that flips it."""
    result = bisect_cell(
        LIBM_TRIGGER, (2.37,), GccCompiler(), NvccCompiler(), OptLevel.O0_NOFMA
    )
    assert result.responsible_pass is None
    assert result.env_delta is not None
    assert result.env_delta.field == "libm"
    assert result.responsible == "environment(libm)"


def test_bisection_is_deterministic(compilers):
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = signatures_of(outcome)[0]
    first = bisect_signature(program.source, program.inputs, sig, compilers)
    second = bisect_signature(program.source, program.inputs, sig, compilers)
    assert first == second


def test_unknown_compiler_is_rejected(compilers):
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = signatures_of(outcome)[0]
    hosts_only = [GccCompiler(), ClangCompiler()]
    with pytest.raises(TriageError):
        bisect_signature(program.source, program.inputs, sig, hosts_only)


def test_frontend_failure_is_rejected():
    with pytest.raises(TriageError):
        bisect_cell(
            "not a program", (1.0,), GccCompiler(), NvccCompiler(), OptLevel.O0
        )
