"""Bisector: pass attribution, environment deltas, determinism."""

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.errors import TriageError
from repro.toolchains import (
    ClangCompiler,
    GccCompiler,
    NvccCompiler,
    OptLevel,
    default_compilers,
)
from repro.triage import (
    bisect_cell,
    bisect_signature,
    distilled_trigger,
    signatures_of,
)

#: Host-host divergence: clang's front end folds sin(1.01) with the
#: correctly-rounded model at every level, gcc calls glibc at run time,
#: and the two values differ by an ulp at this point.
FOLD_TRIGGER = """
#include <stdio.h>
#include <math.h>
void compute(double x) {
  double k = sin(1.01);
  printf("%.17g\\n", k + x);
}
int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }
"""

#: Pure environment divergence: no pipeline touches sin(x) at O0_nofma,
#: but glibc and the CUDA Math Library round 2.37 differently.
LIBM_TRIGGER = """
#include <stdio.h>
#include <math.h>
void compute(double x) {
  printf("%.17g\\n", sin(x));
}
int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }
"""


@pytest.fixture(scope="module")
def compilers():
    return default_compilers()


def test_distilled_trigger_names_fma_contraction(compilers):
    """The acceptance scenario: the distilled trigger's host-vs-device
    divergence is pinned on nvcc's FMA contraction, with the libm swap as
    the first observable environment delta."""
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = next(
        s
        for s in signatures_of(outcome)
        if s.pair == ("gcc", "nvcc") and s.level is OptLevel.O0
    )
    result = bisect_signature(program.source, program.inputs, sig, compilers)
    assert result.responsible_pass is not None
    assert result.responsible_pass.name == "fma-contract"
    assert result.responsible_pass.compiler == "nvcc"
    assert result.responsible == "nvcc:fma-contract"
    assert result.env_delta is not None
    assert result.env_delta.field == "libm"
    assert result.env_delta.label() == "libm: glibc -> cuda"
    # The replay trace records the flip at nvcc's pass, not before it.
    assert any("fma-contract" in line and "DIVERGES" in line for line in result.trace)


def test_host_pair_divergence_names_constant_fold():
    result = bisect_cell(
        FOLD_TRIGGER, (0.25,), GccCompiler(), ClangCompiler(), OptLevel.O0
    )
    assert result.responsible == "clang:constant-fold"
    # Same environment on both sides: no delta to report.
    assert result.env_deltas == ()
    assert result.env_delta is None


def test_environment_only_divergence(compilers):
    """With empty pipelines on both sides (O0_nofma) the bisector must
    blame the environment, and name libm as the delta that flips it."""
    result = bisect_cell(
        LIBM_TRIGGER, (2.37,), GccCompiler(), NvccCompiler(), OptLevel.O0_NOFMA
    )
    assert result.responsible_pass is None
    assert result.env_delta is not None
    assert result.env_delta.field == "libm"
    assert result.responsible == "environment(libm)"


def test_bisection_is_deterministic(compilers):
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = signatures_of(outcome)[0]
    first = bisect_signature(program.source, program.inputs, sig, compilers)
    second = bisect_signature(program.source, program.inputs, sig, compilers)
    assert first == second


def test_unknown_compiler_is_rejected(compilers):
    program = distilled_trigger()
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    outcome = engine.test_program(0, program)
    sig = signatures_of(outcome)[0]
    hosts_only = [GccCompiler(), ClangCompiler()]
    with pytest.raises(TriageError):
        bisect_signature(program.source, program.inputs, sig, hosts_only)


def test_frontend_failure_is_rejected():
    with pytest.raises(TriageError):
        bisect_cell(
            "not a program", (1.0,), GccCompiler(), NvccCompiler(), OptLevel.O0
        )


# -- the vectorization tier ---------------------------------------------------

#: A dot-product reduction over cancellation-heavy values: gcc's adjacent
#: and clang's ladder lane reductions round differently at O2/O3, so the
#: host pair diverges with equal environments — a vector-reduction kind.
VECTOR_TRIGGER = """
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += a[i] * s + sin(s + i);
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[16] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                     atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8]),
                     atof(argv[9]), atof(argv[10]), atof(argv[11]), atof(argv[12]),
                     atof(argv[13]), atof(argv[14]), atof(argv[15]), atof(argv[16])};
  compute(in_a, atof(argv[17]), atoi(argv[18]));
  return 0;
}
"""

VECTOR_INPUTS = (
    (
        -2.161244991344777, 16.744850325199423, -2140.123310536274,
        -667.4296376438043, 33.12432414736006, 8604.15565518937,
        4.366101377828139, -373427.6696042438, -13.557686496180793,
        -856.9062739358501, 2.8392700153319588, 46.56981918402771,
        6.836221364114393, 21.37550366737585, -134.8944261290064,
        294524.6182501556,
    ),
    4.192660422628809,
    16,
)


def _vector_outcome(compilers):
    from repro.generation.program import GeneratedProgram

    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    return engine.test_program(
        0, GeneratedProgram(source=VECTOR_TRIGGER, inputs=VECTOR_INPUTS)
    )


def test_vector_reduction_kind_reaches_signatures(compilers):
    outcome = _vector_outcome(compilers)
    assert outcome.triggered
    vec_sigs = [s for s in signatures_of(outcome) if s.kind == "vector-reduction"]
    assert vec_sigs, "host pair at O2/O3 should tag as vector-reduction"
    # the tag applies only where environments coincide (host-host cells)
    assert all(s.pair == ("gcc", "clang") for s in vec_sigs)


def test_bisection_attributes_vector_flip_to_vectorize(compilers):
    """The acceptance scenario: a vector-reduction flip is pinned on the
    vectorize pass with no change to the prefix-replay logic — and never
    on loop-unroll, whose prefix replays bit-identically."""
    outcome = _vector_outcome(compilers)
    sig = next(
        s for s in signatures_of(outcome) if s.kind == "vector-reduction"
    )
    result = bisect_signature(
        VECTOR_TRIGGER, VECTOR_INPUTS, sig, compilers
    )
    assert result.responsible_pass is not None
    assert result.responsible_pass.name == "vectorize"
    assert result.env_deltas == ()  # host pair: same environment
    trace = "\n".join(result.trace)
    assert "loop-unroll" in trace  # the unroll prefix was replayed...
    assert "+ gcc:loop-unroll            agree" in trace  # ...and is innocent


def test_reducer_preserves_vector_reduction_kind(compilers):
    """Delta debugging keeps the structural kind: every candidate the
    reducer accepts still diverges as vector-reduction in the same cell."""
    from repro.triage import reduce_program

    outcome = _vector_outcome(compilers)
    sig = next(
        s for s in signatures_of(outcome) if s.kind == "vector-reduction"
    )
    reduction = reduce_program(
        VECTOR_TRIGGER, VECTOR_INPUTS, sig, compilers, max_tests=200
    )
    assert reduction.reduced_nodes <= reduction.original_nodes
    # the reduced program still exhibits the same vector-reduction cell
    from repro.triage.oracle import PairOracle
    from repro.triage.oracle import compilers_by_name

    by_name = compilers_by_name(compilers)
    oracle = PairOracle(
        by_name[sig.compiler_a], by_name[sig.compiler_b], sig.level
    )
    assert oracle.matches(reduction.reduced_source, VECTOR_INPUTS, sig)


# -- the masked-lane (if-conversion) kind ---------------------------------------

#: A conditional reduction body: at O3 both hosts if-convert it to masked
#: select form and widen to 8 lanes, diverging only through their
#: horizontal reduction styles — a masked-lane kind.  At O2 neither host
#: if-converts, so the loop stays a scalar branch on both sides.
MASKED_TRIGGER = """
#include <stdio.h>
#include <stdlib.h>
#include <math.h>
void compute(double *a, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      comp += a[i];
    }
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[16] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                     atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8]),
                     atof(argv[9]), atof(argv[10]), atof(argv[11]), atof(argv[12]),
                     atof(argv[13]), atof(argv[14]), atof(argv[15]), atof(argv[16])};
  compute(in_a, atoi(argv[17]));
  return 0;
}
"""

#: the cancellation-heavy array alone; the guarded kernel takes no scalar
MASKED_INPUTS = (VECTOR_INPUTS[0], 16)


def _masked_outcome(compilers):
    from repro.generation.program import GeneratedProgram

    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    return engine.test_program(
        0, GeneratedProgram(source=MASKED_TRIGGER, inputs=MASKED_INPUTS)
    )


def test_masked_lane_kind_reaches_signatures(compilers):
    outcome = _masked_outcome(compilers)
    assert outcome.triggered
    masked = [s for s in signatures_of(outcome) if s.kind == "masked-lane"]
    assert masked, "host pair at O3 should tag as masked-lane"
    # only host-host cells have equal environments, and only O3/fast-math
    # if-convert on the hosts
    assert all(s.pair == ("gcc", "clang") for s in masked)
    assert all(
        s.level in (OptLevel.O3, OptLevel.O3_FASTMATH) for s in masked
    )


def test_bisection_attributes_masked_flip(compilers):
    """The acceptance scenario: the existing prefix-replay bisector pins a
    masked-lane flip on the widening (vectorize) or the conversion
    (if-convert) with no bisector changes — and never on loop-unroll."""
    outcome = _masked_outcome(compilers)
    sig = next(s for s in signatures_of(outcome) if s.kind == "masked-lane")
    result = bisect_signature(MASKED_TRIGGER, MASKED_INPUTS, sig, compilers)
    assert result.responsible_pass is not None
    assert result.responsible_pass.name in ("vectorize", "if-convert")
    assert result.env_deltas == ()  # host pair: same environment
    trace = "\n".join(result.trace)
    # the if-convert prefix was replayed on the walk to the flip
    assert "if-convert" in trace


def test_reducer_preserves_masked_lane_kind(compilers):
    from repro.triage import reduce_program
    from repro.triage.oracle import PairOracle, compilers_by_name

    outcome = _masked_outcome(compilers)
    sig = next(s for s in signatures_of(outcome) if s.kind == "masked-lane")
    reduction = reduce_program(
        MASKED_TRIGGER, MASKED_INPUTS, sig, compilers, max_tests=200
    )
    assert reduction.reduced_nodes <= reduction.original_nodes
    by_name = compilers_by_name(compilers)
    oracle = PairOracle(
        by_name[sig.compiler_a], by_name[sig.compiler_b], sig.level
    )
    assert oracle.matches(reduction.reduced_source, MASKED_INPUTS, sig)
