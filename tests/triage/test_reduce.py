"""Reducer: determinism, strict shrinkage, dead-code removal, validation."""

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.errors import TriageError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.toolchains import default_compilers
from repro.triage import (
    canonical_signature,
    distilled_trigger,
    reduce_program,
)
from repro.triage.oracle import PairOracle, compilers_by_name

#: The distilled trigger padded with statements irrelevant to the
#: divergence: dead arithmetic, a no-op branch, and an unused array.
PADDED = """
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double x, double coef, int steps) {
  double junk = x * 2.0;
  double comp = 0.0;
  double unused[4] = {1.0, 2.0, 3.0, 4.0};
  junk += unused[2];
  double k = sin(0.731);
  if (junk > 100.0) {
    comp = junk;
  }
  for (int i = 0; i < steps; ++i) {
    comp += sin(x + i) * coef + k;
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


@pytest.fixture(scope="module")
def compilers():
    return default_compilers()


@pytest.fixture(scope="module")
def distilled_target(compilers):
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    program = distilled_trigger()
    outcome = engine.test_program(0, program)
    assert outcome.triggered
    return program, canonical_signature(outcome)


def test_reduced_is_strictly_smaller_and_still_triggers(compilers, distilled_target):
    program, target = distilled_target
    result = reduce_program(program.source, program.inputs, target, compilers)
    assert result.shrunk
    assert result.reduced_nodes < result.original_nodes
    # The reduced program still exhibits the exact same inconsistency.
    by_name = compilers_by_name(compilers)
    oracle = PairOracle(
        by_name[target.compiler_a], by_name[target.compiler_b], target.level
    )
    assert oracle.matches(result.reduced_source, program.inputs, target)


def test_same_trigger_reduces_to_same_minimal_program(compilers, distilled_target):
    program, target = distilled_target
    first = reduce_program(program.source, program.inputs, target, compilers)
    second = reduce_program(program.source, program.inputs, target, compilers)
    assert first.reduced_source == second.reduced_source
    assert first.tests == second.tests
    assert first.accepted_edits == second.accepted_edits


def test_reduction_is_idempotent(compilers, distilled_target):
    program, target = distilled_target
    first = reduce_program(program.source, program.inputs, target, compilers)
    again = reduce_program(first.reduced_source, program.inputs, target, compilers)
    assert again.reduced_source == first.reduced_source


def test_dead_statements_are_removed(compilers):
    engine = CampaignEngine(compilers, CampaignConfig(budget=1))
    program = distilled_trigger()
    outcome = engine.test_program(
        0, type(program)(source=PADDED, inputs=program.inputs)
    )
    assert outcome.triggered
    target = canonical_signature(outcome)
    result = reduce_program(PADDED, program.inputs, target, compilers)
    assert "junk" not in result.reduced_source
    assert "unused" not in result.reduced_source
    assert "if (" not in result.reduced_source
    # The padded trigger reduces at least as far as the loop kernel.
    assert "sin" in result.reduced_source


def test_padded_and_plain_trigger_converge(compilers, distilled_target):
    """Padding with dead statements must not change the minimal program."""
    program, target = distilled_target
    plain = reduce_program(program.source, program.inputs, target, compilers)
    padded = reduce_program(PADDED, program.inputs, target, compilers)
    assert padded.reduced_source == plain.reduced_source


def test_non_trigger_is_rejected(compilers, distilled_target):
    _, target = distilled_target
    consistent = (
        "#include <stdio.h>\n"
        "void compute(double x, double coef, int steps) {\n"
        '  printf("%.17g\\n", x);\n'
        "}\n"
        "#include <stdlib.h>\n"
    )
    # (malformed source also goes through TriageError — via the oracle)
    with pytest.raises(TriageError):
        reduce_program(consistent, (0.37, 1.91, 23), target, compilers)


def test_test_budget_is_respected(compilers, distilled_target):
    program, target = distilled_target
    result = reduce_program(
        program.source, program.inputs, target, compilers, max_tests=5
    )
    assert result.tests <= 5
    # Budget-capped reduction still returns a valid (possibly unreduced)
    # program exhibiting the target.
    by_name = compilers_by_name(compilers)
    oracle = PairOracle(
        by_name[target.compiler_a], by_name[target.compiler_b], target.level
    )
    assert oracle.matches(result.reduced_source, program.inputs, target)


# -- the structural-edit substrate ------------------------------------------------


def test_ast_replace_at_roundtrip():
    unit = parse_program(PADDED)
    paths = [(path, node) for path, node in ast.walk_paths(unit)]
    assert paths[0] == ((), unit)
    for path, node in paths:
        assert ast.node_at(unit, path) is node
        # Replacing a node with itself rebuilds an equal tree.
        assert ast.replace_at(unit, path, node) == unit


def test_ast_node_count_matches_walk():
    unit = parse_program(PADDED)
    assert ast.node_count(unit) == len(list(ast.walk_paths(unit)))
    fn = unit.function("compute")
    assert ast.node_count(fn) < ast.node_count(unit)


class TestBackendParity:
    """Fanning ddmin rounds through an ExecutionBackend changes only the
    schedule: reduced source, accepted edits and tests spent stay
    byte-identical, in every exec mode."""

    def test_thread_backend_matches_serial(self, compilers, distilled_target):
        from repro.difftest.backend import create_backend

        program, target = distilled_target
        serial = reduce_program(
            PADDED, program.inputs, target, compilers
        )
        with create_backend("thread", 4) as backend:
            fanned = reduce_program(
                PADDED, program.inputs, target, compilers, backend=backend
            )
        assert fanned.reduced_source == serial.reduced_source
        assert fanned.tests == serial.tests
        assert fanned.accepted_edits == serial.accepted_edits

    @pytest.mark.parametrize("exec_mode", ["tape", "check"])
    def test_exec_modes_match_tree(self, compilers, distilled_target, exec_mode):
        from repro.difftest.backend import create_backend

        program, target = distilled_target
        serial = reduce_program(program.source, program.inputs, target, compilers)
        with create_backend("thread", 2) as backend:
            other = reduce_program(
                program.source,
                program.inputs,
                target,
                compilers,
                backend=backend,
                exec_mode=exec_mode,
            )
        assert other.reduced_source == serial.reduced_source
        assert other.tests == serial.tests

    def test_budget_charging_matches_serial(self, compilers, distilled_target):
        from repro.difftest.backend import create_backend

        program, target = distilled_target
        for budget in (1, 5, 17, 60):
            serial = reduce_program(
                PADDED, program.inputs, target, compilers, max_tests=budget
            )
            with create_backend("thread", 4) as backend:
                fanned = reduce_program(
                    PADDED,
                    program.inputs,
                    target,
                    compilers,
                    max_tests=budget,
                    backend=backend,
                )
            assert fanned.tests == serial.tests <= budget
            assert fanned.reduced_source == serial.reduced_source
