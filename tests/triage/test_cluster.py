"""Clusterer + report + CLI: dedup, ranking, and byte-level stability
across backends and shards."""

import pytest

from repro.cli import main as cli_main
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.report import CampaignReport
from repro.difftest.store import load_triggers, merge_shards
from repro.experiments.approaches import make_generator
from repro.toolchains import default_compilers
from repro.triage import triage_campaign, triage_results
from repro.utils.rng import SplittableRng

APPROACH = "grammar-guided"  # feedback-free: shardable
BUDGET = 30
SEED = 7


def _generator():
    return make_generator(APPROACH, SplittableRng(SEED, f"triage-{APPROACH}"))


def _campaign(engine_config=None):
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=BUDGET, seed=SEED),
        engine_config,
    )
    return engine.run(_generator())


@pytest.fixture(scope="module")
def baseline_report():
    result = _campaign()
    report = triage_campaign(result, reduce=False)
    assert report.triggers > 0
    return report


def test_clusters_dedupe_triggers(baseline_report):
    total = sum(c.count for c in baseline_report.clusters)
    assert total == baseline_report.triggers
    assert 0 < len(baseline_report.clusters) <= baseline_report.triggers
    # Ranked: counts never increase down the list.
    counts = [c.count for c in baseline_report.clusters]
    assert counts == sorted(counts, reverse=True)


def test_every_cluster_names_a_cause(baseline_report):
    for cluster in baseline_report.clusters:
        assert cluster.responsibles  # a pass label or "environment(...)"
        assert cluster.kinds
        assert cluster.cells
        rep = cluster.representative
        assert rep in cluster.entries


def test_report_render_is_deterministic(baseline_report):
    assert baseline_report.render() == baseline_report.render()
    # And a freshly recomputed campaign + triage produces the same bytes.
    again = triage_campaign(_campaign(), reduce=False)
    assert again.render() == baseline_report.render()


def test_clusters_stable_across_backends(baseline_report):
    threaded = _campaign(EngineConfig(jobs=2, backend="thread"))
    report = triage_campaign(threaded, reduce=False)
    assert report.render() == baseline_report.render()


def test_clusters_stable_across_shards(baseline_report):
    shards = [
        _campaign(EngineConfig(shard_index=i, shard_count=2)) for i in range(2)
    ]
    merged = merge_shards(shards)
    report = triage_campaign(merged, reduce=False)
    assert report.render() == baseline_report.render()


def test_campaign_report_triage_facade(baseline_report):
    report = CampaignReport(_campaign()).triage(reduce=False)
    assert report.render() == baseline_report.render()


def test_multi_campaign_triage_merges_findings():
    result = _campaign()
    report = triage_results(
        [("first", result), ("second", result)], reduce=False
    )
    assert report.campaigns == ("first", "second")
    # The same root causes found twice collapse into the same clusters,
    # each twice as big.
    single = triage_campaign(result, reduce=False)
    assert len(report.clusters) == len(single.clusters)
    assert [c.count for c in report.clusters] == [
        2 * c.count for c in single.clusters
    ]


# -- the CLI ---------------------------------------------------------------------


def test_cli_demo_names_pass_and_env_delta(capsys):
    assert cli_main(["triage", "--demo"]) == 0
    out = capsys.readouterr().out
    assert "nvcc:fma-contract" in out
    assert "libm: glibc -> cuda" in out
    assert "reduction:" in out  # strictly smaller program was found
    assert "TRIAGE REPORT" in out


def test_cli_demo_is_byte_identical(capsys):
    assert cli_main(["triage", "--demo"]) == 0
    first = capsys.readouterr().out
    assert cli_main(["triage", "--demo"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_cli_checkpoint_flow(tmp_path, capsys):
    checkpoint = tmp_path / "campaign.jsonl"
    assert (
        cli_main(
            [
                "run",
                "--approach",
                APPROACH,
                "--budget",
                "12",
                "--seed",
                str(SEED),
                "--quiet",
                "--resume",
                str(checkpoint),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert load_triggers(checkpoint)  # persisted triggers round-trip
    out_path = tmp_path / "report.txt"
    assert (
        cli_main(
            ["triage", str(checkpoint), "--no-reduce", "--out", str(out_path)]
        )
        == 0
    )
    capsys.readouterr()
    text = out_path.read_text()
    assert "TRIAGE REPORT" in text
    assert str(checkpoint) in text


def test_cli_rejects_ambiguous_inputs(capsys):
    assert cli_main(["triage"]) == 2
    assert cli_main(["triage", "x.jsonl", "--demo"]) == 2
    assert cli_main(["triage", "--program", "x.c"]) == 2  # missing --inputs
    capsys.readouterr()


def test_cli_program_file(tmp_path, capsys):
    from repro.triage import DISTILLED_SOURCE

    path = tmp_path / "trigger.c"
    path.write_text(DISTILLED_SOURCE)
    assert (
        cli_main(
            ["triage", "--program", str(path), "--inputs", "0.37,1.91,23",
             "--no-reduce"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "nvcc:fma-contract" in out
