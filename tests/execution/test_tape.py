"""Tape executor: bit-identity with the tree-walk interpreter.

The tape compiler's contract is *observational equivalence on every bit*:
status, error message, step count, stdout text and the IEEE bits of every
printed value must match the reference interpreter for every kernel, every
input, and every step limit — including runs that trap or hit the budget
mid-expression.  These tests sweep randomly generated programs (scalar,
vector and masked kernels via the real optimization pipelines) plus
directed trap/printf cases, always comparing on
:func:`repro.execution.batch.result_key`, never on dataclass equality
(NaN payloads would defeat ``==``).
"""

import pytest

from repro.errors import ExecutionDivergence
from repro.execution.batch import (
    DEFAULT_EXEC_MODE,
    EXEC_MODES,
    KernelRunner,
    _cached_tape,
    _tape_cache,
    result_key,
    run_batch,
    run_batch_task,
)
from repro.execution.interp import Interpreter
from repro.execution.tape import Tape, compile_tape
from repro.fp.env import FPEnvironment
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.generation.loops import LoopReductionGenerator
from repro.generation.varity import VarityGenerator
from repro.ir.lower import lower_compute
from repro.toolchains import default_compilers
from repro.toolchains.optlevels import ALL_LEVELS
from repro.utils.rng import SplittableRng


def lower(source: str):
    return lower_compute(check_program(parse_program(source)))


def tree_run(kernel, env, inputs, max_steps=200000):
    return Interpreter(kernel, env, max_steps).run(inputs)


def tape_run(kernel, env, inputs, max_steps=200000):
    return compile_tape(kernel, env).run(inputs, max_steps)


def assert_parity(kernel, env, inputs, max_steps=200000):
    tree = tree_run(kernel, env, inputs, max_steps)
    tape = tape_run(kernel, env, inputs, max_steps)
    assert result_key(tape) == result_key(tree)
    return tree


def compiled_matrix(program, tiers="baseline"):
    """Every (optimized kernel, env) the campaign would execute."""
    from repro.difftest.engine import frontend_kernels

    frontend = frontend_kernels(program.source)
    out = []
    for compiler in default_compilers(tiers=tiers):
        kernel = frontend.kernels.get(compiler.kind)
        if kernel is None:
            continue
        for level in ALL_LEVELS:
            binary = compiler.compile_kernel(kernel, level)
            out.append((f"{compiler.name}-{level.name}", binary))
    return out


class TestRandomProgramParity:
    """Random generator output through the real pipelines, tree vs tape."""

    @pytest.mark.parametrize("seed", range(10))
    def test_varity_programs(self, seed):
        gen = VarityGenerator(SplittableRng(900 + seed, "tape-varity"))
        program = gen.generate()
        for _, binary in compiled_matrix(program):
            assert_parity(binary.kernel, binary.env, program.inputs)

    @pytest.mark.parametrize("seed", range(8))
    def test_loop_programs(self, seed):
        # Loop kernels vectorize at the -O3 tiers: this sweep covers
        # vector loads/stores, masked (if-converted) lanes and reductions.
        gen = LoopReductionGenerator(SplittableRng(700 + seed, "tape-loops"))
        program = gen.generate()
        for _, binary in compiled_matrix(program):
            assert_parity(binary.kernel, binary.env, program.inputs)

    @pytest.mark.parametrize("seed", range(4))
    def test_step_limit_sweep(self, seed):
        """Every possible step limit trips at the same count on both paths.

        Tick fusion batches the interpreter's per-node accounting, so the
        dangerous spots are limits that land *inside* a fused region; the
        dense low sweep plus a band around the true cost covers both.
        """
        gen = VarityGenerator(SplittableRng(40 + seed, "tape-limits"))
        program = gen.generate()
        matrix = compiled_matrix(program)[:4]
        for _, binary in matrix:
            full = tree_run(binary.kernel, binary.env, program.inputs)
            limits = set(range(0, min(full.steps + 2, 120)))
            limits.update(
                max(full.steps + d, 0) for d in (-2, -1, 0, 1, 2)
            )
            for limit in sorted(limits):
                assert_parity(binary.kernel, binary.env, program.inputs, limit)


class TestTierNodeParity:
    """The newer divergence tiers' lane nodes, tree vs tape.

    ``VecCall`` resolving through a vector math library and the
    mixed-precision ``VecFpExt``/``VecFpTrunc`` nodes must execute
    bit-identically on both paths in every FP environment family, at
    every step limit, and under ``check`` mode (which traps on any bit
    of divergence by construction).
    """

    MIXED_CALL_SRC = (
        "#include <stdio.h>\n#include <math.h>\n"
        "void compute(double *a, double s, int n) {\n"
        "  double comp = 0.0;\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    comp += sin(a[i]) * s + (float)(a[i]) * (float)(0.5 * s);\n"
        "  }\n"
        '  printf("%.17g\\n", comp);\n'
        "}\n"
        "int main(int argc, char **argv) {\n"
        "  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]),"
        " atof(argv[4]), atof(argv[5]), atof(argv[6]), atof(argv[7]),"
        " atof(argv[8])};\n"
        "  compute(in_a, atof(argv[9]), atoi(argv[10]));\n"
        "  return 0;\n"
        "}\n"
    )
    INPUTS = ((0.37, -1.91, 2.23, 0.061, -0.77, 1.43, -2.9, 0.5), 1.7, 8)

    def _vector_kernel(self):
        """The source above widened with every tier construct enabled."""
        from repro.ir.passes import LoopUnroll, Vectorize

        kernel = lower(self.MIXED_CALL_SRC)
        kernel = LoopUnroll(4).run(kernel)
        return Vectorize(4, style="adjacent", mixed=True).run(kernel)

    def _environments(self):
        """Every scalar library family, with and without a vector library."""
        from repro.fp.mathlib import (
            ClangVecLibm,
            CudaLibm,
            FastCudaLibm,
            FastHostLibm,
            GccVecLibm,
            HostLibm,
            NvccVecLibm,
        )

        families = (HostLibm, CudaLibm, FastHostLibm, FastCudaLibm)
        veclibs = (None, GccVecLibm, ClangVecLibm, NvccVecLibm)
        for family in families:
            for veclib in veclibs:
                yield FPEnvironment(
                    libm=family(),
                    veclibm=veclib() if veclib else None,
                    ftz=(family is FastCudaLibm),
                )

    def test_parity_across_all_environment_families(self):
        kernel = self._vector_kernel()
        assert any("VecCall" in type(e).__name__ for e in _all_exprs(kernel))
        assert any("VecFpTrunc" in type(e).__name__ for e in _all_exprs(kernel))
        for env in self._environments():
            assert_parity(kernel, env, self.INPUTS)

    def test_veclibm_lanes_diverge_from_scalar_libm(self):
        # The tier's raison d'être: the same kernel under the same scalar
        # library prints different bits once a vector library is linked.
        from repro.fp.mathlib import FastHostLibm, GccVecLibm

        kernel = self._vector_kernel()
        scalar_env = FPEnvironment(libm=FastHostLibm())
        vec_env = FPEnvironment(libm=FastHostLibm(), veclibm=GccVecLibm())
        scalar = tree_run(kernel, scalar_env, self.INPUTS)
        vec = assert_parity(kernel, vec_env, self.INPUTS)
        assert scalar.ok and vec.ok
        assert scalar.signature() != vec.signature()

    def test_parity_under_every_step_limit(self):
        from repro.fp.mathlib import FastHostLibm, GccVecLibm

        kernel = self._vector_kernel()
        env = FPEnvironment(libm=FastHostLibm(), veclibm=GccVecLibm())
        full = tree_run(kernel, env, self.INPUTS)
        limits = set(range(0, min(full.steps + 2, 150)))
        limits.update(max(full.steps + d, 0) for d in (-2, -1, 0, 1, 2))
        for limit in sorted(limits):
            assert_parity(kernel, env, self.INPUTS, limit)

    def test_check_mode_result_key_matches_tree(self):
        from repro.fp.mathlib import CudaLibm, NvccVecLibm

        kernel = self._vector_kernel()
        env = FPEnvironment(libm=CudaLibm(), veclibm=NvccVecLibm())
        tree = run_batch(kernel, env, (self.INPUTS,), 200000, "tree")
        check = run_batch(kernel, env, (self.INPUTS,), 200000, "check")
        assert [result_key(r) for r in check] == [result_key(r) for r in tree]

    @pytest.mark.parametrize("seed", range(6))
    def test_full_tier_pipeline_programs(self, seed):
        # Tier-heavy generator output through the real full-profile
        # pipelines: VecCall-through-veclibm, VecFpExt/VecFpTrunc and
        # integer iota/splat guard masks all land in the matrix.
        gen = LoopReductionGenerator(
            SplittableRng(500 + seed, "tape-tiers"),
            libm_share=1.0, mixed_share=1.0, int_guard_share=1.0,
        )
        program = gen.generate()
        for _, binary in compiled_matrix(program, tiers="full"):
            assert_parity(binary.kernel, binary.env, program.inputs)


def _all_exprs(kernel):
    from repro.ir import nodes as ir

    for s in ir.walk_stmts(kernel.body):
        for top in ir.stmt_exprs(s):
            yield from ir.walk(top)


class TestDirectedParity:
    """Hand-written kernels hitting every trap and printf path."""

    CASES = {
        "oob_store": (
            "void compute(double a, int n) {"
            " double t[3]; t[0] = a; t[n] = 2.0;"
            ' printf("%.17g\\n", t[0]); }',
            (1.5, 7),
        ),
        "oob_load": (
            "void compute(double a, int n) {"
            " double t[2]; t[0] = a; t[1] = a;"
            ' printf("%.17g\\n", t[n]); }',
            (1.5, 5),
        ),
        "uninit_element_read": (
            "void compute(double a, int n) {"
            " double t[3]; t[0] = a;"
            ' printf("%.17g\\n", t[n]); }',
            (1.0, 2),
        ),
        "int_div_zero": (
            "void compute(double a, int n) {"
            ' int q = 7 / n; printf("%d\\n", q); }',
            (0.0, 0),
        ),
        "int_mod_zero": (
            "void compute(double a, int n) {"
            ' int q = 7 % n; printf("%d\\n", q); }',
            (0.0, 0),
        ),
        "printf_mixed": (
            "void compute(double a, int n) {"
            ' printf("a=%.17g n=%d e=%e f=%f g=%g\\n", a, n, a, a, a); }',
            (0.1, 42),
        ),
        "printf_multi_stmt": (
            "void compute(double a, int n) {"
            ' printf("%d\\n", n); printf("%.17g\\n", a);'
            ' printf("done\\n"); }',
            (-0.0, -7),
        ),
        "nested_loops_traps_late": (
            "void compute(double a, int n) {"
            " double acc = 0.0; double t[4];"
            " for (int i = 0; i < 4; ++i) { t[i] = a * i; }"
            " for (int i = 0; i < n; ++i) {"
            "   for (int j = 0; j < n; ++j) { acc += t[i % 4] / (i - j); } }"
            ' printf("%.17g\\n", acc); }',
            (3.0, 3),
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case_all_environments(self, name):
        source, inputs = self.CASES[name]
        full_src = source + " int main() { return 0; }"
        kernel = lower(full_src)
        for ftz in (False, True):
            for approx_div in (False, True):
                env = FPEnvironment(ftz=ftz, approx_div=approx_div)
                assert_parity(kernel, env, inputs)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case_under_every_limit(self, name):
        source, inputs = self.CASES[name]
        kernel = lower(source + " int main() { return 0; }")
        env = FPEnvironment()
        full = tree_run(kernel, env, inputs)
        for limit in range(0, full.steps + 2):
            assert_parity(kernel, env, inputs, limit)

    def test_unset_scalar_trap(self):
        # Sema rejects maybe-uninitialized reads in source, but optimizer
        # output is not re-checked — build the IR directly.
        from repro.ir import nodes as ir

        kernel = ir.Kernel(
            name="compute",
            params=(ir.Param("a", "double"),),
            body=(
                ir.SPrint("%.17g\n", (ir.Load("ghost", "double"),)),
                ir.SReturn(),
            ),
        )
        env = FPEnvironment()
        tree = assert_parity(kernel, env, (1.0,))
        assert not tree.ok and "unset variable" in tree.error
        for limit in range(0, tree.steps + 2):
            assert_parity(kernel, env, (1.0,), limit)

    def test_arity_trap(self):
        kernel = lower(
            "void compute(double a, double b) { printf(\"%g\\n\", a + b); }"
            " int main() { return 0; }"
        )
        env = FPEnvironment()
        assert_parity(kernel, env, (1.0,))
        assert_parity(kernel, env, (1.0, 2.0, 3.0))

    def test_bad_pointer_input_trap(self):
        gen = LoopReductionGenerator(SplittableRng(1, "tape-ptr"))
        program = gen.generate()
        _, binary = compiled_matrix(program)[0]
        assert any(p.is_pointer for p in binary.kernel.params)
        ptr_index = next(
            i for i, p in enumerate(binary.kernel.params) if p.is_pointer
        )
        bad = list(program.inputs)
        bad[ptr_index] = 3.5  # scalar where an array is due
        assert_parity(binary.kernel, binary.env, tuple(bad))

    def test_printf_excess_conversions_trap(self):
        kernel = lower(
            'void compute(double a) { printf("%g %g\\n", a); }'
            " int main() { return 0; }"
        )
        env = FPEnvironment()
        assert_parity(kernel, env, (2.5,))

    def test_stdout_discarded_on_trap_both_paths(self):
        kernel = lower(
            "void compute(double a, int n) {"
            ' printf("before\\n"); int q = 1 / n; printf("%d\\n", q); }'
            " int main() { return 0; }"
        )
        env = FPEnvironment()
        tree = assert_parity(kernel, env, (0.0, 0))
        assert not tree.ok and tree.stdout == ""


class TestKernelRunnerModes:
    def _kernel(self):
        kernel = lower(
            "void compute(double a, int n) {"
            " double c = 0.0; for (int i = 0; i < n; ++i) { c += a; }"
            ' printf("%.17g\\n", c); }'
            " int main() { return 0; }"
        )
        return kernel, FPEnvironment()

    def test_modes_agree(self):
        kernel, env = self._kernel()
        batches = {
            mode: run_batch(kernel, env, ((0.1, 10), (2.5, 3)), 10_000, mode)
            for mode in EXEC_MODES
        }
        keys = {
            mode: [result_key(r) for r in results]
            for mode, results in batches.items()
        }
        assert keys["tape"] == keys["tree"] == keys["check"]

    def test_default_mode_is_tape(self):
        assert DEFAULT_EXEC_MODE == "tape"
        assert DEFAULT_EXEC_MODE in EXEC_MODES

    def test_bad_mode_rejected(self):
        kernel, env = self._kernel()
        with pytest.raises(ValueError, match="exec mode"):
            KernelRunner(kernel, env, "jit")

    def test_check_mode_raises_on_divergence(self):
        kernel, env = self._kernel()
        runner = KernelRunner(kernel, env, "check")
        genuine = runner._tape

        class Tampered:
            def run(self, inputs, max_steps):
                result = genuine.run(inputs, max_steps)
                return type(result)(
                    status=result.status,
                    printed=result.printed,
                    steps=result.steps + 1,  # one bit of divergence
                    stdout=result.stdout,
                    error=result.error,
                )

        runner._tape = Tampered()  # Tape has __slots__; swap whole object
        with pytest.raises(ExecutionDivergence, match="diverges"):
            runner.run((1.0, 2), 10_000)

    def test_run_batch_task_roundtrip(self):
        kernel, env = self._kernel()
        task = (kernel, env, ((0.5, 4), (1.0, 0)), 10_000, "tape", None)
        direct = run_batch(kernel, env, ((0.5, 4), (1.0, 0)), 10_000, "tree")
        assert [result_key(r) for r in run_batch_task(task)] == [
            result_key(r) for r in direct
        ]


class TestTapeCache:
    def test_content_keyed_reuse(self):
        _tape_cache.clear()
        k1 = lower(
            'void compute(double a) { printf("%g\\n", a + 1.0); }'
            " int main() { return 0; }"
        )
        k2 = lower(
            'void compute(double a) { printf("%g\\n", a + 1.0); }'
            " int main() { return 0; }"
        )
        env = FPEnvironment()
        t1 = _cached_tape(k1, env, None)
        t2 = _cached_tape(k2, env, None)  # content-equal, distinct object
        assert t1 is t2
        assert len(_tape_cache) == 1

    def test_distinct_env_distinct_tape(self):
        _tape_cache.clear()
        kernel = lower(
            'void compute(double a) { printf("%g\\n", a / 3.0); }'
            " int main() { return 0; }"
        )
        t1 = _cached_tape(kernel, FPEnvironment(), None)
        t2 = _cached_tape(kernel, FPEnvironment(ftz=True), None)
        assert t1 is not t2
        assert len(_tape_cache) == 2

    def test_explicit_key_skips_fingerprinting(self):
        _tape_cache.clear()
        kernel = lower(
            'void compute(double a) { printf("%g\\n", a); }'
            " int main() { return 0; }"
        )
        env = FPEnvironment()
        t1 = _cached_tape(kernel, env, ("k", "e"))
        t2 = _cached_tape(kernel, env, ("k", "e"))
        assert t1 is t2 and ("k", "e") in _tape_cache

    def test_compile_tape_returns_tape(self):
        kernel = lower(
            'void compute(double a) { printf("%g\\n", a); }'
            " int main() { return 0; }"
        )
        tape = compile_tape(kernel, FPEnvironment())
        assert isinstance(tape, Tape)
        assert tape.n_regs >= 1 and len(tape.code) >= 2
