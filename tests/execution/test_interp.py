"""Interpreter: C semantics, traps, step budget, printf."""

import math

import pytest

from repro.execution.interp import Interpreter, _c_printf
from repro.execution.result import ExecStatus
from repro.fp.env import FPEnvironment
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir.lower import lower_compute


def run_body(body, inputs, params="double a, double b, int n", env=None, max_steps=200000):
    n_params = len(params.split(","))
    args = ", ".join(["1.0"] * n_params)
    src = (
        f"void compute({params}) {{ {body} }}"
        f"int main() {{ compute({args}); return 0; }}"
    )
    kernel = lower_compute(check_program(parse_program(src)))
    return Interpreter(kernel, env or FPEnvironment(), max_steps).run(inputs)


class TestArithmetic:
    def test_simple_sum(self):
        r = run_body('double c = a + b; printf("%.17g\\n", c);', (1.5, 2.25, 0))
        assert r.ok and r.value == 3.75

    def test_loop_accumulation(self):
        r = run_body(
            "double c = 0.0;"
            ' for (int i = 0; i < n; ++i) { c += a; } printf("%.17g\\n", c);',
            (0.1, 0.0, 10),
        )
        expected = 0.0
        for _ in range(10):
            expected += 0.1
        assert r.value == expected

    def test_integer_semantics(self):
        r = run_body(
            'int q = (0 - 7) / 2; int m = (0 - 7) % 2; printf("%d %d\\n", q, m);',
            (0.0, 0.0, 0),
        )
        assert r.stdout == "-3 -1\n"

    def test_branching(self):
        r = run_body(
            'double c = 0.0; if (a > b) { c = a; } else { c = b; } printf("%g\\n", c);',
            (3.0, 7.0, 0),
        )
        assert r.value == 7.0

    def test_while_loop(self):
        r = run_body(
            'double c = a; while (c > 1.0) { c /= 2.0; } printf("%g\\n", c);',
            (64.0, 0.0, 0),
        )
        assert r.value == 1.0

    def test_arrays(self):
        r = run_body(
            "double t[3] = {1.0, 2.0, 3.0};"
            " double c = 0.0;"
            ' for (int i = 0; i < 3; ++i) { c += t[i]; } printf("%g\\n", c);',
            (0.0, 0.0, 0),
        )
        assert r.value == 6.0

    def test_partial_array_init_zero_fills(self):
        r = run_body(
            'double t[4] = {5.0}; printf("%g\\n", t[3]);',
            (0.0, 0.0, 0),
        )
        assert r.value == 0.0

    def test_pointer_param(self):
        r = run_body(
            'double c = p[0] + p[2]; printf("%g\\n", c);',
            ((1.0, 2.0, 3.0),),
            params="double *p",
        )
        assert r.value == 4.0

    def test_math_call(self):
        env = FPEnvironment()  # correctly rounded libm
        r = run_body('double c = sin(a); printf("%.17g\\n", c);', (1.0, 0.0, 0), env=env)
        assert r.value == math.sin(1.0)

    def test_ternary_short_circuit(self):
        # the untaken arm would trap (division by zero int)
        r = run_body(
            'int d = 0; double c = n > 0 ? 1.0 : 1.0 / d; printf("%g\\n", c);',
            (0.0, 0.0, 5),
        )
        assert r.ok

    def test_logic_short_circuit(self):
        r = run_body(
            "double t[2] = {1.0, 2.0}; int i = 5;"
            ' double c = 0.0; if (n < 0 && t[i] > 0.0) { c = 1.0; } printf("%g\\n", c);',
            (0.0, 0.0, 3),
        )
        assert r.ok  # t[5] is never evaluated

    def test_nan_comparison_false(self):
        r = run_body(
            "double z = 0.0; double q = z / z;"
            ' double c = 0.0; if (q == q) { c = 1.0; } printf("%g\\n", c);',
            (0.0, 0.0, 0),
        )
        assert r.value == 0.0

    def test_single_precision_param(self):
        r = run_body(
            'float c = a; printf("%.17g\\n", c);', (0.1, 0.0, 0), params="float a, double b, int n"
        )
        assert r.value == float.fromhex("0x1.99999a0000000p-4")


class TestTraps:
    def test_oob_read(self):
        r = run_body("double t[2] = {1.0, 2.0}; double c = t[n];", (0.0, 0.0, 5))
        assert r.status is ExecStatus.TRAP
        assert "out of bounds" in r.error

    def test_oob_store(self):
        r = run_body("double t[2] = {1.0, 2.0}; t[n] = 1.0;", (0.0, 0.0, -1))
        assert r.status is ExecStatus.TRAP

    def test_uninitialized_element_read(self):
        r = run_body("double t[4]; double c = t[0] + a;", (1.0, 0.0, 0))
        assert r.status is ExecStatus.TRAP
        assert "uninitialized" in r.error

    def test_initialized_by_store_ok(self):
        r = run_body(
            'double t[2]; t[0] = a; t[1] = b; printf("%g\\n", t[0] + t[1]);',
            (1.0, 2.0, 0),
        )
        assert r.ok and r.value == 3.0

    def test_int_division_by_zero(self):
        r = run_body("int z = n - n; int q = 5 / z;", (0.0, 0.0, 3))
        assert r.status is ExecStatus.TRAP

    def test_signed_overflow(self):
        r = run_body(
            "int x = 2000000000; int y = x + x;",
            (0.0, 0.0, 0),
        )
        assert r.status is ExecStatus.TRAP

    def test_invalid_fp_to_int(self):
        r = run_body("double z = 0.0; int i = (int)(a / z);", (1.0, 0.0, 0))
        assert r.status is ExecStatus.TRAP

    def test_fp_division_by_zero_is_not_a_trap(self):
        r = run_body('double c = a / 0.0; printf("%g\\n", c);', (1.0, 0.0, 0))
        assert r.ok and r.value == math.inf


class TestStepBudget:
    def test_infinite_loop_stopped(self):
        r = run_body(
            "double c = 1.0; while (c > 0.0) { c += 1.0; }",
            (0.0, 0.0, 0),
            max_steps=5000,
        )
        assert r.status is ExecStatus.STEP_LIMIT

    def test_budget_counts_steps(self):
        r = run_body('printf("%g\\n", a);', (1.0, 0.0, 0))
        assert 0 < r.steps < 100


class TestOutput:
    def test_stdout_formatting(self):
        r = run_body('printf("x=%.3f y=%d\\n", a, n);', (1.23456, 0.0, 7))
        assert r.stdout == "x=1.235 y=7\n"

    def test_printed_values_are_doubles_only(self):
        r = run_body('printf("%d %g\\n", n, a);', (2.5, 0.0, 9))
        assert r.printed == (2.5,)

    def test_signature(self):
        r = run_body('printf("%.17g\\n", a + b);', (0.5, 0.25, 0))
        assert r.signature() == "3fe8000000000000"

    def test_signature_none_on_trap(self):
        r = run_body("double t[2] = {1.0, 2.0}; double c = t[n];", (0.0, 0.0, 9))
        assert r.signature() is None

    def test_value_is_last_printed(self):
        r = run_body('printf("%g\\n", a); printf("%g\\n", b);', (1.0, 2.0, 0))
        assert r.value == 2.0


class TestCPrintf:
    def test_percent_escape(self):
        assert _c_printf("100%%\\n", []) == "100%\n"

    def test_g_precision(self):
        assert _c_printf("%.17g", [0.1]) == "0.10000000000000001"

    def test_inf_nan(self):
        assert _c_printf("%g %g", [math.inf, math.nan]) == "inf nan"

    def test_too_few_args_traps(self):
        from repro.errors import TrapError

        with pytest.raises(TrapError):
            _c_printf("%g %g", [1.0])
