"""NaN canonicalization in output signatures.

The paper's five-class taxonomy has one NaN category and no {NaN, NaN}
inconsistency kind; sign/payload-only NaN differences must therefore not
register as inconsistencies.
"""

import math
import struct

from repro.execution.result import ExecStatus, ExecutionResult, _value_hex


def _nan_with_sign_bit() -> float:
    return struct.unpack("<d", struct.pack("<Q", 0xFFF8000000000000))[0]


class TestNanCanonicalization:
    def test_positive_and_negative_nan_same_hex(self):
        assert _value_hex(math.nan) == _value_hex(_nan_with_sign_bit())

    def test_payload_nan_same_hex(self):
        payload = struct.unpack("<d", struct.pack("<Q", 0x7FF800000000BEEF))[0]
        assert _value_hex(math.nan) == _value_hex(payload)

    def test_canonical_hex_is_quiet_nan(self):
        assert _value_hex(math.nan) == "7ff8000000000000"

    def test_non_nan_unchanged(self):
        assert _value_hex(1.0) == "3ff0000000000000"
        assert _value_hex(-0.0) == "8000000000000000"  # signed zero kept

    def test_signatures_with_mixed_nans_match(self):
        a = ExecutionResult(ExecStatus.OK, printed=(1.0, math.nan))
        b = ExecutionResult(ExecStatus.OK, printed=(1.0, _nan_with_sign_bit()))
        assert a.signature() == b.signature()

    def test_signed_zero_still_differs(self):
        a = ExecutionResult(ExecStatus.OK, printed=(0.0,))
        b = ExecutionResult(ExecStatus.OK, printed=(-0.0,))
        assert a.signature() != b.signature()

    def test_inf_not_canonicalized(self):
        a = ExecutionResult(ExecStatus.OK, printed=(math.inf,))
        b = ExecutionResult(ExecStatus.OK, printed=(-math.inf,))
        assert a.signature() != b.signature()
