"""The ``llm4fp corpus`` CLI and ``llm4fp run --corpus`` replay wiring:
golden diff output, exactly-once reporting, exit codes, env-knob default."""

import json

import pytest

from corpus_testlib import quiet_outcome, trigger_outcome, write_checkpoint
from repro.cli import main
from repro.corpus import TriggerCorpus
from repro.difftest.store import load_result


def _fixture_checkpoint(tmp_path, name="campaign.jsonl"):
    """4 programs, 3 triggers, 2 distinct signatures (t-a x2, t-b x1)."""
    return write_checkpoint(
        tmp_path / name,
        [
            trigger_outcome(0, tag="t-a"),
            trigger_outcome(1, tag="t-a", source="void compute(double y) {}"),
            trigger_outcome(2, tag="t-b"),
            quiet_outcome(3),
        ],
    )


class TestCorpusDiff:
    def test_golden_output_against_empty_corpus(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        assert main(["corpus", "diff", str(corpus), str(ckpt)]) == 0
        assert capsys.readouterr().out == (
            "corpus: corpus.jsonl — 0 known signature(s)\n"
            "checked: 1 checkpoint(s), 4 programs, 3 triggers, "
            "2 distinct signature(s)\n"
            "known signatures: 0\n"
            "new signatures: 2\n"
            "  NEW x2 t-a :: gcc-clang@O3\n"
            "  NEW x1 t-b :: gcc-clang@O3\n"
        )

    def test_empty_corpus_diff_reports_each_signature_exactly_once(
        self, tmp_path, capsys
    ):
        ckpt = _fixture_checkpoint(tmp_path)
        main(["corpus", "diff", str(tmp_path / "corpus.jsonl"), str(ckpt)])
        out = capsys.readouterr().out
        assert out.count("t-a ::") == 1
        assert out.count("t-b ::") == 1

    def test_diff_prints_only_never_seen_signatures(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        with TriggerCorpus(corpus) as c:
            c.ingest([trigger_outcome(0, tag="t-a")], "seeded")
        capsys.readouterr()
        assert main(["corpus", "diff", str(corpus), str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "new signatures: 1" in out
        assert "t-b ::" in out
        assert "NEW x2 t-a" not in out  # known: summarized, never re-listed

    def test_diff_is_deterministic_and_out_matches_stdout(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        report = tmp_path / "new.txt"
        main(["corpus", "diff", str(corpus), str(ckpt), "--out", str(report)])
        first = capsys.readouterr().out
        assert report.read_text() == first
        main(["corpus", "diff", str(corpus), str(ckpt)])
        assert capsys.readouterr().out == first

    def test_divergence_tier_tags_flow_through_unchanged(self, tmp_path, capsys):
        # The new tiers' tags ride the same outcome_signature -> signature_key
        # path as the legacy tags: a vec-libm trigger is one corpus
        # signature, reported exactly once and golden-stable.
        ckpt = write_checkpoint(
            tmp_path / "tiers.jsonl",
            [
                trigger_outcome(0, tag="vec-libm"),
                trigger_outcome(1, tag="mixed-precision"),
                trigger_outcome(2, tag="vec-libm"),
                quiet_outcome(3),
            ],
        )
        corpus = tmp_path / "corpus.jsonl"
        assert main(["corpus", "diff", str(corpus), str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "  NEW x2 vec-libm :: gcc-clang@O3\n" in out
        assert "  NEW x1 mixed-precision :: gcc-clang@O3\n" in out
        assert out.count("vec-libm ::") == 1

    def test_diff_without_checkpoints_is_an_error(self, tmp_path, capsys):
        assert main(["corpus", "diff", str(tmp_path / "c.jsonl")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_diff_two_checkpoints_pool_their_signatures(self, tmp_path, capsys):
        a = _fixture_checkpoint(tmp_path, "a.jsonl")
        b = write_checkpoint(
            tmp_path / "b.jsonl", [trigger_outcome(0, tag="t-c")]
        )
        main(["corpus", "diff", str(tmp_path / "corpus.jsonl"), str(a), str(b)])
        out = capsys.readouterr().out
        assert "checked: 2 checkpoint(s), 5 programs" in out
        assert "new signatures: 3" in out


class TestCorpusIngest:
    def test_ingest_creates_corpus_and_reports_new(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        assert main(["corpus", "ingest", str(corpus), str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "ingest #1 into corpus.jsonl: campaign.jsonl" in out
        assert "2 new" in out
        assert len(TriggerCorpus.load(corpus)) == 2

    def test_second_ingest_of_same_checkpoint_reports_zero_new(
        self, tmp_path, capsys
    ):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        main(["corpus", "ingest", str(corpus), str(ckpt)])
        capsys.readouterr()
        assert main(["corpus", "ingest", str(corpus), str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "0 new" in out
        assert "NEW" not in out

    def test_ingest_out_file_lists_new_signatures(self, tmp_path):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        report = tmp_path / "new.txt"
        main(["corpus", "ingest", str(corpus), str(ckpt), "--out", str(report)])
        lines = report.read_text().splitlines()
        assert lines[0] == "new signatures: 2"
        assert lines[1:] == ["t-a :: gcc-clang@O3", "t-b :: gcc-clang@O3"]

    def test_ingest_label_and_timestamp_flags(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        main(
            [
                "corpus", "ingest", str(corpus), str(ckpt),
                "--label", "nightly", "--timestamp", "2026-08-08",
            ]
        )
        assert "nightly" in capsys.readouterr().out
        for entry in TriggerCorpus.load(corpus).sorted_entries():
            assert entry.first_label == "nightly"
            assert entry.first_timestamp == "2026-08-08"

    def test_ingest_without_checkpoints_is_an_error(self, tmp_path, capsys):
        assert main(["corpus", "ingest", str(tmp_path / "c.jsonl")]) == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_foreign_corpus_file_exits_2(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        foreign = tmp_path / "notes.txt"
        foreign.write_text("not a corpus\n")
        assert main(["corpus", "ingest", str(foreign), str(ckpt)]) == 2
        assert "not a trigger corpus" in capsys.readouterr().err

    def test_missing_checkpoint_exits_2(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        missing = tmp_path / "nope.jsonl"
        assert main(["corpus", "ingest", str(corpus), str(missing)]) == 2
        assert capsys.readouterr().err


class TestCorpusListAndSeeds:
    def test_list_shows_lifetime_rows(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        main(["corpus", "ingest", str(corpus), str(ckpt)])
        capsys.readouterr()
        assert main(["corpus", "list", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "corpus: corpus.jsonl — 2 signature(s)" in out
        assert "x2 first=#1 last=#1" in out

    def test_seeds_prints_sources(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        main(["corpus", "ingest", str(corpus), str(ckpt)])
        capsys.readouterr()
        assert main(["corpus", "seeds", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "2 regression seed(s)" in out
        assert "void compute(double y) {}" in out  # the smaller t-a trigger

    def test_seeds_dir_writes_files_and_manifest(self, tmp_path, capsys):
        ckpt = _fixture_checkpoint(tmp_path)
        corpus = tmp_path / "corpus.jsonl"
        main(["corpus", "ingest", str(corpus), str(ckpt)])
        outdir = tmp_path / "seeds"
        assert main(["corpus", "seeds", str(corpus), "--dir", str(outdir)]) == 0
        manifest = json.loads((outdir / "seeds.json").read_text())
        assert len(manifest) == 2
        assert (outdir / manifest[0]["file"]).exists()
        assert manifest[0]["signature"] == "t-a :: gcc-clang@O3"

    def test_list_of_missing_corpus_is_empty_not_an_error(self, tmp_path, capsys):
        assert main(["corpus", "list", str(tmp_path / "absent.jsonl")]) == 0
        assert "0 signature(s)" in capsys.readouterr().out


class TestRunWithCorpus:
    def _harvested_corpus(self, tmp_path):
        ckpt = tmp_path / "harvest.jsonl"
        main(
            [
                "run", "--approach", "varity", "--budget", "12", "--seed", "3",
                "--quiet", "--resume", str(ckpt),
            ]
        )
        corpus = tmp_path / "corpus.jsonl"
        with TriggerCorpus(corpus) as c:
            c.ingest(load_result(ckpt).outcomes, "harvest")
        return corpus, len(TriggerCorpus.load(corpus).seeds())

    def test_run_replays_corpus_seeds_first(self, tmp_path, capsys):
        corpus, n_seeds = self._harvested_corpus(tmp_path)
        assert n_seeds >= 2
        ckpt = tmp_path / "replay.jsonl"
        capsys.readouterr()
        assert main(
            [
                "run", "--approach", "varity", "--budget", "8", "--seed", "9",
                "--quiet", "--corpus", str(corpus), "--resume", str(ckpt),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"corpus replay:        {n_seeds} seed(s) from {corpus}" in out
        header = json.loads(ckpt.read_text().splitlines()[0])
        assert header["approach"] == "corpus-replay+varity"
        prelude = load_result(ckpt).outcomes[:n_seeds]
        assert all(
            o.program.meta.get("strategy") == "corpus-replay" for o in prelude
        )

    def test_corpus_path_env_knob_is_the_default(self, tmp_path, capsys, monkeypatch):
        corpus, n_seeds = self._harvested_corpus(tmp_path)
        monkeypatch.setenv("REPRO_CORPUS_PATH", str(corpus))
        capsys.readouterr()
        assert main(
            ["run", "--approach", "varity", "--budget", "6", "--seed", "9", "--quiet"]
        ) == 0
        assert f"corpus replay:        {n_seeds} seed(s)" in capsys.readouterr().out

    def test_run_without_corpus_mentions_no_replay(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CORPUS_PATH", raising=False)
        assert main(
            ["run", "--approach", "varity", "--budget", "4", "--seed", "9", "--quiet"]
        ) == 0
        assert "corpus replay" not in capsys.readouterr().out

    def test_run_with_corrupt_corpus_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("definitely not a corpus\n")
        assert main(
            [
                "run", "--approach", "varity", "--budget", "4", "--seed", "9",
                "--quiet", "--corpus", str(bad),
            ]
        ) == 2
        assert "not a trigger corpus" in capsys.readouterr().err
