"""Builders for corpus tests: outcomes with controllable signatures.

The corpus keys on the bisection-free cluster signature
(:func:`repro.triage.cluster.outcome_signature`): the sorted
inconsistency kinds plus the divergent-cell pattern.  A structural tag
on an inconsistent comparison becomes the kind verbatim, so these
builders pin both halves of the signature from the call site:
``trigger_outcome(tag="t-a")`` and ``trigger_outcome(tag="t-b")`` land
in different clusters, same ``tag``/``pair``/``level`` land in the same
one.
"""

from repro.corpus import signature_key
from repro.difftest.record import ComparisonRecord, ProgramOutcome
from repro.generation.program import GeneratedProgram
from repro.toolchains import OptLevel


def trigger_outcome(
    index=0,
    *,
    tag="vector-reduction",
    pair=("gcc", "clang"),
    level=OptLevel.O3,
    source=None,
    inputs=(1.5, -0.0),
):
    """A triggering outcome with signature ``((tag,), (a-b@level,))``."""
    a, b = pair
    if source is None:
        source = f"void compute(double x) {{ /* {tag} @ {level} */ }}"
    return ProgramOutcome(
        index=index,
        program=GeneratedProgram(
            source=source, inputs=tuple(inputs), meta={"strategy": "test"}
        ),
        triggered=True,
        compiled={f"{a}/{level}": True, f"{b}/{level}": True},
        ran={f"{a}/{level}": True, f"{b}/{level}": True},
        comparisons=[
            ComparisonRecord(
                index, a, b, level, False,
                value_a=1.0, value_b=2.0, digit_diff=3, tag=tag,
            )
        ],
    )


def quiet_outcome(index=0):
    """A non-triggering outcome (counts as a program, never a trigger)."""
    return ProgramOutcome(
        index=index,
        program=GeneratedProgram(
            source="void compute(double x) { printf(\"%.17g\\n\", x); }",
            inputs=(0.5,),
        ),
        triggered=False,
    )


def write_checkpoint(path, outcomes, budget=None):
    """A real on-disk campaign checkpoint holding ``outcomes``."""
    from repro.difftest.store import CampaignStore

    store = CampaignStore(path)
    store.open(
        {
            "approach": "t",
            "budget": budget if budget is not None else len(outcomes),
            "levels": ["O0"],
            "compilers": ["gcc", "nvcc"],
            "seed": 1,
            "max_steps": 10,
            "shard_index": 0,
            "shard_count": 1,
        }
    )
    for outcome in outcomes:
        store.append(outcome)
    return path


def key_of(outcome):
    """The corpus key the builders above produce."""
    from repro.triage.cluster import outcome_signature

    kinds, cells = outcome_signature(outcome)
    return signature_key(kinds, cells)
