"""The trigger corpus store: key codec, ingest/diff semantics, seed
minimization, durability, and the byte-determinism contract."""

import json

import pytest

from corpus_testlib import key_of, quiet_outcome, trigger_outcome
from repro.corpus import (
    CorpusError,
    TriggerCorpus,
    model_fingerprint,
    parse_key,
    signature_key,
)
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.store import CampaignStore, load_result, merge_shard_stores
from repro.experiments.approaches import make_generator
from repro.toolchains import OptLevel, default_compilers
from repro.utils.rng import SplittableRng


class TestKeyCodec:
    def test_round_trip(self):
        kinds = ("masked-lane", "{Real, Real}")
        cells = ("gcc-clang@O3", "gcc-nvcc@O3 -ffast-math")
        key = signature_key(kinds, cells)
        assert parse_key(key) == (kinds, cells)

    def test_empty_signature_round_trips(self):
        assert parse_key(signature_key((), ())) == ((), ())

    def test_keys_are_compact_single_line(self):
        key = signature_key(("k",), ("c",))
        assert "\n" not in key and " " not in key

    def test_malformed_key_rejected(self):
        with pytest.raises(CorpusError, match="malformed signature key"):
            parse_key("not json at all")


class TestLifecycle:
    def test_open_creates_file_with_header(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with TriggerCorpus(path) as corpus:
            assert len(corpus) == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "corpus", "version": 1}

    def test_load_missing_path_is_empty(self, tmp_path):
        corpus = TriggerCorpus.load(tmp_path / "absent.jsonl")
        assert len(corpus) == 0
        assert corpus.seeds() == []
        assert not (tmp_path / "absent.jsonl").exists()

    def test_ingest_requires_open(self, tmp_path):
        corpus = TriggerCorpus.load(tmp_path / "corpus.jsonl")
        with pytest.raises(CorpusError, match="not open"):
            corpus.ingest([trigger_outcome()])

    def test_refuses_foreign_file(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("important notes, not a corpus\n")
        with pytest.raises(CorpusError, match="not a trigger corpus"):
            TriggerCorpus(path).open()
        assert path.read_text() == "important notes, not a corpus\n"

    def test_refuses_future_version(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        path.write_text('{"kind":"corpus","version":99}\n')
        with pytest.raises(CorpusError, match="unsupported corpus version"):
            TriggerCorpus.load(path)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path = tmp_path / "corpus.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome()])
        with path.open("a", encoding="utf-8") as f:
            f.write('{"kind":"archipelago"}\n')
        with pytest.raises(CorpusError, match="archipelago"):
            TriggerCorpus.load(path)


class TestIngest:
    def test_first_ingest_is_all_new(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            report = corpus.ingest(
                [trigger_outcome(0, tag="t-a"), trigger_outcome(1, tag="t-b")],
                "first",
            )
        assert report.ingest_id == 1
        assert len(report.new_keys) == 2
        assert report.known_keys == ()
        assert report.programs == 2 and report.triggers == 2

    def test_reingest_same_checkpoint_reports_zero_new(self, tmp_path):
        outcomes = [trigger_outcome(0, tag="t-a"), trigger_outcome(1, tag="t-b")]
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest(outcomes, "first")
            again = corpus.ingest(outcomes, "second")
        assert again.new_keys == ()
        assert len(again.known_keys) == 2
        assert again.improved_keys == ()

    def test_counts_accumulate_across_ingests(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([trigger_outcome(0), trigger_outcome(1)])
            corpus.ingest([trigger_outcome(2)])
            (entry,) = corpus.sorted_entries()
        assert entry.count == 3
        assert entry.first_ingest == 1 and entry.last_ingest == 2

    def test_quiet_outcomes_count_as_programs_only(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            report = corpus.ingest([quiet_outcome(0), trigger_outcome(1)])
        assert report.programs == 2
        assert report.triggers == 1

    def test_labels_timestamps_and_model_recorded(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([trigger_outcome()], "alpha", timestamp="2026-08-01")
            corpus.ingest([trigger_outcome()], "beta", timestamp="2026-08-02")
            (entry,) = corpus.sorted_entries()
        assert (entry.first_label, entry.last_label) == ("alpha", "beta")
        assert entry.first_timestamp == "2026-08-01"
        assert entry.last_timestamp == "2026-08-02"
        assert entry.first_model == model_fingerprint()
        assert entry.last_model == model_fingerprint()

    def test_explicit_model_overrides_fingerprint(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([trigger_outcome()], model="gcc-model-v2")
            (entry,) = corpus.sorted_entries()
        assert entry.first_model == "gcc-model-v2"


class TestSeeds:
    def test_seed_is_smallest_source_in_the_ingest(self, tmp_path):
        big = trigger_outcome(0, source="void compute(double x) { x + x + x; }")
        small = trigger_outcome(1, source="void compute(double x) {}")
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([big, small], "lab")
            (entry,) = corpus.sorted_entries()
        assert entry.seed_source == small.program.source
        assert entry.seed_origin_index == 1
        assert entry.seed_origin_label == "lab"

    def test_seed_improves_when_smaller_trigger_arrives(self, tmp_path):
        big = trigger_outcome(0, source="void compute(double x) { x + x; }")
        small = trigger_outcome(5, source="void compute(double x) {}")
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([big])
            report = corpus.ingest([small])
            (entry,) = corpus.sorted_entries()
        assert report.improved_keys == (key_of(small),)
        assert entry.seed_source == small.program.source
        assert entry.seed_origin_index == 5

    def test_seed_keeps_smaller_holder_against_bigger_arrival(self, tmp_path):
        small = trigger_outcome(0, source="void compute(double x) {}")
        big = trigger_outcome(1, source="void compute(double x) { x + x; }")
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest([small])
            before = (tmp_path / "c.jsonl").read_bytes()
            report = corpus.ingest([big])
        assert report.improved_keys == ()
        # the second sig record carries no seed block at all
        tail = (tmp_path / "c.jsonl").read_bytes()[len(before):]
        sig_lines = [
            json.loads(line)
            for line in tail.decode().splitlines()
            if json.loads(line)["kind"] == "sig"
        ]
        assert sig_lines and all("seed" not in r for r in sig_lines)

    def test_seed_inputs_round_trip_bit_exactly(self, tmp_path):
        import math

        outcome = trigger_outcome(
            0, inputs=(1.5, -0.0, 7, (float("inf"), float("nan"), -2.5e-308))
        )
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([outcome])
        (seed,) = TriggerCorpus.load(path).seeds()
        assert seed.inputs[0] == 1.5
        assert math.copysign(1.0, seed.inputs[1]) == -1.0
        assert seed.inputs[2] == 7 and type(seed.inputs[2]) is int
        arr = seed.inputs[3]
        assert arr[0] == float("inf") and math.isnan(arr[1]) and arr[2] == -2.5e-308

    def test_seeds_sorted_by_key(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest(
                [
                    trigger_outcome(0, tag="zz-last"),
                    trigger_outcome(1, tag="aa-first"),
                ]
            )
            seeds = corpus.seeds()
        assert [s.key for s in seeds] == sorted(s.key for s in seeds)
        assert seeds[0].signature[0] == ("aa-first",)


class TestTriageReportIngest:
    def _report(self):
        from repro.triage.cluster import (
            TriageCluster,
            TriageEntry,
            TriageReport,
        )
        from repro.triage.signature import InconsistencySignature

        sig = InconsistencySignature("gcc", "clang", OptLevel.O3, "masked-lane")
        entry = TriageEntry(
            source_label="nightly",
            index=4,
            program_source="void compute(double x) { x * x; }",
            inputs=(2.0,),
            canonical=sig,
            cells=("gcc-clang@O3",),
            kinds=("masked-lane",),
            bisections=(),
            reduction=None,
        )
        cluster = TriageCluster(key=entry.cluster_key, entries=[entry, entry])
        return TriageReport(
            clusters=[cluster], campaigns=("nightly",), programs_seen=50, triggers=2
        )

    def test_clusters_ingest_with_their_weight(self, tmp_path):
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            report = corpus.ingest(self._report(), "nightly")
            (entry,) = corpus.sorted_entries()
        assert report.programs == 50 and report.triggers == 2
        assert entry.count == 2  # cluster weight, not one-per-call
        assert entry.seed_source == "void compute(double x) { x * x; }"
        assert entry.seed_origin_label == "nightly"
        assert entry.seed_origin_index == 4

    def test_triage_and_outcome_ingests_share_keys(self, tmp_path):
        outcome = trigger_outcome(0, tag="masked-lane")
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest(self._report())
            diff = corpus.diff([outcome])
        assert diff.new_keys == ()
        assert diff.known_keys == (key_of(outcome),)


class TestDiff:
    def test_empty_corpus_reports_every_signature_exactly_once(self, tmp_path):
        corpus = TriggerCorpus.load(tmp_path / "absent.jsonl")
        # duplicates of the same root cause collapse to one NEW line
        outcomes = [
            trigger_outcome(0, tag="t-a"),
            trigger_outcome(1, tag="t-a"),
            trigger_outcome(2, tag="t-b"),
        ]
        report = corpus.diff(outcomes)
        assert sorted(report.new_keys) == sorted(
            {key_of(o) for o in outcomes}
        )
        assert len(report.new_keys) == 2
        assert len(set(report.new_keys)) == 2
        assert report.known_keys == ()
        assert report.counts[key_of(outcomes[0])] == 2

    def test_diff_partitions_new_vs_known(self, tmp_path):
        known = trigger_outcome(0, tag="t-known")
        new = trigger_outcome(1, tag="t-new")
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([known])
        report = TriggerCorpus.load(path).diff([known, new])
        assert report.new_keys == (key_of(new),)
        assert report.known_keys == (key_of(known),)

    def test_diff_never_writes(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0)])
        before = path.read_bytes()
        TriggerCorpus.load(path).diff([trigger_outcome(1, tag="t-other")])
        assert path.read_bytes() == before

    def test_diff_after_ingest_of_same_checkpoint_is_empty(self, tmp_path):
        outcomes = [trigger_outcome(0, tag="t-a"), trigger_outcome(1, tag="t-b")]
        with TriggerCorpus(tmp_path / "c.jsonl") as corpus:
            corpus.ingest(outcomes)
            report = corpus.diff(outcomes)
        assert report.new_keys == ()
        assert len(report.known_keys) == 2


class TestDurability:
    def test_reload_equals_written_state(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0, tag="t-a")], "one")
            corpus.ingest(
                [trigger_outcome(1, tag="t-a"), trigger_outcome(2, tag="t-b")],
                "two",
            )
            live = corpus.sorted_entries()
            live_ingests = corpus.ingests
        reloaded = TriggerCorpus.load(path)
        assert reloaded.sorted_entries() == live
        assert reloaded.ingests == live_ingests

    def test_crash_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0, tag="t-a")])
        with path.open("a", encoding="utf-8") as f:
            f.write('{"kind":"sig","ingest":2,"key":"[["')  # died mid-append
        with TriggerCorpus(path) as corpus:
            assert len(corpus) == 1
            corpus.ingest([trigger_outcome(1, tag="t-b")])
        reloaded = TriggerCorpus.load(path)
        assert len(reloaded) == 2
        # every line in the recovered file decodes cleanly
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_crash_between_ingest_and_sig_records_replays(self, tmp_path):
        # the ingest record lands first; a crash right after it leaves a
        # replayable prefix whose ingest counter is already advanced
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0)])
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]), encoding="utf-8")  # header + ingest
        reloaded = TriggerCorpus.load(path)
        assert reloaded.ingests == 1
        assert len(reloaded) == 0

    def test_load_does_not_truncate(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0)])
        with path.open("a", encoding="utf-8") as f:
            f.write('{"kind":"sig","par')
        before = path.read_bytes()
        TriggerCorpus.load(path)
        assert path.read_bytes() == before  # read-only stays read-only

    def test_append_preserves_existing_bytes(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0, tag="t-a")])
        before = path.read_bytes()
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(1, tag="t-b")])
        assert path.read_bytes().startswith(before)


def _ingest_bytes(tmp_path, name, ingests):
    """Corpus bytes after ingesting each (outcomes, label) in order."""
    path = tmp_path / name
    with TriggerCorpus(path) as corpus:
        for outcomes, label in ingests:
            corpus.ingest(outcomes, label)
    return path.read_bytes()


def _run_checkpoint(tmp_path, name, *, backend="serial", jobs=1, shard=(0, 1)):
    """A real varity campaign checkpoint (budget 12 / seed 3: 3 distinct
    signatures) under the given backend and shard topology."""
    path = tmp_path / name
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=12, seed=3),
        EngineConfig(
            backend=backend, jobs=jobs, shard_index=shard[0], shard_count=shard[1]
        ),
    )
    engine.run(
        make_generator("varity", SplittableRng(3, "corpus-varity")),
        store=CampaignStore(path),
    )
    return path


class TestByteDeterminism:
    """Fixed (corpus, checkpoints, labels) => fixed bytes, whatever
    produced the checkpoints.  The contract CI's fixture diff rests on."""

    def test_same_ingest_sequence_same_bytes(self, tmp_path):
        ingests = [
            ([trigger_outcome(0, tag="t-a"), trigger_outcome(1, tag="t-b")], "one"),
            ([trigger_outcome(2, tag="t-a")], "two"),
        ]
        a = _ingest_bytes(tmp_path, "a.jsonl", ingests)
        b = _ingest_bytes(tmp_path, "b.jsonl", ingests)
        assert a == b

    def test_outcome_order_within_ingest_is_irrelevant(self, tmp_path):
        outcomes = [
            trigger_outcome(0, tag="t-a", source="void compute(double x) {}"),
            trigger_outcome(1, tag="t-b", source="void compute(double y) {}"),
            trigger_outcome(2, tag="t-a", source="void compute(double z) { z; }"),
        ]
        a = _ingest_bytes(tmp_path, "a.jsonl", [(outcomes, "lab")])
        b = _ingest_bytes(tmp_path, "b.jsonl", [(list(reversed(outcomes)), "lab")])
        assert a == b

    @pytest.mark.parametrize(
        "backend,jobs", [("thread", 2), ("process", 2)]
    )
    def test_backend_never_changes_corpus_bytes(self, tmp_path, backend, jobs):
        serial = _run_checkpoint(tmp_path, "serial.jsonl")
        other = _run_checkpoint(
            tmp_path, f"{backend}.jsonl", backend=backend, jobs=jobs
        )
        a = _ingest_bytes(
            tmp_path, "a.jsonl", [(load_result(serial).outcomes, "run")]
        )
        b = _ingest_bytes(
            tmp_path, "b.jsonl", [(load_result(other).outcomes, "run")]
        )
        assert a == b

    def test_shard_topology_never_changes_corpus_bytes(self, tmp_path):
        whole = _run_checkpoint(tmp_path, "whole.jsonl")
        shards = [
            _run_checkpoint(tmp_path, f"shard{i}.jsonl", shard=(i, 2))
            for i in range(2)
        ]
        merged = merge_shard_stores(shards, tmp_path / "merged.jsonl")
        a = _ingest_bytes(
            tmp_path, "a.jsonl", [(load_result(whole).outcomes, "run")]
        )
        b = _ingest_bytes(
            tmp_path, "b.jsonl", [(load_result(merged).outcomes, "run")]
        )
        assert a == b
        # and the campaign actually found something to remember
        assert len(TriggerCorpus.load(tmp_path / "a.jsonl")) >= 2

    def test_no_wall_clock_in_file(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with TriggerCorpus(path) as corpus:
            corpus.ingest([trigger_outcome(0)], "lab")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        ingest = next(r for r in records if r["kind"] == "ingest")
        assert ingest["timestamp"] == ""  # empty unless the operator passes one
