"""The compiler-model fingerprint: content-deterministic, order-free,
sensitive to every observable piece of the toolchain."""

import re

from repro.corpus import model_fingerprint
from repro.toolchains import ALL_LEVELS, GccCompiler, default_compilers


class TestFingerprint:
    def test_short_hex(self):
        assert re.fullmatch(r"[0-9a-f]{16}", model_fingerprint())

    def test_deterministic_across_calls(self):
        assert model_fingerprint() == model_fingerprint()

    def test_default_arguments_are_the_default_model(self):
        explicit = model_fingerprint(default_compilers(), list(ALL_LEVELS))
        assert explicit == model_fingerprint()

    def test_compiler_order_is_irrelevant(self):
        compilers = default_compilers()
        assert model_fingerprint(compilers) == model_fingerprint(
            list(reversed(compilers))
        )

    def test_version_bump_changes_fingerprint(self):
        class NewerGcc(GccCompiler):
            version = GccCompiler.version + "-patched"

        old = [GccCompiler()]
        new = [NewerGcc()]
        assert model_fingerprint(old) != model_fingerprint(new)

    def test_level_matrix_is_part_of_the_model(self):
        assert model_fingerprint(levels=list(ALL_LEVELS)[:2]) != model_fingerprint()

    def test_compiler_subset_changes_fingerprint(self):
        compilers = default_compilers()
        assert model_fingerprint(compilers[:-1]) != model_fingerprint(compilers)
