"""The corpus-replay generator: seeds first, lifecycle protocol,
bind-partition disjointness, byte-identical campaign resume."""

import copy
import json

import pytest

from corpus_testlib import trigger_outcome
from repro.corpus import CorpusReplayGenerator, TriggerCorpus
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.store import CampaignStore, load_result
from repro.experiments.approaches import make_generator
from repro.generation.program import GeneratedProgram, generator_capabilities
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng


def _corpus_seeds(tmp_path, tags=("t-a", "t-b", "t-c")):
    path = tmp_path / "corpus.jsonl"
    with TriggerCorpus(path) as corpus:
        corpus.ingest(
            [
                trigger_outcome(i, tag=tag, source=f"void compute(double x) {{ /* {tag} */ }}")
                for i, tag in enumerate(tags)
            ],
            "fixture",
        )
    return TriggerCorpus.load(path).seeds()


def _varity(seed=3):
    return make_generator("varity", SplittableRng(seed, "corpus-varity"))


class TestWrapper:
    def test_name_and_capabilities_mirror_inner(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        wrapped = CorpusReplayGenerator(seeds, _varity())
        assert wrapped.name == "corpus-replay+varity"
        assert not generator_capabilities(wrapped).feedback

        feedback = CorpusReplayGenerator(
            seeds, make_generator("llm4fp", SplittableRng(1, "x"))
        )
        assert generator_capabilities(feedback).feedback

    def test_seeds_replay_before_the_inner_stream(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        wrapped = CorpusReplayGenerator(seeds, _varity())
        plain = _varity()
        first = [wrapped.generate() for _ in range(len(seeds))]
        assert [p.source for p in first] == [s.source for s in seeds]
        assert all(p.meta["strategy"] == "corpus-replay" for p in first)
        assert first[0].meta["corpus_key"] == seeds[0].key
        assert first[0].meta["origin"] == "fixture#0"
        # after the prelude the wrapper is exactly the inner approach
        after = [wrapped.generate() for _ in range(4)]
        expected = [plain.generate() for _ in range(4)]
        assert [p.source for p in after] == [p.source for p in expected]

    def test_empty_corpus_is_a_transparent_wrapper(self, tmp_path):
        wrapped = CorpusReplayGenerator([], _varity())
        plain = _varity()
        got = [wrapped.generate().source for _ in range(4)]
        want = [plain.generate().source for _ in range(4)]
        assert got == want

    def test_seeds_remaining_counts_down(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        wrapped = CorpusReplayGenerator(seeds, _varity())
        assert wrapped.seeds_remaining == 3
        wrapped.generate()
        assert wrapped.seeds_remaining == 2
        for _ in range(5):
            wrapped.generate()
        assert wrapped.seeds_remaining == 0


class TestBind:
    def test_whole_stream_bind_is_identity(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        bound = CorpusReplayGenerator(seeds, _varity())
        bound.bind(0, 1, 42)
        unbound = CorpusReplayGenerator(seeds, _varity())
        got = [bound.generate().source for _ in range(5)]
        want = [unbound.generate().source for _ in range(5)]
        assert got == want

    def test_partitions_are_disjoint_and_exhaustive(self, tmp_path):
        seeds = _corpus_seeds(tmp_path, tags=("t-a", "t-b", "t-c", "t-d", "t-e"))
        n = 2
        replayed: list[list[str]] = []
        for k in range(n):
            gen = CorpusReplayGenerator(seeds, _varity())
            gen.bind(k, n, 42)
            replayed.append(
                [gen.generate().source for _ in range(gen.seeds_remaining)]
            )
        assert replayed[0] == [seeds[0].source, seeds[2].source, seeds[4].source]
        assert replayed[1] == [seeds[1].source, seeds[3].source]
        assert not set(replayed[0]) & set(replayed[1])
        assert sorted(replayed[0] + replayed[1]) == sorted(s.source for s in seeds)

    def test_rebind_resets_the_prelude(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        gen = CorpusReplayGenerator(seeds, _varity())
        gen.generate()
        gen.bind(0, 1, 42)
        assert gen.seeds_remaining == 3

    @pytest.mark.parametrize("partition", [(-1, 2), (2, 2), (0, 0)])
    def test_invalid_partition_rejected(self, tmp_path, partition):
        gen = CorpusReplayGenerator(_corpus_seeds(tmp_path), _varity())
        with pytest.raises(ValueError, match="partition"):
            gen.bind(*partition, 42)


class TestLifecycle:
    def test_observe_reaches_the_inner_generator(self, tmp_path):
        seen = []

        class Recorder:
            name = "recorder"

            def generate(self):
                return GeneratedProgram(source="s", inputs=())

            def observe(self, outcome):
                seen.append(outcome)

        gen = CorpusReplayGenerator(_corpus_seeds(tmp_path), Recorder())
        outcome = trigger_outcome(0)
        gen.observe(outcome)
        assert seen == [outcome]

    def test_legacy_notify_success_inner_still_fed(self, tmp_path):
        fed = []

        class Legacy:
            name = "legacy-gen"

            def generate(self):
                return GeneratedProgram(source="s", inputs=())

            def notify_success(self, program):
                fed.append(program)

        gen = CorpusReplayGenerator(_corpus_seeds(tmp_path), Legacy())
        outcome = trigger_outcome(0)
        gen.observe(outcome)
        assert fed == [outcome.program]

    def test_export_import_resumes_seed_position(self, tmp_path):
        seeds = _corpus_seeds(tmp_path)
        a = CorpusReplayGenerator(seeds, _varity())
        a.generate()
        a.generate()
        state = json.loads(json.dumps(a.export_state()))
        b = CorpusReplayGenerator(seeds, _varity())
        b.import_state(state)
        got = [b.generate().source for _ in range(4)]
        want = [a.generate().source for _ in range(4)]
        assert got == want

    def test_getattr_forwards_public_names_only(self, tmp_path):
        class Inner:
            name = "inner"
            flavour = "salty"

            def generate(self):
                return GeneratedProgram(source="s", inputs=())

        gen = CorpusReplayGenerator([], Inner())
        assert gen.flavour == "salty"
        with pytest.raises(AttributeError):
            gen._private_probe  # noqa: B018 — the raise is the assertion

    def test_deepcopy_safe(self, tmp_path):
        # IslandCoordinator deep-copies its template generator; the
        # __getattr__ passthrough must not hijack the copy protocol.
        gen = CorpusReplayGenerator(_corpus_seeds(tmp_path), _varity())
        gen.generate()
        clone = copy.deepcopy(gen)
        assert clone.generate().source == gen.generate().source


class TestCampaignResume:
    class _Dead(RuntimeError):
        pass

    def _kill_after(self, n):
        remaining = [n]

        def progress(index, outcome):
            remaining[0] -= 1
            if remaining[0] == 0:
                raise self._Dead(index)

        return progress

    def _real_seeds(self, tmp_path):
        # seeds harvested from a real campaign, so replaying them through
        # the engine exercises the full compile+execute matrix
        ckpt = tmp_path / "harvest.jsonl"
        self._engine().run(_varity(), store=CampaignStore(ckpt))
        with TriggerCorpus(tmp_path / "corpus.jsonl") as corpus:
            corpus.ingest(load_result(ckpt).outcomes, "harvest")
        seeds = TriggerCorpus.load(tmp_path / "corpus.jsonl").seeds()
        assert len(seeds) >= 2
        return seeds

    def _engine(self, budget=12):
        return CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=budget, seed=3),
            EngineConfig(),
        )

    def test_killed_replay_campaign_resumes_byte_identically(self, tmp_path):
        seeds = self._real_seeds(tmp_path)
        budget = 8

        straight = tmp_path / "straight.jsonl"
        self._engine(budget).run(
            CorpusReplayGenerator(seeds, _varity(seed=9)),
            store=CampaignStore(straight),
        )

        resumed = tmp_path / "resumed.jsonl"
        with pytest.raises(self._Dead):
            self._engine(budget).run(
                CorpusReplayGenerator(seeds, _varity(seed=9)),
                progress=self._kill_after(4),
                store=CampaignStore(resumed),
            )
        self._engine(budget).run(
            CorpusReplayGenerator(seeds, _varity(seed=9)),
            store=CampaignStore(resumed),
        )
        assert resumed.read_bytes() == straight.read_bytes()

    def test_replay_campaign_header_names_the_wrapper(self, tmp_path):
        seeds = self._real_seeds(tmp_path)
        path = tmp_path / "run.jsonl"
        self._engine(6).run(
            CorpusReplayGenerator(seeds, _varity(seed=9)),
            store=CampaignStore(path),
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header["approach"] == "corpus-replay+varity"

    def test_replayed_seeds_carry_their_origin_in_the_checkpoint(self, tmp_path):
        seeds = self._real_seeds(tmp_path)
        path = tmp_path / "run.jsonl"
        self._engine(6).run(
            CorpusReplayGenerator(seeds, _varity(seed=9)),
            store=CampaignStore(path),
        )
        outcomes = load_result(path).outcomes
        prelude = outcomes[: len(seeds)]
        assert all(
            o.program.meta.get("strategy") == "corpus-replay" for o in prelude
        )
        assert all(
            o.program.meta.get("origin", "").startswith("harvest#")
            for o in prelude
        )
