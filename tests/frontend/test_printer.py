"""Printers: C output fidelity, parenthesization, CUDA translation."""

from repro.frontend.parser import parse_program
from repro.frontend.printer import expr_to_c, print_c, print_cuda

SRC = """#include <stdio.h>
#include <math.h>

void compute(double a, double b, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += a * b;
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


def roundtrip_expr(text, params="double a, double b, double c"):
    unit = parse_program(f"void compute({params}) {{ double x = {text}; }}")
    return expr_to_c(unit.functions[0].body.stmts[0].declarators[0].init)


class TestExprPrinting:
    def test_precedence_no_spurious_parens(self):
        assert roundtrip_expr("a + b * c") == "a + b * c"

    def test_grouping_preserved(self):
        assert roundtrip_expr("(a + b) * c") == "(a + b) * c"

    def test_association_preserved_on_reparse(self):
        # a - (b - c) must not print as a - b - c
        out = roundtrip_expr("a - (b - c)")
        assert out == "a - (b - c)"

    def test_right_assoc_rendered(self):
        # the printer parenthesizes right operands at equal precedence
        assert roundtrip_expr("a + (b + c)") == "a + (b + c)"

    def test_unary_in_product(self):
        assert roundtrip_expr("-a * b") == "-a * b"

    def test_unary_of_sum(self):
        assert roundtrip_expr("-(a + b)") == "-(a + b)"

    def test_call_and_index(self):
        out = roundtrip_expr("sin(a) + b", params="double a, double b")
        assert out == "sin(a) + b"

    def test_ternary(self):
        out = roundtrip_expr("a > b ? a : b")
        assert out == "a > b ? a : b"

    def test_cast(self):
        out = roundtrip_expr("(double)1 / a", params="double a")
        assert out == "(double)1 / a"

    def test_float_suffix_preserved(self):
        assert roundtrip_expr("1.5f + a", params="float a") == "1.5f + a"


class TestProgramPrinting:
    def test_fixed_point(self):
        text = print_c(parse_program(SRC))
        assert print_c(parse_program(text)) == text

    def test_includes_first(self):
        text = print_c(parse_program(SRC))
        assert text.startswith("#include <stdio.h>")

    def test_semantics_preserving_tokens(self):
        text = print_c(parse_program(SRC))
        assert "for (int i = 0; i < n; ++i)" in text or "for (int i = 0; i < n; i++)" in text


class TestCudaTranslation:
    def test_global_kernel(self):
        cuda = print_cuda(parse_program(SRC))
        assert "__global__ void compute" in cuda

    def test_single_thread_launch(self):
        cuda = print_cuda(parse_program(SRC))
        assert "compute<<<1,1>>>(" in cuda

    def test_main_body_otherwise_intact(self):
        cuda = print_cuda(parse_program(SRC))
        assert "atof(argv[1])" in cuda

    def test_cuda_parses_back(self):
        cuda = print_cuda(parse_program(SRC))
        unit = parse_program(cuda)
        assert unit.function("compute")
