"""Semantic checks: typing, definite assignment, UB lint, allow-lists."""

import pytest

from repro.errors import SemaError
from repro.frontend.ctypes import DOUBLE
from repro.frontend.parser import parse_program
from repro.frontend.sema import SemaOptions, check_program


def check(src, **opts):
    return check_program(parse_program(src), SemaOptions(**opts) if opts else None)


GOOD = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b, int n) {
  double comp = 0.0;
  double buf[4] = {0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < n; ++i) {
    buf[0] = a * b + comp;
    comp += sin(buf[0]) / (b * b + 1.0);
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


class TestStructure:
    def test_good_program_passes(self):
        res = check(GOOD)
        assert res.unit.function("compute")

    def test_missing_compute(self):
        with pytest.raises(SemaError, match="compute"):
            check("int main() { return 0; }")

    def test_missing_main(self):
        with pytest.raises(SemaError, match="main"):
            check("void compute(double a) { double c = a; }")

    def test_extra_function_rejected(self):
        src = (
            "void helper() { return; }"
            "void compute(double a) { double c = a; }"
            "int main() { compute(1.0); return 0; }"
        )
        with pytest.raises(SemaError, match="only"):
            check(src)

    def test_duplicate_functions(self):
        src = (
            "void compute(double a) { double c = a; }"
            "void compute(double b) { double c = b; }"
            "int main() { compute(1.0); return 0; }"
        )
        with pytest.raises(SemaError, match="duplicate"):
            check(src)

    def test_header_allowlist(self):
        with pytest.raises(SemaError, match="allow-list"):
            check(
                "#include <string.h>\n"
                "void compute(double a) { double c = a; }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_compute_needs_params(self):
        with pytest.raises(SemaError, match="parameter"):
            check(
                "void compute() { double c = 1.0; }"
                "int main() { compute(); return 0; }"
            )

    def test_param_count_limit(self):
        params = ", ".join(f"double p{i}" for i in range(20))
        with pytest.raises(SemaError, match="max"):
            check(
                f"void compute({params}) {{ double c = p0; }}"
                "int main() { compute("
                + ", ".join(["1.0"] * 20)
                + "); return 0; }"
            )


class TestTyping:
    def test_types_recorded(self):
        res = check(GOOD)
        compute = res.unit.function("compute")
        decl = compute.body.stmts[0]
        assert res.type_of(decl.declarators[0].init) == DOUBLE

    def test_modulo_requires_ints(self):
        with pytest.raises(SemaError, match="%"):
            check(
                "void compute(double a) { double c = a % 2.0; }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_comparison_yields_int(self):
        src = (
            "void compute(double a) { int flag = a > 0.0; double c = flag + 1.0; }"
            "int main() { compute(1.0); return 0; }"
        )
        check(src)

    def test_index_requires_int(self):
        with pytest.raises(SemaError, match="index"):
            check(
                "void compute(double *a) { double c = a[1.5]; }"
                "int main() { double d[2] = {1.0, 2.0}; compute(d); return 0; }"
            )

    def test_static_oob_rejected(self):
        with pytest.raises(SemaError, match="out of bounds"):
            check(
                "void compute(double a) { double b[2] = {0.0, 0.0}; double c = b[5]; }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_unknown_function(self):
        with pytest.raises(SemaError, match="unknown function"):
            check(
                "void compute(double a) { double c = mystery(a); }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_math_arity_enforced(self):
        with pytest.raises(SemaError, match="pow"):
            check(
                "void compute(double a) { double c = pow(a); }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_atof_only_in_main(self):
        with pytest.raises(SemaError, match="atof"):
            check(
                "void compute(double a) { double c = atof(\"1.0\"); }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_compute_cannot_recurse(self):
        with pytest.raises(SemaError):
            check(
                "void compute(double a) { compute(a); }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_compute_call_arity(self):
        with pytest.raises(SemaError, match="args"):
            check(
                "void compute(double a, double b) { double c = a + b; }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_printf_needs_format(self):
        with pytest.raises(SemaError, match="printf"):
            check(
                "void compute(double a) { printf(a); }"
                "int main() { compute(1.0); return 0; }"
            )


class TestDefiniteAssignment:
    def _compute(self, body):
        return (
            f"void compute(double a, double b, int n) {{ {body} }}"
            "int main() { compute(1.0, 2.0, 3); return 0; }"
        )

    def test_use_before_init_rejected(self):
        with pytest.raises(SemaError, match="uninitialized"):
            check(self._compute("double x; double y = x + 1.0;"))

    def test_assignment_initializes(self):
        check(self._compute("double x; x = a; double y = x + 1.0;"))

    def test_if_both_branches_ok(self):
        check(
            self._compute(
                "double x; if (a > 0.0) { x = 1.0; } else { x = 2.0; }"
                " double y = x;"
            )
        )

    def test_if_single_branch_insufficient(self):
        with pytest.raises(SemaError, match="uninitialized"):
            check(
                self._compute("double x; if (a > 0.0) { x = 1.0; } double y = x;")
            )

    def test_loop_body_not_definite(self):
        with pytest.raises(SemaError, match="uninitialized"):
            check(
                self._compute(
                    "double x; for (int i = 0; i < n; ++i) { x = a; } double y = x;"
                )
            )

    def test_read_inside_loop_after_assign_ok(self):
        check(
            self._compute(
                "double acc = 0.0;"
                " for (int i = 0; i < n; ++i) { double t = a * i; acc += t; }"
            )
        )

    def test_compound_assign_requires_init(self):
        with pytest.raises(SemaError, match="before initialization"):
            check(self._compute("double x; x += 1.0;"))

    def test_params_are_assigned(self):
        check(self._compute("double y = a + b + n;"))

    def test_shadowing_in_nested_scope(self):
        check(self._compute("double x = 1.0; { double x = 2.0; double y = x; }"))

    def test_same_scope_redeclaration_rejected(self):
        with pytest.raises(SemaError, match="redeclaration"):
            check(self._compute("double x = 1.0; double x = 2.0;"))

    def test_undeclared_use(self):
        with pytest.raises(SemaError, match="undeclared"):
            check(self._compute("double y = ghost;"))

    def test_undeclared_assign(self):
        with pytest.raises(SemaError, match="undeclared"):
            check(self._compute("ghost = 1.0;"))


class TestLimits:
    def test_array_size_limit(self):
        with pytest.raises(SemaError, match="exceeds limit"):
            check(
                "void compute(double a) { double big[100000]; double c = a; }"
                "int main() { compute(1.0); return 0; }"
            )

    def test_modulo_by_zero_literal(self):
        with pytest.raises(SemaError, match="zero"):
            check(
                "void compute(int n) { int x = n % 0; double c = x; }"
                "int main() { compute(3); return 0; }"
            )

    def test_int_div_by_zero_literal(self):
        with pytest.raises(SemaError, match="zero"):
            check(
                "void compute(int n) { int x = n / 0; double c = x; }"
                "int main() { compute(3); return 0; }"
            )
