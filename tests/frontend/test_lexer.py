"""Lexer: tokens, literals, comments, includes."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(src):
    return [t.kind for t in tokenize(src).tokens[:-1]]


def texts(src):
    return [t.text for t in tokenize(src).tokens[:-1]]


class TestBasics:
    def test_empty_source(self):
        result = tokenize("")
        assert result.tokens[-1].kind is TokenKind.EOF

    def test_keywords_vs_idents(self):
        toks = tokenize("double xdouble").tokens
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT

    def test_identifier_with_underscore_digits(self):
        assert texts("var_1 _tmp2") == ["var_1", "_tmp2"]

    def test_positions(self):
        toks = tokenize("a\n  b").tokens
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)


class TestNumbers:
    def test_int_literal(self):
        toks = tokenize("42").tokens
        assert toks[0].kind is TokenKind.INT_LIT

    def test_float_forms(self):
        for lit in ("1.5", "0.5", ".25", "1e10", "1.5e-3", "2E+4", "3.0f"):
            toks = tokenize(lit).tokens
            assert toks[0].kind is TokenKind.FLOAT_LIT, lit
            assert toks[0].text == lit

    def test_int_not_float(self):
        assert kinds("123")[0] is TokenKind.INT_LIT

    def test_member_like_sequences(self):
        # `1.e` without exponent digits must not eat the 'e'.
        toks = tokenize("1.x").tokens
        assert toks[0].text == "1."
        assert toks[1].text == "x"


class TestPunctuation:
    def test_maximal_munch(self):
        assert texts("a+=b") == ["a", "+=", "b"]
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("i++") == ["i", "++"]

    def test_cuda_launch_tokens(self):
        assert "<<<" in texts("k<<<1,1>>>()")
        assert ">>>" in texts("k<<<1,1>>>()")

    def test_unknown_char_rejected(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestIncludes:
    def test_collected(self):
        res = tokenize('#include <math.h>\n#include <stdio.h>\nint x;')
        assert res.includes == ["math.h", "stdio.h"]

    def test_quoted_include(self):
        assert tokenize('#include "local.h"\n').includes == ["local.h"]

    def test_other_directives_rejected(self):
        with pytest.raises(LexError):
            tokenize("#define N 10\n")

    def test_malformed_include(self):
        with pytest.raises(LexError):
            tokenize("#include math.h\n")


class TestStrings:
    def test_simple(self):
        toks = tokenize('"%.17g\\n"').tokens
        assert toks[0].kind is TokenKind.STRING_LIT
        assert toks[0].text == "%.17g\\n"

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"oops')
