"""Parser: program structure, statements, expression precedence."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.printer import expr_to_c

PROGRAM = """
#include <stdio.h>
#include <math.h>

void compute(double a, double b, int n, double *arr) {
  double comp = 0.0;
  double tmp[4] = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < n; ++i) {
    tmp[1] = a * b + tmp[0];
    if (tmp[1] > 1.0e3) {
      comp += sin(a) / (b + 1.5);
    } else {
      comp -= cos(b);
    }
  }
  comp = comp + arr[0];
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  double data[2] = {0.5, 0.25};
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]), data);
  return 0;
}
"""


def parse_expr(text):
    unit = parse_program(f"void compute(double x) {{ double c = {text}; }}")
    decl = unit.functions[0].body.stmts[0]
    return decl.declarators[0].init


class TestProgramStructure:
    def test_parses_full_program(self):
        unit = parse_program(PROGRAM)
        assert [f.name for f in unit.functions] == ["compute", "main"]
        assert unit.includes == ("stdio.h", "math.h")

    def test_compute_params(self):
        fn = parse_program(PROGRAM).function("compute")
        assert [p.name for p in fn.params] == ["a", "b", "n", "arr"]
        assert fn.params[3].type.pointers == 1

    def test_missing_function_lookup(self):
        with pytest.raises(KeyError):
            parse_program(PROGRAM).function("nope")

    def test_empty_source_rejected(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_array_param_decays(self):
        unit = parse_program("void compute(double a[]) { double c = a[0]; }")
        assert unit.functions[0].params[0].type.pointers == 1


class TestStatements:
    def test_multi_declarator(self):
        unit = parse_program("void compute(double x) { double a = 1.0, b = 2.0; }")
        decl = unit.functions[0].body.stmts[0]
        assert len(decl.declarators) == 2

    def test_array_decl_sizes(self):
        unit = parse_program("void compute(double x) { double a[8]; }")
        decl = unit.functions[0].body.stmts[0]
        assert decl.declarators[0].array_size == 8

    def test_array_size_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_program("void compute(int n) { double a[n]; }")

    def test_compound_assignment(self):
        unit = parse_program("void compute(double x) { double c = 0.0; c *= x; }")
        assign = unit.functions[0].body.stmts[1]
        assert isinstance(assign, ast.Assign) and assign.op == "*="

    def test_if_else_chain(self):
        unit = parse_program(
            "void compute(double x) { double c=0.0;"
            " if (x > 0.0) c = 1.0; else if (x < 0.0) c = 2.0; else c = 3.0; }"
        )
        stmt = unit.functions[0].body.stmts[1]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.other.stmts[0], ast.If)

    def test_for_variants(self):
        unit = parse_program(
            "void compute(int n) {"
            " double c = 0.0;"
            " for (int i = 0; i < n; i++) { c += 1.0; }"
            " for (int j = 0; j < 4; ++j) { c += 2.0; }"
            " int k;"
            " for (k = 0; k < 2; k = k + 1) { c += 3.0; }"
            "}"
        )
        loops = [s for s in unit.functions[0].body.stmts if isinstance(s, ast.For)]
        assert len(loops) == 3
        assert isinstance(loops[2].init, ast.Assign)

    def test_while(self):
        unit = parse_program(
            "void compute(double x) { double c = x; while (c > 1.0) { c /= 2.0; } }"
        )
        assert isinstance(unit.functions[0].body.stmts[1], ast.While)

    def test_nested_blocks(self):
        unit = parse_program("void compute(double x) { { double y = x; } }")
        assert isinstance(unit.functions[0].body.stmts[0], ast.Block)

    def test_cuda_launch_syntax(self):
        unit = parse_program(
            "void compute(double x) { double c = x; }"
            "int main() { compute<<<1,1>>>(2.0); return 0; }"
        )
        call = unit.function("main").body.stmts[0].expr
        assert isinstance(call, ast.Call) and call.name == "compute"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1.0 + 2.0 * 3.0")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_parens_override(self):
        e = parse_expr("(1.0 + 2.0) * 3.0")
        assert e.op == "*"
        assert isinstance(e.left, ast.Binary) and e.left.op == "+"

    def test_left_associative(self):
        e = parse_expr("1.0 - 2.0 - 3.0")
        assert e.op == "-" and isinstance(e.left, ast.Binary)

    def test_unary_minus(self):
        e = parse_expr("-x * 2.0")
        assert e.op == "*" and isinstance(e.left, ast.Unary)

    def test_ternary(self):
        e = parse_expr("x > 0.0 ? 1.0 : 2.0")
        assert isinstance(e, ast.Ternary)

    def test_ternary_right_assoc(self):
        e = parse_expr("x > 0.0 ? 1.0 : x < 0.0 ? 2.0 : 3.0")
        assert isinstance(e.other, ast.Ternary)

    def test_call_args(self):
        e = parse_expr("pow(x, 2.0) + atan2(x, 1.0)")
        assert e.left.name == "pow" and len(e.left.args) == 2

    def test_cast(self):
        e = parse_expr("(double)1 / 3.0")
        assert e.op == "/"
        assert isinstance(e.left, ast.Cast)

    def test_nested_index(self):
        unit = parse_program("void compute(double *a) { double c = a[1 + 2]; }")
        init = unit.functions[0].body.stmts[0].declarators[0].init
        assert isinstance(init, ast.Index)

    def test_logical_ops(self):
        e = parse_expr("x > 0.0 && x < 1.0 || x == 2.0")
        assert e.op == "||"

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void compute(double x) { double c = (x + 1.0; }")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void compute(double x) { double c = ; }")


class TestWalkers:
    def test_walk_exprs_counts(self):
        e = parse_expr("sin(x) + x * 2.0")
        nodes = list(ast.walk_exprs(e))
        assert sum(isinstance(n, ast.Ident) for n in nodes) == 2
        assert sum(isinstance(n, ast.Call) for n in nodes) == 1

    def test_walk_stmts_finds_nested(self):
        unit = parse_program(PROGRAM)
        stmts = list(ast.walk_stmts(unit.function("compute").body))
        assert any(isinstance(s, ast.If) for s in stmts)
        assert any(isinstance(s, ast.For) for s in stmts)


class TestRoundTrip:
    def test_print_and_reparse(self):
        from repro.frontend.printer import print_c

        unit = parse_program(PROGRAM)
        text = print_c(unit)
        unit2 = parse_program(text)
        assert print_c(unit2) == text  # printing is a fixed point

    def test_expr_rendering_preserves_tree(self):
        src = "((a + b) + c) * (d - (e - f))"
        unit = parse_program(
            "void compute(double a, double b, double c, double d, double e, double f)"
            f" {{ double x = {src}; }}"
        )
        init = unit.functions[0].body.stmts[0].declarators[0].init
        text = expr_to_c(init)
        unit2 = parse_program(
            "void compute(double a, double b, double c, double d, double e, double f)"
            f" {{ double x = {text}; }}"
        )
        init2 = unit2.functions[0].body.stmts[0].declarators[0].init
        assert expr_to_c(init2) == text
