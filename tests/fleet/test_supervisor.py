"""The fleet supervisor's happy path: spawn, heartbeat, merge, serve CLI.

The substrate campaign is tiny (budget 20, ``loops`` approach) but the
workers are *real* ``llm4fp run`` subprocesses — the tests exercise the
exact process tree an operator's ``llm4fp serve`` builds.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.difftest.store import CampaignStore
from repro.experiments.approaches import make_generator
from repro.fleet.events import read_events
from repro.fleet.queue import job_dirname, load_jobs
from repro.fleet.supervisor import (
    CampaignSpec,
    FleetConfig,
    FleetResult,
    ShardState,
    run_fleet,
)
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

BUDGET = 20
SEED = 11


def golden_checkpoint(path, budget=BUDGET, seed=SEED):
    """The unkilled single-process run every fleet is audited against."""
    engine = CampaignEngine(
        default_compilers(), CampaignConfig(budget=budget, seed=seed)
    )
    engine.run(
        make_generator("loops", SplittableRng(seed, "cli-loops")),
        store=CampaignStore(path),
    )
    return path.read_bytes()


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    path = tmp_path_factory.mktemp("golden") / "golden.jsonl"
    return golden_checkpoint(path)


def fast_config(**overrides):
    defaults = dict(workers=2, heartbeat=0.05, stall_timeout=60.0, backoff=0.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestCampaignSpec:
    def test_worker_argv_is_a_real_run_invocation(self, tmp_path):
        spec = CampaignSpec(approach="varity", budget=500, seed=3, jobs="auto",
                            backend="process", compile_cache=False)
        argv = spec.worker_argv(2, 8, tmp_path / "s2.jsonl")
        joined = " ".join(argv)
        assert "-m repro.cli run" in joined
        assert "--shard 2/8" in joined
        assert "--resume" in joined and "s2.jsonl" in joined
        assert "--backend process" in joined
        assert "--jobs auto" in joined
        assert "--no-cache" in joined
        assert "--progress-json" in joined

    def test_unpinned_fields_are_omitted(self, tmp_path):
        argv = CampaignSpec().worker_argv(0, 2, tmp_path / "s.jsonl")
        joined = " ".join(argv)
        assert "--backend" not in joined
        assert "--jobs" not in joined
        assert "--exec-mode" not in joined
        assert "--no-cache" not in joined

    def test_owned_partitions_the_budget(self):
        spec = CampaignSpec(budget=10)
        assert [spec.owned(i, 3) for i in range(3)] == [4, 3, 3]
        assert sum(spec.owned(i, 4) for i in range(4)) == 10

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown job field"):
            CampaignSpec.from_json({"approach": "loops", "budgets": 5})

    def test_from_json_accepts_shards_alongside_spec_fields(self):
        spec = CampaignSpec.from_json(
            {"approach": "varity", "budget": 7, "shards": 3}
        )
        assert spec.approach == "varity" and spec.budget == 7


class TestFleetHappyPath:
    def test_fleet_merge_matches_single_process_run(self, tmp_path, golden):
        result = run_fleet(
            CampaignSpec(approach="loops", budget=BUDGET, seed=SEED),
            shard_count=4,
            workdir=tmp_path / "fleet",
            config=fast_config(),
        )
        assert result.ok and result.status == "ok"
        assert result.deaths == 0
        assert all(s.status == "done" for s in result.shards)
        assert result.merged_path.read_bytes() == golden

    def test_event_log_narrates_the_lifecycle(self, tmp_path):
        result = run_fleet(
            CampaignSpec(approach="loops", budget=6, seed=2),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(),
        )
        events = read_events(result.events_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "fleet-start"
        assert kinds[-1] == "fleet-done"
        assert kinds.count("spawn") == 2
        assert kinds.count("shard-done") == 2
        assert "merge" in kinds
        # timestamps are monotone non-decreasing
        ts = [e["t"] for e in events]
        assert ts == sorted(ts)
        done = events[-1]
        assert done["status"] == "ok" and done["failed_shards"] == []

    def test_per_attempt_worker_logs_capture_json_progress(self, tmp_path):
        result = run_fleet(
            CampaignSpec(approach="loops", budget=4, seed=2),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(),
        )
        assert result.ok
        log = tmp_path / "fleet" / "logs" / "shard0.attempt1.log"
        lines = [json.loads(line) for line in log.read_text().splitlines()
                 if line.startswith("{")]
        assert any(e.get("event") == "program" for e in lines)
        assert any(e.get("event") == "campaign-done" for e in lines)

    def test_more_shards_than_budget(self, tmp_path):
        # shards owning zero indices must complete, not hang the fleet
        golden = golden_checkpoint(tmp_path / "golden.jsonl", budget=2, seed=9)
        result = run_fleet(
            CampaignSpec(approach="loops", budget=2, seed=9),
            shard_count=4,
            workdir=tmp_path / "fleet",
            config=fast_config(),
        )
        assert result.ok
        assert result.merged_path.read_bytes() == golden


class TestServeCli:
    def test_serve_exit_zero_and_summary(self, tmp_path, capsys):
        code = cli_main([
            "serve", "--dir", str(tmp_path / "fleet"), "--shards", "2",
            "--workers", "2", "--approach", "loops", "--budget", "6",
            "--seed", "3", "--heartbeat", "0.05",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "status:      ok" in out
        assert "merged:" in out
        assert (tmp_path / "fleet" / "merged.jsonl").exists()
        assert (tmp_path / "fleet" / "fleet_events.jsonl").exists()

    def test_serve_queue_mode_drains_every_job(self, tmp_path, capsys):
        queue = tmp_path / "jobs.jsonl"
        queue.write_text(
            "# nightly queue\n"
            '{"name": "first", "approach": "loops", "budget": 4, '
            '"seed": 1, "shards": 2}\n'
            "\n"
            '{"approach": "varity", "budget": 4, "seed": 2, "shards": 1}\n'
        )
        code = cli_main([
            "serve", "--dir", str(tmp_path / "fleet"), "--queue", str(queue),
            "--workers", "2", "--heartbeat", "0.05",
        ])
        assert code == 0
        assert (tmp_path / "fleet" / "001-first" / "merged.jsonl").exists()
        assert (tmp_path / "fleet" / "002-varity" / "merged.jsonl").exists()
        out = capsys.readouterr().out
        assert out.count("status:      ok") == 2


class TestQueueFile:
    def test_load_jobs_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('# comment\n\n{"approach": "loops", "shards": 2}\n')
        jobs = load_jobs(path)
        assert len(jobs) == 1
        assert jobs[0][0].approach == "loops" and jobs[0][1] == 2

    def test_malformed_line_fails_fast_with_location(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"approach": "loops"}\n{not json}\n')
        with pytest.raises(ValueError, match="jobs.jsonl:2"):
            load_jobs(path)

    def test_bad_shard_count_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('{"approach": "loops", "shards": 0}\n')
        with pytest.raises(ValueError, match="'shards' must be"):
            load_jobs(path)

    def test_empty_queue_rejected(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no jobs"):
            load_jobs(path)

    def test_job_dirname_sanitizes(self):
        assert job_dirname(3, CampaignSpec(name="a b/c")) == "003-a-b-c"
        assert job_dirname(1, CampaignSpec(approach="loops")) == "001-loops"


class TestFleetResult:
    def test_deaths_aggregates_shards(self, tmp_path):
        shards = [
            ShardState(index=0, checkpoint=tmp_path / "a", owned=5, deaths=2),
            ShardState(index=1, checkpoint=tmp_path / "b", owned=5, deaths=1),
        ]
        result = FleetResult(
            spec=CampaignSpec(), shards=shards, events_path=tmp_path / "e"
        )
        assert result.deaths == 3
        assert not result.ok
