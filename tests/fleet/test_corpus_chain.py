"""Fleet → corpus chaining: ``llm4fp serve --corpus`` ingests every
merged store into the longitudinal corpus after auto-merge."""

from repro.cli import main as cli_main
from repro.corpus import TriggerCorpus
from repro.fleet.events import read_events
from repro.fleet.supervisor import CampaignSpec, FleetConfig, run_fleet

# varity budget 12 / seed 3 reliably produces 3 distinct signatures
SPEC = dict(approach="varity", budget=12, seed=3)


def fast_config(**overrides):
    defaults = dict(workers=2, heartbeat=0.05, stall_timeout=60.0, backoff=0.0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestFleetCorpusChain:
    def test_fleet_ingests_merged_store_into_the_corpus(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        result = run_fleet(
            CampaignSpec(**SPEC),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(),
            corpus_path=corpus,
        )
        assert result.ok
        assert result.corpus_report_path is not None
        assert result.corpus_report_path.exists()
        report = result.corpus_report_path.read_text()
        assert report.startswith("new signatures: 3")
        assert len(TriggerCorpus.load(corpus)) == 3
        kinds = [e["event"] for e in read_events(result.events_path)]
        assert "corpus" in kinds
        corpus_event = next(
            e for e in read_events(result.events_path) if e["event"] == "corpus"
        )
        assert corpus_event["exit_code"] == 0

    def test_second_fleet_of_same_campaign_adds_nothing(self, tmp_path):
        corpus = tmp_path / "corpus.jsonl"
        for generation in range(2):
            result = run_fleet(
                CampaignSpec(**SPEC),
                shard_count=2,
                workdir=tmp_path / f"fleet{generation}",
                config=fast_config(),
                corpus_path=corpus,
            )
            assert result.ok and result.corpus_report_path is not None
        assert result.corpus_report_path.read_text().startswith(
            "new signatures: 0"
        )
        assert len(TriggerCorpus.load(corpus)) == 3

    def test_fleet_without_corpus_skips_the_chain(self, tmp_path):
        result = run_fleet(
            CampaignSpec(approach="loops", budget=4, seed=2),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(),
        )
        assert result.ok
        assert result.corpus_report_path is None
        kinds = [e["event"] for e in read_events(result.events_path)]
        assert "corpus" not in kinds


class TestServeCliCorpus:
    def test_serve_corpus_flag_reaches_the_summary(self, tmp_path, capsys):
        corpus = tmp_path / "corpus.jsonl"
        code = cli_main([
            "serve", "--dir", str(tmp_path / "fleet"), "--shards", "2",
            "--workers", "2", "--approach", "varity", "--budget", "12",
            "--seed", "3", "--heartbeat", "0.05", "--corpus", str(corpus),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "corpus new:" in out
        assert corpus.exists()
        assert len(TriggerCorpus.load(corpus)) == 3
