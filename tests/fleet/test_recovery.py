"""Worker-death recovery: the fleet's headline fault-tolerance contract.

Killing any worker mid-campaign — or watching one wedge and go silent —
must still yield a merged store **byte-identical** to an unkilled
single-process run, with the death and reassignment on the record in
``fleet_events.jsonl``.
"""

import random
import sys

import pytest

from repro.fleet.events import read_events
from repro.fleet.supervisor import CampaignSpec, FleetConfig, run_fleet
from repro.fleet.targets import LocalProcessTarget, WorkerTarget

from test_supervisor import BUDGET, SEED, fast_config, golden  # noqa: F401

OWNED_MIN = BUDGET // 4  # smallest shard of a 4-way split


class ScriptedTarget(WorkerTarget):
    """Substitutes a scripted command for chosen (shard, attempt) launches.

    Exercises the :class:`WorkerTarget` plug point the way an ssh or
    container target would use it: the supervisor never learns that some
    launches went somewhere strange — it just watches checkpoints.
    """

    def __init__(self, script):
        # script: {(shard, attempt): argv_override}
        self._real = LocalProcessTarget()
        self._script = dict(script)
        self._attempts: dict[int, int] = {}
        self.launches: list[tuple[int, int]] = []

    async def launch(self, argv, log_path=None):
        shard = int(argv[argv.index("--shard") + 1].split("/")[0])
        attempt = self._attempts.get(shard, 0) + 1
        self._attempts[shard] = attempt
        self.launches.append((shard, attempt))
        override = self._script.get((shard, attempt))
        return await self._real.launch(override or argv, log_path)


SLEEPER = [sys.executable, "-c", "import time; time.sleep(60)"]
INSTANT_DEATH = [sys.executable, "-c", "raise SystemExit(3)"]


class TestKilledWorker:
    def test_sigkill_mid_run_heals_byte_identically(self, tmp_path, golden):
        # the acceptance drill: 4 shards, 2 workers, one worker SIGKILLed
        # at a randomized row count strictly inside its shard's work
        kill_after = random.Random().randint(1, OWNED_MIN - 2)
        result = run_fleet(
            CampaignSpec(approach="loops", budget=BUDGET, seed=SEED),
            shard_count=4,
            workdir=tmp_path / "fleet",
            config=fast_config(chaos_kill_after=kill_after),
        )
        assert result.ok, f"fleet did not recover (kill_after={kill_after})"
        assert result.deaths == 1
        assert result.merged_path.read_bytes() == golden

        events = read_events(result.events_path)
        kinds = [e["event"] for e in events]
        assert "chaos-kill" in kinds
        deaths = [e for e in events if e["event"] == "death"]
        assert len(deaths) == 1
        assert deaths[0]["exit_code"] == -9  # SIGKILL, as promised
        assert deaths[0]["rows"] < deaths[0]["owned"]
        reassigns = [e for e in events if e["event"] == "reassign"]
        assert len(reassigns) == 1
        assert reassigns[0]["shard"] == deaths[0]["shard"]
        assert reassigns[0]["resuming_rows"] == deaths[0]["rows"]
        # the healed shard took exactly two attempts
        healed = [s for s in result.shards if s.index == deaths[0]["shard"]]
        assert healed[0].attempts == 2 and healed[0].status == "done"

    def test_dead_on_arrival_worker_is_retried(self, tmp_path):
        # attempt 1 exits immediately without writing a row; attempt 2 is
        # the real worker and completes the shard
        target = ScriptedTarget({(0, 1): INSTANT_DEATH})
        result = run_fleet(
            CampaignSpec(approach="loops", budget=6, seed=4),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(),
            target=target,
        )
        assert result.ok
        events = read_events(result.events_path)
        deaths = [e for e in events if e["event"] == "death"]
        assert deaths and deaths[0]["exit_code"] == 3
        assert (0, 2) in target.launches


class TestKilledIslandWorker:
    """The island-model variant of the kill drill: migrant exchange state
    lives in the checkpoints, so a SIGKILLed island must resume, re-emit
    byte-identical island records, and merge to the unsharded run."""

    MERGE_EVERY = 2

    @pytest.fixture(scope="class")
    def island_golden(self, tmp_path_factory):
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine, EngineConfig
        from repro.difftest.store import CampaignStore
        from repro.experiments.approaches import make_generator
        from repro.toolchains import default_compilers
        from repro.utils.rng import SplittableRng

        path = tmp_path_factory.mktemp("island-golden") / "golden.jsonl"
        CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=BUDGET, seed=SEED),
            EngineConfig(islands=4, merge_every=self.MERGE_EVERY),
        ).run(
            make_generator("llm4fp", SplittableRng(SEED, "cli-llm4fp")),
            store=CampaignStore(path),
        )
        return path.read_bytes()

    def test_sigkill_and_reassign_keeps_merge_points_byte_identical(
        self, tmp_path, island_golden
    ):
        kill_after = random.Random().randint(1, OWNED_MIN - 2)
        result = run_fleet(
            CampaignSpec(
                approach="llm4fp",
                budget=BUDGET,
                seed=SEED,
                islands=4,
                merge_every=self.MERGE_EVERY,
            ),
            shard_count=4,
            workdir=tmp_path / "fleet",
            config=fast_config(chaos_kill_after=kill_after),
        )
        assert result.ok, f"island fleet did not recover (kill_after={kill_after})"
        assert result.deaths == 1
        assert result.merged_path.read_bytes() == island_golden

        events = read_events(result.events_path)
        kinds = [e["event"] for e in events]
        assert "chaos-kill" in kinds and "reassign" in kinds
        healed = [s for s in result.shards if s.attempts == 2]
        assert len(healed) == 1 and healed[0].status == "done"


class TestStalledWorker:
    def test_stalled_heartbeat_triggers_kill_and_reassign(self, tmp_path):
        # attempt 1 is alive but writes no checkpoint rows: liveness is
        # judged from the artefact, so the supervisor must kill it
        target = ScriptedTarget({(0, 1): SLEEPER})
        result = run_fleet(
            CampaignSpec(approach="loops", budget=6, seed=4),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(stall_timeout=1.5),
            target=target,
        )
        assert result.ok
        events = read_events(result.events_path)
        stalls = [e for e in events if e["event"] == "stall"]
        assert len(stalls) == 1
        assert stalls[0]["shard"] == 0 and stalls[0]["rows"] == 0
        assert stalls[0]["exit_code"] is None
        kinds = [e["event"] for e in events]
        assert "reassign" in kinds
        assert all(s.status == "done" for s in result.shards)


class TestRetryExhaustion:
    def test_partial_verdict_instead_of_a_hang(self, tmp_path):
        # shard 1's worker dies on every attempt; the fleet must settle,
        # not hang, and must not fabricate a merged store
        target = ScriptedTarget({(1, k): INSTANT_DEATH for k in range(1, 10)})
        result = run_fleet(
            CampaignSpec(approach="loops", budget=6, seed=4),
            shard_count=2,
            workdir=tmp_path / "fleet",
            config=fast_config(max_retries=1),
            target=target,
        )
        assert not result.ok and result.status == "partial"
        assert result.merged_path is None
        failed = [s for s in result.shards if s.status == "failed"]
        assert [s.index for s in failed] == [1]
        assert failed[0].attempts == 2  # initial + max_retries
        events = read_events(result.events_path)
        kinds = [e["event"] for e in events]
        assert "shard-failed" in kinds
        assert "merge" not in kinds
        done = events[-1]
        assert done["event"] == "fleet-done"
        assert done["status"] == "partial" and done["failed_shards"] == [1]
        # the healthy shard still finished its work
        assert [s.status for s in result.shards if s.index == 0] == ["done"]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(workers=0),
            dict(heartbeat=0),
            dict(stall_timeout=0),
            dict(max_retries=-1),
            dict(backoff=-0.1),
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FleetConfig(**kwargs)
