"""The fleet event log: monotonic timestamps, durability, crash tails."""

import pytest

from repro.fleet.events import EVENT_KINDS, FleetEventLog, read_events


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now


class TestFleetEventLog:
    def test_round_trip_in_emit_order(self, tmp_path):
        log = FleetEventLog(tmp_path / "events.jsonl", clock=FakeClock())
        log.emit("fleet-start", shards=2, workers=2)
        log.emit("spawn", shard=0, attempt=1, pid=123)
        events = read_events(log.path)
        assert [e["event"] for e in events] == ["fleet-start", "spawn"]
        assert events[1]["shard"] == 0 and events[1]["pid"] == 123

    def test_timestamps_are_monotonic_seconds_since_start(self, tmp_path):
        clock = FakeClock(start=5000.0)  # large epoch: must not leak through
        log = FleetEventLog(tmp_path / "events.jsonl", clock=clock)
        log.emit("fleet-start")
        clock.now += 1.5
        log.emit("spawn", shard=0, attempt=1, pid=1)
        clock.now += 0.25
        log.emit("death", shard=0, attempt=1, rows=3)
        ts = [e["t"] for e in read_events(log.path)]
        assert ts == [0.0, 1.5, 1.75]

    def test_unknown_event_kind_rejected(self, tmp_path):
        log = FleetEventLog(tmp_path / "events.jsonl")
        with pytest.raises(ValueError, match="unknown fleet event"):
            log.emit("worker-exploded")

    def test_emit_returns_the_record_written(self, tmp_path):
        log = FleetEventLog(tmp_path / "events.jsonl", clock=FakeClock())
        record = log.emit("merge", path="merged.jsonl", shards=4)
        assert record == {"t": 0.0, "event": "merge", "path": "merged.jsonl",
                          "shards": 4}

    def test_partial_final_line_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = FleetEventLog(path, clock=FakeClock())
        log.emit("fleet-start")
        log.emit("spawn", shard=0, attempt=1, pid=1)
        with path.open("ab") as f:
            f.write(b'{"t":9.9,"event":"death","sh')  # supervisor died here
        events = read_events(path)
        assert [e["event"] for e in events] == ["fleet-start", "spawn"]

    def test_creates_parent_directories(self, tmp_path):
        log = FleetEventLog(tmp_path / "deep" / "nested" / "events.jsonl")
        log.emit("fleet-start")
        assert log.path.exists()

    def test_every_supervisor_kind_is_registered(self):
        # the supervisor emits only registered kinds; keep the registry
        # honest by asserting the lifecycle core is present
        for kind in ("spawn", "progress", "death", "stall", "reassign",
                     "shard-done", "shard-failed", "merge", "fleet-done"):
            assert kind in EVENT_KINDS
