"""Island campaigns through the engine: the determinism contract.

Fixed ``(seed, islands, merge_every)`` must yield byte-identical merged
checkpoints no matter the backend, the shard topology (one process vs
one store per island), or where a crash interrupted the run.
"""

import json

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.store import (
    CampaignStore,
    load_result,
    merge_shard_stores,
    read_island_records,
)
from repro.experiments.approaches import make_generator
from repro.generation.islands import derive_peer_paths
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

BUDGET = 12
SEED = 7
ISLANDS = 2
MERGE_EVERY = 3


def _generator(seed=SEED):
    return make_generator("llm4fp", SplittableRng(seed, "cli-llm4fp"))


def _run(path, *, budget=BUDGET, seed=SEED, backend="thread", jobs=1,
         shard=(0, 1), islands=ISLANDS, merge_every=MERGE_EVERY, peers=()):
    engine = CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=budget, seed=seed),
        EngineConfig(
            backend=backend,
            jobs=jobs,
            shard_index=shard[0],
            shard_count=shard[1],
            islands=islands,
            merge_every=merge_every,
            island_peers=peers,
        ),
    )
    return engine.run(_generator(seed), store=CampaignStore(path))


@pytest.fixture(scope="module")
def unsharded(tmp_path_factory):
    """The reference island checkpoint every variant is audited against."""
    path = tmp_path_factory.mktemp("islands") / "golden.jsonl"
    _run(path)
    return path


class TestBackendIdentity:
    @pytest.mark.parametrize(
        "backend, jobs", [("serial", 1), ("thread", 4), ("process", 2)]
    )
    def test_backends_agree_byte_for_byte(self, tmp_path, unsharded, backend, jobs):
        path = tmp_path / f"{backend}.jsonl"
        _run(path, backend=backend, jobs=jobs)
        assert path.read_bytes() == unsharded.read_bytes()


class TestShardedIslands:
    def test_sequential_shards_merge_byte_identically(self, tmp_path, unsharded):
        # Strictly sequential shard runs — the worst-case schedule the
        # ladder topology must tolerate: island k only ever waits on
        # boundaries islands j < k already wrote.
        paths = [tmp_path / f"shard{k}.jsonl" for k in range(ISLANDS)]
        for k in range(ISLANDS):
            peers = tuple(
                str(p) for p in derive_peer_paths(paths[k], k, ISLANDS)
            )
            _run(paths[k], shard=(k, ISLANDS), peers=peers)
        merged = merge_shard_stores(paths, tmp_path / "merged.jsonl")
        assert merged.read_bytes() == unsharded.read_bytes()

    def test_sharded_islands_without_store_rejected(self):
        engine = CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=BUDGET, seed=SEED),
            EngineConfig(shard_index=0, shard_count=ISLANDS, islands=ISLANDS),
        )
        with pytest.raises(ValueError, match="checkpoint store"):
            engine.run(_generator())

    def test_classic_sharding_of_feedback_generator_rejected(self):
        engine = CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=BUDGET, seed=SEED),
            EngineConfig(shard_index=0, shard_count=2),
        )
        with pytest.raises(ValueError, match="feedback.*--islands 2"):
            engine.run(_generator())

    def test_island_peers_require_islands(self):
        with pytest.raises(ValueError, match="island_peers"):
            EngineConfig(island_peers=("a.jsonl",))

    def test_island_shard_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="one island per shard"):
            EngineConfig(shard_index=0, shard_count=2, islands=4)


class TestResume:
    def test_truncated_store_resumes_byte_identically(self, tmp_path, unsharded):
        # Chop the checkpoint just past an island record (simulating a
        # crash between a merge point and the next program): the resumed
        # run replays the boundary and reproduces the exact file.
        full = unsharded.read_bytes()
        lines = full.splitlines(keepends=True)
        kinds = [json.loads(line).get("kind") for line in lines]
        cut = kinds.index("island") + 1
        assert cut < len(lines)
        path = tmp_path / "resume.jsonl"
        path.write_bytes(b"".join(lines[: cut + 1]))
        _run(path)
        assert path.read_bytes() == full

    def test_record_lost_with_its_boundary_outcome_is_recomputed(
        self, tmp_path, unsharded
    ):
        # Crash *before* the boundary outcome was durable: outcome and
        # island record are both missing and both get regenerated.
        full = unsharded.read_bytes()
        lines = full.splitlines(keepends=True)
        cut = [json.loads(line).get("kind") for line in lines].index("island")
        path = tmp_path / "resume.jsonl"
        path.write_bytes(b"".join(lines[:cut - 1]))
        _run(path)
        assert path.read_bytes() == full

    def test_resume_with_wrong_island_shape_names_the_field(
        self, tmp_path, unsharded
    ):
        path = tmp_path / "resume.jsonl"
        path.write_bytes(unsharded.read_bytes())
        with pytest.raises(Exception, match="merge_every"):
            _run(path, merge_every=MERGE_EVERY + 1)


class TestCheckpointShape:
    def test_header_names_the_island_shape(self, unsharded):
        header = json.loads(unsharded.read_text().splitlines()[0])
        assert header["islands"] == ISLANDS
        assert header["merge_every"] == MERGE_EVERY
        # classic campaigns write the pre-v4 implied identity
        assert EngineConfig().islands == 0

    def test_island_records_sit_after_their_boundary_outcome(self, unsharded):
        records = [json.loads(line) for line in unsharded.read_text().splitlines()]
        for pos, record in enumerate(records):
            if record.get("kind") != "island":
                continue
            prev = records[pos - 1]
            assert prev["kind"] == "outcome"
            assert prev["index"] == record["after"]
            assert record["after"] % ISLANDS == record["island"]

    def test_read_island_records_and_load_result_agree(self, unsharded):
        records = read_island_records(unsharded)
        # budget 12, 2 islands x 6 owned, a boundary every 3: 4 records
        assert [(r["island"], r["generation"]) for r in records] == [
            (0, 1), (1, 1), (0, 2), (1, 2)
        ]
        result = load_result(unsharded)
        assert [o.index for o in result.outcomes] == list(range(BUDGET))

    def test_read_island_records_missing_file(self, tmp_path):
        assert read_island_records(tmp_path / "nope.jsonl") == []

    def test_island_run_differs_from_uniform_run(self, tmp_path, unsharded):
        # the point of the exercise: fitness-guided island evolution is a
        # different (not byte-equal) stream than uniform mutation
        path = tmp_path / "uniform.jsonl"
        _run(path, islands=0)
        assert path.read_bytes() != unsharded.read_bytes()
