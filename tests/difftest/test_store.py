"""The campaign checkpoint store: bit-exact round-trips, crash recovery,
resume, header validation."""

import json
import math

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.store import (
    CampaignStore,
    CampaignStoreError,
    decode_outcome,
    encode_outcome,
    load_result,
    merge_shard_stores,
    merge_shards,
    tail_outcomes,
)
from repro.experiments.approaches import make_generator
from repro.toolchains import GccCompiler, NvccCompiler, OptLevel, default_compilers
from repro.utils.rng import SplittableRng

from conftest import HEADER, make_outcome, outcome_bits, write_legacy_checkpoint
from test_engine import result_key

_outcome_bits = outcome_bits


class TestRoundTrip:
    def test_outcome_round_trips_bit_exactly(self):
        outcome = make_outcome()
        decoded = decode_outcome(encode_outcome(outcome))
        assert _outcome_bits(decoded) == _outcome_bits(outcome)

    def test_encoding_is_json_serializable(self):
        line = json.dumps(encode_outcome(make_outcome()))
        assert _outcome_bits(decode_outcome(json.loads(line))) == _outcome_bits(
            make_outcome()
        )

    def test_int_inputs_stay_ints(self):
        decoded = decode_outcome(encode_outcome(make_outcome()))
        assert decoded.program.inputs[2] == 7
        assert type(decoded.program.inputs[2]) is int
        assert type(decoded.program.inputs[0]) is float

    def test_signed_zero_and_nan_preserved(self):
        decoded = decode_outcome(encode_outcome(make_outcome()))
        assert math.copysign(1.0, decoded.values["clang/O2"]) == -1.0
        assert math.isnan(decoded.values["gcc/O0"])


class TestStoreFile:
    def test_open_append_reload(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        assert store.open(HEADER) == {}
        store.append(make_outcome(0))
        store.append(make_outcome(1))
        done = CampaignStore(store.path).open(HEADER)
        assert sorted(done) == [0, 1]
        assert _outcome_bits(done[1]) == _outcome_bits(make_outcome(1))

    def test_creates_parent_directories(self, tmp_path):
        store = CampaignStore(tmp_path / "deep" / "nested" / "c.jsonl")
        store.open(HEADER)
        assert store.path.exists()

    def test_header_mismatch_rejected(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(HEADER)
        other = dict(HEADER, seed=2)
        with pytest.raises(CampaignStoreError, match="different campaign"):
            CampaignStore(store.path).open(other)

    def test_crash_tail_truncated_and_recovered(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(HEADER)
        store.append(make_outcome(0))
        # simulate a crash mid-append: a half-written record at EOF
        with store.path.open("a", encoding="utf-8") as f:
            f.write('{"kind": "outcome", "index": 1, "progr')
        done = CampaignStore(store.path).open(HEADER)
        assert sorted(done) == [0]
        # the partial line is gone; appending again yields a clean file
        store2 = CampaignStore(store.path)
        store2.open(HEADER)
        store2.append(make_outcome(1))
        assert sorted(CampaignStore(store.path).open(HEADER)) == [0, 1]

    def test_refuses_to_overwrite_foreign_file(self, tmp_path):
        # --resume pointed at a file that is not a checkpoint must never
        # destroy it
        path = tmp_path / "notes.txt"
        path.write_text("important non-JSON notes\n")
        with pytest.raises(CampaignStoreError, match="refusing to overwrite"):
            CampaignStore(path).open(HEADER)
        assert path.read_text() == "important non-JSON notes\n"

    def test_unknown_record_kind_rejected(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(HEADER)
        with store.path.open("a", encoding="utf-8") as f:
            f.write('{"kind": "mystery"}\n')
        with pytest.raises(CampaignStoreError, match="mystery"):
            CampaignStore(store.path).open(HEADER)


class _KillAfter:
    """Progress callback that dies after n completed programs."""

    class Dead(RuntimeError):
        pass

    def __init__(self, n):
        self.remaining = n

    def __call__(self, index, outcome):
        self.remaining -= 1
        if self.remaining == 0:
            raise self.Dead(f"killed at program {index}")


def _engine(budget, engine_config=None):
    return CampaignEngine(
        default_compilers(),
        CampaignConfig(budget=budget),
        engine_config or EngineConfig(),
    )


def _generator(approach="varity", seed=123):
    return make_generator(approach, SplittableRng(seed, f"engine-{approach}"))


class TestResume:
    @pytest.mark.parametrize("approach", ["varity", "llm4fp"])
    def test_killed_campaign_resumes_bit_identically(self, tmp_path, approach):
        budget = 6
        baseline = _engine(budget).run(_generator(approach))
        path = tmp_path / "campaign.jsonl"
        with pytest.raises(_KillAfter.Dead):
            _engine(budget).run(
                _generator(approach),
                progress=_KillAfter(3),
                store=CampaignStore(path),
            )
        checkpointed = sum(1 for _ in path.open()) - 1  # minus header
        assert checkpointed == 3
        resumed = _engine(budget).run(
            _generator(approach), store=CampaignStore(path)
        )
        assert result_key(resumed) == result_key(baseline)
        # the full campaign is now checkpointed
        assert sorted(CampaignStore(path).open(
            _engine(budget)._store_header(baseline)
        )) == list(range(budget))

    def test_resume_skips_recompute(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _engine(4).run(_generator(), store=CampaignStore(path))
        fresh = _engine(4)
        result = fresh.run(_generator(), store=CampaignStore(path))
        # everything replayed from the store: no compiles, no executions
        assert result.total_runs == 0
        assert result.cache_misses == 0
        assert len(result.outcomes) == 4

    def test_wrong_seed_store_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        _engine(4).run(_generator(seed=123), store=CampaignStore(path))
        with pytest.raises(CampaignStoreError, match="different campaign"):
            CampaignEngine(
                default_compilers(),
                CampaignConfig(budget=4, seed=999),
                EngineConfig(),
            ).run(_generator(seed=999), store=CampaignStore(path))

    def test_replay_source_mismatch_detected(self, tmp_path):
        # same campaign identity, different stored program => corruption
        path = tmp_path / "campaign.jsonl"
        engine = _engine(4)
        engine.run(_generator(), store=CampaignStore(path))
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["program"]["source"] = "void compute(double x) {}"
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="checkpoint mismatch"):
            _engine(4).run(_generator(), store=CampaignStore(path))

    def test_sharded_resume(self, tmp_path):
        budget = 6
        config = EngineConfig(shard_index=1, shard_count=2)
        baseline = _engine(budget, config).run(_generator())
        path = tmp_path / "shard1.jsonl"
        with pytest.raises(_KillAfter.Dead):
            _engine(budget, config).run(
                _generator(), progress=_KillAfter(2), store=CampaignStore(path)
            )
        resumed = _engine(budget, config).run(
            _generator(), store=CampaignStore(path)
        )
        assert result_key(resumed) == result_key(baseline)


class TestLoadResult:
    """The multi-machine half of sharding: checkpoints reload into
    CampaignResults that merge bit-identically."""

    def test_sharded_checkpoints_load_and_merge(self, tmp_path):
        budget = 6
        unsharded = _engine(budget).run(_generator())
        paths = []
        for i in range(2):
            path = tmp_path / f"shard{i}.jsonl"
            _engine(
                budget, EngineConfig(shard_index=i, shard_count=2)
            ).run(_generator(), store=CampaignStore(path))
            paths.append(path)
        loaded = [load_result(p) for p in paths]
        assert [r.shard_index for r in loaded] == [0, 1]
        merged = merge_shards(loaded)
        assert result_key(merged) == result_key(unsharded)

    def test_loaded_result_matches_in_memory(self, tmp_path):
        path = tmp_path / "c.jsonl"
        in_memory = _engine(4).run(_generator(), store=CampaignStore(path))
        assert result_key(load_result(path)) == result_key(in_memory)

    def test_load_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("not a checkpoint\n")
        with pytest.raises(CampaignStoreError, match="not a campaign checkpoint"):
            load_result(path)


class TestTailOutcomes:
    """Incremental progress reads — the fleet supervisor's heartbeat."""

    def test_tail_reads_are_incremental(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _engine(4).run(_generator(), store=CampaignStore(path))
        indices, offset = tail_outcomes(path)
        assert indices == [0, 1, 2, 3]
        assert offset == path.stat().st_size
        # nothing new since: an empty read from the same offset
        again, offset2 = tail_outcomes(path, offset)
        assert again == [] and offset2 == offset

    def test_new_rows_appear_after_the_offset(self, tmp_path):
        path = tmp_path / "c.jsonl"
        engine = _engine(2)
        result = engine.run(_generator(), store=CampaignStore(path))
        _, offset = tail_outcomes(path)
        # another process appends one more record
        extra = encode_outcome(result.outcomes[0])
        extra["index"] = 2
        with path.open("a") as f:
            f.write(json.dumps(extra, separators=(",", ":")) + "\n")
        indices, _ = tail_outcomes(path, offset)
        assert indices == [2]

    def test_partial_final_line_left_for_next_call(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _engine(2).run(_generator(), store=CampaignStore(path))
        _, complete = tail_outcomes(path)
        with path.open("ab") as f:
            f.write(b'{"kind":"outcome","index":2')  # mid-append
        indices, offset = tail_outcomes(path)
        assert indices == [0, 1]
        assert offset == complete  # the torn tail was not consumed

    def test_missing_file_reads_as_no_progress(self, tmp_path):
        assert tail_outcomes(tmp_path / "nope.jsonl") == ([], 0)

    def test_header_is_consumed_but_not_reported(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignStore(path).open({"approach": "x", "budget": 1})
        indices, offset = tail_outcomes(path)
        assert indices == []
        assert offset == path.stat().st_size


class TestMergeShardStores:
    """Byte-level shard splicing — the fleet's merged-store contract."""

    def _shard_files(self, tmp_path, budget=6, count=2):
        paths = []
        for i in range(count):
            path = tmp_path / f"shard{i}.jsonl"
            _engine(
                budget, EngineConfig(shard_index=i, shard_count=count)
            ).run(_generator(), store=CampaignStore(path))
            paths.append(path)
        return paths

    def test_merged_file_byte_identical_to_unsharded_checkpoint(self, tmp_path):
        budget = 6
        golden = tmp_path / "golden.jsonl"
        _engine(budget).run(_generator(), store=CampaignStore(golden))
        paths = self._shard_files(tmp_path, budget=budget)
        out = merge_shard_stores(paths, tmp_path / "merged.jsonl")
        assert out.read_bytes() == golden.read_bytes()

    def test_merged_file_loads_as_an_unsharded_result(self, tmp_path):
        paths = self._shard_files(tmp_path)
        out = merge_shard_stores(paths, tmp_path / "merged.jsonl")
        result = load_result(out)
        assert (result.shard_index, result.shard_count) == (0, 1)
        assert [o.index for o in result.outcomes] == list(range(6))

    def test_missing_shard_rejected(self, tmp_path):
        paths = self._shard_files(tmp_path)
        with pytest.raises(CampaignStoreError, match="missing"):
            merge_shard_stores(paths[:1], tmp_path / "merged.jsonl")

    def test_duplicate_coverage_rejected(self, tmp_path):
        paths = self._shard_files(tmp_path)
        with pytest.raises(CampaignStoreError, match="duplicate outcome"):
            merge_shard_stores(
                [paths[0], paths[0], paths[1]], tmp_path / "merged.jsonl"
            )

    def test_foreign_campaign_rejected(self, tmp_path):
        paths = self._shard_files(tmp_path)
        other = tmp_path / "other0.jsonl"
        CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=6, seed=999),
            EngineConfig(shard_index=0, shard_count=2),
        ).run(_generator(seed=999), store=CampaignStore(other))
        with pytest.raises(CampaignStoreError, match="different campaigns"):
            merge_shard_stores([other, paths[1]], tmp_path / "merged.jsonl")

    def test_non_checkpoint_input_rejected(self, tmp_path):
        junk = tmp_path / "junk.txt"
        junk.write_text("hello\n")
        with pytest.raises(CampaignStoreError, match="not a campaign checkpoint"):
            merge_shard_stores([junk], tmp_path / "merged.jsonl")

    def test_failed_merge_writes_nothing(self, tmp_path):
        paths = self._shard_files(tmp_path)
        out = tmp_path / "merged.jsonl"
        with pytest.raises(CampaignStoreError):
            merge_shard_stores(paths[:1], out)
        assert not out.exists()

    def test_cli_merge_command(self, tmp_path, capsys):
        from repro.cli import main

        budget = 6
        paths = []
        for i in range(2):
            path = tmp_path / f"shard{i}.jsonl"
            _engine(
                budget, EngineConfig(shard_index=i, shard_count=2)
            ).run(_generator(), store=CampaignStore(path))
            paths.append(str(path))
        assert main(["merge", *paths]) == 0
        out = capsys.readouterr().out
        assert "shards merged:        2" in out
        assert "programs:             6" in out


class TestLegacyVersions:
    """Read-side compat: v1/v2 nightly checkpoints stay usable."""

    def test_v1_file_loads_with_none_tags(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        write_legacy_checkpoint(path, version=1)
        result = load_result(path)
        assert len(result.outcomes) == 2
        comparisons = result.outcomes[0].comparisons
        assert comparisons and all(c.tag is None for c in comparisons)
        # bit-exact payloads survive the version bridge
        assert math.isnan(result.outcomes[0].values["gcc/O0"])

    def test_v2_file_loads(self, tmp_path):
        path = tmp_path / "v2.jsonl"
        write_legacy_checkpoint(path, version=2)
        result = load_result(path)
        assert [o.index for o in result.outcomes] == [0, 1]
        assert result.outcomes[0].comparisons[1].tag == "vector-reduction"

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        write_legacy_checkpoint(path, version=99)
        with pytest.raises(CampaignStoreError, match="unsupported checkpoint"):
            load_result(path)

    def test_resume_accepts_legacy_header(self, tmp_path):
        # --resume pointed at an old-version checkpoint of the *same*
        # campaign replays its rows instead of rejecting the file.
        path = tmp_path / "v1.jsonl"
        write_legacy_checkpoint(path, version=1)
        done = CampaignStore(path).open(HEADER)
        assert sorted(done) == [0, 1]
        assert all(c.tag is None for c in done[0].comparisons)

    def test_legacy_resume_upgrades_header_in_place(self, tmp_path):
        # After a legacy open the header names the current (newest
        # writer's) version while the legacy record bytes are untouched,
        # so rows appended by the resumed campaign never sit under a
        # stale version label.
        from repro.difftest.store import _FORMAT_VERSION

        path = tmp_path / "v1.jsonl"
        write_legacy_checkpoint(path, version=1)
        old_records = path.read_bytes().partition(b"\n")[2]
        CampaignStore(path).open(HEADER)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["version"] == _FORMAT_VERSION
        assert path.read_bytes().partition(b"\n")[2] == old_records
        # reopening is now the plain (non-legacy) path
        assert sorted(CampaignStore(path).open(HEADER)) == [0, 1]

    def test_resume_rejects_legacy_header_of_other_campaign(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        write_legacy_checkpoint(path, version=1)
        with pytest.raises(CampaignStoreError, match="different campaign"):
            CampaignStore(path).open(dict(HEADER, seed=42))

    def test_resume_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        write_legacy_checkpoint(path, version=99)
        with pytest.raises(CampaignStoreError, match="different campaign"):
            CampaignStore(path).open(HEADER)

    def test_v1_triggers_load_for_triage(self, tmp_path):
        from repro.difftest.store import load_triggers

        path = tmp_path / "v1.jsonl"
        write_legacy_checkpoint(path, version=1)
        triggers = load_triggers(path)
        assert [o.index for o in triggers] == [0, 1]

    def test_v1_shards_merge(self, tmp_path):
        # One complete legacy shard set splices like a current one.
        paths = []
        for i in range(2):
            path = tmp_path / f"v1-shard{i}.jsonl"
            header = {
                "kind": "campaign",
                "version": 1,
                **HEADER,
                "shard_index": i,
                "shard_count": 2,
            }
            record = encode_outcome(make_outcome(i))
            for comparison in record["comparisons"]:
                del comparison["tag"]
            path.write_text(
                json.dumps(header) + "\n" + json.dumps(record) + "\n",
                encoding="utf-8",
            )
            paths.append(path)
        merged = merge_shards([load_result(p) for p in paths])
        assert [o.index for o in merged.outcomes] == [0, 1]


class TestHeaderDiagnostics:
    """The identity check names exactly the mismatching fields."""

    def test_single_mismatching_field_named(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(HEADER)
        with pytest.raises(CampaignStoreError, match="mismatched: seed"):
            CampaignStore(store.path).open(dict(HEADER, seed=2))

    def test_all_mismatching_fields_named_sorted(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(HEADER)
        other = dict(HEADER, budget=9, seed=2, islands=4, merge_every=10)
        with pytest.raises(
            CampaignStoreError,
            match="mismatched: budget, islands, merge_every, seed",
        ):
            CampaignStore(store.path).open(other)

    def test_island_shape_alone_is_a_different_campaign(self, tmp_path):
        # same seed/budget but a different island partition generates a
        # different program stream — resume must refuse, and say why
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(dict(HEADER, islands=2, merge_every=5))
        with pytest.raises(CampaignStoreError, match="mismatched: islands"):
            CampaignStore(store.path).open(dict(HEADER, islands=4, merge_every=5))


class TestIslandRecords:
    ISLAND = {
        "kind": "island",
        "island": 0,
        "generation": 1,
        "after": 0,
        "migrants": [{"source": "s", "signature": [["kind"], []], "strategy": None}],
    }

    def _island_file(self, tmp_path):
        store = CampaignStore(tmp_path / "c.jsonl")
        store.open(dict(HEADER, islands=1, merge_every=1))
        store.append(make_outcome(0))
        store.append_island(self.ISLAND)
        store.append(make_outcome(1))
        return store

    def test_append_island_round_trips_on_open(self, tmp_path):
        store = self._island_file(tmp_path)
        assert store.island_records == [self.ISLAND]
        reopened = CampaignStore(store.path)
        done = reopened.open(dict(HEADER, islands=1, merge_every=1))
        assert sorted(done) == [0, 1]
        assert reopened.island_records == [self.ISLAND]

    def test_read_island_records_without_identity(self, tmp_path):
        # triage/merge tooling reads island records with no expected
        # header to validate against
        from repro.difftest.store import read_island_records

        store = self._island_file(tmp_path)
        assert read_island_records(store.path) == [self.ISLAND]

    def test_load_result_skips_island_records(self, tmp_path):
        store = self._island_file(tmp_path)
        result = load_result(store.path)
        assert [o.index for o in result.outcomes] == [0, 1]

    def test_merge_splices_island_records_after_their_outcome(self, tmp_path):
        # a single complete 1-island "shard set": the merged file keeps
        # the record at its original file position (right after index 0)
        store = self._island_file(tmp_path)
        src = store.path.rename(tmp_path / "shard0.jsonl")
        out = merge_shard_stores([src], tmp_path / "merged.jsonl")
        kinds = [json.loads(line)["kind"] for line in out.read_text().splitlines()]
        assert kinds == ["campaign", "outcome", "island", "outcome"]
        merged_rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert merged_rows[2] == self.ISLAND

    def test_other_unknown_kinds_still_rejected(self, tmp_path):
        store = self._island_file(tmp_path)
        with store.path.open("a", encoding="utf-8") as f:
            f.write('{"kind": "archipelago"}\n')
        with pytest.raises(CampaignStoreError, match="archipelago"):
            CampaignStore(store.path).open(dict(HEADER, islands=1, merge_every=1))


class TestV3Legacy:
    """v3 checkpoints predate the island fields: their headers imply
    ``islands=0, merge_every=0`` and stay resumable/mergeable."""

    def test_v3_resumes_as_an_island_free_campaign(self, tmp_path):
        from repro.difftest.store import _FORMAT_VERSION

        path = tmp_path / "v3.jsonl"
        write_legacy_checkpoint(path, version=3)
        done = CampaignStore(path).open(dict(HEADER, islands=0, merge_every=0))
        assert sorted(done) == [0, 1]
        header = json.loads(path.read_text().splitlines()[0])
        assert header["version"] == _FORMAT_VERSION

    def test_v3_rejected_for_an_island_campaign(self, tmp_path):
        path = tmp_path / "v3.jsonl"
        write_legacy_checkpoint(path, version=3)
        with pytest.raises(CampaignStoreError, match="mismatched: islands"):
            CampaignStore(path).open(dict(HEADER, islands=2, merge_every=5))

    def test_v3_loads_for_triage(self, tmp_path):
        path = tmp_path / "v3.jsonl"
        write_legacy_checkpoint(path, version=3)
        result = load_result(path)
        assert [o.index for o in result.outcomes] == [0, 1]
        assert result.outcomes[0].comparisons[1].tag == "vector-reduction"

    def test_v3_shards_merge(self, tmp_path):
        paths = []
        for i in range(2):
            path = tmp_path / f"v3-shard{i}.jsonl"
            write_legacy_checkpoint(path, version=3, shard=(i, 2))
            paths.append(path)
        out = merge_shard_stores(paths, tmp_path / "merged.jsonl")
        merged = load_result(out)
        assert [o.index for o in merged.outcomes] == [0, 1]


class TestValidationHelpers:
    def test_unsupported_input_type_rejected(self):
        from repro.difftest.store import _enc_input

        with pytest.raises(CampaignStoreError, match="unsupported input"):
            _enc_input("a string")

    def test_level_round_trip(self):
        for level in OptLevel:
            assert OptLevel(str(level)) is level

    def test_store_header_reflects_config(self):
        engine = CampaignEngine(
            [GccCompiler(), NvccCompiler()],
            CampaignConfig(budget=3, seed=7),
            EngineConfig(shard_index=0, shard_count=1),
        )
        result = engine.run(_generator())
        header = engine._store_header(result)
        assert header["budget"] == 3 and header["seed"] == 7
        assert header["compilers"] == ["gcc", "nvcc"]
