"""The differential harness and campaign loop."""

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.harness import DifferentialHarness, run_campaign
from repro.difftest.report import CampaignReport
from repro.generation.program import GeneratedProgram
from repro.toolchains import ClangCompiler, GccCompiler, NvccCompiler
from repro.utils.rng import SplittableRng

TRANSCENDENTAL = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(a + i) * b;
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""

PURE_ARITH = """
#include <stdio.h>
void compute(double a, double b) {
  double comp = a + b;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]));
  return 0;
}
"""

BROKEN = "void compute( {"

TRAPPING = """
#include <stdio.h>
void compute(double a, int n) {
  double t[2];
  t[0] = a;
  double comp = t[n];
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atoi(argv[2]));
  return 0;
}
"""


def harness(budget=4):
    compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
    return DifferentialHarness(compilers, CampaignConfig(budget=budget))


def prog(source, inputs):
    return GeneratedProgram(source=source, inputs=inputs)


class TestHarness:
    def test_transcendental_triggers_host_device(self):
        outcome = harness().test_program(0, prog(TRANSCENDENTAL, (0.37, 1.91, 23)))
        assert outcome.triggered
        pairs = {c.pair for c in outcome.inconsistent_comparisons}
        assert ("gcc", "nvcc") in pairs or ("clang", "nvcc") in pairs

    def test_pure_addition_fully_consistent(self):
        outcome = harness().test_program(0, prog(PURE_ARITH, (1.25, 2.5)))
        assert not outcome.triggered
        # all 3 pairs x 6 levels comparable and consistent
        assert len(outcome.comparisons) == 18

    def test_parse_failure_no_comparisons(self):
        outcome = harness().test_program(0, prog(BROKEN, ()))
        assert not outcome.triggered
        assert outcome.comparisons == []
        assert all(not ok for ok in outcome.compiled.values())

    def test_trap_removes_binary_from_comparisons(self):
        outcome = harness().test_program(0, prog(TRAPPING, (1.0, 7)))
        assert outcome.comparisons == []  # every run trapped
        assert all(not ok for ok in outcome.ran.values())

    def test_signatures_recorded_per_binary(self):
        outcome = harness().test_program(0, prog(PURE_ARITH, (1.0, 2.0)))
        assert "gcc/O0_nofma" in outcome.signatures
        assert "nvcc/O3_fastmath" in outcome.signatures
        assert len(outcome.signatures) == 18

    def test_needs_two_compilers(self):
        with pytest.raises(ValueError):
            DifferentialHarness([GccCompiler()], CampaignConfig(budget=1))

    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            DifferentialHarness(
                [GccCompiler(), GccCompiler()], CampaignConfig(budget=1)
            )


class _StubGenerator:
    name = "stub"

    def __init__(self, programs):
        self._programs = list(programs)
        self.successes = []

    def generate(self):
        return self._programs.pop(0)

    def notify_success(self, program):
        self.successes.append(program)


class TestRunCampaign:
    def test_feedback_called_on_trigger(self):
        programs = [
            prog(TRANSCENDENTAL, (0.37, 1.91, 23)),
            prog(PURE_ARITH, (1.0, 2.0)),
        ]
        gen = _StubGenerator(programs)
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        result = run_campaign(gen, compilers, CampaignConfig(budget=2))
        assert len(gen.successes) == 1
        assert result.budget == 2
        assert result.total_comparisons == 3 * 6 * 2

    def test_report_rates(self):
        gen = _StubGenerator([prog(TRANSCENDENTAL, (0.37, 1.91, 23))])
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        result = run_campaign(gen, compilers, CampaignConfig(budget=1))
        report = CampaignReport(result)
        summary = report.summary()
        assert 0.0 < summary["inconsistency_rate"] <= 1.0
        assert summary["inconsistencies"] == result.inconsistencies

    def test_progress_callback(self):
        seen = []
        gen = _StubGenerator([prog(PURE_ARITH, (1.0, 2.0))])
        compilers = [GccCompiler(), NvccCompiler()]
        run_campaign(
            gen,
            compilers,
            CampaignConfig(budget=1),
            progress=lambda i, o: seen.append(i),
        )
        assert seen == [0]

    def test_campaign_deterministic(self):
        from repro.experiments.approaches import make_generator

        def run_once():
            rng = SplittableRng(99, "det")
            gen = make_generator("llm4fp", rng)
            compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
            return run_campaign(gen, compilers, CampaignConfig(budget=6))

        r1, r2 = run_once(), run_once()
        assert r1.inconsistencies == r2.inconsistencies
        assert [o.program.source for o in r1.outcomes] == [
            o.program.source for o in r2.outcomes
        ]


class TestVsO0Nofma:
    def test_nvcc_differs_from_baseline_hosts_do_not(self):
        # FMA-sensitive shape: nvcc contracts at O0..O3, hosts never do.
        src = """
#include <stdio.h>
void compute(double a, double b, double c) {
  double comp = a * b + c;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atof(argv[3]));
  return 0;
}
"""
        gen = _StubGenerator([prog(src, (1.0 + 2.0**-30, 1.0 + 2.0**-30, -1.0))])
        # Force full contraction so the single multiply-add site fuses.
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler(fmad_prob=1.0)]
        result = run_campaign(gen, compilers, CampaignConfig(budget=1))
        rates = CampaignReport(result).vs_o0_nofma()
        assert sum(rates["nvcc"].values()) > 0
        assert sum(rates["gcc"].values()) == 0
        assert sum(rates["clang"].values()) == 0
