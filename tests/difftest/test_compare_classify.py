"""Comparison primitives and kind classification."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.difftest.classify import (
    ALL_KINDS,
    KindCount,
    inconsistency_kind,
    kind_label,
)
from repro.difftest.compare import (
    compare_signatures,
    digit_difference,
    value_digit_difference,
)
from repro.fp.classify import FPClass


class TestCompare:
    def test_equal_signatures_consistent(self):
        assert compare_signatures("ab", "ab") is True

    def test_different_inconsistent(self):
        assert compare_signatures("ab", "ac") is False

    def test_missing_side_not_comparable(self):
        assert compare_signatures(None, "ab") is None
        assert compare_signatures("ab", None) is None

    def test_digit_difference(self):
        assert digit_difference("0000", "0000") == 0
        assert digit_difference("0001", "0000") == 1
        assert digit_difference("ffff", "0000") == 4

    def test_digit_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            digit_difference("abc", "ab")

    def test_value_digit_difference_one_ulp(self):
        a = 1.0
        b = math.nextafter(1.0, 2.0)
        assert value_digit_difference(a, b) == 1

    def test_value_digit_difference_inf_vs_real(self):
        # inf vs an ordinary real differs in most of the 16 digits
        assert value_digit_difference(math.inf, 1.2345) >= 10

    @given(st.floats(allow_nan=False))
    def test_self_difference_zero(self, x):
        assert value_digit_difference(x, x) == 0


class TestKinds:
    def test_real_real(self):
        k = inconsistency_kind(1.0, 2.0)
        assert k == frozenset({FPClass.REAL})
        assert kind_label(k) == "{Real, Real}"

    def test_real_nan(self):
        k = inconsistency_kind(1.0, math.nan)
        assert kind_label(k) == "{Real, NaN}"

    def test_zero_inf(self):
        k = inconsistency_kind(0.0, math.inf)
        assert kind_label(k) == "{Zero, +Inf}"

    def test_signed_zeros_same_class(self):
        k = inconsistency_kind(0.0, -0.0)
        assert kind_label(k) == "{Zero, Zero}"

    def test_inf_inf_pair(self):
        k = inconsistency_kind(math.inf, -math.inf)
        assert kind_label(k) == "{+Inf, -Inf}"

    def test_all_kinds_count(self):
        # 5 classes -> C(5,2) + 5 same-class = 15 unordered pairs
        assert len(ALL_KINDS) == 15

    def test_kind_count_tally(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        kc.record(1.0, math.nan)
        kc.record(3.0, 4.0)
        assert kc.total == 3
        assert kc.get(FPClass.REAL) == 2
        assert kc.get(FPClass.REAL, FPClass.NAN) == 1

    def test_kind_count_merge(self):
        a, b = KindCount(), KindCount()
        a.record(1.0, 2.0)
        b.record(1.0, 2.0)
        a.merge(b)
        assert a.total == 2

    def test_as_labels_skips_zero(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        labels = kc.as_labels()
        assert labels == {"{Real, Real}": 1}


class TestVectorReductionKind:
    def _kernels(self):
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.ir.passes import Vectorize

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[4] = {atof(argv[1]), atof(argv[2]), atof(argv[3]),"
            " atof(argv[4])};\n"
            "  compute(in_a, atoi(argv[5]));\n"
            "  return 0;\n"
            "}\n"
        )
        scalar = lower_compute(check_program(parse_program(src)))
        return scalar, Vectorize(4, "adjacent").run(scalar)

    def test_vector_shape_lists_reduce_sites(self):
        from repro.difftest.classify import vector_shape

        scalar, vec = self._kernels()
        assert vector_shape(scalar) == ()
        assert vector_shape(vec) == (("+", 4, "adjacent"),)

    def test_tag_requires_equal_environments(self):
        from repro.difftest.classify import VECTOR_REDUCTION, vector_reduction_tag

        shape_a, shape_b = (), (("+", 4, "adjacent"),)
        assert vector_reduction_tag(shape_a, shape_b, True, True) == VECTOR_REDUCTION
        # differing environments: libm could be the cause — no tag
        assert vector_reduction_tag(shape_a, shape_b, False, True) is None
        # differing scalar parts: another pass could be the cause — no tag
        assert vector_reduction_tag(shape_a, shape_b, True, False) is None
        # identical shapes: nothing vector-related to blame
        assert vector_reduction_tag(shape_b, shape_b, True, True) is None

    def test_style_difference_alone_tags(self):
        from repro.difftest.classify import VECTOR_REDUCTION, vector_reduction_tag

        adjacent = (("+", 4, "adjacent"),)
        ladder = (("+", 4, "ladder"),)
        assert vector_reduction_tag(adjacent, ladder, True, True) == VECTOR_REDUCTION

    def test_devectorized_bodies_are_width_independent(self):
        from repro.difftest.classify import devectorized_body
        from repro.ir.passes import Vectorize

        scalar, _ = self._kernels()
        wide4 = Vectorize(4, "adjacent").run(scalar)
        wide8 = Vectorize(8, "ladder").run(scalar)
        assert devectorized_body(wide4) == devectorized_body(wide8)
        # ... but the stripped body is not the never-vectorized kernel's
        # (the induction init is hoisted out of the rewritten loop)
        assert devectorized_body(wide4) != scalar.body

    def test_scalar_divergence_near_vector_loop_is_not_tagged(self):
        """Regression: a program *containing* a vectorizable loop must not
        be tagged when the divergence comes from an unrelated scalar
        transform.  gcc and clang reassociate this 5-term sum differently
        at O3_fastmath while the 2-trip loop's vector body never runs —
        the record carries no vector-reduction tag, matching the
        bisector's non-vectorize attribution."""
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine
        from repro.generation.program import GeneratedProgram
        from repro.toolchains import ClangCompiler, GccCompiler, OptLevel

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, double b, double c, double d, double e,"
            " int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            "  comp += b + c + d + e + 0.1;\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[2] = {atof(argv[1]), atof(argv[2])};\n"
            "  compute(in_a, atof(argv[3]), atof(argv[4]), atof(argv[5]),"
            " atof(argv[6]), atoi(argv[7]));\n"
            "  return 0;\n"
            "}\n"
        )
        inputs = ((0.5, 0.25), 1e16, 1.0, -1e16, 1.0, 2)
        engine = CampaignEngine(
            [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
        )
        outcome = engine.test_program(
            0, GeneratedProgram(source=src, inputs=inputs)
        )
        fastmath = [
            c
            for c in outcome.inconsistent_comparisons
            if c.level is OptLevel.O3_FASTMATH
        ]
        assert fastmath, "reassociation styles must split the hosts here"
        assert all(c.tag is None for c in fastmath)

    def test_vector_condition_stripped_width_independently(self):
        """Regression: a compound statement whose *condition* carries
        vector nodes must not make devectorized bodies width-dependent —
        the old strip kept conditions verbatim, so masks of two widths
        produced spuriously different fingerprints."""
        from repro.difftest.classify import devectorized_body
        from repro.ir import nodes as ir

        def kernel_with_mask_cond(lanes):
            cond = ir.Compare(
                ">",
                ir.VecReduce(
                    "+", ir.VecConst((1.0,) * lanes, "double"), lanes, "double"
                ),
                ir.FConst(0.0),
                fp=True,
            )
            return ir.Kernel(
                "compute",
                (),
                (
                    ir.SIf(cond, (ir.SAssign("x", ir.FConst(1.0), "double"),)),
                    ir.SWhile(cond, ()),
                ),
            )

        assert devectorized_body(kernel_with_mask_cond(4)) == devectorized_body(
            kernel_with_mask_cond(8)
        )
        stripped = devectorized_body(kernel_with_mask_cond(4))
        # the scalar assignment inside survives; the vector cond does not
        assert any(isinstance(s, ir.SIf) for s in ir.walk_stmts(stripped))
        assert all(
            not isinstance(e, ir.ANY_VECTOR_NODES)
            for s in ir.walk_stmts(stripped)
            for top in ir.stmt_exprs(s)
            for e in ir.walk(top)
        )

    def test_nested_vector_loop_strips_without_hiding_scalar_code(self):
        """Regression: a vectorizable loop nested inside outer control
        flow must not drag its surrounding scalar statements out of the
        devectorized body — otherwise scalar divergence sources hide and
        the tag misfires."""
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine
        from repro.generation.program import GeneratedProgram
        from repro.toolchains import ClangCompiler, GccCompiler, OptLevel

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, double b, double c, double d, double e,"
            " int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int j = 0; j < 1; ++j) {\n"
            "    for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            "    comp += b + c + d + e + 0.1;\n"
            "  }\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[2] = {atof(argv[1]), atof(argv[2])};\n"
            "  compute(in_a, atof(argv[3]), atof(argv[4]), atof(argv[5]),"
            " atof(argv[6]), atoi(argv[7]));\n"
            "  return 0;\n"
            "}\n"
        )
        inputs = ((0.5, 0.25), 1e16, 1.0, -1e16, 1.0, 2)
        engine = CampaignEngine(
            [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
        )
        outcome = engine.test_program(
            0, GeneratedProgram(source=src, inputs=inputs)
        )
        fastmath = [
            c
            for c in outcome.inconsistent_comparisons
            if c.level is OptLevel.O3_FASTMATH
        ]
        assert fastmath, "reassociation styles must split the hosts here"
        assert all(c.tag is None for c in fastmath)


class TestMaskedLaneKind:
    GUARDED = (
        "#include <stdio.h>\n"
        "void compute(double *a, int n) {\n"
        "  double comp = 0.0;\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    if (a[i] > 0.0) { comp += a[i]; }\n"
        "  }\n"
        '  printf("%.17g\\n", comp);\n'
        "}\n"
        "int main(int argc, char **argv) {\n"
        "  double in_a[16];\n"
        "  for (int i = 0; i < 16; ++i) { in_a[i] = atof(argv[1 + i]); }\n"
        "  compute(in_a, atoi(argv[17]));\n"
        "  return 0;\n"
        "}\n"
    )
    ARR16 = (
        -2.161244991344777, 16.744850325199423, -2140.123310536274,
        -667.4296376438043, 33.12432414736006, 8604.15565518937,
        4.366101377828139, -373427.6696042438, -13.557686496180793,
        -856.9062739358501, 2.8392700153319588, 46.56981918402771,
        6.836221364114393, 21.37550366737585, -134.8944261290064,
        294524.6182501556,
    )

    def _masked_kernel(self, style="adjacent", width=4):
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.ir.passes import IfConvert, Vectorize

        scalar = lower_compute(check_program(parse_program(self.GUARDED)))
        return scalar, Vectorize(width, style, masked=True).run(
            IfConvert().run(scalar)
        )

    def test_masked_shape_lists_mask_sites(self):
        from repro.difftest.classify import masked_shape

        scalar, vec = self._masked_kernel()
        assert masked_shape(scalar) == ()
        kinds = {site[0] for site in masked_shape(vec)}
        # the masked region's own reduction belongs to the mask tier
        assert kinds == {"cmp", "select", "mload", "reduce"}

    def test_masked_shape_excludes_unmasked_reductions(self):
        """A plain (unguarded) vectorized reduction contributes to
        vector_shape but not to masked_shape — so a style divergence in
        an unmasked loop next to identically-masked code still tags
        vector-reduction, not masked-lane."""
        from repro.difftest.classify import masked_shape, vector_shape
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.ir.passes import IfConvert, Vectorize

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, double *b, int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int i = 0; i < n; ++i) {\n"
            "    if (a[i] > 0.0) { b[i] = a[i]; }\n"
            "  }\n"
            "  for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[8];\n"
            "  double in_b[8];\n"
            "  for (int i = 0; i < 8; ++i) { in_a[i] = atof(argv[1 + i]);"
            " in_b[i] = 0.0; }\n"
            "  compute(in_a, in_b, atoi(argv[9]));\n"
            "  return 0;\n"
            "}\n"
        )
        scalar = lower_compute(check_program(parse_program(src)))
        adjacent = Vectorize(4, "adjacent", masked=True).run(IfConvert().run(scalar))
        ladder = Vectorize(4, "ladder", masked=True).run(IfConvert().run(scalar))
        # the guarded map masked identically on both sides ...
        assert masked_shape(adjacent) == masked_shape(ladder) != ()
        assert all(site[0] != "reduce" for site in masked_shape(adjacent))
        # ... while the unmasked reduction's style differs
        assert vector_shape(adjacent) != vector_shape(ladder)

    def test_scalar_select_form_has_no_masked_shape(self):
        from repro.difftest.classify import masked_shape
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.ir.passes import IfConvert

        scalar = lower_compute(check_program(parse_program(self.GUARDED)))
        assert masked_shape(IfConvert().run(scalar)) == ()

    def test_structural_tag_precedence(self):
        from repro.difftest.classify import (
            MASKED_LANE,
            VECTOR_REDUCTION,
            structural_tag,
        )

        plain_a, plain_b = (("+", 4, "adjacent"),), (("+", 4, "ladder"),)
        masked = (("cmp", ">", 4), ("select", 4), ("reduce", "+", 4, "adjacent"))
        masked_other = (("cmp", ">", 4), ("select", 4), ("reduce", "+", 4, "ladder"))
        # differing masked shapes name the narrower mechanism
        assert (
            structural_tag(plain_a, plain_b, masked, masked_other, True, True)
            == MASKED_LANE
        )
        assert (
            structural_tag(plain_a, plain_a, masked, (), True, True) == MASKED_LANE
        )
        # identical masked shapes + differing reduction shapes: the
        # divergence came from an *unmasked* loop — plain vector-reduction
        assert (
            structural_tag(plain_a, plain_b, masked, masked, True, True)
            == VECTOR_REDUCTION
        )
        assert (
            structural_tag(plain_a, plain_b, (), (), True, True)
            == VECTOR_REDUCTION
        )
        # precision preconditions still gate everything
        assert structural_tag(plain_a, plain_b, masked, masked_other, False, True) is None
        assert structural_tag(plain_a, plain_b, masked, masked_other, True, False) is None
        # identical shapes on both axes: nothing structural to blame
        assert structural_tag(plain_a, plain_a, masked, masked, True, True) is None

    def test_masked_lane_tag_end_to_end(self):
        """gcc vs clang at O3: both if-convert identically, both widen to
        8 lanes, but reduce horizontally in different styles — the
        comparison carries the masked-lane tag."""
        from repro.difftest.classify import MASKED_LANE
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine
        from repro.generation.program import GeneratedProgram
        from repro.toolchains import ClangCompiler, GccCompiler, OptLevel

        engine = CampaignEngine(
            [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
        )
        outcome = engine.test_program(
            0,
            GeneratedProgram(source=self.GUARDED, inputs=(self.ARR16, 16)),
        )
        o3 = [
            c
            for c in outcome.inconsistent_comparisons
            if c.level in (OptLevel.O3, OptLevel.O3_FASTMATH)
        ]
        assert o3, "the hosts' masked reduction styles must split here"
        assert all(c.tag == MASKED_LANE for c in o3)
        # at O2 neither host if-converts: the guarded loop stays a scalar
        # branch on both sides, so O2 comparisons agree
        assert all(
            c.consistent for c in outcome.comparisons if c.level is OptLevel.O2
        )
