"""Comparison primitives and kind classification."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.difftest.classify import (
    ALL_KINDS,
    KindCount,
    inconsistency_kind,
    kind_label,
)
from repro.difftest.compare import (
    compare_signatures,
    digit_difference,
    value_digit_difference,
)
from repro.fp.classify import FPClass


class TestCompare:
    def test_equal_signatures_consistent(self):
        assert compare_signatures("ab", "ab") is True

    def test_different_inconsistent(self):
        assert compare_signatures("ab", "ac") is False

    def test_missing_side_not_comparable(self):
        assert compare_signatures(None, "ab") is None
        assert compare_signatures("ab", None) is None

    def test_digit_difference(self):
        assert digit_difference("0000", "0000") == 0
        assert digit_difference("0001", "0000") == 1
        assert digit_difference("ffff", "0000") == 4

    def test_digit_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            digit_difference("abc", "ab")

    def test_value_digit_difference_one_ulp(self):
        a = 1.0
        b = math.nextafter(1.0, 2.0)
        assert value_digit_difference(a, b) == 1

    def test_value_digit_difference_inf_vs_real(self):
        # inf vs an ordinary real differs in most of the 16 digits
        assert value_digit_difference(math.inf, 1.2345) >= 10

    @given(st.floats(allow_nan=False))
    def test_self_difference_zero(self, x):
        assert value_digit_difference(x, x) == 0


class TestKinds:
    def test_real_real(self):
        k = inconsistency_kind(1.0, 2.0)
        assert k == frozenset({FPClass.REAL})
        assert kind_label(k) == "{Real, Real}"

    def test_real_nan(self):
        k = inconsistency_kind(1.0, math.nan)
        assert kind_label(k) == "{Real, NaN}"

    def test_zero_inf(self):
        k = inconsistency_kind(0.0, math.inf)
        assert kind_label(k) == "{Zero, +Inf}"

    def test_signed_zeros_same_class(self):
        k = inconsistency_kind(0.0, -0.0)
        assert kind_label(k) == "{Zero, Zero}"

    def test_inf_inf_pair(self):
        k = inconsistency_kind(math.inf, -math.inf)
        assert kind_label(k) == "{+Inf, -Inf}"

    def test_all_kinds_count(self):
        # 5 classes -> C(5,2) + 5 same-class = 15 unordered pairs
        assert len(ALL_KINDS) == 15

    def test_kind_count_tally(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        kc.record(1.0, math.nan)
        kc.record(3.0, 4.0)
        assert kc.total == 3
        assert kc.get(FPClass.REAL) == 2
        assert kc.get(FPClass.REAL, FPClass.NAN) == 1

    def test_kind_count_merge(self):
        a, b = KindCount(), KindCount()
        a.record(1.0, 2.0)
        b.record(1.0, 2.0)
        a.merge(b)
        assert a.total == 2

    def test_as_labels_skips_zero(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        labels = kc.as_labels()
        assert labels == {"{Real, Real}": 1}


class TestVectorReductionKind:
    def _kernels(self):
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.ir.passes import Vectorize

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[4] = {atof(argv[1]), atof(argv[2]), atof(argv[3]),"
            " atof(argv[4])};\n"
            "  compute(in_a, atoi(argv[5]));\n"
            "  return 0;\n"
            "}\n"
        )
        scalar = lower_compute(check_program(parse_program(src)))
        return scalar, Vectorize(4, "adjacent").run(scalar)

    def test_vector_shape_lists_reduce_sites(self):
        from repro.difftest.classify import vector_shape

        scalar, vec = self._kernels()
        assert vector_shape(scalar) == ()
        assert vector_shape(vec) == (("+", 4, "adjacent"),)

    def test_tag_requires_equal_environments(self):
        from repro.difftest.classify import VECTOR_REDUCTION, vector_reduction_tag

        shape_a, shape_b = (), (("+", 4, "adjacent"),)
        assert vector_reduction_tag(shape_a, shape_b, True, True) == VECTOR_REDUCTION
        # differing environments: libm could be the cause — no tag
        assert vector_reduction_tag(shape_a, shape_b, False, True) is None
        # differing scalar parts: another pass could be the cause — no tag
        assert vector_reduction_tag(shape_a, shape_b, True, False) is None
        # identical shapes: nothing vector-related to blame
        assert vector_reduction_tag(shape_b, shape_b, True, True) is None

    def test_style_difference_alone_tags(self):
        from repro.difftest.classify import VECTOR_REDUCTION, vector_reduction_tag

        adjacent = (("+", 4, "adjacent"),)
        ladder = (("+", 4, "ladder"),)
        assert vector_reduction_tag(adjacent, ladder, True, True) == VECTOR_REDUCTION

    def test_devectorized_bodies_are_width_independent(self):
        from repro.difftest.classify import devectorized_body
        from repro.ir.passes import Vectorize

        scalar, _ = self._kernels()
        wide4 = Vectorize(4, "adjacent").run(scalar)
        wide8 = Vectorize(8, "ladder").run(scalar)
        assert devectorized_body(wide4) == devectorized_body(wide8)
        # ... but the stripped body is not the never-vectorized kernel's
        # (the induction init is hoisted out of the rewritten loop)
        assert devectorized_body(wide4) != scalar.body

    def test_scalar_divergence_near_vector_loop_is_not_tagged(self):
        """Regression: a program *containing* a vectorizable loop must not
        be tagged when the divergence comes from an unrelated scalar
        transform.  gcc and clang reassociate this 5-term sum differently
        at O3_fastmath while the 2-trip loop's vector body never runs —
        the record carries no vector-reduction tag, matching the
        bisector's non-vectorize attribution."""
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine
        from repro.generation.program import GeneratedProgram
        from repro.toolchains import ClangCompiler, GccCompiler, OptLevel

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, double b, double c, double d, double e,"
            " int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            "  comp += b + c + d + e + 0.1;\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[2] = {atof(argv[1]), atof(argv[2])};\n"
            "  compute(in_a, atof(argv[3]), atof(argv[4]), atof(argv[5]),"
            " atof(argv[6]), atoi(argv[7]));\n"
            "  return 0;\n"
            "}\n"
        )
        inputs = ((0.5, 0.25), 1e16, 1.0, -1e16, 1.0, 2)
        engine = CampaignEngine(
            [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
        )
        outcome = engine.test_program(
            0, GeneratedProgram(source=src, inputs=inputs)
        )
        fastmath = [
            c
            for c in outcome.inconsistent_comparisons
            if c.level is OptLevel.O3_FASTMATH
        ]
        assert fastmath, "reassociation styles must split the hosts here"
        assert all(c.tag is None for c in fastmath)

    def test_nested_vector_loop_strips_without_hiding_scalar_code(self):
        """Regression: a vectorizable loop nested inside outer control
        flow must not drag its surrounding scalar statements out of the
        devectorized body — otherwise scalar divergence sources hide and
        the tag misfires."""
        from repro.difftest.config import CampaignConfig
        from repro.difftest.engine import CampaignEngine
        from repro.generation.program import GeneratedProgram
        from repro.toolchains import ClangCompiler, GccCompiler, OptLevel

        src = (
            "#include <stdio.h>\n"
            "void compute(double *a, double b, double c, double d, double e,"
            " int n) {\n"
            "  double comp = 0.0;\n"
            "  for (int j = 0; j < 1; ++j) {\n"
            "    for (int i = 0; i < n; ++i) { comp += a[i]; }\n"
            "    comp += b + c + d + e + 0.1;\n"
            "  }\n"
            '  printf("%.17g\\n", comp);\n'
            "}\n"
            "int main(int argc, char **argv) {\n"
            "  double in_a[2] = {atof(argv[1]), atof(argv[2])};\n"
            "  compute(in_a, atof(argv[3]), atof(argv[4]), atof(argv[5]),"
            " atof(argv[6]), atoi(argv[7]));\n"
            "  return 0;\n"
            "}\n"
        )
        inputs = ((0.5, 0.25), 1e16, 1.0, -1e16, 1.0, 2)
        engine = CampaignEngine(
            [GccCompiler(), ClangCompiler()], CampaignConfig(budget=1)
        )
        outcome = engine.test_program(
            0, GeneratedProgram(source=src, inputs=inputs)
        )
        fastmath = [
            c
            for c in outcome.inconsistent_comparisons
            if c.level is OptLevel.O3_FASTMATH
        ]
        assert fastmath, "reassociation styles must split the hosts here"
        assert all(c.tag is None for c in fastmath)
