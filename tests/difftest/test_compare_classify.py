"""Comparison primitives and kind classification."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.difftest.classify import (
    ALL_KINDS,
    KindCount,
    inconsistency_kind,
    kind_label,
)
from repro.difftest.compare import (
    compare_signatures,
    digit_difference,
    value_digit_difference,
)
from repro.fp.classify import FPClass


class TestCompare:
    def test_equal_signatures_consistent(self):
        assert compare_signatures("ab", "ab") is True

    def test_different_inconsistent(self):
        assert compare_signatures("ab", "ac") is False

    def test_missing_side_not_comparable(self):
        assert compare_signatures(None, "ab") is None
        assert compare_signatures("ab", None) is None

    def test_digit_difference(self):
        assert digit_difference("0000", "0000") == 0
        assert digit_difference("0001", "0000") == 1
        assert digit_difference("ffff", "0000") == 4

    def test_digit_difference_shape_mismatch(self):
        with pytest.raises(ValueError):
            digit_difference("abc", "ab")

    def test_value_digit_difference_one_ulp(self):
        a = 1.0
        b = math.nextafter(1.0, 2.0)
        assert value_digit_difference(a, b) == 1

    def test_value_digit_difference_inf_vs_real(self):
        # inf vs an ordinary real differs in most of the 16 digits
        assert value_digit_difference(math.inf, 1.2345) >= 10

    @given(st.floats(allow_nan=False))
    def test_self_difference_zero(self, x):
        assert value_digit_difference(x, x) == 0


class TestKinds:
    def test_real_real(self):
        k = inconsistency_kind(1.0, 2.0)
        assert k == frozenset({FPClass.REAL})
        assert kind_label(k) == "{Real, Real}"

    def test_real_nan(self):
        k = inconsistency_kind(1.0, math.nan)
        assert kind_label(k) == "{Real, NaN}"

    def test_zero_inf(self):
        k = inconsistency_kind(0.0, math.inf)
        assert kind_label(k) == "{Zero, +Inf}"

    def test_signed_zeros_same_class(self):
        k = inconsistency_kind(0.0, -0.0)
        assert kind_label(k) == "{Zero, Zero}"

    def test_inf_inf_pair(self):
        k = inconsistency_kind(math.inf, -math.inf)
        assert kind_label(k) == "{+Inf, -Inf}"

    def test_all_kinds_count(self):
        # 5 classes -> C(5,2) + 5 same-class = 15 unordered pairs
        assert len(ALL_KINDS) == 15

    def test_kind_count_tally(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        kc.record(1.0, math.nan)
        kc.record(3.0, 4.0)
        assert kc.total == 3
        assert kc.get(FPClass.REAL) == 2
        assert kc.get(FPClass.REAL, FPClass.NAN) == 1

    def test_kind_count_merge(self):
        a, b = KindCount(), KindCount()
        a.record(1.0, 2.0)
        b.record(1.0, 2.0)
        a.merge(b)
        assert a.total == 2

    def test_as_labels_skips_zero(self):
        kc = KindCount()
        kc.record(1.0, 2.0)
        labels = kc.as_labels()
        assert labels == {"{Real, Real}": 1}
