"""Corpus ingest over synthesized legacy checkpoints: the longitudinal
memory must read every on-disk format the store itself can read."""

import pytest

from conftest import write_legacy_checkpoint
from repro.corpus import CorpusError, TriggerCorpus, parse_key, signature_key
from repro.difftest.store import CampaignStoreError, load_result
from repro.triage.cluster import outcome_signature


@pytest.mark.parametrize("version", [1, 2, 3])
def test_legacy_checkpoints_ingest(tmp_path, version):
    path = tmp_path / f"v{version}.jsonl"
    write_legacy_checkpoint(path, version=version)
    with TriggerCorpus(tmp_path / "corpus.jsonl") as corpus:
        report = corpus.ingest(load_result(path), f"v{version}")
    assert report.programs == 2 and report.triggers == 2
    assert len(report.new_keys) >= 1


def test_v1_and_v3_of_the_same_campaign_share_signatures(tmp_path):
    # v1 rows lose their tags, so the structural kind differs from v3's;
    # the *cells* are identical — only kinds distinguish the keys.
    v1, v3 = tmp_path / "v1.jsonl", tmp_path / "v3.jsonl"
    write_legacy_checkpoint(v1, version=1)
    write_legacy_checkpoint(v3, version=3)
    keys = {}
    for name, path in [("v1", v1), ("v3", v3)]:
        keys[name] = {
            signature_key(*outcome_signature(o))
            for o in load_result(path).outcomes
            if o.triggered
        }
    cells = {k: {parse_key(key)[1] for key in v} for k, v in keys.items()}
    assert cells["v1"] == cells["v3"]


def test_legacy_shard_set_ingests_like_the_whole_campaign(tmp_path):
    whole = tmp_path / "whole.jsonl"
    write_legacy_checkpoint(whole, version=3)
    shard_paths = []
    for i in range(2):
        p = tmp_path / f"shard{i}.jsonl"
        write_legacy_checkpoint(p, version=3, shard=(i, 2))
        shard_paths.append(p)
    with TriggerCorpus(tmp_path / "a.jsonl") as corpus:
        corpus.ingest(load_result(whole).outcomes, "run")
    with TriggerCorpus(tmp_path / "b.jsonl") as corpus:
        corpus.ingest(
            [o for p in shard_paths for o in load_result(p).outcomes], "run"
        )
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()


def test_unknown_checkpoint_version_surfaces_as_store_error(tmp_path):
    path = tmp_path / "v99.jsonl"
    write_legacy_checkpoint(path, version=99)
    with pytest.raises((CampaignStoreError, CorpusError), match="unsupported"):
        load_result(path)
