"""Shared checkpoint fixtures for the difftest test tree.

One canonical awkward outcome (NaN, infinities, signed zero, int
scalars, float arrays, sentinel ``None``), one canonical campaign
header, and one synthesized-legacy checkpoint factory covering every
historical on-disk format — so store round-trip tests, resume tests,
and corpus ingest-from-legacy tests all exercise the same bytes.
"""

import json

from repro.difftest.record import ComparisonRecord, ProgramOutcome
from repro.difftest.store import encode_outcome
from repro.fp.bits import double_to_bits
from repro.generation.program import GeneratedProgram
from repro.toolchains import OptLevel

#: The canonical single-shard campaign identity used by checkpoint tests.
HEADER = {
    "approach": "t",
    "budget": 2,
    "levels": ["O0"],
    "compilers": ["gcc", "nvcc"],
    "seed": 1,
    "max_steps": 10,
    "shard_index": 0,
    "shard_count": 1,
}


def _bits(v):
    return None if v is None else double_to_bits(v)


def outcome_bits(o):
    """Every float observable as raw bits (NaN- and signed-zero-safe)."""
    return (
        o.index,
        o.program.source,
        tuple(
            tuple(_bits(x) for x in v) if isinstance(v, tuple) else (type(v), _bits(float(v)))
            for v in o.program.inputs
        ),
        o.program.meta,
        o.compiled,
        o.ran,
        o.signatures,
        {k: _bits(v) for k, v in o.values.items()},
        [
            (c.program_index, c.compiler_a, c.compiler_b, c.level,
             c.consistent, _bits(c.value_a), _bits(c.value_b), c.digit_diff,
             c.tag)
            for c in o.comparisons
        ],
        o.triggered,
    )


def make_outcome(index=3):
    """An outcome exercising the awkward encodings: NaN, infinities,
    signed zero, int scalars, float arrays, sentinel None values."""
    program = GeneratedProgram(
        source='void compute(double a) { printf("%.17g\\n", a); }',
        inputs=(1.5, -0.0, 7, (0.1, float("inf"), -2.5e-308)),
        meta={"strategy": "grammar", "index": index},
    )
    return ProgramOutcome(
        index=index,
        program=program,
        compiled={"gcc/O0": True, "nvcc/O3": False},
        ran={"gcc/O0": True},
        triggered=True,
        signatures={"gcc/O0": "7ff8000000000000"},
        values={"gcc/O0": float("nan"), "clang/O2": -0.0},
        comparisons=[
            ComparisonRecord(index, "gcc", "clang", OptLevel.O2, True),
            ComparisonRecord(
                index, "gcc", "nvcc", OptLevel.O3_FASTMATH, False,
                value_a=float("-inf"), value_b=float("nan"), digit_diff=13,
                tag="vector-reduction",
            ),
            ComparisonRecord(
                index, "clang", "nvcc", OptLevel.O0, False,
                value_a=None, value_b=1.0, digit_diff=0,
            ),
        ],
    )


def write_legacy_checkpoint(path, version, *, budget=2, shard=(0, 1)):
    """Synthesize a pre-current checkpoint exactly as old nightlies wrote
    them: v1 rows lack the comparison ``tag`` field, and every header
    before v4 lacks the island fields.  ``shard`` writes the partition's
    owned indices only, so a complete legacy shard set is two calls.
    """
    header = {
        "kind": "campaign",
        "version": version,
        **HEADER,
        "budget": budget,
        "shard_index": shard[0],
        "shard_count": shard[1],
    }
    assert "islands" not in header  # the pre-island header shape is the point
    lines = [json.dumps(header, separators=(",", ":"))]
    for index in range(shard[0], budget, shard[1]):
        record = encode_outcome(make_outcome(index))
        if version < 2:
            for comparison in record["comparisons"]:
                del comparison["tag"]
        lines.append(json.dumps(record, separators=(",", ":")))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
