"""Divergence-tier profiles through the engine, store and triage wiring."""

import json

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine
from repro.difftest.harness import run_campaign
from repro.difftest.report import CampaignReport
from repro.difftest.store import CampaignStore, CampaignStoreError, load_result
from repro.generation.loops import LoopReductionGenerator
from repro.tiers import MASKED_INT_GUARD, MIXED_PRECISION, VEC_LIBM
from repro.toolchains import ClangCompiler, GccCompiler, NvccCompiler, default_compilers
from repro.utils.rng import SplittableRng


def full_generator(seed=20250916):
    # The exact generator `llm4fp run --approach loops --tiers full` builds:
    # the full-profile workload shares over the cli rng stream.
    from repro.experiments.approaches import make_generator

    return make_generator("loops", SplittableRng(seed, "cli-loops"), tiers="full")


def run_full(budget=60, seed=20250916, store=None):
    return run_campaign(
        full_generator(seed),
        default_compilers(tiers="full"),
        CampaignConfig(budget=budget, seed=seed),
        store=store,
    )


@pytest.fixture(scope="module")
def full_result(tmp_path_factory):
    path = tmp_path_factory.mktemp("tiers") / "full.jsonl"
    result = run_full(store=CampaignStore(path))
    return path, result


class TestEngineProfiles:
    def test_mixed_profiles_rejected(self):
        compilers = [GccCompiler(tiers="full"), ClangCompiler(), NvccCompiler()]
        with pytest.raises(ValueError, match="tier profile"):
            CampaignEngine(compilers, CampaignConfig(budget=1))

    def test_result_records_the_profile(self, full_result):
        _, result = full_result
        assert result.tiers == "full"

    def test_full_profile_reports_every_new_tag(self, full_result):
        _, result = full_result
        tags = CampaignReport(result).tag_counts()
        assert tags.get(VEC_LIBM, 0) > 0
        assert tags.get(MIXED_PRECISION, 0) > 0
        assert tags.get(MASKED_INT_GUARD, 0) > 0

    def test_baseline_compilers_never_emit_the_new_tags(self):
        result = run_campaign(
            full_generator(),  # tier workloads, baseline toolchains
            default_compilers(),
            CampaignConfig(budget=10, seed=20250916),
        )
        tags = CampaignReport(result).tag_counts()
        assert VEC_LIBM not in tags
        assert MIXED_PRECISION not in tags
        assert MASKED_INT_GUARD not in tags


class TestStoreTiers:
    def test_full_profile_header_round_trips(self, full_result):
        path, result = full_result
        header = json.loads(path.read_text().splitlines()[0])
        assert header["tiers"] == "full"
        loaded = load_result(path)
        assert loaded.tiers == "full"
        assert loaded.inconsistencies == result.inconsistencies

    def test_baseline_header_bytes_are_unchanged(self, tmp_path):
        # The "tiers" key is written only when non-default, so pre-registry
        # checkpoints and fresh baseline checkpoints stay byte-compatible.
        path = tmp_path / "base.jsonl"
        run_campaign(
            LoopReductionGenerator(SplittableRng(7, "cli-loops")),
            default_compilers(),
            CampaignConfig(budget=2, seed=7),
            store=CampaignStore(path),
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert "tiers" not in header
        assert load_result(path).tiers == "baseline"

    def test_resume_under_a_different_profile_is_rejected(self, full_result):
        path, _ = full_result
        engine = CampaignEngine(
            default_compilers(), CampaignConfig(budget=60, seed=20250916)
        )
        with pytest.raises(CampaignStoreError, match="different campaign"):
            engine.run(full_generator(), store=CampaignStore(path))

    def test_resume_same_profile_replays(self, full_result):
        path, result = full_result
        resumed = run_full(store=CampaignStore(path))
        assert resumed.tiers == "full"
        assert resumed.inconsistencies == result.inconsistencies


class TestTriageTiers:
    def test_triage_rebuilds_full_profile_compilers(self, full_result):
        from repro.triage import triage_results

        path, result = full_result
        outcome = next(o for o in result.outcomes if o.triggered)
        small = type(result)(
            approach=result.approach,
            budget=1,
            levels=result.levels,
            compilers=result.compilers,
            outcomes=[outcome],
            tiers=result.tiers,
        )
        report = triage_results([(str(path), small)], reduce=False)
        assert report.triggers == 1

    def test_triage_rejects_mixed_profiles(self, full_result):
        from repro.triage import triage_results

        path, result = full_result
        base = type(result)(
            approach="x", budget=1, levels=result.levels,
            compilers=result.compilers,
        )
        with pytest.raises(ValueError, match="tier profile"):
            triage_results([("a", result), ("b", base)], reduce=False)
