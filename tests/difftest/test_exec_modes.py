"""Execute-stage modes: campaign results identical for tree/tape/check.

The engine's ``exec_mode`` swaps the executor under the execute stage;
nothing downstream may be able to tell.  These tests pin that at the
strongest level available — the v3 checkpoint byte stream — across every
(mode, backend) combination, and cover the knob's plumbing
(validation, ``REPRO_EXEC_MODE``, experiment settings).
"""

import pytest

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.harness import run_campaign
from repro.difftest.store import CampaignStore
from repro.experiments.approaches import make_generator
from repro.experiments.settings import ExperimentSettings
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng


def _checkpoint_bytes(tmp_path, name, mode, backend, jobs):
    path = tmp_path / f"{name}.jsonl"
    run_campaign(
        make_generator("loops", SplittableRng(11, "exec-modes")),
        default_compilers(),
        CampaignConfig(budget=4, seed=11),
        engine_config=EngineConfig(exec_mode=mode, backend=backend, jobs=jobs),
        store=CampaignStore(path),
    )
    return path.read_bytes()


class TestCampaignIdentity:
    @pytest.mark.parametrize(
        "mode,backend,jobs",
        [
            ("tape", "serial", 1),
            ("check", "serial", 1),
            ("tape", "thread", 2),
            ("tape", "process", 2),
        ],
    )
    def test_checkpoints_byte_identical(self, tmp_path, mode, backend, jobs):
        reference = _checkpoint_bytes(tmp_path, "ref", "tree", "serial", 1)
        assert (
            _checkpoint_bytes(tmp_path, f"{mode}-{backend}", mode, backend, jobs)
            == reference
        )


class TestExecModeKnob:
    def test_default_is_tape(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_MODE", raising=False)
        assert EngineConfig().exec_mode == "tape"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_MODE", "check")
        assert EngineConfig().exec_mode == "check"
        assert ExperimentSettings().exec_mode == "check"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="exec_mode"):
            EngineConfig(exec_mode="jit")
        with pytest.raises(ValueError, match="exec_mode"):
            ExperimentSettings(exec_mode="jit")

    def test_settings_flow_into_engine_config(self):
        from repro.experiments.runner import ExperimentContext

        ctx = ExperimentContext(ExperimentSettings(exec_mode="tree"))
        assert ctx.engine_config().exec_mode == "tree"

    def test_check_mode_engine_smoke(self):
        # check mode re-runs every execution through both executors and
        # raises on the first diverging bit; a clean campaign is itself
        # the assertion.
        engine = CampaignEngine(
            default_compilers(),
            CampaignConfig(budget=2, seed=5),
            engine_config=EngineConfig(exec_mode="check"),
        )
        result = engine.run(make_generator("varity", SplittableRng(5, "chk")))
        assert len(result.outcomes) == 2
