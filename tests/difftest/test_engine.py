"""The staged campaign engine: determinism, caching, sharing, stages,
backends, sharding."""

import pytest

from repro.difftest.backend import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
    resolve_jobs,
)
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import (
    CampaignEngine,
    EngineConfig,
    _BinaryRun,
    _differing_values,
    _diffing_digits,
)
from repro.difftest.harness import DifferentialHarness, run_campaign
from repro.difftest.store import merge_shards
from repro.experiments.approaches import make_generator
from repro.fp.bits import double_to_hex
from repro.generation.program import GeneratedProgram
from repro.toolchains import (
    ClangCompiler,
    CompileCache,
    GccCompiler,
    NvccCompiler,
    kernel_fingerprint,
)
from repro.utils.rng import SplittableRng

TRANSCENDENTAL = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(a + i) * b;
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""


def _hex(v):
    return None if v is None else double_to_hex(v)


def result_key(result):
    """Everything observable in a CampaignResult, NaN-safe (bitwise)."""
    return [
        (
            o.index,
            o.program.source,
            o.compiled,
            o.ran,
            o.signatures,
            {k: _hex(v) for k, v in o.values.items()},
            [
                (
                    c.program_index,
                    c.compiler_a,
                    c.compiler_b,
                    c.level,
                    c.consistent,
                    _hex(c.value_a),
                    _hex(c.value_b),
                    c.digit_diff,
                    c.tag,
                )
                for c in o.comparisons
            ],
            o.triggered,
        )
        for o in result.outcomes
    ]


def run_with(engine_config, approach="varity", budget=8, seed=123):
    rng = SplittableRng(seed, f"engine-{approach}")
    generator = make_generator(approach, rng)
    compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
    engine = CampaignEngine(
        compilers, CampaignConfig(budget=budget), engine_config
    )
    return engine.run(generator)


class TestDeterminism:
    """The acceptance property: results are byte-identical across job
    counts and cache configurations; only timings may differ."""

    def test_jobs_1_vs_4_identical(self):
        serial = run_with(EngineConfig(jobs=1))
        parallel = run_with(EngineConfig(jobs=4))
        assert result_key(serial) == result_key(parallel)

    def test_cache_on_off_identical(self):
        cold = run_with(EngineConfig(jobs=1, compile_cache=False))
        cached = run_with(EngineConfig(jobs=1, compile_cache=True))
        assert result_key(cold) == result_key(cached)

    def test_sharing_on_off_identical(self):
        legacy = run_with(
            EngineConfig(jobs=1, compile_cache=False, share_runs=False)
        )
        shared = run_with(EngineConfig(jobs=1, compile_cache=True, share_runs=True))
        assert result_key(legacy) == result_key(shared)

    def test_parallel_all_knobs_identical_to_legacy(self):
        legacy = run_with(
            EngineConfig(jobs=1, compile_cache=False, share_runs=False)
        )
        full = run_with(EngineConfig(jobs=4, compile_cache=True, share_runs=True))
        assert result_key(legacy) == result_key(full)

    def test_shim_matches_engine(self):
        rng = SplittableRng(123, "engine-varity")
        generator = make_generator("varity", rng)
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        shimmed = run_campaign(generator, compilers, CampaignConfig(budget=8))
        assert result_key(shimmed) == result_key(run_with(EngineConfig()))


class TestBackendEquivalence:
    """The tentpole property: serial, thread and process backends produce
    byte-for-byte identical campaigns; only wall-clock differs."""

    def test_serial_thread_process_identical(self):
        serial = run_with(EngineConfig(backend="serial", jobs=1), budget=6)
        thread = run_with(EngineConfig(backend="thread", jobs=4), budget=6)
        process = run_with(EngineConfig(backend="process", jobs=2), budget=6)
        assert result_key(serial) == result_key(thread)
        assert result_key(serial) == result_key(process)

    def test_vector_lanes_identical_across_backends(self):
        """Vector execution is deterministic lane math: a loops campaign
        (reduction kernels exercising the vectorization tier, including
        the vector-reduction tags) is byte-identical on every backend."""
        serial = run_with(
            EngineConfig(backend="serial", jobs=1), approach="loops", budget=8
        )
        thread = run_with(
            EngineConfig(backend="thread", jobs=4), approach="loops", budget=8
        )
        process = run_with(
            EngineConfig(backend="process", jobs=2), approach="loops", budget=8
        )
        assert result_key(serial) == result_key(thread)
        assert result_key(serial) == result_key(process)
        tags = [
            c.tag
            for o in serial.outcomes
            for c in o.comparisons
            if not c.consistent and c.tag
        ]
        assert "vector-reduction" in tags  # the tier actually fired

    def test_masked_lanes_identical_across_backends(self):
        """Masked (if-converted) lane math is just as deterministic: a
        guarded-loops workload — conditional bodies the hosts if-convert
        at O3 and nvcc predicates everywhere — produces byte-identical
        campaigns on every backend, masked-lane tags included."""
        serial = run_with(
            EngineConfig(backend="serial", jobs=1), approach="loops", budget=10
        )
        thread = run_with(
            EngineConfig(backend="thread", jobs=4), approach="loops", budget=10
        )
        process = run_with(
            EngineConfig(backend="process", jobs=2), approach="loops", budget=10
        )
        assert result_key(serial) == result_key(thread)
        assert result_key(serial) == result_key(process)
        patterns = [o.program.meta.get("pattern", "") for o in serial.outcomes]
        assert any("guarded" in p for p in patterns)  # workload is guarded
        tags = [
            c.tag
            for o in serial.outcomes
            for c in o.comparisons
            if not c.consistent and c.tag
        ]
        assert "masked-lane" in tags  # the masked tier actually fired

    def test_process_with_llm_approach_identical(self):
        serial = run_with(
            EngineConfig(backend="serial", jobs=1), approach="llm4fp", budget=5
        )
        process = run_with(
            EngineConfig(backend="process", jobs=2), approach="llm4fp", budget=5
        )
        assert result_key(serial) == result_key(process)

    def test_process_backend_no_pool_for_single_job(self):
        # jobs=1 must never spawn a pool: run_kernels goes inline
        backend = ProcessBackend(jobs=1)
        assert backend.run_kernels([]) == []
        assert backend._pool is None
        backend.shutdown()

    def test_jobs_auto_resolves_to_cpu_count(self):
        import os

        assert resolve_jobs("auto") == (os.cpu_count() or 1)
        assert EngineConfig(jobs="auto").resolved_jobs == (os.cpu_count() or 1)

    def test_create_backend_types(self):
        assert isinstance(create_backend("serial", 1), SerialBackend)
        assert isinstance(create_backend("thread", 2), ThreadBackend)
        assert isinstance(create_backend("process", 2), ProcessBackend)
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("fork-bomb", 2)
        with pytest.raises(ValueError, match="serial backend"):
            create_backend("serial", 2)

    def test_backend_config_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            EngineConfig(backend="greenlet")
        with pytest.raises(ValueError, match="serial backend"):
            EngineConfig(backend="serial", jobs=4)
        with pytest.raises(ValueError, match="jobs"):
            EngineConfig(jobs="many")


class TestSharding:
    def test_shard_union_identical_to_unsharded(self):
        unsharded = run_with(EngineConfig(), budget=8)
        shards = [
            run_with(EngineConfig(shard_index=i, shard_count=3), budget=8)
            for i in range(3)
        ]
        # disjoint coverage: every index exactly once across shards
        indices = sorted(o.index for r in shards for o in r.outcomes)
        assert indices == list(range(8))
        merged = merge_shards(shards)
        assert result_key(merged) == result_key(unsharded)
        assert merged.shard_count == 1 and merged.budget == 8

    def test_shard_counters_sum_to_unsharded(self):
        unsharded = run_with(EngineConfig(), budget=6)
        shards = [
            run_with(EngineConfig(shard_index=i, shard_count=2), budget=6)
            for i in range(2)
        ]
        merged = merge_shards(shards)
        assert merged.total_runs == unsharded.total_runs
        assert merged.triggering_programs == unsharded.triggering_programs

    def test_feedback_generator_rejected(self):
        with pytest.raises(ValueError, match="feedback"):
            run_with(
                EngineConfig(shard_index=0, shard_count=2),
                approach="llm4fp",
                budget=4,
            )

    def test_shard_config_validation(self):
        with pytest.raises(ValueError, match="shard_count"):
            EngineConfig(shard_count=0)
        with pytest.raises(ValueError, match="shard_index"):
            EngineConfig(shard_index=2, shard_count=2)
        with pytest.raises(ValueError, match="shard_index"):
            EngineConfig(shard_index=-1, shard_count=2)

    def test_merge_rejects_incomplete_or_duplicate_sets(self):
        shards = [
            run_with(EngineConfig(shard_index=i, shard_count=2), budget=4)
            for i in range(2)
        ]
        with pytest.raises(ValueError, match="missing"):
            merge_shards(shards[:1])
        with pytest.raises(ValueError, match="duplicate"):
            merge_shards([shards[0], shards[0]])
        with pytest.raises(ValueError, match="at least one"):
            merge_shards([])


class _Repeat:
    """Generator stub: the same program every time (cache torture test)."""

    name = "repeat"

    def __init__(self, program):
        self.program = program

    def generate(self):
        return self.program

    def notify_success(self, program):
        pass


class TestCompileCache:
    def test_repeated_kernel_hits_cache(self):
        program = GeneratedProgram(source=TRANSCENDENTAL, inputs=(0.37, 1.91, 5))
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        engine = CampaignEngine(
            compilers, CampaignConfig(budget=4), EngineConfig(jobs=1)
        )
        result = engine.run(_Repeat(program))
        # 12 distinct (compiler, level-class) units per program (gcc and
        # clang each split O0/O1/O2+vec4/O3+vec8/fastmath, nvcc keeps two
        # classes); programs 2..4 are pure cache hits.
        assert result.cache_misses == 12
        assert result.cache_hits == 36
        assert result.cache_hit_rate == pytest.approx(0.75)

    def test_cache_disabled_records_no_lookups(self):
        result = run_with(EngineConfig(jobs=1, compile_cache=False), budget=2)
        assert result.cache_hits == 0 and result.cache_misses == 0

    def test_reused_engine_reports_per_run_counters(self):
        # A second run on the same engine (warm cache) must report that
        # run's own deltas, not lifetime totals.
        program = GeneratedProgram(source=TRANSCENDENTAL, inputs=(0.37, 1.91, 5))
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        engine = CampaignEngine(
            compilers, CampaignConfig(budget=2), EngineConfig(jobs=1)
        )
        first = engine.run(_Repeat(program))
        second = engine.run(_Repeat(program))
        assert first.total_runs == second.total_runs == 2 * 18
        assert second.cache_misses == 0  # fully warm
        assert second.cache_hits == 24  # 12 units x 2 programs
        assert first.cache_misses == 12 and first.cache_hits == 12

    def test_lru_eviction_bounds_size(self):
        cache = CompileCache(capacity=2)
        gcc = GccCompiler()
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute
        from repro.toolchains import OptLevel

        kernel = lower_compute(check_program(parse_program(TRANSCENDENTAL)))
        fp = kernel_fingerprint(kernel)
        for token in ("a", "b", "c"):
            gcc.compile_kernel_cached(kernel, OptLevel.O0, cache, fp, token)
        assert len(cache) == 2

    def test_fingerprint_distinguishes_signed_zero(self):
        from repro.frontend.parser import parse_program
        from repro.frontend.sema import check_program
        from repro.ir.lower import lower_compute

        plus = lower_compute(
            check_program(
                parse_program(
                    "#include <stdio.h>\nvoid compute(double a) {"
                    ' double comp = a + 0.0; printf("%.17g\\n", comp); }\n'
                    "int main(int argc, char **argv) {"
                    " compute(atof(argv[1])); return 0; }"
                )
            )
        )
        minus = lower_compute(
            check_program(
                parse_program(
                    "#include <stdio.h>\nvoid compute(double a) {"
                    ' double comp = a + -0.0; printf("%.17g\\n", comp); }\n'
                    "int main(int argc, char **argv) {"
                    " compute(atof(argv[1])); return 0; }"
                )
            )
        )
        assert kernel_fingerprint(plus) != kernel_fingerprint(minus)


class TestRunSharing:
    def test_matrix_dedup_counts(self):
        program = GeneratedProgram(source=TRANSCENDENTAL, inputs=(0.37, 1.91, 5))
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        engine = CampaignEngine(
            compilers, CampaignConfig(budget=1), EngineConfig(jobs=1)
        )
        result = engine.run(_Repeat(program))
        assert result.total_runs == 18
        # at minimum the within-compiler level classes collapse 18 -> <= 12
        # (the vector tier splits O2/O3 into their own classes)
        assert result.shared_runs >= 9
        assert result.run_share_rate >= 9 / 18

    def test_sharing_disabled_runs_everything(self):
        program = GeneratedProgram(source=TRANSCENDENTAL, inputs=(0.37, 1.91, 5))
        compilers = [GccCompiler(), ClangCompiler(), NvccCompiler()]
        engine = CampaignEngine(
            compilers,
            CampaignConfig(budget=1),
            EngineConfig(jobs=1, compile_cache=False, share_runs=False),
        )
        result = engine.run(_Repeat(program))
        assert result.total_runs == 18 and result.shared_runs == 0


class TestStageAccounting:
    def test_stage_buckets_cover_total(self):
        result = run_with(EngineConfig(jobs=1), budget=3)
        stages = result.stage_seconds
        assert set(stages) == {"generate", "frontend", "compile", "execute", "compare"}
        assert all(v >= 0.0 for v in stages.values())
        assert result.total_seconds == pytest.approx(
            sum(stages.values()) + result.llm_latency_seconds
        )

    def test_report_exposes_stage_summary(self):
        from repro.difftest.report import CampaignReport

        result = run_with(EngineConfig(jobs=1), budget=2)
        report = CampaignReport(result)
        summary = report.stage_summary()
        assert summary["total_runs"] == 2 * 18
        rendered = report.render_stages()
        assert "compile" in rendered and "execute" in rendered


class TestValidation:
    def test_single_compiler_message_names_it(self):
        with pytest.raises(ValueError, match=r"got 1 \(gcc\)"):
            CampaignEngine([GccCompiler()], CampaignConfig(budget=1))

    def test_duplicate_names_listed(self):
        with pytest.raises(ValueError, match="duplicate name"):
            DifferentialHarness(
                [GccCompiler(), GccCompiler(), NvccCompiler()],
                CampaignConfig(budget=1),
            )
        with pytest.raises(ValueError, match="gcc"):
            DifferentialHarness(
                [GccCompiler(), GccCompiler(), NvccCompiler()],
                CampaignConfig(budget=1),
            )

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(jobs=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_capacity=0)


class TestDifferingValueGuard:
    """Satellite: a matching printed prefix with a None final must not
    crash digit accounting — it becomes a sentinel comparison."""

    def test_none_final_returns_sentinel(self):
        ra = _BinaryRun(signature="", value=None, printed=())
        rb = _BinaryRun(
            signature="3ff0000000000000", value=1.0, printed=(1.0,)
        )
        va, vb = _differing_values(ra, rb)
        assert va is None and vb == 1.0
        assert _diffing_digits(va, vb) == 0

    def test_sentinel_comparison_recorded_not_raised(self):
        # Engine-level: inject runs directly into the compare stage.
        from repro.difftest.record import ProgramOutcome
        from repro.toolchains import OptLevel

        compilers = [GccCompiler(), NvccCompiler()]
        engine = CampaignEngine(
            compilers,
            CampaignConfig(budget=1, levels=(OptLevel.O0,)),
        )
        outcome = ProgramOutcome(
            index=0, program=GeneratedProgram(source="", inputs=())
        )
        runs = {
            ("gcc", OptLevel.O0): _BinaryRun("", None, ()),
            ("nvcc", OptLevel.O0): _BinaryRun("3ff0000000000000", 1.0, (1.0,)),
        }
        engine._compare_stage(0, runs, outcome)
        assert len(outcome.comparisons) == 1
        rec = outcome.comparisons[0]
        assert not rec.consistent
        assert rec.value_a is None and rec.value_b == 1.0
        assert rec.digit_diff == 0
        assert rec.kind is None  # sentinel: outside the five-class taxonomy

    def test_matched_digits_still_computed(self):
        ra = _BinaryRun("x", 1.0, (1.0,))
        rb = _BinaryRun("y", 2.0, (2.0,))
        va, vb = _differing_values(ra, rb)
        assert (va, vb) == (1.0, 2.0)
        assert _diffing_digits(va, vb) > 0


class TestJsonLineProgress:
    """The machine-readable progress stream fleet worker logs record."""

    def test_one_json_line_per_program_plus_summary(self):
        import io
        import json

        from repro.difftest.engine import JsonLineProgress

        stream = io.StringIO()
        progress = JsonLineProgress(budget=4, stream=stream)
        result = CampaignEngine(
            [GccCompiler(), NvccCompiler()], CampaignConfig(budget=4)
        ).run(make_generator("varity", SplittableRng(5)), progress=progress)
        progress.finish()
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        programs = [e for e in lines if e["event"] == "program"]
        assert [e["index"] for e in programs] == [0, 1, 2, 3]
        assert [e["done"] for e in programs] == [1, 2, 3, 4]
        assert all(e["budget"] == 4 for e in programs)
        done = lines[-1]
        assert done["event"] == "campaign-done" and done["done"] == 4
        assert done["triggering_programs"] == sum(
            bool(o.triggered) for o in result.outcomes
        )

    def test_sharded_done_counts_owned_programs_only(self):
        import io
        import json

        from repro.difftest.engine import JsonLineProgress

        stream = io.StringIO()
        progress = JsonLineProgress(budget=6, stream=stream)
        CampaignEngine(
            [GccCompiler(), NvccCompiler()],
            CampaignConfig(budget=6),
            EngineConfig(shard_index=1, shard_count=2),
        ).run(make_generator("varity", SplittableRng(5)), progress=progress)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [e["index"] for e in lines] == [1, 3, 5]
        assert [e["done"] for e in lines] == [1, 2, 3]
