"""Text table rendering."""

import pytest

from repro.utils.tables import TextTable


class TestTextTable:
    def test_basic_render(self):
        t = TextTable(["a", "bb"], title="T")
        t.add_row([1, 22])
        out = t.render()
        assert out.splitlines()[0] == "T"
        assert "a" in out and "22" in out

    def test_alignment(self):
        t = TextTable(["col"])
        t.add_row(["longer-cell"])
        lines = t.render().splitlines()
        assert len(lines[1]) == len("longer-cell")  # header padded to width

    def test_wrong_arity_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_str_equals_render(self):
        t = TextTable(["x"])
        t.add_row(["v"])
        assert str(t) == t.render()
