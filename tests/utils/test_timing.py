"""Stopwatch accounting and hh:mm:ss formatting."""

import pytest

from repro.utils.timing import Stopwatch, format_hms


class TestFormatHms:
    def test_zero(self):
        assert format_hms(0) == "00:00:00"

    def test_paper_style_values(self):
        assert format_hms(30 * 60 + 42) == "00:30:42"
        assert format_hms(5 * 3600 + 37 * 60 + 42) == "05:37:42"

    def test_rounding(self):
        assert format_hms(59.6) == "00:01:00"

    def test_large(self):
        assert format_hms(100 * 3600) == "100:00:00"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_hms(-1)


class TestStopwatch:
    def test_phase_accumulates(self):
        sw = Stopwatch()
        with sw.phase("gen"):
            pass
        with sw.phase("gen"):
            pass
        assert sw.buckets["gen"] >= 0.0
        assert sw.total == sum(sw.buckets.values())

    def test_charge(self):
        sw = Stopwatch()
        sw.charge("llm-latency", 2.5)
        sw.charge("llm-latency", 1.5)
        assert sw.buckets["llm-latency"] == 4.0

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            Stopwatch().charge("x", -1.0)

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start("a")
        with pytest.raises(RuntimeError):
            sw.start("a")

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop("never")

    def test_as_hms(self):
        sw = Stopwatch()
        sw.charge("x", 61)
        assert sw.as_hms() == "00:01:01"
