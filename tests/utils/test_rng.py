"""Determinism and independence of splittable RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import SplittableRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = SplittableRng(42), SplittableRng(42)
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_seed_different_stream(self):
        a, b = SplittableRng(1), SplittableRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_split_deterministic(self):
        a = SplittableRng(7).split("gen")
        b = SplittableRng(7).split("gen")
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_split_independent_of_parent_consumption(self):
        a = SplittableRng(7)
        a.random()  # consume from parent
        child1 = a.split("x")
        child2 = SplittableRng(7).split("x")
        assert child1.random() == child2.random()

    def test_sibling_streams_differ(self):
        root = SplittableRng(3)
        assert root.split("a").random() != root.split("b").random()

    def test_nested_labels(self):
        r = SplittableRng(5).split("outer").split("inner")
        assert r.label == "root/outer/inner"


class TestSampling:
    def setup_method(self):
        self.rng = SplittableRng(123)

    def test_randint_bounds(self):
        for _ in range(200):
            v = self.rng.randint(3, 7)
            assert 3 <= v <= 7

    def test_choice(self):
        seq = ["a", "b", "c"]
        assert self.rng.choice(seq) in seq

    def test_choice_empty_raises(self):
        with pytest.raises(IndexError):
            self.rng.choice([])

    def test_bernoulli_extremes(self):
        assert not any(self.rng.bernoulli(0.0) for _ in range(50))
        assert all(self.rng.bernoulli(1.0) for _ in range(50))

    def test_weighted_index_degenerate(self):
        assert self.rng.weighted_index([0.0, 5.0, 0.0]) == 1

    def test_weighted_index_bad_weights(self):
        with pytest.raises(ValueError):
            self.rng.weighted_index([0.0, 0.0])

    def test_weighted_index_distribution(self):
        rng = SplittableRng(9)
        counts = [0, 0]
        for _ in range(2000):
            counts[rng.weighted_index([1.0, 3.0])] += 1
        assert counts[1] > counts[0] * 2

    def test_shuffle_permutation(self):
        items = list(range(20))
        shuffled = items[:]
        self.rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    @given(st.integers(min_value=0, max_value=2**63))
    def test_any_seed_works(self, seed):
        r = SplittableRng(seed)
        assert 0.0 <= r.random() < 1.0
