"""The divergence-tier registry: ranks, shapes, and tag precedence."""

import pytest

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import ClangVecLibm, GccVecLibm, HostLibm
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes import IfConvert, Vectorize
from repro.tiers import (
    MASKED_INT_GUARD,
    MASKED_LANE,
    MIXED_PRECISION,
    VEC_LIBM,
    VECTOR_REDUCTION,
    DivergenceTier,
    int_guard_shape,
    mixed_precision_shape,
    register,
    registry,
    shape_vector,
    structural_tag_from_shapes,
    tier_by_tag,
    tier_tags,
    veclibm_shape,
)
from repro.toolchains.optlevels import TierPolicy


def kernel_of(source):
    return lower_compute(check_program(parse_program(source)))


CALL_REDUCTION = """
#include <stdio.h>
#include <math.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(a[i]) * s;
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atof(argv[9]), atoi(argv[10]));
  return 0;
}
"""

MIXED_REDUCTION = CALL_REDUCTION.replace("sin(a[i]) * s", "(float)(a[i]) * (float)(s)")

GUARDED_CALL = """
#include <stdio.h>
#include <math.h>
void compute(double *a, double s, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    if (a[i] > 0.0) {
      comp += sin(a[i]) * s;
    }
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  double in_a[8] = {atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]),
                    atof(argv[5]), atof(argv[6]), atof(argv[7]), atof(argv[8])};
  compute(in_a, atof(argv[9]), atoi(argv[10]));
  return 0;
}
"""

INT_GUARDED = GUARDED_CALL.replace("a[i] > 0.0", "i < n - 2").replace(
    "sin(a[i]) * s", "a[i] * s"
)


def vectorized(source, *, width=4, style="adjacent", masked=False,
               int_guards=False, mixed=False):
    kernel = kernel_of(source)
    if masked or int_guards:
        kernel = IfConvert().run(kernel)
    return Vectorize(
        width, style, masked=masked, int_guards=int_guards, mixed=mixed
    ).run(kernel)


class TestRegistryContents:
    def test_ranks_and_precedence_order(self):
        tiers = registry()
        assert [t.tag for t in tiers] == [
            VEC_LIBM, MIXED_PRECISION, MASKED_INT_GUARD, MASKED_LANE,
            VECTOR_REDUCTION,
        ]
        assert [t.rank for t in tiers] == sorted(t.rank for t in tiers)
        assert tier_tags() == tuple(t.tag for t in tiers)

    def test_policy_fields_name_real_tier_policy_fields(self):
        fields = TierPolicy.__dataclass_fields__
        for tier in registry():
            assert tier.policy_field in fields

    def test_tier_by_tag(self):
        assert tier_by_tag(VEC_LIBM).rank < tier_by_tag(MASKED_LANE).rank

    def test_duplicate_tag_and_rank_rejected(self):
        existing = registry()[0]
        with pytest.raises(ValueError, match="already registered"):
            register(DivergenceTier(existing.tag, 999, existing.extract, "vec_libm"))
        with pytest.raises(ValueError, match="rank"):
            register(
                DivergenceTier("fresh-tag", existing.rank, existing.extract, "vec_libm")
            )


class TestShapeExtractors:
    def test_veclibm_shape_empty_without_library_or_calls(self):
        kernel = vectorized(CALL_REDUCTION)
        assert veclibm_shape(kernel, None) == ()
        assert veclibm_shape(kernel, FPEnvironment(libm=HostLibm())) == ()
        plain = vectorized(MIXED_REDUCTION, mixed=True)  # no calls
        env = FPEnvironment(libm=HostLibm(), veclibm=GccVecLibm())
        assert veclibm_shape(plain, env) == ()

    def test_veclibm_shape_leads_with_library_identity(self):
        kernel = vectorized(CALL_REDUCTION)
        gcc_env = FPEnvironment(libm=HostLibm(), veclibm=GccVecLibm())
        clang_env = FPEnvironment(libm=HostLibm(), veclibm=ClangVecLibm())
        sa, sb = veclibm_shape(kernel, gcc_env), veclibm_shape(kernel, clang_env)
        assert sa[0] == ("lib", "PerturbedLibm", "libmvec")
        assert sb[0] == ("lib", "PerturbedLibm", "sleef")
        assert sa[1:] == sb[1:] == (("call", "sin", 4, "double"),)

    def test_mixed_precision_shape_carries_conversions_and_reductions(self):
        kernel = vectorized(MIXED_REDUCTION, mixed=True)
        shape = mixed_precision_shape(kernel)
        assert ("trunc", 4) in shape
        assert any(site[0] == "reduce" for site in shape)
        assert mixed_precision_shape(vectorized(CALL_REDUCTION)) == ()

    def test_int_guard_shape_only_for_integer_masks(self):
        iguard = vectorized(INT_GUARDED, masked=True, int_guards=True)
        shape = int_guard_shape(iguard)
        assert shape and shape[0] == ("icmp", "<", 4)
        fguard = vectorized(GUARDED_CALL, masked=True)
        assert int_guard_shape(fguard) == ()

    def test_shape_vector_is_positional_registry_order(self):
        kernel = vectorized(CALL_REDUCTION)
        env = FPEnvironment(libm=HostLibm(), veclibm=GccVecLibm())
        shapes = shape_vector(kernel, env)
        assert len(shapes) == len(registry())
        assert shapes[0] == veclibm_shape(kernel, env)
        assert shapes[-1][0] == ("+", 4, "adjacent")


class TestTagPrecedence:
    def _pair(self, source, **kwargs):
        """The same kernel widened the gcc way and the clang way."""
        env_a = FPEnvironment(libm=HostLibm(), veclibm=GccVecLibm())
        env_b = FPEnvironment(libm=HostLibm(), veclibm=ClangVecLibm())
        ka = vectorized(source, style="adjacent", **kwargs)
        kb = vectorized(source, style="ladder", **kwargs)
        return shape_vector(ka, env_a), shape_vector(kb, env_b)

    def test_preconditions_gate_every_tag(self):
        sa, sb = self._pair(CALL_REDUCTION)
        assert structural_tag_from_shapes(sa, sb, False, True) is None
        assert structural_tag_from_shapes(sa, sb, True, False) is None

    def test_equal_shapes_tag_nothing(self):
        kernel = vectorized(CALL_REDUCTION)
        env = FPEnvironment(libm=HostLibm(), veclibm=GccVecLibm())
        shapes = shape_vector(kernel, env)
        assert structural_tag_from_shapes(shapes, shapes, True, True) is None

    def test_masked_plus_veclibm_kernel_tags_vec_libm_deterministically(self):
        # Satellite regression: a kernel that is simultaneously masked AND
        # calls through a vector math library must tag the more specific
        # family — vec-libm outranks masked-lane by explicit rank.
        sa, sb = self._pair(GUARDED_CALL, masked=True)
        assert sa[0] != sb[0]  # vec-libm shapes differ (lib identity)
        assert sa[3] != sb[3]  # masked shapes differ too (reduce style)
        for _ in range(3):
            assert structural_tag_from_shapes(sa, sb, True, True) == VEC_LIBM

    def test_reduction_style_alone_tags_vector_reduction(self):
        env = FPEnvironment(libm=HostLibm())
        ka = vectorized(CALL_REDUCTION, style="adjacent")
        kb = vectorized(CALL_REDUCTION, style="ladder")
        tag = structural_tag_from_shapes(
            shape_vector(ka, env), shape_vector(kb, env), True, True
        )
        assert tag == VECTOR_REDUCTION

    def test_mixed_precision_outranks_vector_reduction(self):
        env = FPEnvironment(libm=HostLibm())
        ka = vectorized(MIXED_REDUCTION, style="adjacent", mixed=True)
        kb = vectorized(MIXED_REDUCTION, style="ladder", mixed=True)
        tag = structural_tag_from_shapes(
            shape_vector(ka, env), shape_vector(kb, env), True, True
        )
        assert tag == MIXED_PRECISION

    def test_int_guard_outranks_masked_lane(self):
        env = FPEnvironment(libm=HostLibm())
        ka = vectorized(INT_GUARDED, style="adjacent", masked=True, int_guards=True)
        kb = vectorized(INT_GUARDED, style="ladder", masked=True, int_guards=True)
        tag = structural_tag_from_shapes(
            shape_vector(ka, env), shape_vector(kb, env), True, True
        )
        assert tag == MASKED_INT_GUARD

    def test_legacy_structural_tag_agrees_with_registry(self):
        from repro.difftest.classify import masked_shape, structural_tag, vector_shape

        ka = vectorized(GUARDED_CALL, style="adjacent", masked=True)
        kb = vectorized(GUARDED_CALL, style="ladder", masked=True)
        tag = structural_tag(
            vector_shape(ka), vector_shape(kb),
            masked_shape(ka), masked_shape(kb),
            True, True,
        )
        assert tag == MASKED_LANE
