"""The per-compiler tier-policy table and its toolchain wiring."""

import pytest

from repro.toolchains import (
    ALL_LEVELS,
    ClangCompiler,
    GccCompiler,
    NvccCompiler,
    OptLevel,
    TIER_PROFILES,
    default_compilers,
    tier_policy,
)
from repro.toolchains.optlevels import (
    if_conversion_for,
    vector_width_for,
)

FAMILIES = ("gcc", "clang", "nvcc")


class TestPolicyTable:
    def test_baseline_matches_deprecated_shims_everywhere(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                pol = tier_policy(family, level)
                assert pol.vector_width == vector_width_for(family, level)
                assert pol.if_convert == if_conversion_for(family, level)

    def test_baseline_never_enables_the_new_tiers(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                pol = tier_policy(family, level, "baseline")
                assert not pol.int_guards
                assert not pol.vec_libm
                assert not pol.mixed_precision

    def test_full_profile_widths_and_if_convert_are_unchanged(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                base = tier_policy(family, level, "baseline")
                full = tier_policy(family, level, "full")
                assert full.vector_width == base.vector_width
                assert full.if_convert == base.if_convert

    def test_full_profile_vec_libm_only_under_fast_math(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                pol = tier_policy(family, level, "full")
                expected = (
                    level is OptLevel.O3_FASTMATH and pol.vector_width > 0
                )
                assert pol.vec_libm == expected

    def test_full_profile_int_guards_follow_if_conversion(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                pol = tier_policy(family, level, "full")
                assert pol.int_guards == pol.if_convert

    def test_full_profile_mixed_precision_follows_the_vectorizer(self):
        for family in FAMILIES:
            for level in ALL_LEVELS:
                pol = tier_policy(family, level, "full")
                assert pol.mixed_precision == (pol.vector_width > 0)

    def test_unknown_profile_and_family_raise(self):
        with pytest.raises(KeyError, match="tier profile"):
            tier_policy("gcc", OptLevel.O2, "turbo")
        with pytest.raises(KeyError, match="compiler family"):
            tier_policy("icc", OptLevel.O2)

    def test_profiles_constant(self):
        assert TIER_PROFILES == ("baseline", "full")


class TestCompilerWiring:
    def test_default_compilers_forward_the_profile(self):
        for c in default_compilers():
            assert c.tiers == "baseline"
        for c in default_compilers(tiers="full"):
            assert c.tiers == "full"

    def test_baseline_cache_tokens_are_unchanged(self):
        # The compile cache (and the triage bisect memo) key on these;
        # baseline must reproduce the pre-registry tokens byte-for-byte.
        gcc = GccCompiler()
        assert gcc.cache_token(OptLevel.O2) == "O2+vec4"
        assert gcc.cache_token(OptLevel.O3_FASTMATH) == "O3_fastmath"
        assert "tiers" not in NvccCompiler().cache_token(OptLevel.O3)

    def test_full_profile_cache_tokens_are_distinct(self):
        for base, full in zip(default_compilers(), default_compilers(tiers="full")):
            for level in ALL_LEVELS:
                assert base.cache_token(level) != full.cache_token(level)
                assert "tiers" in full.cache_token(level)

    @pytest.mark.parametrize(
        "cls,libname", [(GccCompiler, "libmvec"), (ClangCompiler, "sleef")]
    )
    def test_host_veclibm_attaches_at_fastmath_only(self, cls, libname):
        full = cls(tiers="full")
        for level in ALL_LEVELS:
            env = full.environment(level)
            if level is OptLevel.O3_FASTMATH:
                assert env.veclibm is not None and env.veclibm.name == libname
            else:
                assert env.veclibm is None
        for level in ALL_LEVELS:
            assert cls().environment(level).veclibm is None

    def test_nvcc_veclibm_only_in_the_fast32_environment(self):
        from repro.fp.formats import Precision

        # SIMT intrinsics follow CUDA fast math's single-precision scope:
        # a double-precision kernel keeps scalar CUDA libm even at
        # O3_fastmath under the full profile.
        full32 = NvccCompiler(precision=Precision.SINGLE, tiers="full")
        env = full32.environment(OptLevel.O3_FASTMATH)
        assert env.veclibm is not None and env.veclibm.name == "simt-intrinsic"
        for level in ALL_LEVELS:
            if level is not OptLevel.O3_FASTMATH:
                assert full32.environment(level).veclibm is None
        full64 = NvccCompiler(tiers="full")
        assert full64.environment(OptLevel.O3_FASTMATH).veclibm is None
        base32 = NvccCompiler(precision=Precision.SINGLE)
        assert base32.environment(OptLevel.O3_FASTMATH).veclibm is None

    def test_environment_describe_names_the_vector_library(self):
        env = GccCompiler(tiers="full").environment(OptLevel.O3_FASTMATH)
        assert "veclibm=libmvec" in env.describe()
