"""Toolchain models: pipelines per level, inconsistency mechanisms."""

import pytest

from repro.errors import CompileError
from repro.toolchains import (
    ALL_LEVELS,
    ClangCompiler,
    GccCompiler,
    NvccCompiler,
    OptLevel,
    default_compilers,
    flags_for,
)

TRANSCENDENTAL = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(a + i) * b;
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""

FMA_SHAPE = """
#include <stdio.h>
void compute(double a, double b, double c) {
  double comp = a * b + c;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atof(argv[3]));
  return 0;
}
"""

CONST_CALL = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b) {
  double k = sin(0.502);
  double comp = k + a * b;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]));
  return 0;
}
"""

PROPAGATED_CALL = """
#include <stdio.h>
#include <math.h>
void compute(double a, double b) {
  double w = 0.502;
  double k = sin(w);
  double comp = k + a * b;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]));
  return 0;
}
"""

# sin(0.502): a point where HostLibm's faithful result differs from the
# correctly rounded one (verified by the decorrelation test below).


def run(compiler, source, level, inputs):
    binary = compiler.compile_source(source, level)
    result = binary.run(inputs)
    assert result.ok, result.error
    return result.signature()


class TestBasics:
    def test_default_trio(self):
        names = [c.name for c in default_compilers()]
        assert names == ["gcc", "clang", "nvcc"]

    def test_flags_table1(self):
        assert flags_for("gcc", OptLevel.O0_NOFMA) == "-O0 -ffp-contract=off"
        assert flags_for("nvcc", OptLevel.O0_NOFMA) == "-O0 --fmad=false"
        assert flags_for("clang", OptLevel.O3_FASTMATH) == "-O3 -ffast-math"
        assert flags_for("nvcc", OptLevel.O3_FASTMATH) == "-O3 --use_fast_math"

    def test_all_levels_order(self):
        assert [str(l) for l in ALL_LEVELS] == [
            "O0_nofma", "O0", "O1", "O2", "O3", "O3_fastmath",
        ]

    def test_compile_failure_raises(self):
        with pytest.raises(CompileError):
            GccCompiler().compile_source("void compute( {", OptLevel.O0)

    def test_sema_failure_is_compile_error(self):
        bad = (
            "void compute(double a) { double c = mystery(a); }"
            "int main() { compute(1.0); return 0; }"
        )
        with pytest.raises(CompileError):
            ClangCompiler().compile_source(bad, OptLevel.O0)

    def test_binary_label(self):
        b = GccCompiler().compile_source(FMA_SHAPE, OptLevel.O2)
        assert b.label == "gcc/O2"
        assert b.flags == "-O2"


class TestDeterminism:
    @pytest.mark.parametrize("compiler", [GccCompiler(), ClangCompiler(), NvccCompiler()])
    def test_same_binary_same_output(self, compiler):
        inputs = (1.25, -0.75, 13)
        for level in ALL_LEVELS:
            s1 = run(compiler, TRANSCENDENTAL, level, inputs)
            s2 = run(compiler, TRANSCENDENTAL, level, inputs)
            assert s1 == s2


class TestHostHostMechanisms:
    def test_gcc_clang_agree_on_pure_arithmetic_strict(self):
        src = FMA_SHAPE
        inputs = (1.1, 2.3, -0.7)
        for level in (OptLevel.O0_NOFMA, OptLevel.O0, OptLevel.O1):
            assert run(GccCompiler(), src, level, inputs) == run(
                ClangCompiler(), src, level, inputs
            )

    def test_gcc_clang_agree_on_runtime_transcendentals(self):
        # Same HostLibm: variable-argument math calls match exactly.
        inputs = (0.37, 1.91, 23)
        assert run(GccCompiler(), TRANSCENDENTAL, OptLevel.O0, inputs) == run(
            ClangCompiler(), TRANSCENDENTAL, OptLevel.O0, inputs
        )

    def test_clang_folds_const_call_at_O0_gcc_does_not(self):
        inputs = (0.0, 0.0)
        g = run(GccCompiler(), CONST_CALL, OptLevel.O0, inputs)
        c = run(ClangCompiler(), CONST_CALL, OptLevel.O0, inputs)
        assert g != c  # folded CR constant vs runtime glibc value

    def test_gcc_folds_const_call_from_O1(self):
        inputs = (0.0, 0.0)
        assert run(GccCompiler(), CONST_CALL, OptLevel.O1, inputs) == run(
            ClangCompiler(), CONST_CALL, OptLevel.O0, inputs
        )

    def test_clang_propagation_reaches_more_sites_at_O1(self):
        inputs = (0.0, 0.0)
        g = run(GccCompiler(), PROPAGATED_CALL, OptLevel.O1, inputs)
        c = run(ClangCompiler(), PROPAGATED_CALL, OptLevel.O1, inputs)
        assert g != c  # gcc: runtime libm; clang: folded CR value

    def test_fastmath_diverges_hosts(self):
        src = """
#include <stdio.h>
void compute(double a, double b, double c, double d) {
  double comp = a + b + c + d;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atof(argv[3]), atof(argv[4]));
  return 0;
}
"""
        inputs = (1e16, 1.0, -1e16, 1.0)
        g = run(GccCompiler(), src, OptLevel.O3_FASTMATH, inputs)
        strict = run(GccCompiler(), src, OptLevel.O0, inputs)
        assert g != strict  # reassociation changes the cancellation


class TestDeviceMechanisms:
    def test_nvcc_contracts_at_O0_but_not_O0_nofma(self):
        # fmad_prob=1.0 forces every eligible site to fuse so the mechanism
        # is observable on this single-site program (the default is ptxas'
        # selective fusion).
        inputs = (1.0 + 2.0**-30, 1.0 + 2.0**-30, -1.0)
        nvcc = NvccCompiler(fmad_prob=1.0)
        nofma = run(nvcc, FMA_SHAPE, OptLevel.O0_NOFMA, inputs)
        fma = run(nvcc, FMA_SHAPE, OptLevel.O0, inputs)
        assert nofma != fma

    def test_nvcc_flat_across_O0_to_O3(self):
        inputs = (1.37, -2.21, 17)
        sigs = {
            run(NvccCompiler(), TRANSCENDENTAL, level, inputs)
            for level in (OptLevel.O0, OptLevel.O1, OptLevel.O2, OptLevel.O3)
        }
        assert len(sigs) == 1

    def test_host_device_differ_on_transcendentals(self):
        inputs = (0.37, 1.91, 23)
        host = run(GccCompiler(), TRANSCENDENTAL, OptLevel.O0_NOFMA, inputs)
        dev = run(NvccCompiler(), TRANSCENDENTAL, OptLevel.O0_NOFMA, inputs)
        assert host != dev  # glibc vs CUDA libm

    def test_hosts_never_contract(self):
        inputs = (1.0 + 2.0**-30, 1.0 + 2.0**-30, -1.0)
        for compiler in (GccCompiler(), ClangCompiler()):
            o0 = run(compiler, FMA_SHAPE, OptLevel.O0_NOFMA, inputs)
            o3 = run(compiler, FMA_SHAPE, OptLevel.O3, inputs)
            assert o0 == o3

    def test_double_precision_fastmath_keeps_cuda_libm(self):
        # CUDA --use_fast_math affects FP32 intrinsics; FP64 kernels keep
        # the precise CUDA libm (Table 5's nearly-flat nvcc column).
        inputs = (0.37, 1.91, 23)
        o3 = run(NvccCompiler(), TRANSCENDENTAL, OptLevel.O3, inputs)
        fast = run(NvccCompiler(), TRANSCENDENTAL, OptLevel.O3_FASTMATH, inputs)
        assert o3 == fast


class TestCudaTranslationPath:
    def test_translate_roundtrip_preserves_semantics(self):
        from repro.frontend.parser import parse_program
        from repro.toolchains.cuda import translate_to_cuda

        unit = parse_program(TRANSCENDENTAL)
        cuda_unit = translate_to_cuda(unit)
        b1 = NvccCompiler().compile_unit(unit, OptLevel.O2)
        b2 = NvccCompiler().compile_unit(cuda_unit, OptLevel.O2)
        inputs = (0.9, 1.1, 9)
        assert b1.run(inputs).signature() == b2.run(inputs).signature()
