"""CodeBLEU and its components."""

import pytest

from repro.metrics.astmatch import ast_match, subtree_signatures
from repro.metrics.bleu import bleu_score, modified_precision, ngram_counts
from repro.metrics.codebleu import codebleu
from repro.metrics.ctokens import c_tokens, normalize_tokens
from repro.metrics.dataflow import dataflow_edges, dataflow_match

PROG_A = """
#include <stdio.h>
void compute(double a, double b) {
  double comp = a * b + 1.0;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) { compute(atof(argv[1]), atof(argv[2])); return 0; }
"""

# PROG_A with only local identifiers renamed (a->x, b->y, comp->result);
# function names, structure, and literals are untouched.
PROG_A_RENAMED = """
#include <stdio.h>
void compute(double x, double y) {
  double result = x * y + 1.0;
  printf("%.17g\\n", result);
}
int main(int argc, char **argv) { compute(atof(argv[1]), atof(argv[2])); return 0; }
"""

PROG_B = """
#include <stdio.h>
#include <math.h>
void compute(double u, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) {
    comp += sin(u + i) / (i + 1.0);
  }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) { compute(atof(argv[1]), atoi(argv[2])); return 0; }
"""


class TestCTokens:
    def test_token_stream(self):
        toks = c_tokens("double x = 1.0;")
        assert toks == ["double", "x", "=", "1.0", ";"]

    def test_normalize_blind(self):
        toks = normalize_tokens("double x = y + 1.0;")
        assert toks == ["double", "ID", "=", "ID", "+", "LIT", ";"]

    def test_normalize_consistent(self):
        toks = normalize_tokens("double x = x + y;", consistent=True)
        assert toks == ["double", "ID1", "=", "ID1", "+", "ID2", ";"]


class TestBleu:
    def test_identical_scores_one(self):
        toks = c_tokens(PROG_A)
        assert bleu_score(toks, toks) == pytest.approx(1.0, abs=1e-6)

    def test_disjoint_scores_near_zero(self):
        assert bleu_score(["a", "b", "c", "d"], ["e", "f", "g", "h"]) < 0.01

    def test_ngram_counts(self):
        counts = ngram_counts(["a", "b", "a", "b"], 2)
        assert counts[("a", "b")] == 2

    def test_modified_precision_clipping(self):
        num, den = modified_precision(["a", "a", "a"], ["a"], 1)
        assert num == 1 and den == 3

    def test_brevity_penalty(self):
        short = bleu_score(["a", "b"], ["a", "b", "c", "d", "e", "f"])
        full = bleu_score(["a", "b", "c", "d", "e", "f"], ["a", "b", "c", "d", "e", "f"])
        assert short < full

    def test_keyword_weighting_changes_score(self):
        cand = c_tokens("double x = 1.0;")
        ref = c_tokens("double y = 2.0;")
        plain = bleu_score(cand, ref)
        weighted = bleu_score(cand, ref, weights={"double": 5.0})
        assert weighted != plain


class TestAstMatch:
    def test_identical_full_match(self):
        assert ast_match(PROG_A, PROG_A) == pytest.approx(1.0)

    def test_renamed_still_full_match(self):
        # AST shapes anonymize identifiers.
        assert ast_match(PROG_A, PROG_A_RENAMED) == pytest.approx(1.0)

    def test_different_programs_partial(self):
        score = ast_match(PROG_A, PROG_B)
        assert 0.0 < score < 1.0

    def test_unparsable_zero(self):
        assert ast_match("not C", PROG_A) == 0.0

    def test_signatures_nonempty(self):
        sigs = subtree_signatures(PROG_A)
        assert sum(sigs.values()) > 10


class TestDataflow:
    def test_edges_extracted(self):
        edges = dataflow_edges(PROG_A)
        assert sum(edges.values()) > 0

    def test_compound_assign_self_edge(self):
        src = (
            "void compute(double a) { double c = 0.0; c += a; }"
            "int main() { compute(1.0); return 0; }"
        )
        edges = dataflow_edges(src)
        # c += a: edge a->c and self edge c->c
        keys = set(edges)
        assert any(e[0] == e[1] for e in keys)

    def test_match_identical(self):
        assert dataflow_match(PROG_A, PROG_A) == pytest.approx(1.0)

    def test_match_renamed(self):
        assert dataflow_match(PROG_A, PROG_A_RENAMED) == pytest.approx(1.0)

    def test_match_unparsable(self):
        assert dataflow_match("///", PROG_A) == 0.0


class TestCodeBleu:
    def test_identical_is_one(self):
        assert codebleu(PROG_A, PROG_A).score == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_range(self):
        parts = codebleu(PROG_A, PROG_B)
        assert 0.0 <= parts.score < 1.0

    def test_renamed_scores_high_but_below_identical(self):
        renamed = codebleu(PROG_A, PROG_A_RENAMED).score
        different = codebleu(PROG_A, PROG_B).score
        assert different < renamed <= 1.0

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            codebleu(PROG_A, PROG_B, weights=(0.5, 0.5, 0.5, 0.5))

    def test_component_weighting(self):
        parts = codebleu(PROG_A, PROG_B, weights=(1.0, 0.0, 0.0, 0.0))
        assert parts.score == pytest.approx(parts.ngram)
