"""NiCad-style clone detection and corpus diversity."""

import pytest

from repro.metrics.clones import CloneType, detect_clones, near_miss_pairs
from repro.metrics.diversity import average_pairwise_codebleu, corpus_diversity

BASE = """
#include <stdio.h>
void compute(double a, double b) {
  double comp = a * b + 1.0;
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) { compute(atof(argv[1]), atof(argv[2])); return 0; }
"""

WHITESPACE_VARIANT = BASE.replace("a * b + 1.0", "a  *  b  +  1.0").replace(
    "{\n", "{\n\n"
)

# BASE with every user identifier renamed consistently
# (compute->kernel, a->x, b->y, comp->res); library names kept.
CONSISTENT_RENAME = """
#include <stdio.h>
void kernel(double x, double y) {
  double res = x * y + 1.0;
  printf("%.17g\\n", res);
}
int main(int argc, char **argv) { kernel(atof(argv[1]), atof(argv[2])); return 0; }
"""

INCONSISTENT_RENAME = BASE.replace("a * b + 1.0", "b * a + 2.5")

DIFFERENT = """
#include <stdio.h>
#include <math.h>
void compute(double u, int n) {
  double comp = 0.0;
  for (int i = 0; i < n; ++i) { comp += sin(u) / (i + 1.0); }
  printf("%.17g\\n", comp);
}
int main(int argc, char **argv) { compute(atof(argv[1]), atoi(argv[2])); return 0; }
"""


class TestCloneTypes:
    def test_type1_whitespace_only(self):
        report = detect_clones([BASE, WHITESPACE_VARIANT])
        assert report.count(CloneType.TYPE1) == 1

    def test_type2c_consistent_rename(self):
        report = detect_clones([BASE, CONSISTENT_RENAME])
        assert report.count(CloneType.TYPE2C) == 1
        assert report.count(CloneType.TYPE1) == 0

    def test_type2_blind_rename(self):
        # literal changed too: Type-2 (blind LIT placeholder) but not 2c?
        # b*a vs a*b is a reorder -> blind normalization still matches
        # because both become ID*ID; consistent indexing does not.
        report = detect_clones([BASE, INCONSISTENT_RENAME])
        assert report.count(CloneType.TYPE2) == 1
        assert report.count(CloneType.TYPE2C) == 0

    def test_different_programs_clone_free(self):
        report = detect_clones([BASE, DIFFERENT])
        assert report.clone_free

    def test_unlexable_skipped(self):
        report = detect_clones([BASE, "@@@"])
        assert report.skipped == [1]

    def test_triplet_class(self):
        report = detect_clones([BASE, BASE, BASE])
        assert report.count(CloneType.TYPE1) == 2  # one class of three


class TestNearMiss:
    def test_identical_pair_found(self):
        pairs = near_miss_pairs([BASE, CONSISTENT_RENAME], threshold=0.95)
        assert pairs and pairs[0][2] >= 0.95

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            near_miss_pairs([BASE], threshold=0.0)

    def test_different_programs_below_threshold(self):
        assert near_miss_pairs([BASE, DIFFERENT], threshold=0.95) == []


class TestDiversity:
    def test_identical_corpus_scores_one(self):
        score = average_pairwise_codebleu([BASE, BASE, BASE], max_pairs=None)
        assert score == pytest.approx(1.0, abs=1e-6)

    def test_varied_corpus_scores_lower(self):
        varied = average_pairwise_codebleu([BASE, DIFFERENT], max_pairs=None)
        assert varied < 0.9

    def test_small_corpus(self):
        assert average_pairwise_codebleu([BASE]) == 0.0

    def test_sampling_deterministic(self):
        corpus = [BASE, DIFFERENT, CONSISTENT_RENAME, INCONSISTENT_RENAME] * 3
        a = average_pairwise_codebleu(corpus, max_pairs=20, seed=5)
        b = average_pairwise_codebleu(corpus, max_pairs=20, seed=5)
        assert a == b

    def test_corpus_diversity_report(self):
        report = corpus_diversity([BASE, DIFFERENT], max_pairs=None)
        assert report.clone_free
        assert 0.0 < report.codebleu < 1.0
