"""Table 2: the four approaches — inconsistency rate/count, time cost,
CodeBLEU diversity, and the zero-clones check."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentContext
from repro.metrics.diversity import corpus_diversity
from repro.utils.tables import TextTable
from repro.utils.timing import format_hms

__all__ = ["Table2Row", "compute", "render"]


@dataclass(frozen=True)
class Table2Row:
    approach: str
    inconsistency_rate: float
    inconsistencies: int
    time_seconds: float
    codebleu: float
    clone_free: bool


def compute(ctx: ExperimentContext) -> list[Table2Row]:
    """One row per approach, Table 2 order."""
    from repro.experiments.approaches import APPROACHES

    rows: list[Table2Row] = []
    for approach in ctx.runnable(APPROACHES):
        result = ctx.campaign(approach)
        diversity = corpus_diversity(
            result.sources, max_pairs=ctx.settings.codebleu_pairs, seed=ctx.settings.seed
        )
        rows.append(
            Table2Row(
                approach=approach,
                inconsistency_rate=result.inconsistency_rate,
                inconsistencies=result.inconsistencies,
                time_seconds=result.total_seconds,
                codebleu=diversity.codebleu,
                clone_free=diversity.clone_free,
            )
        )
    return rows


def render(rows: list[Table2Row], budget: int) -> str:
    table = TextTable(
        ["Approach", "Incons. Rate", "# Incons.", "Time Cost", "CodeBLEU", "Clones"],
        title=f"Table 2 — approaches at budget N={budget} "
        "(rate over C(3,2) x 6 levels x N comparisons; lower CodeBLEU = more diverse)",
    )
    for r in rows:
        table.add_row(
            [
                r.approach,
                f"{r.inconsistency_rate * 100:.2f}%",
                f"{r.inconsistencies:,}",
                format_hms(r.time_seconds),
                f"{r.codebleu:.4f}",
                "none" if r.clone_free else "FOUND",
            ]
        )
    return table.render()


def run(ctx: ExperimentContext) -> str:
    from repro.experiments.approaches import APPROACHES

    parts = [render(compute(ctx), ctx.settings.budget)]
    parts.extend(ctx.skip_notes(APPROACHES))
    return "\n".join(parts)
