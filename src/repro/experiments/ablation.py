"""Ablations on DESIGN.md's called-out design choices.

* strategy mix — the §3.1.4 grammar/mutation split (0.3/0.7): sweep the
  mutation probability and measure the inconsistency rate;
* sampling hyperparameters — temperature / penalties (§3.1.4): diversity
  (CodeBLEU) and rate under different sampling configs;
* feedback — LLM4FP with the feedback loop disabled degenerates to
  Grammar-Guided; the gap is the loop's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.difftest.config import CampaignConfig
from repro.difftest.harness import run_campaign
from repro.experiments.settings import ExperimentSettings
from repro.generation.llm.base import GenerationConfig
from repro.generation.llm.generator import LLMProgramGenerator
from repro.generation.llm.simllm import SimLLM
from repro.metrics.diversity import average_pairwise_codebleu
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng
from repro.utils.tables import TextTable

__all__ = [
    "MixPoint",
    "sweep_mutation_prob",
    "sweep_sampling",
    "feedback_contribution",
]


@dataclass(frozen=True)
class MixPoint:
    mutation_prob: float
    inconsistency_rate: float
    inconsistencies: int


def _llm4fp_campaign(
    settings: ExperimentSettings,
    mutation_prob: float = 0.7,
    config: GenerationConfig | None = None,
    use_feedback: bool = True,
    tag: str = "",
):
    rng = SplittableRng(settings.seed, f"ablation-{tag}-{mutation_prob}")
    llm = SimLLM(rng.split("llm"), config=config)
    generator = LLMProgramGenerator(
        name=f"llm4fp[{tag}]",
        llm=llm,
        rng=rng,
        use_grammar=True,
        use_feedback=use_feedback,
        mutation_prob=mutation_prob,
    )
    cfg = CampaignConfig(budget=settings.budget, levels=settings.levels, seed=settings.seed)
    return run_campaign(generator, default_compilers(), cfg)


def sweep_mutation_prob(
    settings: ExperimentSettings, probs: tuple[float, ...] = (0.0, 0.3, 0.5, 0.7, 0.9)
) -> list[MixPoint]:
    """E-A1: how the grammar/mutation split affects the trigger rate."""
    points: list[MixPoint] = []
    for p in probs:
        result = _llm4fp_campaign(settings, mutation_prob=p, tag="mix")
        points.append(MixPoint(p, result.inconsistency_rate, result.inconsistencies))
    return points


def render_mix(points: list[MixPoint]) -> str:
    table = TextTable(
        ["Mutation prob", "Incons. rate", "# Incons."],
        title="Ablation E-A1 — feedback-mutation probability (paper uses 0.7)",
    )
    for pt in points:
        table.add_row(
            [f"{pt.mutation_prob:.1f}", f"{pt.inconsistency_rate * 100:.2f}%", pt.inconsistencies]
        )
    return table.render()


def sweep_sampling(
    settings: ExperimentSettings,
    configs: tuple[GenerationConfig, ...] = (
        GenerationConfig(temperature=0.4, frequency_penalty=0.0, presence_penalty=0.0),
        GenerationConfig(temperature=1.2, frequency_penalty=0.0, presence_penalty=0.0),
        GenerationConfig(temperature=1.2, frequency_penalty=0.5, presence_penalty=0.6),
    ),
) -> list[dict]:
    """E-A2: sampling hyperparameters vs rate and diversity."""
    rows: list[dict] = []
    for cfg in configs:
        result = _llm4fp_campaign(
            settings, config=cfg, tag=f"T{cfg.temperature}-f{cfg.frequency_penalty}"
        )
        rows.append(
            {
                "temperature": cfg.temperature,
                "frequency_penalty": cfg.frequency_penalty,
                "presence_penalty": cfg.presence_penalty,
                "inconsistency_rate": result.inconsistency_rate,
                "codebleu": average_pairwise_codebleu(
                    result.sources, max_pairs=settings.codebleu_pairs, seed=settings.seed
                ),
            }
        )
    return rows


def render_sampling(rows: list[dict]) -> str:
    table = TextTable(
        ["T", "freq-pen", "pres-pen", "Incons. rate", "CodeBLEU"],
        title="Ablation E-A2 — sampling hyperparameters (paper: T=1.2, 0.5, 0.6)",
    )
    for r in rows:
        table.add_row(
            [
                r["temperature"],
                r["frequency_penalty"],
                r["presence_penalty"],
                f"{r['inconsistency_rate'] * 100:.2f}%",
                f"{r['codebleu']:.4f}",
            ]
        )
    return table.render()


def feedback_contribution(settings: ExperimentSettings) -> dict:
    """E-A3: LLM4FP with vs without the feedback loop."""
    with_fb = _llm4fp_campaign(settings, use_feedback=True, tag="fb-on")
    without_fb = _llm4fp_campaign(settings, use_feedback=False, tag="fb-off")
    return {
        "with_feedback": with_fb.inconsistency_rate,
        "without_feedback": without_fb.inconsistency_rate,
        "gain": with_fb.inconsistency_rate - without_fb.inconsistency_rate,
    }


def render_feedback(result: dict) -> str:
    table = TextTable(
        ["Configuration", "Incons. rate"],
        title="Ablation E-A3 — the feedback loop's contribution",
    )
    table.add_row(["LLM4FP (feedback on)", f"{result['with_feedback'] * 100:.2f}%"])
    table.add_row(["feedback off (= Grammar-Guided)", f"{result['without_feedback'] * 100:.2f}%"])
    table.add_row(["gain", f"{result['gain'] * 100:+.2f}pp"])
    return table.render()
