"""Shared experiment orchestration: run each approach's campaign once,
reuse it across every table/figure that consumes it."""

from __future__ import annotations

from pathlib import Path

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import EngineConfig
from repro.difftest.harness import run_campaign
from repro.difftest.record import CampaignResult
from repro.difftest.report import CampaignReport
from repro.difftest.store import CampaignStore
from repro.experiments.approaches import make_generator
from repro.experiments.settings import ExperimentSettings, parse_shard
from repro.generation.islands import derive_peer_paths
from repro.generation.program import generator_capabilities
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Caches one campaign per approach for a settings snapshot."""

    def __init__(self, settings: ExperimentSettings | None = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._results: dict[str, CampaignResult] = {}

    def engine_config(self, store: CampaignStore | None = None) -> EngineConfig:
        s = self.settings
        shard_index, shard_count = parse_shard(s.shard)
        island_peers: tuple = ()
        if s.islands and shard_count > 1 and store is not None:
            # Island shards find each other's merge-point exports through
            # the per-shard checkpoint filenames.
            island_peers = tuple(
                str(p)
                for p in derive_peer_paths(store.path, shard_index, shard_count)
            )
        return EngineConfig(
            jobs=s.jobs,
            compile_cache=s.compile_cache,
            cache_capacity=s.cache_capacity,
            backend=s.backend,
            shard_index=shard_index,
            shard_count=shard_count,
            islands=s.islands,
            merge_every=s.merge_every,
            island_peers=island_peers,
            exec_mode=s.exec_mode,
        )

    def skip_reason(self, approach: str) -> str | None:
        """Why this approach cannot run under the current sharding (None = runnable).

        Sharded table runs execute every classically shardable approach
        and skip the rest with a note: a feedback approach's program
        stream depends on verdicts other shards compute, so sharding it
        needs the island model — which, across shards, also needs a
        checkpoint dir to exchange migrants through.
        """
        s = self.settings
        _, shard_count = parse_shard(s.shard)
        if shard_count <= 1:
            return None
        if s.islands:
            if s.checkpoint_dir is None:
                return (
                    "sharded island campaigns need --checkpoint-dir: island "
                    "shards exchange migrants through sibling checkpoints"
                )
            return None
        probe = make_generator(approach, SplittableRng(0, "capability-probe"))
        if generator_capabilities(probe).feedback:
            return (
                "feedback approach: its program stream depends on verdicts "
                "other shards compute; shard it as an island campaign "
                "(REPRO_ISLANDS=<shard count>) or run it unsharded"
            )
        return None

    def skip_notes(self, approaches) -> list[str]:
        """One renderable note per approach skipped under the current shard."""
        notes = []
        for approach in approaches:
            reason = self.skip_reason(approach)
            if reason is not None:
                notes.append(f"note: skipped {approach} on this shard — {reason}")
        return notes

    def runnable(self, approaches) -> list[str]:
        """The subset of ``approaches`` that runs under the current settings."""
        return [a for a in approaches if self.skip_reason(a) is None]

    def store(self, approach: str) -> CampaignStore | None:
        """This approach's checkpoint store, if persistence is configured.

        One JSONL file per (approach, shard) under ``checkpoint_dir``; a
        re-run with identical settings resumes from it.
        """
        s = self.settings
        if s.checkpoint_dir is None:
            return None
        shard_index, shard_count = parse_shard(s.shard)
        suffix = f"-shard{shard_index}of{shard_count}" if shard_count > 1 else ""
        return CampaignStore(Path(s.checkpoint_dir) / f"{approach}{suffix}.jsonl")

    def campaign(self, approach: str) -> CampaignResult:
        if approach not in self._results:
            s = self.settings
            rng = SplittableRng(s.seed, f"approach-{approach}")
            generator = make_generator(
                approach, rng, model_latency=s.model_llm_latency
            )
            config = CampaignConfig(budget=s.budget, levels=s.levels, seed=s.seed)
            store = self.store(approach)
            self._results[approach] = run_campaign(
                generator,
                default_compilers(),
                config,
                engine_config=self.engine_config(store),
                store=store,
            )
        return self._results[approach]

    def report(self, approach: str) -> CampaignReport:
        return CampaignReport(self.campaign(approach))
