"""Shared experiment orchestration: run each approach's campaign once,
reuse it across every table/figure that consumes it."""

from __future__ import annotations

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import EngineConfig
from repro.difftest.harness import run_campaign
from repro.difftest.record import CampaignResult
from repro.difftest.report import CampaignReport
from repro.experiments.approaches import make_generator
from repro.experiments.settings import ExperimentSettings
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Caches one campaign per approach for a settings snapshot."""

    def __init__(self, settings: ExperimentSettings | None = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._results: dict[str, CampaignResult] = {}

    def engine_config(self) -> EngineConfig:
        s = self.settings
        return EngineConfig(
            jobs=s.jobs,
            compile_cache=s.compile_cache,
            cache_capacity=s.cache_capacity,
        )

    def campaign(self, approach: str) -> CampaignResult:
        if approach not in self._results:
            s = self.settings
            rng = SplittableRng(s.seed, f"approach-{approach}")
            generator = make_generator(
                approach, rng, model_latency=s.model_llm_latency
            )
            config = CampaignConfig(budget=s.budget, levels=s.levels, seed=s.seed)
            self._results[approach] = run_campaign(
                generator,
                default_compilers(),
                config,
                engine_config=self.engine_config(),
            )
        return self._results[approach]

    def report(self, approach: str) -> CampaignReport:
        return CampaignReport(self.campaign(approach))
