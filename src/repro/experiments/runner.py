"""Shared experiment orchestration: run each approach's campaign once,
reuse it across every table/figure that consumes it."""

from __future__ import annotations

from pathlib import Path

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import EngineConfig
from repro.difftest.harness import run_campaign
from repro.difftest.record import CampaignResult
from repro.difftest.report import CampaignReport
from repro.difftest.store import CampaignStore
from repro.experiments.approaches import make_generator
from repro.experiments.settings import ExperimentSettings, parse_shard
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng

__all__ = ["ExperimentContext"]


class ExperimentContext:
    """Caches one campaign per approach for a settings snapshot."""

    def __init__(self, settings: ExperimentSettings | None = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._results: dict[str, CampaignResult] = {}

    def engine_config(self) -> EngineConfig:
        s = self.settings
        shard_index, shard_count = parse_shard(s.shard)
        return EngineConfig(
            jobs=s.jobs,
            compile_cache=s.compile_cache,
            cache_capacity=s.cache_capacity,
            backend=s.backend,
            shard_index=shard_index,
            shard_count=shard_count,
            exec_mode=s.exec_mode,
        )

    def store(self, approach: str) -> CampaignStore | None:
        """This approach's checkpoint store, if persistence is configured.

        One JSONL file per (approach, shard) under ``checkpoint_dir``; a
        re-run with identical settings resumes from it.
        """
        s = self.settings
        if s.checkpoint_dir is None:
            return None
        shard_index, shard_count = parse_shard(s.shard)
        suffix = f"-shard{shard_index}of{shard_count}" if shard_count > 1 else ""
        return CampaignStore(Path(s.checkpoint_dir) / f"{approach}{suffix}.jsonl")

    def campaign(self, approach: str) -> CampaignResult:
        if approach not in self._results:
            s = self.settings
            rng = SplittableRng(s.seed, f"approach-{approach}")
            generator = make_generator(
                approach, rng, model_latency=s.model_llm_latency
            )
            config = CampaignConfig(budget=s.budget, levels=s.levels, seed=s.seed)
            self._results[approach] = run_campaign(
                generator,
                default_compilers(),
                config,
                engine_config=self.engine_config(),
                store=self.store(approach),
            )
        return self._results[approach]

    def report(self, approach: str) -> CampaignReport:
        return CampaignReport(self.campaign(approach))
