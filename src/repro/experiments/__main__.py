"""CLI: regenerate paper artefacts.

    python -m repro.experiments table2
    python -m repro.experiments all
    REPRO_BUDGET=1000 python -m repro.experiments table4
"""

from __future__ import annotations

import sys

from repro.experiments import table2, table3, table4, table5, figure3, triage_summary
from repro.experiments.runner import ExperimentContext
from repro.experiments.settings import ExperimentSettings

_RUNNERS = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure3": figure3.run,
    "triage": triage_summary.run,
}


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        print(__doc__)
        print("artefacts:", ", ".join([*_RUNNERS, "all"]))
        return 0
    name = args[0]
    ctx = ExperimentContext(ExperimentSettings())
    if name == "all":
        for key, runner in _RUNNERS.items():
            print(runner(ctx))
            print()
        return 0
    runner = _RUNNERS.get(name)
    if runner is None:
        print(f"unknown artefact {name!r}; expected one of {list(_RUNNERS)} or 'all'")
        return 2
    print(runner(ctx))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
