"""Table 5: each optimization level vs the O0_nofma baseline, within one
compiler (RQ4), Varity vs LLM4FP."""

from __future__ import annotations

from repro.experiments.runner import ExperimentContext
from repro.toolchains.optlevels import OptLevel
from repro.utils.tables import TextTable

__all__ = ["compute", "render", "run"]

Rates = dict[str, dict[OptLevel, float]]


def compute(ctx: ExperimentContext) -> dict[str, Rates]:
    return {
        approach: ctx.report(approach).vs_o0_nofma()
        for approach in ctx.runnable(("varity", "llm4fp"))
    }


def render(data: dict[str, Rates], budget: int) -> str:
    approaches = list(data.keys())
    compilers = list(next(iter(data.values())).keys())
    headers = ["Level"] + [
        f"{a[:1].upper()}:{c}" for a in approaches for c in compilers
    ]
    table = TextTable(
        headers,
        title=(
            f"Table 5 — inconsistency rate vs O0_nofma within each compiler "
            f"(N={budget}; V=varity, L=llm4fp; '-' = none)"
        ),
    )
    levels = list(next(iter(data[approaches[0]].values())).keys())
    for level in levels:
        row = [str(level)]
        for a in approaches:
            for c in compilers:
                rate = data[a][c].get(level, 0.0)
                row.append(f"{rate * 100:.2f}%" if rate else "-")
        table.add_row(row)
    totals = ["Total"]
    for a in approaches:
        for c in compilers:
            totals.append(f"{sum(data[a][c].values()) * 100:.2f}%")
    table.add_row(totals)
    return table.render()


def run(ctx: ExperimentContext) -> str:
    parts = [render(compute(ctx), ctx.settings.budget)]
    parts.extend(ctx.skip_notes(("varity", "llm4fp")))
    return "\n".join(parts)
