"""Table 3: LLM4FP inconsistency kinds broken down by optimization level."""

from __future__ import annotations

from repro.difftest.classify import ALL_KINDS, KindCount, kind_label
from repro.experiments.runner import ExperimentContext
from repro.toolchains.optlevels import OptLevel
from repro.utils.tables import TextTable

__all__ = ["compute", "render", "run"]


def compute(ctx: ExperimentContext) -> dict[OptLevel, KindCount]:
    return ctx.report("llm4fp").kinds_by_level()


def render(by_level: dict[OptLevel, KindCount], budget: int) -> str:
    # Columns: kinds that appear anywhere, Figure-3 order.
    seen_kinds = [
        kind
        for kind in ALL_KINDS
        if any(kc.counts.get(kind, 0) for kc in by_level.values())
    ]
    headers = ["Level"] + [kind_label(k) for k in seen_kinds] + ["Row total"]
    table = TextTable(
        headers,
        title=f"Table 3 — LLM4FP inconsistency kinds per level (N={budget}; '-' = absent)",
    )
    total = 0
    for level, kc in by_level.items():
        row = [str(level)]
        for kind in seen_kinds:
            n = kc.counts.get(kind, 0)
            row.append(str(n) if n else "-")
        row.append(str(kc.total))
        total += kc.total
        table.add_row(row)
    table.add_row(["Total"] + ["" for _ in seen_kinds] + [str(total)])
    return table.render()


def run(ctx: ExperimentContext) -> str:
    reason = ctx.skip_reason("llm4fp")
    if reason is not None:
        return f"note: skipped table3 on this shard — {reason}"
    return render(compute(ctx), ctx.settings.budget)
