"""Factories for the paper's four approaches (§3.2.1) plus repo extensions."""

from __future__ import annotations

from repro.fp.formats import Precision
from repro.generation.llm.base import GenerationConfig, LatencyModel
from repro.generation.llm.generator import LLMProgramGenerator
from repro.generation.llm.simllm import SimLLM
from repro.generation.loops import LoopReductionGenerator
from repro.generation.program import ProgramGenerator
from repro.generation.varity import VarityGenerator
from repro.utils.rng import SplittableRng

__all__ = ["APPROACHES", "EXTRA_APPROACHES", "ALL_APPROACHES", "make_generator"]

#: Paper Table 2 order.  Table experiments iterate exactly these four so
#: the artefacts keep the paper's shape.
APPROACHES: tuple[str, ...] = ("varity", "direct-prompt", "grammar-guided", "llm4fp")

#: Repo-grown workloads beyond the paper's four: ``loops`` targets the
#: vectorization tier with reduction/map loop kernels.
EXTRA_APPROACHES: tuple[str, ...] = ("loops",)

#: Everything ``make_generator`` (and the CLI) accepts.
ALL_APPROACHES: tuple[str, ...] = APPROACHES + EXTRA_APPROACHES

#: §3.2.3: Varity's pipeline is ~30 min for 1,000 programs while LLM
#: approaches run 4-6 h, dominated by API latency — about 15 s per call.
_LLM_MEAN_LATENCY_SECONDS = 15.0


#: ``loops`` workload shares for the ``full`` divergence-tier profile:
#: with the vec-libm / mixed-precision / masked-int-guard tiers enabled
#: in the compilers, a slice of the program stream targets each one.
_FULL_TIER_LOOP_SHARES = dict(libm_share=0.3, mixed_share=0.25, int_guard_share=0.25)


def make_generator(
    approach: str,
    rng: SplittableRng,
    precision: Precision = Precision.DOUBLE,
    config: GenerationConfig | None = None,
    model_latency: bool = False,
    mutation_prob: float = 0.7,
    tiers: str = "baseline",
) -> ProgramGenerator:
    """Build the generator for one approach name.

    * ``varity``         — random grammar-based generation, wide inputs.
    * ``direct-prompt``  — SimLLM, no grammar in the prompt, no feedback.
    * ``grammar-guided`` — SimLLM with the Figure 2 grammar in the prompt.
    * ``llm4fp``         — grammar + feedback mutation (0.3/0.7 split).
    * ``loops``          — reduction/map loop kernels (the vector tier's
      workload; feedback-free, so shardable).

    ``tiers`` mirrors the compilers' divergence-tier profile: under
    ``"full"`` the ``loops`` generator mixes in the new tiers' workloads
    (vector-math calls, ``(float)`` casts, integer trip guards).  The
    default ``"baseline"`` keeps every generator's program stream
    byte-identical to pre-tier releases.
    """
    if approach == "varity":
        return VarityGenerator(rng)
    if approach == "loops":
        shares = _FULL_TIER_LOOP_SHARES if tiers == "full" else {}
        return LoopReductionGenerator(rng, **shares)
    if approach not in ALL_APPROACHES:
        raise ValueError(
            f"unknown approach {approach!r}; expected one of {ALL_APPROACHES}"
        )
    latency = None
    if model_latency:
        latency = LatencyModel(
            rng.split(f"latency-{approach}"), mean_seconds=_LLM_MEAN_LATENCY_SECONDS
        )
    llm = SimLLM(rng.split(f"llm-{approach}"), config=config, latency=latency)
    return LLMProgramGenerator(
        name=approach,
        llm=llm,
        rng=rng,
        precision=precision,
        use_grammar=(approach != "direct-prompt"),
        use_feedback=(approach == "llm4fp"),
        mutation_prob=mutation_prob,
    )
