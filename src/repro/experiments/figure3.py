"""Figure 3: inconsistency counts per kind, Varity vs LLM4FP."""

from __future__ import annotations

from repro.difftest.classify import ALL_KINDS, kind_label
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import TextTable

__all__ = ["compute", "render", "run"]


def compute(ctx: ExperimentContext) -> dict[str, dict[str, int]]:
    """{approach: {kind label: count}} for the two Figure 3 series."""
    out: dict[str, dict[str, int]] = {}
    for approach in ctx.runnable(("varity", "llm4fp")):
        kinds = ctx.report(approach).kind_counts()
        out[approach] = {
            kind_label(kind): kinds.counts.get(kind, 0) for kind in ALL_KINDS
        }
    return out


def render(series: dict[str, dict[str, int]], budget: int) -> str:
    labels = list(next(iter(series.values())).keys())
    table = TextTable(
        ["Kind", "VARITY", "LLM4FP"],
        title=f"Figure 3 — inconsistency counts by kind (N={budget})",
    )
    shown = 0
    for label in labels:
        v = series.get("varity", {}).get(label, 0)
        l = series.get("llm4fp", {}).get(label, 0)
        if v == 0 and l == 0:
            continue
        table.add_row([label, v, l])
        shown += 1
    if shown == 0:
        table.add_row(["(no inconsistencies)", 0, 0])
    return table.render()


def run(ctx: ExperimentContext) -> str:
    parts = [render(compute(ctx), ctx.settings.budget)]
    parts.extend(ctx.skip_notes(("varity", "llm4fp")))
    return "\n".join(parts)
