"""Experiment runners: one module per paper artefact (Tables 2-5, Figure 3).

``python -m repro.experiments <table2|table3|table4|table5|figure3|all>``
regenerates the corresponding artefact; the budget defaults to a
laptop-friendly size and scales to the paper's 1,000 programs via
``REPRO_BUDGET=1000``.
"""

from repro.experiments.settings import ExperimentSettings
from repro.experiments.approaches import APPROACHES, make_generator
from repro.experiments.runner import ExperimentContext

__all__ = [
    "ExperimentSettings",
    "APPROACHES",
    "make_generator",
    "ExperimentContext",
]
