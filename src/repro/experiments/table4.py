"""Table 4: inconsistency rates + digit differences (min/max/avg) per
compiler pair at each level, Varity vs LLM4FP."""

from __future__ import annotations

from repro.difftest.report import PairLevelCell
from repro.experiments.runner import ExperimentContext
from repro.toolchains.optlevels import OptLevel
from repro.utils.tables import TextTable

__all__ = ["compute", "render", "run"]

Cells = dict[tuple[str, str], dict[OptLevel, PairLevelCell]]


def compute(ctx: ExperimentContext) -> dict[str, Cells]:
    return {
        approach: ctx.report(approach).pair_level_cells()
        for approach in ctx.runnable(("varity", "llm4fp"))
    }


def render(data: dict[str, Cells], budget: int) -> str:
    blocks: list[str] = []
    for approach, cells in data.items():
        pairs = list(cells.keys())
        headers = ["Level"] + [f"{a},{b}" for a, b in pairs]
        table = TextTable(
            headers,
            title=(
                f"Table 4 [{approach}] — rate (min/max/avg digit diff) per pair "
                f"(N={budget}; rates over the grand total)"
            ),
        )
        levels = list(next(iter(cells.values())).keys())
        for level in levels:
            row = [str(level)]
            for pair in pairs:
                row.append(cells[pair][level].render())
            table.add_row(row)
        totals = ["Total"]
        for pair in pairs:
            totals.append(f"{sum(c.rate for c in cells[pair].values()) * 100:.2f}%")
        table.add_row(totals)
        blocks.append(table.render())
    return "\n\n".join(blocks)


def run(ctx: ExperimentContext) -> str:
    parts = [render(compute(ctx), ctx.settings.budget)]
    parts.extend(ctx.skip_notes(("varity", "llm4fp")))
    return "\n".join(parts)
