"""Triage summary: the campaign-wide reduce -> bisect -> cluster table.

Not a paper artefact — the paper stops at detection — but the closing
step of its workflow: for every approach, how many triggering programs
the campaign produced, how many *distinct* findings they dedupe to, and
which optimization pass / FP-environment delta each top finding pins the
divergence on.  Reduction is skipped here (delta debugging every trigger
belongs in ``llm4fp triage``, not in a summary table); bisection is cheap
because each (pair, pipeline-class) cell replays once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.approaches import ALL_APPROACHES
from repro.experiments.runner import ExperimentContext
from repro.utils.tables import TextTable

__all__ = ["TriageSummaryRow", "compute", "render", "run"]


@dataclass(frozen=True)
class TriageSummaryRow:
    approach: str
    triggers: int
    findings: int  # distinct clusters
    top_count: int  # triggers in the largest cluster
    top_kinds: str
    top_responsible: str
    top_env_delta: str


def compute(ctx: ExperimentContext) -> list[TriageSummaryRow]:
    """One row per approach — the paper's four plus the ``loops``
    vector-tier workload (Table 2 order, extensions last)."""
    from repro.triage.cluster import triage_campaign

    rows: list[TriageSummaryRow] = []
    for approach in ctx.runnable(ALL_APPROACHES):
        result = ctx.campaign(approach)
        report = triage_campaign(result, reduce=False)
        if report.clusters:
            top = report.clusters[0]
            rep = top.representative
            rows.append(
                TriageSummaryRow(
                    approach=approach,
                    triggers=report.triggers,
                    findings=len(report.clusters),
                    top_count=top.count,
                    top_kinds=" ".join(top.kinds),
                    top_responsible=", ".join(top.responsibles),
                    top_env_delta=", ".join(rep.env_deltas) or "-",
                )
            )
        else:
            rows.append(
                TriageSummaryRow(approach, report.triggers, 0, 0, "-", "-", "-")
            )
    return rows


def render(rows: list[TriageSummaryRow], budget: int) -> str:
    table = TextTable(
        [
            "Approach",
            "Triggers",
            "Findings",
            "Top (n)",
            "Top Kinds",
            "Top Responsible",
            "Top Env Delta",
        ],
        title=f"Triage summary at budget N={budget} — triggering programs "
        "deduplicated by (kind, responsible pass, divergent-cell pattern)",
    )
    for r in rows:
        table.add_row(
            [
                r.approach,
                r.triggers,
                r.findings,
                r.top_count,
                r.top_kinds,
                r.top_responsible,
                r.top_env_delta,
            ]
        )
    return table.render()


def run(ctx: ExperimentContext) -> str:
    parts = [render(compute(ctx), ctx.settings.budget)]
    parts.extend(ctx.skip_notes(ALL_APPROACHES))
    return "\n".join(parts)
