"""Experiment-wide settings, environment-overridable."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.toolchains.optlevels import ALL_LEVELS, OptLevel

__all__ = ["ExperimentSettings"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as e:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from e


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment runners.

    The paper uses a budget of 1,000 programs per approach (§3.1.3); the
    default here is smaller so the benchmark suite completes in minutes.
    ``REPRO_BUDGET`` / ``REPRO_SEED`` override from the environment.
    """

    budget: int = field(default_factory=lambda: _env_int("REPRO_BUDGET", 200))
    seed: int = field(default_factory=lambda: _env_int("REPRO_SEED", 20250916))
    levels: tuple[OptLevel, ...] = ALL_LEVELS
    #: charge synthetic per-call LLM latency (reproduces Table 2's time
    #: ordering; off by default so wall-clock reflects simulation speed)
    model_llm_latency: bool = field(
        default_factory=lambda: _env_int("REPRO_MODEL_LATENCY", 0) != 0
    )
    #: pair sample size for average pairwise CodeBLEU
    codebleu_pairs: int = field(
        default_factory=lambda: _env_int("REPRO_CODEBLEU_PAIRS", 1500)
    )
    #: campaign-engine workers for the per-program compile+execute matrix
    jobs: int = field(default_factory=lambda: _env_int("REPRO_JOBS", 1))
    #: content-addressed compile cache (``REPRO_CACHE=0`` disables)
    compile_cache: bool = field(
        default_factory=lambda: _env_int("REPRO_CACHE", 1) != 0
    )
    #: LRU bound of the compile cache, in binaries
    cache_capacity: int = field(
        default_factory=lambda: _env_int("REPRO_CACHE_CAPACITY", 4096)
    )

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
