"""Experiment-wide settings, environment-overridable."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.difftest.backend import BACKENDS, parse_jobs, resolve_jobs
from repro.execution.batch import DEFAULT_EXEC_MODE, EXEC_MODES
from repro.toolchains.optlevels import ALL_LEVELS, OptLevel

__all__ = ["ExperimentSettings", "ENV_KNOBS", "parse_shard"]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as e:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from e


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as e:
        raise ValueError(f"{name} must be a number, got {raw!r}") from e


def _env_jobs(name: str, default: int | str) -> int | str:
    """An int worker count or the literal ``auto`` (one per CPU)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return parse_jobs(raw)
    except ValueError as e:
        raise ValueError(f"{name}: {e}") from e


def parse_shard(spec: str | None) -> tuple[int, int]:
    """Parse ``"i/n"`` into ``(shard_index, shard_count)``; None -> (0, 1).

    Accepts both 0-based ``0/4 .. 3/4`` — the engine's native convention —
    and nothing else: ``i`` must satisfy ``0 <= i < n``.
    """
    if spec is None or spec == "":
        return (0, 1)
    parts = spec.split("/")
    if len(parts) != 2:
        raise ValueError(f"shard must look like 'i/n', got {spec!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError as e:
        raise ValueError(f"shard must look like 'i/n', got {spec!r}") from e
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, n) with n >= 1, got {spec!r}"
        )
    return (index, count)


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiment runners.

    The paper uses a budget of 1,000 programs per approach (§3.1.3); the
    default here is smaller so the benchmark suite completes in minutes.
    ``REPRO_BUDGET`` / ``REPRO_SEED`` override from the environment.
    """

    budget: int = field(default_factory=lambda: _env_int("REPRO_BUDGET", 200))
    seed: int = field(default_factory=lambda: _env_int("REPRO_SEED", 20250916))
    levels: tuple[OptLevel, ...] = ALL_LEVELS
    #: charge synthetic per-call LLM latency (reproduces Table 2's time
    #: ordering; off by default so wall-clock reflects simulation speed)
    model_llm_latency: bool = field(
        default_factory=lambda: _env_int("REPRO_MODEL_LATENCY", 0) != 0
    )
    #: pair sample size for average pairwise CodeBLEU
    codebleu_pairs: int = field(
        default_factory=lambda: _env_int("REPRO_CODEBLEU_PAIRS", 1500)
    )
    #: campaign-engine workers for the per-program compile+execute matrix
    #: (``REPRO_JOBS``: an int, or ``auto`` for one worker per CPU)
    jobs: int | str = field(default_factory=lambda: _env_jobs("REPRO_JOBS", 1))
    #: execution backend: serial / thread / process (``REPRO_BACKEND``)
    backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_BACKEND", "thread")
    )
    #: execute-stage mode: tree / tape / check (``REPRO_EXEC_MODE``)
    exec_mode: str = field(
        default_factory=lambda: os.environ.get("REPRO_EXEC_MODE", DEFAULT_EXEC_MODE)
    )
    #: content-addressed compile cache (``REPRO_CACHE=0`` disables)
    compile_cache: bool = field(
        default_factory=lambda: _env_int("REPRO_CACHE", 1) != 0
    )
    #: LRU bound of the compile cache, in binaries
    cache_capacity: int = field(
        default_factory=lambda: _env_int("REPRO_CACHE_CAPACITY", 4096)
    )
    #: budget shard ``"i/n"`` (``REPRO_SHARD``); empty = the whole budget
    shard: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_SHARD") or None
    )
    #: island-model generation: number of islands (``REPRO_ISLANDS``);
    #: 0 disables islands (classic whole-stream sharding)
    islands: int = field(default_factory=lambda: _env_int("REPRO_ISLANDS", 0))
    #: island merge-point cadence, in owned programs per generation
    #: (``REPRO_MERGE_EVERY``)
    merge_every: int = field(
        default_factory=lambda: _env_int("REPRO_MERGE_EVERY", 25)
    )
    #: directory of per-approach JSONL checkpoints (``REPRO_CHECKPOINT_DIR``);
    #: unset = no persistence.  Re-running with the same settings resumes.
    checkpoint_dir: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_CHECKPOINT_DIR") or None
    )
    #: longitudinal trigger corpus (``REPRO_CORPUS_PATH``); when set,
    #: ``llm4fp run`` opens every campaign with a corpus-replay
    #: regression sweep and ``llm4fp serve`` chains a corpus ingest
    #: after auto-merge.  Unset = no cross-campaign memory.
    corpus_path: str | None = field(
        default_factory=lambda: os.environ.get("REPRO_CORPUS_PATH") or None
    )
    #: ``llm4fp serve``: concurrent shard workers (``REPRO_FLEET_WORKERS``)
    fleet_workers: int = field(
        default_factory=lambda: _env_int("REPRO_FLEET_WORKERS", 2)
    )
    #: ``llm4fp serve``: seconds between checkpoint-tail heartbeat polls
    #: (``REPRO_FLEET_HEARTBEAT``)
    fleet_heartbeat: float = field(
        default_factory=lambda: _env_float("REPRO_FLEET_HEARTBEAT", 2.0)
    )
    #: ``llm4fp serve``: seconds of no checkpoint row growth before a
    #: live worker is declared stalled, killed and reassigned
    #: (``REPRO_FLEET_STALL``)
    fleet_stall_timeout: float = field(
        default_factory=lambda: _env_float("REPRO_FLEET_STALL", 300.0)
    )
    #: ``llm4fp serve``: respawns granted to a shard after its first
    #: death before the fleet settles for a partial verdict
    #: (``REPRO_FLEET_RETRIES``)
    fleet_max_retries: int = field(
        default_factory=lambda: _env_int("REPRO_FLEET_RETRIES", 2)
    )

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        resolve_jobs(self.jobs)  # validates int >= 1 or "auto"
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.exec_mode not in EXEC_MODES:
            raise ValueError(
                f"exec_mode must be one of {', '.join(EXEC_MODES)}, "
                f"got {self.exec_mode!r}"
            )
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        parse_shard(self.shard)  # validates "i/n"
        if self.islands < 0:
            raise ValueError("islands must be >= 0 (0 disables the island model)")
        if self.merge_every < 1:
            raise ValueError("merge_every must be >= 1")
        if self.fleet_workers < 1:
            raise ValueError("fleet_workers must be >= 1")
        if self.fleet_heartbeat <= 0:
            raise ValueError("fleet_heartbeat must be positive")
        if self.fleet_stall_timeout <= 0:
            raise ValueError("fleet_stall_timeout must be positive")
        if self.fleet_max_retries < 0:
            raise ValueError("fleet_max_retries must be >= 0")


#: Every environment-overridable :class:`ExperimentSettings` field and its
#: ``REPRO_*`` knob — the single source of truth ``docs/configuration.md``
#: is doctested against and ``scripts/check_docs.py`` greps the docs for.
#: ``levels`` is the one field with no environment knob (the optimization
#: matrix is part of the experiment's identity, not its deployment).
ENV_KNOBS: dict[str, str] = {
    "budget": "REPRO_BUDGET",
    "seed": "REPRO_SEED",
    "model_llm_latency": "REPRO_MODEL_LATENCY",
    "codebleu_pairs": "REPRO_CODEBLEU_PAIRS",
    "jobs": "REPRO_JOBS",
    "backend": "REPRO_BACKEND",
    "exec_mode": "REPRO_EXEC_MODE",
    "compile_cache": "REPRO_CACHE",
    "cache_capacity": "REPRO_CACHE_CAPACITY",
    "shard": "REPRO_SHARD",
    "islands": "REPRO_ISLANDS",
    "merge_every": "REPRO_MERGE_EVERY",
    "checkpoint_dir": "REPRO_CHECKPOINT_DIR",
    "corpus_path": "REPRO_CORPUS_PATH",
    "fleet_workers": "REPRO_FLEET_WORKERS",
    "fleet_heartbeat": "REPRO_FLEET_HEARTBEAT",
    "fleet_stall_timeout": "REPRO_FLEET_STALL",
    "fleet_max_retries": "REPRO_FLEET_RETRIES",
}
