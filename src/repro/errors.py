"""Exception hierarchy for the LLM4FP reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class LexError(ReproError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised on a syntax error in a candidate program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class SemaError(ReproError):
    """Raised when semantic analysis rejects a program (types, UB lint)."""


class CompileError(ReproError):
    """Raised when a toolchain cannot lower or optimize a program."""


class ExecError(ReproError):
    """Base class for runtime failures of a compiled binary."""


class TrapError(ExecError):
    """Raised when execution hits undefined behaviour (OOB access, etc.)."""


class StepLimitExceeded(ExecError):
    """Raised when a program exceeds its interpretation step budget."""


class ExecutionDivergence(ExecError):
    """Raised in ``check`` exec mode when the tape executor and the
    tree-walk interpreter disagree on any bit of a result."""


class GenerationError(ReproError):
    """Raised when a program generator cannot produce a valid candidate."""


class TriageError(ReproError):
    """Raised when a trigger cannot be triaged (not reproducible, unknown
    compiler, or the targeted inconsistency is absent)."""
