"""The ``loops`` approach: loop-heavy reduction kernels.

The paper's four approaches generate mostly straight-line arithmetic with
the occasional loop, so campaigns rarely exercise the vectorization tier.
This generator is the tier's workload: every program is built around
innermost counted reduction loops (dot products, running sums, products,
lane-stepped transcendental sums) over array parameters — exactly the
shapes :class:`~repro.ir.passes.vectorize.Vectorize` widens — plus the
occasional map loop (vector stores) and a ``guarded_share`` of
conditional (guarded-update) loops: one- and two-armed accumulations and
guarded map stores, the shapes
:class:`~repro.ir.passes.if_convert.IfConvert` turns into masked select
form at the levels that if-convert, and that stay scalar branches — the
vectorizer witnessed *declining* — everywhere else.

Inputs use the PLAUSIBLE profile: values a numerical kernel would see,
keeping sums in the normal range so vector-tier divergences surface as
{Real, Real} bit differences rather than overflow artefacts.  Trip counts
are drawn up to the array length; a share of programs runs 32+ trips so
the nvcc warp-width model (32 lanes) engages, not just the host 4/8-lane
vectorizers.
"""

from __future__ import annotations

from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.program import GeneratedProgram, GeneratorCapabilities
from repro.utils.rng import SplittableRng

__all__ = ["LoopReductionGenerator"]

#: Unary math calls that stay finite on PLAUSIBLE inputs.
_SAFE_CALLS = ("sin", "cos", "tanh", "atan", "erf", "cbrt")


class LoopReductionGenerator:
    """Random generator over reduction/map loop kernels (``--approach loops``)."""

    name = "loops"
    input_profile = InputProfile.PLAUSIBLE
    capabilities = GeneratorCapabilities(feedback=False, shardable=True)

    def __init__(
        self,
        rng: SplittableRng,
        warp_share: float = 0.35,
        guarded_share: float = 0.30,
        libm_share: float = 0.0,
        mixed_share: float = 0.0,
        int_guard_share: float = 0.0,
    ) -> None:
        self._rng = rng.split("loops")
        #: fraction of programs sized to engage the 32-lane warp model
        self.warp_share = warp_share
        #: per-loop probability of a guarded (conditional-body) shape —
        #: the masked-vectorization tier's workload
        self.guarded_share = guarded_share
        #: per-program probability of a call-heavy reduction loop — the
        #: vec-libm tier's workload (vector math libraries diverge from
        #: scalar libm).  The three tier shares default to 0.0 and, at
        #: 0.0, draw nothing from the rng, so the default program stream
        #: is byte-identical to pre-tier generators.
        self.libm_share = libm_share
        #: per-program probability of a mixed float/double reduction loop
        #: (``(float)`` casts) — the mixed-precision tier's workload
        self.mixed_share = mixed_share
        #: per-program probability of an integer trip-count-guarded loop
        #: (``if (i < m)``) — the masked-int-guard tier's workload
        self.int_guard_share = int_guard_share
        self._counter = 0

    # -- public API --------------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        self._counter += 1
        rng = self._rng.split(f"prog-{self._counter}")
        source, param_types, array_len, pattern = self._program(rng)
        inputs = generate_inputs(
            rng.split("inputs"),
            param_types,
            self.input_profile,
            max_trip=array_len,
            array_len=array_len,
        )
        return GeneratedProgram(
            source=source,
            inputs=inputs,
            meta={"strategy": "loops", "index": self._counter, "pattern": pattern},
        )

    def bind(self, shard_index: int, shard_count: int, rng_seed: int) -> None:
        """Binding ``0/1`` keeps the constructor stream; a real partition
        re-derives it from ``(rng_seed, k, n)`` (see the protocol docs)."""
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(f"invalid partition {shard_index}/{shard_count}")
        if shard_count > 1:
            base = SplittableRng(rng_seed, f"island-{shard_index}of{shard_count}-{self.name}")
            self._rng = base.split("loops")
            self._counter = 0

    def observe(self, outcome) -> None:
        """Feedback-free (and therefore classically shardable), like varity."""

    def notify_success(self, program: GeneratedProgram) -> None:
        """Feedback-free (and therefore shardable), like varity."""

    def export_state(self) -> dict:
        return {"counter": self._counter}

    def import_state(self, state: dict) -> None:
        self._counter = int(state["counter"])

    # -- program synthesis -------------------------------------------------------

    def _program(self, rng: SplittableRng) -> tuple[str, list[str], int, str]:
        # Array length doubles as the trip-count ceiling; a warp-share of
        # programs is long enough for one full 32-lane vector.
        if rng.bernoulli(self.warp_share):
            array_len = rng.randint(33, 48)
        else:
            array_len = rng.randint(8, 24)

        two_arrays = rng.bernoulli(0.6)
        params: list[tuple[str, str]] = [("double *", "a")]
        param_types: list[str] = ["double*"]
        if two_arrays:
            params.append(("double *", "b"))
            param_types.append("double*")
        params.append(("double", "s"))
        param_types.append("double")
        params.append(("int", "n"))
        param_types.append("int")

        arrays = ["a", "b"] if two_arrays else ["a"]
        lines: list[str] = ["double comp = 0.0;"]
        pattern_bits: list[str] = []

        # Optional map loop first: a vector-store workload feeding the
        # reductions below (lane-wise identical to scalar, no divergence).
        if two_arrays and rng.bernoulli(0.4):
            lines.extend(
                [
                    "for (int i = 0; i < n; ++i) {",
                    f"  b[i] = {self._map_expr(rng)};",
                    "}",
                ]
            )
            pattern_bits.append("map")

        n_loops = rng.randint(1, 2)
        for k in range(n_loops):
            roll = rng.random()
            if roll < self.guarded_share:
                shape, loop = self._guarded_loop(rng, arrays)
                lines.extend(loop)
                pattern_bits.append(shape)
            elif roll < self.guarded_share + 0.15 and k == 0:
                lines.extend(self._dual_reduction_loop(rng, arrays))
                pattern_bits.append("dual")
            else:
                lines.extend(self._reduction_loop(rng, arrays, k))
                pattern_bits.append("reduce")
        # Divergence-tier workloads (see the tier shares in __init__).
        # Guarded by `share > 0` before the bernoulli so a zero share
        # draws nothing: the default rng stream stays byte-identical.
        if self.libm_share > 0 and rng.bernoulli(self.libm_share):
            lines.extend(self._libm_loop(rng, arrays))
            pattern_bits.append("libm")
        if self.mixed_share > 0 and rng.bernoulli(self.mixed_share):
            lines.extend(self._mixed_loop(rng, arrays))
            pattern_bits.append("mixed")
        if self.int_guard_share > 0 and rng.bernoulli(self.int_guard_share):
            lines.extend(self._int_guard_loop(rng, arrays))
            pattern_bits.append("iguard")
        lines.append('printf("%.17g\\n", comp);')

        body = "\n  ".join(lines)
        sig = ", ".join(
            f"{ty}{'' if ty.endswith('*') else ' '}{name}" for ty, name in params
        )
        main_body = self._main_body(params, array_len)
        source = (
            "#include <stdio.h>\n"
            "#include <stdlib.h>\n"
            "#include <math.h>\n\n"
            f"void compute({sig}) {{\n  {body}\n}}\n\n"
            "int main(int argc, char **argv) {\n"
            f"{main_body}"
            "  return 0;\n"
            "}\n"
        )
        return source, param_types, array_len, "+".join(pattern_bits)

    def _main_body(self, params: list[tuple[str, str]], array_len: int) -> str:
        pre: list[str] = []
        args: list[str] = []
        argi = 1
        for ty, name in params:
            if ty.endswith("*"):
                arr = f"in_{name}"
                elems = ", ".join(
                    f"atof(argv[{argi + k}])" for k in range(array_len)
                )
                pre.append(f"  double {arr}[{array_len}] = {{{elems}}};\n")
                argi += array_len
                args.append(arr)
            elif ty == "int":
                args.append(f"atoi(argv[{argi}])")
                argi += 1
            else:
                args.append(f"atof(argv[{argi}])")
                argi += 1
        return "".join(pre) + f"  compute({', '.join(args)});\n"

    # -- loop shapes -------------------------------------------------------------

    def _reduction_loop(
        self, rng: SplittableRng, arrays: list[str], k: int
    ) -> list[str]:
        op = rng.choice(["+=", "+=", "+=", "-=", "*="])
        if op == "*=":
            # Products need a 1.0-seeded private accumulator (comp starts
            # at 0.0) and factors near 1 so long trips stay in range.
            prod = f"prod_{k + 1}"
            return [
                f"double {prod} = 1.0;",
                "for (int i = 0; i < n; ++i) {",
                f"  {prod} *= (1.0 + 0.03125 * {rng.choice(arrays)}[i]);",
                "}",
                f"comp += {prod};",
            ]
        return [
            "for (int i = 0; i < n; ++i) {",
            f"  comp {op} {self._mul_term(rng, arrays)};",
            "}",
        ]

    def _dual_reduction_loop(self, rng: SplittableRng, arrays: list[str]) -> list[str]:
        """Two private accumulators in one loop (both widen independently)."""
        lines = [
            "double comp2 = 0.0;",
            "for (int i = 0; i < n; ++i) {",
            f"  comp += {self._mul_term(rng, arrays)};",
            f"  comp2 += {self._lane_term(rng, arrays)};",
            "}",
            f"comp {rng.choice(['+=', '-='])} comp2;",
        ]
        return lines

    def _guarded_loop(
        self, rng: SplittableRng, arrays: list[str]
    ) -> tuple[str, list[str]]:
        """A conditional-body loop: the if-conversion tier's workload.

        At levels that if-convert (hosts at O3/fast-math, nvcc always)
        these widen to masked lane math; everywhere else the vectorizer
        refuses them and the branch stays scalar — so the same program
        witnesses both behaviours across the matrix.
        """
        arr = rng.choice(arrays)
        cmp_op = rng.choice([">", "<", ">=", "<="])
        threshold = rng.choice(["0.0", "1.0", "-1.0", "s"])
        guard = f"{arr}[i] {cmp_op} {threshold}"
        roll = rng.random()
        if roll < 0.45:
            # One-armed guarded accumulation (select vs the + identity).
            op = rng.choice(["+=", "+=", "-="])
            return "guarded", [
                "for (int i = 0; i < n; ++i) {",
                f"  if ({guard}) {{",
                f"    comp {op} {self._mul_term(rng, arrays)};",
                "  }",
                "}",
            ]
        if roll < 0.8:
            # Two-armed accumulation: both arms execute in every
            # if-converted lane, blended by mask.
            return "guarded2", [
                "for (int i = 0; i < n; ++i) {",
                f"  if ({guard}) {{",
                f"    comp += {self._mul_term(rng, arrays)};",
                "  } else {",
                f"    comp += {self._lane_term(rng, arrays)};",
                "  }",
                "}",
            ]
        if len(arrays) == 2:
            # Guarded map store: widens to a masked vector store.
            return "gmap", [
                "for (int i = 0; i < n; ++i) {",
                f"  if ({guard}) {{",
                f"    b[i] = {self._map_expr(rng)};",
                "  }",
                "}",
                "for (int i = 0; i < n; ++i) {",
                "  comp += b[i];",
                "}",
            ]
        return "guarded", [
            "for (int i = 0; i < n; ++i) {",
            f"  if ({guard}) {{",
            f"    comp += {arr}[i];",
            "  }",
            "}",
        ]

    # -- divergence-tier loop shapes ---------------------------------------------

    def _libm_loop(self, rng: SplittableRng, arrays: list[str]) -> list[str]:
        """A call-heavy reduction: every trip goes through libm, so when a
        compiler vectorizes calls against its vector math library
        (``--tiers full`` at fast-math levels) the lanes take the
        library's own polynomials, not scalar libm's."""
        fn_a = rng.choice(_SAFE_CALLS)
        fn_b = rng.choice(_SAFE_CALLS)
        arr = rng.choice(arrays)
        return [
            "for (int i = 0; i < n; ++i) {",
            f"  comp += {fn_a}({arr}[i]) + {fn_b}(s + i) * 0.25;",
            "}",
        ]

    def _mixed_loop(self, rng: SplittableRng, arrays: list[str]) -> list[str]:
        """A mixed float/double reduction: ``(float)`` casts narrow the
        term, the accumulation widens it back — the ``FpExt``/``FpTrunc``
        conversion sites the mixed-precision tier widens."""
        arr = rng.choice(arrays)
        term = rng.choice(
            [
                f"(float)({arr}[i]) * (float)(s)",
                f"(float)({arr}[i] * s)",
                f"(float)({arr}[i]) + (float)(0.5 * s)",
            ]
        )
        return [
            "for (int i = 0; i < n; ++i) {",
            f"  comp += {term};",
            "}",
        ]

    def _int_guard_loop(self, rng: SplittableRng, arrays: list[str]) -> list[str]:
        """A trip-count-guarded accumulation: the mask depends on the
        induction variable itself (``if (i < m)``), so it only
        if-converts where integer guards widen to iota/splat masks —
        the masked-int-guard tier."""
        arr = rng.choice(arrays)
        bound = rng.choice(["n - 1", "n - 2", "n - 3"])
        cmp_op = rng.choice(["<", "<=", ">=", ">"])
        return [
            "for (int i = 0; i < n; ++i) {",
            f"  if (i {cmp_op} {bound}) {{",
            f"    comp += {arr}[i] * s;",
            "  }",
            "}",
        ]

    # -- loop-body expressions ---------------------------------------------------

    def _map_expr(self, rng: SplittableRng) -> str:
        """Element-wise transform for the map loop ``b[i] = ...``."""
        roll = rng.random()
        if roll < 0.4:
            return "a[i] * s"
        if roll < 0.7:
            return f"{rng.choice(_SAFE_CALLS)}(a[i])"
        return "a[i] + s"

    def _mul_term(self, rng: SplittableRng, arrays: list[str]) -> str:
        """A dot-product-style term: array reads scaled/multiplied."""
        a = rng.choice(arrays)
        roll = rng.random()
        if roll < 0.35 and len(arrays) == 2:
            return "a[i] * b[i]"
        if roll < 0.55:
            return f"{a}[i] * s"
        if roll < 0.75:
            return self._lane_term(rng, arrays)
        return f"{a}[i]"

    def _lane_term(self, rng: SplittableRng, arrays: list[str]) -> str:
        """A lane-stepped term: the induction variable feeds the math."""
        fn = rng.choice(_SAFE_CALLS)
        roll = rng.random()
        if roll < 0.5:
            return f"{fn}(s + i) * {rng.choice(arrays)}[i]"
        if roll < 0.75:
            return f"{fn}({rng.choice(arrays)}[i]) * 0.5"
        return f"{rng.choice(arrays)}[i] * {fn}(s)"
