"""Generated-program value objects and the generator protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol


@dataclass(frozen=True)
class GeneratedProgram:
    """One candidate test program paired with its input vector (§3.1.3).

    ``inputs`` has one entry per ``compute`` parameter: a float/int scalar
    or a tuple of floats for pointer parameters.  ``meta`` records how the
    program was produced (strategy, pattern names, mutation parent) for
    diversity analysis and debugging.
    """

    source: str
    inputs: tuple
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def strategy(self) -> str:
        return self.meta.get("strategy", "unknown")


class ProgramGenerator(Protocol):
    """A source of candidate programs — one of the paper's four approaches."""

    name: str

    def generate(self) -> GeneratedProgram:
        """Produce the next candidate program (with inputs)."""
        ...

    def notify_success(self, program: GeneratedProgram) -> None:
        """Called by the harness when ``program`` triggered an inconsistency
        (feeds the LLM4FP feedback loop; no-op for feedback-free approaches).
        """
        ...
