"""Generated-program value objects and the generator lifecycle protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "GeneratedProgram",
    "GeneratorCapabilities",
    "ProgramGenerator",
    "bind_generator",
    "generator_capabilities",
    "observe_outcome",
]


@dataclass(frozen=True)
class GeneratedProgram:
    """One candidate test program paired with its input vector (§3.1.3).

    ``inputs`` has one entry per ``compute`` parameter: a float/int scalar
    or a tuple of floats for pointer parameters.  ``meta`` records how the
    program was produced (strategy, pattern names, mutation parent) for
    diversity analysis and debugging.
    """

    source: str
    inputs: tuple
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def strategy(self) -> str:
        return self.meta.get("strategy", "unknown")


@dataclass(frozen=True)
class GeneratorCapabilities:
    """What the engine may do with a generator, declared up front.

    ``feedback``
        Program *i+1* depends on the verdicts of earlier programs (the
        LLM4FP mutation loop).  The engine must deliver every owned
        outcome via :meth:`ProgramGenerator.observe`, and classic
        replay-the-whole-stream sharding is unsound — feedback campaigns
        shard through the island model instead (``--islands``).
    ``shardable``
        The generator can be :meth:`~ProgramGenerator.bind`-partitioned:
        feedback-free generators shard classically (every shard replays
        the identical stream), feedback generators shard as islands
        (each shard evolves its own deterministic population).
    """

    feedback: bool = False
    shardable: bool = True


@runtime_checkable
class ProgramGenerator(Protocol):
    """A source of candidate programs — one of the paper's approaches.

    The lifecycle, in call order:

    1. ``bind(shard_index, shard_count, rng_seed)`` — pin the generator to
       its generation partition before the first ``generate()``.  Binding
       partition ``0/1`` (the whole stream) is an identity operation: the
       stream stays exactly the one the constructor seeded, which is what
       classic sharding replays on every shard.  Binding ``k/n`` with
       ``n > 1`` re-derives every RNG stream from ``(rng_seed, k, n)`` so
       island *k* evolves the same population no matter which process,
       entry point, or worker schedule runs it.
    2. ``generate()`` — produce the next candidate program.
    3. ``observe(outcome)`` — receive the full verdict for an owned
       program (feeds the feedback set and the fitness census; no-op for
       feedback-free approaches).
    4. ``export_state()`` / ``import_state(state)`` — snapshot/restore the
       evolution state as a JSON-serializable dict.

    ``capabilities`` declares up front what the engine may do with the
    generator; it replaces the deprecated ``use_feedback`` attribute probe
    (see :func:`generator_capabilities`).
    """

    name: str
    capabilities: GeneratorCapabilities

    def bind(self, shard_index: int, shard_count: int, rng_seed: int) -> None:
        """Pin the generator to generation partition ``shard_index/shard_count``."""
        ...

    def generate(self) -> GeneratedProgram:
        """Produce the next candidate program (with inputs)."""
        ...

    def observe(self, outcome: Any) -> None:
        """Receive the full :class:`~repro.difftest.record.ProgramOutcome`
        for an owned program (feedback + fitness; no-op when feedback-free).
        """
        ...

    def export_state(self) -> dict:
        """Snapshot the evolution state as a JSON-serializable dict."""
        ...

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        ...

    def notify_success(self, program: GeneratedProgram) -> None:
        """Deprecated pre-lifecycle feedback hook, kept for one release:
        called with the program alone when it triggered an inconsistency.
        New code receives the whole outcome through :meth:`observe`.
        """
        ...


def generator_capabilities(generator: Any) -> GeneratorCapabilities:
    """The declared :class:`GeneratorCapabilities` of ``generator``.

    A bare ``use_feedback`` attribute without a ``capabilities``
    declaration is a hard error: the attribute-probe bridge lasted one
    release (behind a :class:`DeprecationWarning`) and silently guessing
    sharding semantics from it is how feedback campaigns end up
    classically sharded.  Generators declaring neither are treated as
    feedback-free and shardable — the semantics every 2-method
    generator had.
    """
    caps = getattr(generator, "capabilities", None)
    if isinstance(caps, GeneratorCapabilities):
        return caps
    if hasattr(generator, "use_feedback"):
        raise TypeError(
            f"generator {getattr(generator, 'name', generator)!r} declares "
            "use_feedback but no capabilities field; the use_feedback "
            "probe was removed — declare "
            "capabilities = GeneratorCapabilities(feedback=...) instead"
        )
    return GeneratorCapabilities(feedback=False, shardable=True)


def bind_generator(
    generator: Any, shard_index: int, shard_count: int, rng_seed: int
) -> None:
    """Call :meth:`ProgramGenerator.bind`, tolerating pre-lifecycle
    generators (for which binding the whole stream was always implicit)."""
    bind = getattr(generator, "bind", None)
    if bind is not None:
        bind(shard_index, shard_count, rng_seed)


def observe_outcome(generator: Any, outcome: Any) -> None:
    """Deliver ``outcome`` through the richest hook the generator has:
    ``observe(outcome)`` when present, else the legacy
    ``notify_success(program)`` on triggering outcomes only."""
    observe = getattr(generator, "observe", None)
    if observe is not None:
        observe(outcome)
    elif outcome.triggered:
        generator.notify_success(outcome.program)
