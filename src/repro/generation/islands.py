"""Island-model evolution for feedback generators (the shardable path).

Classic ``--shard i/n`` replays the *whole* generation stream on every
shard, which is only sound when program *i+1* does not depend on earlier
verdicts — exactly what the LLM4FP feedback loop violates.  The island
model makes feedback shardable by changing the partition: island *k* owns
budget indices ``i % islands == k`` and evolves its **own** population
with RNG streams derived from ``(seed, k, islands)`` — so the stream is
identical whether the island runs inside one process (``--islands n``) or
as shard *k* of an ``llm4fp serve`` fleet.

**Merge points.**  After every ``merge_every`` owned programs island *k*
crosses a generation boundary: it exports its top triggers (ranked by
signature novelty) as an ``island`` record into the checkpoint store,
then imports the same-generation exports of every *lower* island
``j < k``.  The downstream-only ("ladder") topology is deliberate: when
island *k* reaches boundary *g*, every ``j < k`` has already crossed it
(island *j*'s boundary index ``j + (g*merge_every - 1)*n`` precedes
island *k*'s), so imports never wait on the future.  Any schedule — one
process round-robin, a concurrent fleet, or strictly sequential manual
shard runs — produces byte-identical records and merged checkpoints.

**Fitness.**  Mutation-operator choice becomes fitness-weighted
stochastic universal sampling over the prompt's mutation strategies,
where a strategy's fitness is the accumulated *novelty* of the triage
cluster signatures its mutants triggered (novelty of a signature decays
as ``1/(1+times seen)`` across own and immigrant triggers).  This closes
the generate→triage→generate loop: strategies that keep finding new
root-cause signatures are sampled more.
"""

from __future__ import annotations

import copy
import json
import re
import time
from pathlib import Path
from typing import Any, Sequence

from repro.generation.program import GeneratedProgram
from repro.generation.prompts import MUTATION_STRATEGIES
from repro.utils.rng import SplittableRng

__all__ = [
    "IslandCoordinator",
    "MutationFitness",
    "derive_peer_paths",
    "stochastic_universal_sampling",
]

#: Triggers exchanged per island per merge point.
EMIGRANTS_PER_MERGE = 3

#: How long a sharded island waits for a sibling's merge-point export
#: before giving up (a fleet retry loop resumes the wait on respawn).
IMPORT_TIMEOUT_SECONDS = 600.0
_POLL_SECONDS = 0.05


def stochastic_universal_sampling(
    rng: SplittableRng, weights: Sequence[float], k: int = 1
) -> list[int]:
    """Draw ``k`` indices proportionally to ``weights`` with one spin.

    Classic SUS (after moorepair's ``Mutation.stochastic_universal_sampling``):
    ``k`` equally spaced pointers over the cumulative wheel, a single
    random phase — lower selection variance than ``k`` independent
    roulette draws, which matters when fitness differences are small.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    total = float(sum(weights))
    if total <= 0.0 or any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative with positive sum")
    step = total / k
    start = rng.uniform(0.0, step)
    picks: list[int] = []
    i = 0
    cum = float(weights[0])
    for pointer in (start + j * step for j in range(k)):
        while pointer > cum and i < len(weights) - 1:
            i += 1
            cum += float(weights[i])
        picks.append(i)
    return picks


class MutationFitness:
    """Per-strategy fitness from the novelty of triggered signatures.

    ``observe(key, strategy)`` records one triggered cluster signature and
    credits its novelty — ``1/(1 + times this signature was already
    seen)`` — to the mutation strategy that produced it.  ``weights()``
    is ``1 + score`` per strategy, so an empty census degenerates to
    uniform selection (the pre-island behaviour).
    """

    def __init__(self, strategies: Sequence[str] = MUTATION_STRATEGIES) -> None:
        self.strategies = tuple(strategies)
        self.census: dict[str, int] = {}
        self.scores: dict[str, float] = {s: 0.0 for s in self.strategies}

    def observe(self, signature_key: str, strategy: str | None = None) -> float:
        seen = self.census.get(signature_key, 0)
        self.census[signature_key] = seen + 1
        novelty = 1.0 / (1.0 + seen)
        if strategy is not None and strategy in self.scores:
            self.scores[strategy] += novelty
        return novelty

    def weights(self) -> tuple[float, ...]:
        return tuple(1.0 + self.scores[s] for s in self.strategies)

    def export_state(self) -> dict:
        return {"census": dict(self.census), "scores": dict(self.scores)}

    def import_state(self, state: dict) -> None:
        self.census = {str(k): int(v) for k, v in state["census"].items()}
        self.scores = {s: 0.0 for s in self.strategies}
        for name, score in state["scores"].items():
            self.scores[str(name)] = float(score)


def derive_peer_paths(path: str | Path, shard_index: int, shard_count: int) -> list[Path]:
    """Sibling checkpoint paths for every island, derived from one shard's.

    Island shards locate each other's merge-point exports through the
    checkpoint filenames: the shard token ``shard<i>`` in the name is
    rewritten per island.  Works for the fleet's ``shard1_of_4.jsonl``,
    the experiment runner's ``...-shard1of4.jsonl``, and a plain manual
    ``shard1.jsonl``.
    """
    p = Path(path)
    token = re.compile(rf"shard{shard_index}(?![0-9])")
    if not token.search(p.name):
        raise ValueError(
            f"cannot derive sibling checkpoint paths from {p.name!r}: island "
            "shards exchange migrants through each other's checkpoints and "
            f"find them by filename — include 'shard{shard_index}' in the "
            f"checkpoint name (e.g. shard{shard_index}_of_{shard_count}.jsonl)"
        )
    return [
        Path(p.parent / token.sub(f"shard{j}", p.name, count=1))
        for j in range(shard_count)
    ]


class IslandCoordinator:
    """Drives island-mode generation for the campaign engine.

    One coordinator serves both deployments:

    * **unsharded** (``shard_count == 1``): holds all ``islands``
      populations in-process (each a deep copy of the template generator,
      re-bound to its partition) and exchanges migrants through memory;
    * **sharded** (``shard_count == islands``): holds only the local
      island and exchanges migrants through the sibling shards'
      checkpoint files (``peer_paths``).

    The engine calls :meth:`generate` for owned indices, :meth:`observe`
    after each owned outcome (which returns any ``island`` records to
    append to the store), then :meth:`complete_boundary` once the records
    are durable.
    """

    def __init__(
        self,
        generator: Any,
        *,
        islands: int,
        merge_every: int,
        seed: int,
        shard_index: int = 0,
        shard_count: int = 1,
        peer_paths: Sequence[str | Path] = (),
        existing_records: Sequence[dict] = (),
        emigrants: int = EMIGRANTS_PER_MERGE,
        import_timeout: float = IMPORT_TIMEOUT_SECONDS,
    ) -> None:
        if islands < 1:
            raise ValueError("islands must be >= 1")
        if merge_every < 1:
            raise ValueError("merge_every must be >= 1")
        if shard_count > 1:
            if islands != shard_count:
                raise ValueError(
                    f"sharded island campaigns need one island per shard: "
                    f"islands={islands}, shard_count={shard_count}"
                )
            if len(peer_paths) != islands:
                raise ValueError(
                    f"need one peer checkpoint path per island, "
                    f"got {len(peer_paths)} for {islands} islands"
                )
        self.islands = islands
        self.merge_every = merge_every
        self.emigrants = emigrants
        self.shard_index = shard_index
        self.shard_count = shard_count
        self._peer_paths = [Path(p) for p in peer_paths]
        self._import_timeout = import_timeout
        self._generators: dict[int, Any] = {}
        if shard_count > 1:
            generator.bind(shard_index, islands, seed)
            self._generators[shard_index] = generator
        else:
            for k in range(islands):
                gen = generator if islands == 1 else copy.deepcopy(generator)
                gen.bind(k, islands, seed)
                self._generators[k] = gen
        self._own_counts: dict[int, int] = {k: 0 for k in self._generators}
        #: in-memory exchange: (island, generation) -> migrants
        self._exports: dict[tuple[int, int], list[dict]] = {}
        #: records already durable in the resumed store, by (island, generation)
        self._existing: dict[tuple[int, int], dict] = {
            (int(r["island"]), int(r["generation"])): r for r in existing_records
        }
        self._pending: tuple[int, int] | None = None

    # -- engine-facing lifecycle ------------------------------------------------

    def owner(self, index: int) -> int:
        return index % self.islands

    def generate(self, index: int) -> GeneratedProgram:
        return self._generators[self.owner(index)].generate()

    def observe(self, index: int, outcome: Any) -> list[dict]:
        """Deliver an owned outcome; return ``island`` records now due.

        A returned record must be appended to the checkpoint store (when
        one is attached) *immediately after* the outcome at ``index`` —
        that file position is what lets :func:`merge_shard_stores` splice
        sharded island checkpoints into the byte-identical unsharded one.
        """
        k = self.owner(index)
        self._generators[k].observe(outcome)
        self._own_counts[k] += 1
        if self._own_counts[k] % self.merge_every:
            return []
        generation = self._own_counts[k] // self.merge_every
        # Feedback-free generators have nothing to exchange; their merge
        # points still produce (empty) records so the byte layout of an
        # island checkpoint is uniform across approaches.
        export = getattr(self._generators[k], "export_migrants", None)
        migrants = export(self.emigrants) if export is not None else []
        self._exports[(k, generation)] = migrants
        record = {
            "kind": "island",
            "island": k,
            "generation": generation,
            "after": index,
            "migrants": migrants,
        }
        self._pending = (k, generation)
        stored = self._existing.get((k, generation))
        if stored is not None:
            if stored != record:
                raise ValueError(
                    f"island record mismatch on resume (island {k}, "
                    f"generation {generation}): the store was produced by a "
                    "different (seed, islands, merge-every) configuration"
                )
            return []
        return [record]

    def complete_boundary(self, index: int) -> None:
        """Apply the imports for the boundary :meth:`observe` just crossed.

        Separate from :meth:`observe` so the engine can make the export
        record durable first — a sibling polling our checkpoint must never
        observe the effects of an exchange before the record itself.
        """
        if self._pending is None:
            return
        k, generation = self._pending
        self._pending = None
        gen = self._generators[k]
        import_migrants = getattr(gen, "import_migrants", None)
        if import_migrants is None:
            return
        for j in range(k):
            import_migrants(self._export_of(j, generation))

    # -- exchange ---------------------------------------------------------------

    def _export_of(self, island: int, generation: int) -> list[dict]:
        key = (island, generation)
        if key in self._exports:
            return self._exports[key]
        if self.shard_count == 1:
            # Round-robin order guarantees lower islands exported first.
            raise RuntimeError(f"island export {key} missing from memory")
        from repro.difftest.store import read_island_records

        path = self._peer_paths[island]
        deadline = time.monotonic() + self._import_timeout
        while True:
            for record in read_island_records(path):
                rkey = (int(record["island"]), int(record["generation"]))
                self._exports.setdefault(rkey, record["migrants"])
            if key in self._exports:
                return self._exports[key]
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"timed out after {self._import_timeout:.0f}s waiting for "
                    f"island {island} generation {generation} in {path} — is "
                    f"shard {island}/{self.shard_count} running?"
                )
            time.sleep(_POLL_SECONDS)
