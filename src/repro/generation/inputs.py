"""Input-vector generation.

Each program is paired with a unique input set (§3.1.3).  Two profiles
model the character difference the paper observes:

* ``WIDE`` (Varity) — magnitudes drawn log-uniformly across most of the
  double range, including huge and tiny values; programs regularly visit
  overflow/underflow/singularity neighbourhoods, which is why Varity's
  inconsistencies skew toward NaN/Inf kinds (Figure 3);
* ``PLAUSIBLE`` (LLM approaches) — values a numerical kernel would
  realistically see (|x| mostly in [1e-3, 1e3]), keeping computations in
  the normal range so divergences surface as {Real, Real} differences.
"""

from __future__ import annotations

import enum

from repro.utils.rng import SplittableRng

__all__ = ["InputProfile", "scalar_input", "generate_inputs"]


class InputProfile(enum.Enum):
    WIDE = "wide"
    PLAUSIBLE = "plausible"


def _wide_scalar(rng: SplittableRng) -> float:
    roll = rng.random()
    if roll < 0.40:
        return rng.uniform(-10.0, 10.0)
    if roll < 0.60:
        # Huge magnitudes.  Half sit where products of two operands straddle
        # the overflow boundary (association/contraction differences decide
        # between a large real and +/-Inf); half saturate outright so
        # infinities and NaNs flow into later finite-math-sensitive sites.
        if rng.bernoulli(0.5):
            exp = rng.uniform(40, 170)
        else:
            exp = rng.uniform(170, 305)
        return rng.choice((-1.0, 1.0)) * 10.0**exp
    if roll < 0.80:
        # Tiny magnitudes, down into the subnormal range where
        # reciprocal-math (x/y -> x * (1/y)) overflows the reciprocal and
        # where flush-to-zero differs from gradual underflow.
        if rng.bernoulli(0.5):
            exp = rng.uniform(-170, -40)
        else:
            exp = rng.uniform(-320, -290)
        return rng.choice((-1.0, 1.0)) * 10.0**exp
    if roll < 0.90:
        return rng.choice((0.0, -0.0, 1.0, -1.0))
    return rng.uniform(-1e6, 1e6)


def _plausible_scalar(rng: SplittableRng) -> float:
    roll = rng.random()
    if roll < 0.55:
        return rng.uniform(-10.0, 10.0)
    if roll < 0.80:
        return rng.uniform(-1000.0, 1000.0)
    if roll < 0.95:
        exp = rng.uniform(-3, 3)
        return rng.choice((-1.0, 1.0)) * 10.0**exp
    return rng.choice((0.5, 1.0, 2.0, -1.0, 0.1))


def scalar_input(rng: SplittableRng, profile: InputProfile) -> float:
    """One floating-point input value under ``profile``."""
    if profile is InputProfile.WIDE:
        return _wide_scalar(rng)
    return _plausible_scalar(rng)


def generate_inputs(
    rng: SplittableRng,
    param_types: list[str],
    profile: InputProfile,
    max_trip: int = 64,
    array_len: int = 8,
) -> tuple:
    """An input vector for a ``compute`` signature.

    ``param_types`` entries are 'int', 'float', 'double', 'float*' or
    'double*'.  Integer parameters are loop bounds and stay small and
    positive; pointer parameters get ``array_len`` elements.
    """
    out: list = []
    for ty in param_types:
        if ty == "int":
            out.append(rng.randint(1, max_trip))
        elif ty.endswith("*"):
            out.append(tuple(scalar_input(rng, profile) for _ in range(array_len)))
        else:
            out.append(scalar_input(rng, profile))
    return tuple(out)
