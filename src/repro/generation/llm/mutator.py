"""Feedback-based mutation: produce a behaviour-changing variant of a
previously successful program (paper §2.3.2).

The mutator implements exactly the strategy list the mutation prompt
enumerates: reordering/nesting arithmetic, changing constants, adding
control flow, swapping math functions, and inserting intermediates.  It
preserves the example's high-level structure and its effective trigger
patterns (transcendental sites, contractible shapes) while perturbing the
computation — which is what makes the LLM4FP loop both more effective and
more diverse than regeneration from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.printer import print_c
from repro.frontend.sema import check_program
from repro.fp.formats import Precision
from repro.generation.llm.base import GenerationConfig
from repro.generation.prompts import MUTATION_STRATEGIES
from repro.utils.rng import SplittableRng

__all__ = ["Mutator"]

#: Which mutation operators realize each prompt strategy — how a
#: "Focus especially on this strategy" prompt line (island fitness
#: steering) becomes a guaranteed operator application.  Keys are the
#: exact MUTATION_STRATEGIES strings, in order: nesting/reordering,
#: constants, control flow, math functions, intermediates.
_FOCUS_OPS: dict[str, tuple[str, ...]] = {
    MUTATION_STRATEGIES[0]: ("_nest_expression", "_reorder_statements"),
    MUTATION_STRATEGIES[1]: ("_perturb_constants",),
    MUTATION_STRATEGIES[2]: ("_wrap_in_loop", "_wrap_in_conditional"),
    MUTATION_STRATEGIES[3]: ("_swap_functions",),
    MUTATION_STRATEGIES[4]: ("_insert_intermediate", "_insert_fma_chain"),
}

#: Domain-compatible function swaps: same argument domain, different curve.
_FUNC_SWAPS = {
    "sin": ("cos", "tanh", "atan", "erf"),
    "cos": ("sin", "tanh", "cbrt"),
    "tanh": ("atan", "erf", "sin"),
    "atan": ("tanh", "sin", "erf"),
    "erf": ("tanh", "atan", "sin"),
    "exp": ("cosh", "sinh", "expm1"),
    "cosh": ("exp", "sinh"),
    "sinh": ("cosh", "expm1"),
    "expm1": ("sinh", "exp"),
    "log1p": ("atan", "tanh"),
    "cbrt": ("tanh", "atan"),
    "sqrt": ("cbrt", "fabs"),
    "fabs": ("cbrt",),
}

_RENAME_POOLS = (
    ("p", "q", "r", "s", "t", "u", "v", "w"),
    ("m_0", "m_1", "m_2", "m_3", "m_4", "m_5", "m_6", "m_7"),
    ("aux", "mix", "gain", "drift", "shift", "trace", "blend", "pulse"),
    ("u0", "u1", "u2", "u3", "u4", "u5", "u6", "u7"),
    ("lhs", "rhs", "mid", "top", "low", "span", "edge", "core"),
    ("k_a", "k_b", "k_c", "k_d", "k_e", "k_f", "k_g", "k_h"),
    ("flux", "mass", "vel", "dens", "temp_v", "pres", "visc", "grad"),
)


@dataclass
class _MutState:
    rng: SplittableRng
    #: floating-point scalars in scope in compute (params + top-level locals)
    scalars: tuple[str, ...] = ()
    fresh_count: int = 0
    applied: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.applied = []

    def fresh(self) -> str:
        self.fresh_count += 1
        return f"mut_{self.fresh_count}"

    def operand(self) -> ast.Expr:
        """A floating-point read: one of the program's own scalars or comp.

        Reading the seed's params/locals (not just ``comp``) is what keeps
        inserted statements from giving every sibling mutant the same
        normalized def-use edges — essential for corpus diversity (RQ1).
        """
        pool = self.scalars or ("comp",)
        return ast.Ident(self.rng.choice(pool))


class Mutator:
    """Applies the prompt's mutation strategies to an example program."""

    def __init__(self, config: GenerationConfig) -> None:
        self.config = config

    def mutate(
        self,
        rng: SplittableRng,
        example_source: str,
        precision: Precision,
        focus: str | None = None,
    ) -> tuple[str, list[str]] | None:
        """Return (mutated source, strategies applied) or None on failure.

        ``focus`` (a MUTATION_STRATEGIES string from the prompt's focus
        line) guarantees one application of a matching operator; without it
        every application is drawn uniformly, consuming exactly the
        pre-island RNG stream.
        """
        self._precision = precision
        focus_ops = _FOCUS_OPS.get(focus, ()) if focus is not None else ()
        try:
            unit = parse_program(example_source)
        except ReproError:
            return None
        # Temperature scales how far the variant strays from the example.
        n_mut = max(2, round(self.config.temperature * rng.uniform(1.5, 3.0)))
        example_tokens = _token_stream(example_source)
        scalars = _fp_scalars(unit)
        for attempt in range(4):
            state = _MutState(rng.split(f"try-{attempt}"), scalars=scalars)
            # One trigger-enriching insertion is always applied: the variant
            # keeps the seed's effective patterns *and* gains a new trigger
            # site (a fresh transcendental call, a contractible multiply-add
            # chain, or a guarded normalization).  This accumulation is what
            # makes the feedback loop beat fresh grammar generation (RQ1).
            # The variant keeps the seed's *key aspects*, not its every
            # statement (§2.3.2): a random subset of independent statements
            # is dropped first, then fresh material is grafted around what
            # remains.  Recombination — part proven seed, part new pattern —
            # is what gives the feedback loop both its higher trigger rate
            # and its diversity edge over from-scratch generation.
            mutated = self._on_compute(
                unit, lambda block: self._thin_seed(state, block)
            )
            # Always one fresh pattern graft (diversity) plus one strong
            # trigger insertion (effectiveness).
            mutated = self._on_compute(
                mutated, lambda block: self._graft_pattern(state, block)
            )
            # The FMA chain is deliberately rare here: contraction-decisive
            # multiply-add shapes light up nvcc's whole vs-O0_nofma column
            # (Table 5), where the paper reports nvcc as the *most stable*
            # compiler; transcendental and guarded-division sites carry the
            # rate instead.
            strong = (
                self._insert_transcendental,
                self._insert_transcendental,
                self._insert_guarded_div,
                self._insert_guarded_div,
                self._insert_fma_chain,
            )
            insert_op = state.rng.choice(strong)
            mutated = self._on_compute(mutated, lambda block: insert_op(state, block))
            if state.rng.bernoulli(0.85):
                second_op = state.rng.choice(strong)
                mutated = self._on_compute(
                    mutated, lambda block: second_op(state, block)
                )
            for j in range(n_mut):
                if j == 0 and focus_ops:
                    op = getattr(self, state.rng.choice(focus_ops))
                    mutated = self._on_compute(
                        mutated, lambda block: op(state, block)
                    )
                else:
                    mutated = self._apply_one(state, mutated)
            # Renaming always runs: it is free behaviour-preserving token
            # diversity (the prompt asks for a *different-looking* program).
            mutated = self._rename_locals(state, mutated)
            state.applied.append("rename-locals")
            try:
                source = print_c(mutated)
                check_program(parse_program(source))
            except ReproError:
                continue
            if _token_stream(source) != example_tokens:
                return source, state.applied
        return None

    # -- mutation dispatch ------------------------------------------------------

    def _apply_one(self, state: _MutState, unit: ast.TranslationUnit) -> ast.TranslationUnit:
        ops = (
            self._perturb_constants,
            self._swap_functions,
            self._nest_expression,
            self._wrap_in_loop,
            self._wrap_in_conditional,
            self._insert_intermediate,
            self._insert_transcendental,
            self._insert_fma_chain,
            self._reorder_statements,
            self._drop_update,
            self._graft_pattern,
        )
        op = state.rng.choice(ops)
        return self._on_compute(unit, lambda block: op(state, block))

    @staticmethod
    def _on_compute(unit: ast.TranslationUnit, fn) -> ast.TranslationUnit:
        functions = []
        for f in unit.functions:
            if f.name == "compute":
                functions.append(
                    ast.FunctionDef(f.return_type, f.name, f.params, fn(f.body))
                )
            else:
                functions.append(f)
        return ast.TranslationUnit(unit.includes, tuple(functions))

    # -- expression-level mutations ----------------------------------------------

    def _perturb_constants(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("change-constants")
        rng = state.rng

        def rewrite(e: ast.Expr) -> ast.Expr:
            if isinstance(e, ast.FloatLit) and rng.bernoulli(0.75):
                v = e.value * rng.uniform(0.5, 2.0) + rng.uniform(-1.0, 1.0)
                return ast.FloatLit(round(v, 6), "", e.is_single)
            return e

        return _rewrite_block_exprs(block, rewrite)

    def _swap_functions(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("swap-math-functions")
        rng = state.rng

        def rewrite(e: ast.Expr) -> ast.Expr:
            if isinstance(e, ast.Call) and e.name in _FUNC_SWAPS and rng.bernoulli(0.75):
                return ast.Call(rng.choice(_FUNC_SWAPS[e.name]), e.args)
            return e

        return _rewrite_block_exprs(block, rewrite)

    def _nest_expression(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("nest-arithmetic")
        rng = state.rng
        done = [False]

        def rewrite_stmt(s: ast.Stmt) -> list[ast.Stmt]:
            if done[0] or not isinstance(s, ast.Assign) or not rng.bernoulli(0.5):
                return [s]
            done[0] = True
            k = ast.FloatLit(round(rng.uniform(0.5, 1.5), 6))
            b = ast.FloatLit(round(rng.uniform(-2.0, 2.0), 6))
            nested = ast.Binary("+", ast.Binary("*", s.value, k), b)
            return [ast.Assign(s.target, s.op, nested)]

        return _rewrite_block_stmts(block, rewrite_stmt)

    # -- statement-level mutations ------------------------------------------------

    def _wrap_in_loop(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("add-loop")
        rng = state.rng
        done = [False]

        def rewrite_stmt(s: ast.Stmt) -> list[ast.Stmt]:
            if (
                done[0]
                or not isinstance(s, ast.Assign)
                or not isinstance(s.target, ast.Ident)
                or s.op not in ("+=", "-=")
                or not rng.bernoulli(0.5)
            ):
                return [s]
            done[0] = True
            i = state.fresh()
            bound = rng.randint(2, 8)
            # Build: for (int i = 0; i < bound; ++i) { <s scaled by 1/bound> }
            from repro.frontend.ctypes import INT

            loop = ast.For(
                init=ast.Decl(INT, (ast.Declarator(i, None, ast.IntLit(0)),)),
                cond=ast.Binary("<", ast.Ident(i), ast.IntLit(bound)),
                step=ast.IncDec(ast.Ident(i), "++"),
                body=ast.Block(
                    (
                        ast.Assign(
                            s.target,
                            s.op,
                            ast.Binary(
                                "/", s.value, ast.FloatLit(float(bound))
                            ),
                        ),
                    )
                ),
            )
            return [loop]

        return _rewrite_block_stmts(block, rewrite_stmt)

    def _wrap_in_conditional(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("add-conditional")
        rng = state.rng
        done = [False]

        def rewrite_stmt(s: ast.Stmt) -> list[ast.Stmt]:
            if (
                done[0]
                or not isinstance(s, ast.Assign)
                or not isinstance(s.target, ast.Ident)
                or s.target.name != "comp"
                or not rng.bernoulli(0.5)
            ):
                return [s]
            done[0] = True
            thr = ast.FloatLit(round(rng.uniform(-5.0, 5.0), 4))
            alt_op = "-=" if s.op == "+=" else "+=" if s.op == "-=" else s.op
            guard = ast.Binary(
                rng.choice(["<", ">"]), ast.Call("fabs", (ast.Ident("comp"),)), thr
            )
            alt = ast.Assign(s.target, alt_op if alt_op != "=" else "=", s.value)
            return [ast.If(guard, ast.Block((s,)), ast.Block((alt,)))]

        return _rewrite_block_stmts(block, rewrite_stmt)

    def _insert_transcendental(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Add a guarded transcendental update of ``comp`` before the print.

        ``comp += f1(comp*k + b) * f2(c)`` contributes one runtime libm site
        (host/device libraries disagree on perturbed points at every level)
        and one constant-argument site (folded at different levels by the
        host compilers).  Both factors are bounded, so the update stays in
        the {Real, Real} regime the paper highlights (RQ2).
        """
        state.applied.append("insert-transcendental")
        rng = state.rng
        f1 = rng.choice(("sin", "cos", "tanh", "atan", "erf"))
        f2 = rng.choice(("cos", "sin", "tanh", "cbrt", "atan"))
        k = ast.FloatLit(round(rng.uniform(0.3, 1.7), 6))
        b = ast.FloatLit(round(rng.uniform(-1.5, 1.5), 6))
        c = ast.FloatLit(round(rng.uniform(0.05, 2.5), 6))
        arg = ast.Binary("+", ast.Binary("*", state.operand(), k), b)
        # Second factor: a constant argument (folded at compiler-dependent
        # levels) or another scalar read, chosen at random.
        if rng.bernoulli(0.5):
            second: ast.Expr = ast.Call(f2, (c,))
        else:
            second = ast.Call(f2, (state.operand(),))
        # The update couples *multiplicatively*: comp picks up the libm
        # term's relative (ulp-level) divergence whatever comp's magnitude.
        # An additive term of order 1 would be absorbed whenever |comp| is
        # large — multiplicative coupling is what keeps the mutant's new
        # trigger site visible in the printed bits (RQ1).  The factor stays
        # within ~[0.4, 2.1] so chains of updates cannot blow up or zero
        # out.  Several shapes avoid one stereotyped subtree signature.
        scale = ast.FloatLit(round(rng.uniform(0.2, 0.5), 6))
        base = ast.FloatLit(round(rng.uniform(1.0, 1.3), 6))
        shape = rng.randint(0, 3)
        if shape == 0:
            factor: ast.Expr = ast.Binary(
                "+", base, ast.Binary("*", scale, ast.Call(f1, (arg,)))
            )
        elif shape == 1:
            factor = ast.Binary(
                "+",
                base,
                ast.Binary(
                    "*", scale, ast.Binary("*", ast.Call(f1, (arg,)), second)
                ),
            )
        elif shape == 2:
            guard = ast.Binary("+", ast.Call("fabs", (second,)), ast.FloatLit(1.5))
            factor = ast.Binary(
                "+", base, ast.Binary("/", ast.Call(f1, (arg,)), guard)
            )
        else:
            factor = ast.Binary(
                "-", base, ast.Binary("*", scale, ast.Call(f2, (arg,)))
            )
        update = ast.Assign(ast.Ident("comp"), "*=", factor)
        return _insert_random(rng, block, [update])

    def _insert_fma_chain(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Add a short ``comp = comp * k + d`` loop before the print.

        The multiply-add shape is contractible: nvcc fuses it at every level
        except ``O0_nofma`` and gcc fuses under optimization, so the chain
        adds level- and compiler-dependent rounding that accumulates across
        iterations without changing the result's magnitude (k is near 1).
        """
        state.applied.append("insert-fma-chain")
        rng = state.rng
        from repro.frontend.ctypes import INT

        i = state.fresh()
        trip = rng.randint(3, 9)
        k = ast.FloatLit(round(rng.uniform(0.9, 1.1), 6))
        d = ast.FloatLit(round(rng.uniform(0.001, 0.05), 6))
        # Addend: a small constant, or a damped read of one of the seed's
        # own scalars (tanh keeps it bounded whatever the input magnitude).
        addend: ast.Expr = d
        if rng.bernoulli(0.5):
            addend = ast.Binary("*", ast.Call("tanh", (state.operand(),)), d)
        fused = ast.Binary("+", ast.Binary("*", ast.Ident("comp"), k), addend)
        if rng.bernoulli(0.6):
            # Loop form: the contraction difference accumulates.
            body = ast.Assign(ast.Ident("comp"), "=", fused)
            stmt: ast.Stmt = ast.For(
                init=ast.Decl(INT, (ast.Declarator(i, None, ast.IntLit(0)),)),
                cond=ast.Binary("<", ast.Ident(i), ast.IntLit(trip)),
                step=ast.IncDec(ast.Ident(i), "++"),
                body=ast.Block((body,)),
            )
        else:
            # Straight-line form: one contractible site, different subtree
            # signature from the loop form.
            stmt = ast.Assign(
                ast.Ident("comp"),
                "=",
                ast.Binary(
                    "+",
                    ast.Binary("*", fused, ast.FloatLit(1.0)),
                    ast.Binary("*", state.operand(), d),
                ),
            )
        return _insert_random(rng, block, [stmt])

    def _insert_guarded_div(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Add ``comp += c1 / (fabs(comp) + c2)`` — a guarded division site.

        Division is reciprocal-substituted under fast math and the guard
        keeps the denominator away from zero, so the site diverges across
        configurations without leaving the {Real, Real} regime.
        """
        state.applied.append("insert-guarded-div")
        rng = state.rng
        c2 = ast.FloatLit(round(rng.uniform(0.5, 3.0), 6))
        f = rng.choice(("tanh", "atan", "erf", "sin"))
        # comp /= (c2 + |f(x)|): dividing re-scales comp by an O(1) factor
        # whose own rounding (and reciprocal-math rewriting under fast math)
        # reaches the printed bits at any magnitude.
        denom = ast.Binary(
            "+", c2, ast.Call("fabs", (ast.Call(f, (state.operand(),)),))
        )
        update = ast.Assign(ast.Ident("comp"), "/=", denom)
        return _insert_random(rng, block, [update])

    def _thin_seed(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Drop a random subset of the seed's independent statements.

        A statement is droppable when removing it cannot break validity: it
        is not the leading ``comp`` declaration or the print, and nothing it
        declares is mentioned later.  Each droppable statement survives with
        probability ~0.65, and at least one always survives, so the variant
        retains part of the proven trigger structure without inheriting the
        seed's entire skeleton.
        """
        rng = state.rng
        stmts = list(block.stmts)
        if len(stmts) <= 3:
            return block
        # Names mentioned at-or-after each suffix position.
        suffix_used: list[set[str]] = [set() for _ in range(len(stmts) + 1)]
        for i in range(len(stmts) - 1, -1, -1):
            _, used = _stmt_names(stmts[i])
            suffix_used[i] = suffix_used[i + 1] | used
        droppable = []
        for i in range(1, len(stmts)):
            s = stmts[i]
            if (
                isinstance(s, ast.ExprStmt)
                and isinstance(s.expr, ast.Call)
                and s.expr.name == "printf"
            ):
                continue
            declared, _ = _stmt_names(s)
            if declared & suffix_used[i + 1]:
                continue
            droppable.append(i)
        if len(droppable) < 2:
            return block
        drops = {i for i in droppable if rng.bernoulli(0.22)}
        if len(drops) == len(droppable):  # keep at least one seed statement
            drops.discard(rng.choice(sorted(drops)))
        if not drops:
            return block
        state.applied.append("thin-seed")
        return ast.Block(tuple(s for i, s in enumerate(stmts) if i not in drops))

    def _drop_update(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Remove one top-level ``comp`` compound update.

        Dropping is always valid (no declaration disappears) and keeps
        mutation chains from growing monotonically, so deep descendants of
        one seed drift apart instead of accumulating the same prefix.
        """
        rng = state.rng
        stmts = list(block.stmts)
        candidates = [
            i
            for i, s in enumerate(stmts)
            if isinstance(s, ast.Assign)
            and isinstance(s.target, ast.Ident)
            and s.target.name == "comp"
            and s.op in ("+=", "-=", "*=")
        ]
        # Keep at least one update so comp still depends on the inputs.
        if len(candidates) < 2:
            return block
        state.applied.append("drop-update")
        del stmts[rng.choice(candidates)]
        return ast.Block(tuple(stmts))

    def _graft_pattern(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Splice one freshly synthesized HPC pattern into the variant.

        This models what GPT-4 actually does under the mutation prompt: it
        does not micro-edit the example, it *regenerates* code conditioned
        on it — new idioms, new names, new constants around the preserved
        structure.  Fresh pattern material is what lets mutant corpora match
        and exceed the diversity of from-scratch generation (paper RQ1:
        LLM4FP has the lowest CodeBLEU).
        """
        state.applied.append("graft-pattern")
        rng = state.rng
        fp_params = tuple(s for s in state.scalars if s != "comp")
        out = block
        for _ in range(rng.randint(1, 2)):
            stmts = _synthesize_snippet(
                rng.split(f"graft-{state.fresh_count}"),
                fp_params,
                getattr(self, "_precision", Precision.DOUBLE),
                name_prefix=f"g{state.fresh_count}",
            )
            state.fresh_count += 1
            if stmts:
                out = _insert_random(rng, out, stmts)
        return out

    def _reorder_statements(self, state: _MutState, block: ast.Block) -> ast.Block:
        """Swap one adjacent pair of independent top-level statements.

        Only pairs with no declaration/use dependency are swapped, so the
        program stays valid; floating-point non-associativity still makes
        the variant behave differently when both statements update ``comp``.
        Reordering also shifts the first-appearance order of locals, which
        decorrelates the variant's normalized dataflow from its siblings'.
        """
        state.applied.append("reorder-statements")
        rng = state.rng
        stmts = list(block.stmts)
        candidates = [
            i
            for i in range(len(stmts) - 1)
            if _swappable(stmts[i], stmts[i + 1])
        ]
        if not candidates:
            return block
        i = rng.choice(candidates)
        stmts[i], stmts[i + 1] = stmts[i + 1], stmts[i]
        return ast.Block(tuple(stmts))

    def _insert_intermediate(self, state: _MutState, block: ast.Block) -> ast.Block:
        state.applied.append("insert-intermediate")
        rng = state.rng
        done = [False]

        def rewrite_stmt(s: ast.Stmt) -> list[ast.Stmt]:
            if (
                done[0]
                or not isinstance(s, ast.Assign)
                or isinstance(s.value, (ast.FloatLit, ast.Ident))
                or not rng.bernoulli(0.5)
            ):
                return [s]
            done[0] = True
            from repro.frontend.ctypes import DOUBLE

            t = state.fresh()
            decl = ast.Decl(DOUBLE, (ast.Declarator(t, None, s.value),))
            return [decl, ast.Assign(s.target, s.op, ast.Ident(t))]

        return _rewrite_block_stmts(block, rewrite_stmt)

    # -- renaming ----------------------------------------------------------------------

    def _rename_locals(
        self, state: _MutState, unit: ast.TranslationUnit
    ) -> ast.TranslationUnit:
        """Rename compute's local scalars from a fresh pool (token diversity)."""
        compute = unit.function("compute")
        pool = list(state.rng.choice(_RENAME_POOLS))
        state.rng.shuffle(pool)
        protected = {p.name for p in compute.params} | {"comp"}
        mapping: dict[str, str] = {}

        def name_for(old: str) -> str:
            if old in protected:
                return old
            if old not in mapping:
                if pool:
                    mapping[old] = pool.pop()
                else:
                    mapping[old] = f"v_{len(mapping)}"
            return mapping[old]

        def rewrite_expr(e: ast.Expr) -> ast.Expr:
            if isinstance(e, ast.Ident) and e.name not in protected:
                return ast.Ident(name_for(e.name))
            return e

        def rename_decl(s: ast.Decl) -> ast.Decl:
            ds = tuple(
                ast.Declarator(name_for(d.name), d.array_size, d.init, d.array_init)
                for d in s.declarators
            )
            return ast.Decl(s.base, ds)

        def rename_stmt(s: ast.Stmt) -> ast.Stmt:
            # Declarator names live outside the expression tree, including
            # the declaration in a for-initializer; walk them explicitly.
            if isinstance(s, ast.Decl):
                return rename_decl(s)
            if isinstance(s, ast.For):
                init = s.init
                if isinstance(init, ast.Decl):
                    init = rename_decl(init)
                return ast.For(init, s.cond, s.step, rename_block(s.body))
            if isinstance(s, ast.If):
                other = rename_block(s.other) if s.other is not None else None
                return ast.If(s.cond, rename_block(s.then), other)
            if isinstance(s, ast.While):
                return ast.While(s.cond, rename_block(s.body))
            if isinstance(s, ast.Block):
                return rename_block(s)
            return s

        def rename_block(b: ast.Block) -> ast.Block:
            return ast.Block(tuple(rename_stmt(s) for s in b.stmts))

        body = rename_block(compute.body)
        body = _rewrite_block_exprs(body, rewrite_expr)
        return self._on_compute(unit, lambda _: body)


def _fp_scalars(unit: ast.TranslationUnit) -> tuple[str, ...]:
    """Floating-point scalar names that are in scope throughout compute.

    Parameters (always live from function entry) plus ``comp`` (declared
    first in the generated structure).  Mid-body locals are excluded so an
    insertion can never read a name before its declaration.
    """
    try:
        compute = unit.function("compute")
    except KeyError:
        return ("comp",)
    names = [
        p.name
        for p in compute.params
        if p.type.base in ("double", "float") and p.type.pointers == 0
    ]
    names.append("comp")
    return tuple(names)


def _synthesize_snippet(
    rng: SplittableRng,
    fp_params: tuple[str, ...],
    precision: Precision,
    name_prefix: str = "gx",
) -> list[ast.Stmt]:
    """Emit one pattern from the synthesis library as parsed statements.

    The snippet reads the host program's own scalars (``fp_params``) and
    accumulates into ``comp``, so it grafts cleanly into any generated
    compute body.  ``name_prefix`` keeps the snippet's locals disjoint from
    the synthesizer's style pools, the rename pools, and any other graft in
    the same variant.  Returns [] when the pattern text fails to parse
    (never expected, but grafting is best-effort).
    """
    from repro.generation.llm.codegen import PATTERNS, EmitCtx

    ctx = EmitCtx(
        rng=rng.split("emit"),
        fp=precision.c_type,
        fp_params=list(fp_params) or ["comp"],
        int_param=None,
        arr_param=None,
        local_names=tuple(f"{name_prefix}_{ch}" for ch in "abcdefgh"),
    )
    pats = [p for p in PATTERNS if p.weight_grammar > 0]
    pat = pats[rng.randint(0, len(pats) - 1)]
    pat.emit(ctx)
    wrapper = "void compute() {\n" + "\n".join(ctx.lines) + "\n}\n"
    try:
        unit = parse_program(wrapper)
    except ReproError:
        return []
    return list(unit.function("compute").body.stmts)


def _token_stream(source: str) -> list[str]:
    """Lexical fingerprint used to reject mutants identical to their seed."""
    from repro.metrics.ctokens import c_tokens

    return c_tokens(source)


def _insert_random(
    rng: SplittableRng, block: ast.Block, new_stmts: list[ast.Stmt]
) -> ast.Block:
    """Insert statements at a random top-level position.

    The position is bounded below by the first statement (``comp``'s
    declaration in the generated structure — the inserts read ``comp``) and
    above by the ``printf``.  Randomizing it decorrelates the def-use
    ordering of sibling mutants, which matters for corpus diversity.
    """
    stmts = list(block.stmts)
    hi = len(stmts)
    for idx in range(len(stmts) - 1, -1, -1):
        s = stmts[idx]
        if (
            isinstance(s, ast.ExprStmt)
            and isinstance(s.expr, ast.Call)
            and s.expr.name == "printf"
        ):
            hi = idx
            break
    lo = min(1, hi)
    pos = rng.randint(lo, hi) if hi > lo else hi
    return ast.Block(tuple(stmts[:pos] + new_stmts + stmts[pos:]))


def _stmt_names(s: ast.Stmt) -> tuple[set[str], set[str]]:
    """(declared names, all identifier occurrences) within one statement."""
    declared: set[str] = set()
    used: set[str] = set()
    for sub in ast.walk_stmts(ast.Block((s,))):
        if isinstance(sub, ast.Decl):
            declared.update(d.name for d in sub.declarators)
        if isinstance(sub, ast.For) and isinstance(sub.init, ast.Decl):
            declared.update(d.name for d in sub.init.declarators)
        for top in ast.stmt_exprs(sub):
            for e in ast.walk_exprs(top):
                if isinstance(e, ast.Ident):
                    used.add(e.name)
    return declared, used


def _swappable(a: ast.Stmt, b: ast.Stmt) -> bool:
    """True when neither statement declares a name the other mentions."""
    decl_a, used_a = _stmt_names(a)
    decl_b, used_b = _stmt_names(b)
    return not (decl_a & (used_b | decl_b)) and not (decl_b & used_a)


# ------------------------------------------------------------------ AST rewriting


def _rewrite_expr(e: ast.Expr, fn) -> ast.Expr:
    """Bottom-up expression rewrite for the frontend AST."""
    if isinstance(e, ast.Unary):
        e = ast.Unary(e.op, _rewrite_expr(e.operand, fn))
    elif isinstance(e, ast.Binary):
        e = ast.Binary(e.op, _rewrite_expr(e.left, fn), _rewrite_expr(e.right, fn))
    elif isinstance(e, ast.Ternary):
        e = ast.Ternary(
            _rewrite_expr(e.cond, fn),
            _rewrite_expr(e.then, fn),
            _rewrite_expr(e.other, fn),
        )
    elif isinstance(e, ast.Call):
        e = ast.Call(e.name, tuple(_rewrite_expr(a, fn) for a in e.args))
    elif isinstance(e, ast.Index):
        e = ast.Index(_rewrite_expr(e.base, fn), _rewrite_expr(e.index, fn))
    elif isinstance(e, ast.Cast):
        e = ast.Cast(e.type, _rewrite_expr(e.operand, fn))
    return fn(e)


def _map_stmt_exprs(s: ast.Stmt, fn) -> ast.Stmt:
    if isinstance(s, ast.Decl):
        ds = []
        for d in s.declarators:
            init = _rewrite_expr(d.init, fn) if d.init is not None else None
            arr = (
                tuple(_rewrite_expr(e, fn) for e in d.array_init)
                if d.array_init is not None
                else None
            )
            ds.append(ast.Declarator(d.name, d.array_size, init, arr))
        return ast.Decl(s.base, tuple(ds))
    if isinstance(s, ast.Assign):
        return ast.Assign(
            _rewrite_expr(s.target, fn), s.op, _rewrite_expr(s.value, fn)
        )
    if isinstance(s, ast.IncDec):
        return ast.IncDec(_rewrite_expr(s.target, fn), s.op)
    if isinstance(s, ast.ExprStmt):
        return ast.ExprStmt(_rewrite_expr(s.expr, fn))
    if isinstance(s, ast.If):
        return ast.If(
            _rewrite_expr(s.cond, fn),
            _rewrite_block_exprs(s.then, fn),
            _rewrite_block_exprs(s.other, fn) if s.other is not None else None,
        )
    if isinstance(s, ast.For):
        init = _map_stmt_exprs(s.init, fn) if s.init is not None else None
        cond = _rewrite_expr(s.cond, fn) if s.cond is not None else None
        step = _map_stmt_exprs(s.step, fn) if s.step is not None else None
        return ast.For(init, cond, step, _rewrite_block_exprs(s.body, fn))
    if isinstance(s, ast.While):
        return ast.While(_rewrite_expr(s.cond, fn), _rewrite_block_exprs(s.body, fn))
    if isinstance(s, ast.Return):
        return ast.Return(_rewrite_expr(s.value, fn) if s.value is not None else None)
    if isinstance(s, ast.Block):
        return _rewrite_block_exprs(s, fn)
    return s


def _rewrite_block_exprs(block: ast.Block, fn) -> ast.Block:
    """Apply an expression rewriter to every expression in a block."""
    return ast.Block(tuple(_map_stmt_exprs(s, fn) for s in block.stmts))


def _rewrite_block_stmts(block: ast.Block, fn) -> ast.Block:
    """Apply a statement rewriter (one stmt -> list of stmts), recursing."""
    out: list[ast.Stmt] = []
    for s in block.stmts:
        replaced = fn(s)
        rec: list[ast.Stmt] = []
        for r in replaced:
            if isinstance(r, ast.Block):
                rec.append(_rewrite_block_stmts(r, fn))
            elif isinstance(r, ast.If):
                rec.append(
                    ast.If(
                        r.cond,
                        _rewrite_block_stmts(r.then, fn),
                        _rewrite_block_stmts(r.other, fn) if r.other is not None else None,
                    )
                )
            elif isinstance(r, ast.For):
                rec.append(
                    ast.For(r.init, r.cond, r.step, _rewrite_block_stmts(r.body, fn))
                )
            elif isinstance(r, ast.While):
                rec.append(ast.While(r.cond, _rewrite_block_stmts(r.body, fn)))
            else:
                rec.append(r)
        out.extend(rec)
    return ast.Block(tuple(out))
