"""LLM client protocol, sampling configuration, and the successful set."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.utils.rng import SplittableRng

__all__ = ["GenerationConfig", "LLMClient", "LatencyModel", "SuccessSet"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling hyperparameters (paper §3.1.4, after Arora et al.)."""

    model: str = "sim-gpt-4.1-2025-04-14"
    temperature: float = 1.2
    frequency_penalty: float = 0.5
    presence_penalty: float = 0.6

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if not 0 <= self.frequency_penalty <= 2:
            raise ValueError("frequency_penalty out of [0, 2]")
        if not 0 <= self.presence_penalty <= 2:
            raise ValueError("presence_penalty out of [0, 2]")


class LLMClient(Protocol):
    """Anything that maps a prompt to a completion."""

    def complete(self, prompt: str) -> str:
        ...


@dataclass
class LatencyModel:
    """Synthetic API latency, for reproducing Table 2's time-cost column.

    The paper attributes more than half of the LLM approaches' runtime to
    API latency (§3.2.3).  When enabled, each call charges a deterministic
    pseudo-random duration to ``total_seconds`` instead of sleeping, so the
    time report reflects the paper's cost structure without wasting wall
    clock.
    """

    rng: SplittableRng
    mean_seconds: float = 12.0
    jitter: float = 0.5
    total_seconds: float = 0.0
    calls: int = 0

    def charge(self) -> float:
        spread = self.mean_seconds * self.jitter
        dt = max(0.5, self.mean_seconds + self.rng.uniform(-spread, spread))
        self.total_seconds += dt
        self.calls += 1
        return dt


class SuccessSet:
    """The feedback store of programs that triggered inconsistencies (§2.4).

    Bounded FIFO: the paper keeps all successes; a bound keeps memory
    predictable at large budgets.  Sampling is recency-biased (see
    :meth:`sample`).
    """

    def __init__(self, rng: SplittableRng, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._rng = rng
        self._programs: list[str] = []
        self._seen: set[int] = set()
        self.capacity = capacity

    def __len__(self) -> int:
        return len(self._programs)

    def add(self, source: str) -> None:
        key = hash(source)
        if key in self._seen:
            return
        self._seen.add(key)
        self._programs.append(source)
        if len(self._programs) > self.capacity:
            dropped = self._programs.pop(0)
            self._seen.discard(hash(dropped))

    def sample(self) -> str:
        """Recency-biased draw from the successful set.

        Later successes are favoured (weight grows linearly with insertion
        rank), so mutation keeps extending recent descendants instead of
        resampling the earliest seeds.  The generation-over-generation drift
        this produces is what spreads the LLM4FP corpus out — the paper
        attributes its diversity edge to the feedback loop (§3.2.3).
        """
        if not self._programs:
            raise LookupError("successful set is empty")
        weights = [1.0 + i for i in range(len(self._programs))]
        return self._programs[self._rng.weighted_index(weights)]

    def export_state(self) -> dict:
        """Stored programs plus the sampling-stream position (JSON-safe)."""
        return {"programs": list(self._programs), "rng": self._rng.export_state()}

    def import_state(self, state: dict) -> None:
        self._programs = []
        self._seen = set()
        for source in state["programs"]:
            self.add(source)
        self._rng.import_state(state["rng"])
