"""LLM-backed program generators for the paper's three LLM approaches.

One class, three configurations (§3.2.1):

* Direct-Prompt   — ``use_grammar=False, use_feedback=False``
* Grammar-Guided  — ``use_grammar=True,  use_feedback=False``
* LLM4FP          — ``use_grammar=True,  use_feedback=True`` (grammar with
  probability 0.3, mutation of a successful example with probability 0.7,
  §3.1.4; the first programs are always grammar-based since the successful
  set starts empty, §2.3).
"""

from __future__ import annotations

import json

from repro.errors import ReproError
from repro.fp.formats import Precision
from repro.generation.grammar import GrammarSpec
from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.islands import MutationFitness, stochastic_universal_sampling
from repro.generation.llm.base import LLMClient, SuccessSet
from repro.generation.program import GeneratedProgram, GeneratorCapabilities
from repro.generation.prompts import (
    MUTATION_STRATEGIES,
    direct_prompt,
    grammar_prompt,
    mutation_prompt,
)
from repro.frontend.parser import parse_program
from repro.utils.rng import SplittableRng

__all__ = ["LLMProgramGenerator"]

_ARRAY_LEN = 8


class LLMProgramGenerator:
    """Generates candidate programs by prompting an LLM client."""

    input_profile = InputProfile.PLAUSIBLE

    def __init__(
        self,
        name: str,
        llm: LLMClient,
        rng: SplittableRng,
        precision: Precision = Precision.DOUBLE,
        use_grammar: bool = True,
        use_feedback: bool = False,
        mutation_prob: float = 0.7,
        grammar: GrammarSpec | None = None,
        success_capacity: int = 4096,
    ) -> None:
        if not 0.0 <= mutation_prob <= 1.0:
            raise ValueError("mutation_prob must be in [0, 1]")
        self.name = name
        self.llm = llm
        self._rng = rng.split(f"llmgen-{name}")
        self.precision = precision
        self.use_grammar = use_grammar
        self.use_feedback = use_feedback
        self.mutation_prob = mutation_prob
        self.grammar = grammar or GrammarSpec(precision=precision)
        self._success_capacity = success_capacity
        self.successes = SuccessSet(self._rng.split("successes"), success_capacity)
        self._counter = 0
        #: (island_index, island_count) once island-bound, else None
        self._island: tuple[int, int] | None = None
        self._fitness = MutationFitness()
        self._migrant_buffer: list[dict] = []

    @property
    def capabilities(self) -> GeneratorCapabilities:
        # Feedback is shardable too — through the island model (--islands),
        # not through classic whole-stream replay.
        return GeneratorCapabilities(feedback=self.use_feedback, shardable=True)

    # -- ProgramGenerator --------------------------------------------------------

    def bind(self, shard_index: int, shard_count: int, rng_seed: int) -> None:
        """Pin the generator to its generation partition.

        Binding ``0/1`` (the whole stream) is an identity operation — the
        constructor stream stands, which is what classic sharding replays
        on every shard and what keeps pre-island checkpoints byte-stable.
        Binding island ``k/n`` re-derives every stream (generator RNG,
        feedback set, LLM completion stream) from ``(rng_seed, k, n)`` and
        arms fitness-weighted mutation steering.
        """
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(f"invalid partition {shard_index}/{shard_count}")
        if shard_count == 1:
            return
        base = SplittableRng(
            rng_seed, f"island-{shard_index}of{shard_count}-{self.name}"
        )
        self._rng = base.split(f"llmgen-{self.name}")
        self.successes = SuccessSet(
            self._rng.split("successes"), self._success_capacity
        )
        self._counter = 0
        self._island = (shard_index, shard_count)
        self._fitness = MutationFitness()
        self._migrant_buffer = []
        rebind = getattr(self.llm, "rebind", None)
        if rebind is not None:
            rebind(base.split(f"llm-{self.name}"))

    def generate(self) -> GeneratedProgram:
        self._counter += 1
        rng = self._rng.split(f"prog-{self._counter}")
        strategy = self._pick_strategy(rng)
        focus: str | None = None

        if strategy == "mutation":
            if self._island is not None:
                pick = stochastic_universal_sampling(
                    rng.split("focus"), self._fitness.weights(), 1
                )[0]
                focus = MUTATION_STRATEGIES[pick]
            prompt = mutation_prompt(
                self.successes.sample(), self.precision, focus=focus
            )
        elif strategy == "grammar":
            prompt = grammar_prompt(self.precision, self.grammar)
        else:
            prompt = direct_prompt(self.precision)

        source = self.llm.complete(prompt)
        inputs = self._inputs_for(rng, source)
        meta = {"strategy": strategy, "approach": self.name, "index": self._counter}
        if focus is not None:
            meta["focus"] = focus
        return GeneratedProgram(source=source, inputs=inputs, meta=meta)

    def observe(self, outcome) -> None:
        """Feed one owned verdict back: the success set, and (island mode)
        the per-strategy fitness census and the migrant buffer."""
        if not outcome.triggered:
            return
        program = outcome.program
        if self.use_feedback:
            self.successes.add(program.source)
        if self._island is not None:
            from repro.triage.cluster import outcome_signature

            kinds, cells = outcome_signature(outcome)
            signature = [list(kinds), list(cells)]
            novelty = self._fitness.observe(
                json.dumps(signature), program.meta.get("focus")
            )
            self._migrant_buffer.append(
                {
                    "source": program.source,
                    "signature": signature,
                    "strategy": program.meta.get("focus"),
                    "novelty": novelty,
                    "order": len(self._migrant_buffer),
                }
            )

    def notify_success(self, program: GeneratedProgram) -> None:
        if self.use_feedback:
            self.successes.add(program.source)

    def export_state(self) -> dict:
        state = {
            "counter": self._counter,
            "successes": self.successes.export_state(),
            "fitness": self._fitness.export_state(),
            "migrants": [dict(m) for m in self._migrant_buffer],
        }
        llm_export = getattr(self.llm, "export_state", None)
        if llm_export is not None:
            state["llm"] = llm_export()
        return state

    def import_state(self, state: dict) -> None:
        self._counter = int(state["counter"])
        self.successes.import_state(state["successes"])
        self._fitness.import_state(state["fitness"])
        self._migrant_buffer = [dict(m) for m in state["migrants"]]
        llm_import = getattr(self.llm, "import_state", None)
        if llm_import is not None and "llm" in state:
            llm_import(state["llm"])

    # -- island exchange ---------------------------------------------------------

    def export_migrants(self, limit: int) -> list[dict]:
        """Drain the current generation's triggers, most novel first."""
        ranked = sorted(
            self._migrant_buffer, key=lambda m: (-m["novelty"], m["order"])
        )
        self._migrant_buffer = []
        return [
            {
                "source": m["source"],
                "signature": m["signature"],
                "strategy": m["strategy"],
            }
            for m in ranked[:limit]
        ]

    def import_migrants(self, migrants: list[dict]) -> None:
        """Absorb a sibling island's exported triggers: their sources join
        the feedback set, their signatures the novelty census."""
        for m in migrants:
            if self.use_feedback:
                self.successes.add(m["source"])
            self._fitness.observe(json.dumps(m["signature"]), None)

    # -- internals -------------------------------------------------------------------

    def _pick_strategy(self, rng: SplittableRng) -> str:
        if self.use_feedback and len(self.successes) > 0 and rng.bernoulli(
            self.mutation_prob
        ):
            return "mutation"
        return "grammar" if self.use_grammar else "direct"

    def _inputs_for(self, rng: SplittableRng, source: str) -> tuple:
        """Pair the program with an input vector matching its signature."""
        try:
            unit = parse_program(source)
            compute = unit.function("compute")
        except (ReproError, KeyError):
            return ()
        param_types = []
        for p in compute.params:
            ty = p.type.base + ("*" if p.type.pointers else "")
            param_types.append(ty)
        return generate_inputs(
            rng.split("inputs"),
            param_types,
            self.input_profile,
            max_trip=self.grammar.max_loop_trip,
            array_len=_ARRAY_LEN,
        )
