"""LLM-backed program generators for the paper's three LLM approaches.

One class, three configurations (§3.2.1):

* Direct-Prompt   — ``use_grammar=False, use_feedback=False``
* Grammar-Guided  — ``use_grammar=True,  use_feedback=False``
* LLM4FP          — ``use_grammar=True,  use_feedback=True`` (grammar with
  probability 0.3, mutation of a successful example with probability 0.7,
  §3.1.4; the first programs are always grammar-based since the successful
  set starts empty, §2.3).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.fp.formats import Precision
from repro.generation.grammar import GrammarSpec
from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.llm.base import LLMClient, SuccessSet
from repro.generation.program import GeneratedProgram
from repro.generation.prompts import direct_prompt, grammar_prompt, mutation_prompt
from repro.frontend.parser import parse_program
from repro.utils.rng import SplittableRng

__all__ = ["LLMProgramGenerator"]

_ARRAY_LEN = 8


class LLMProgramGenerator:
    """Generates candidate programs by prompting an LLM client."""

    input_profile = InputProfile.PLAUSIBLE

    def __init__(
        self,
        name: str,
        llm: LLMClient,
        rng: SplittableRng,
        precision: Precision = Precision.DOUBLE,
        use_grammar: bool = True,
        use_feedback: bool = False,
        mutation_prob: float = 0.7,
        grammar: GrammarSpec | None = None,
        success_capacity: int = 4096,
    ) -> None:
        if not 0.0 <= mutation_prob <= 1.0:
            raise ValueError("mutation_prob must be in [0, 1]")
        self.name = name
        self.llm = llm
        self._rng = rng.split(f"llmgen-{name}")
        self.precision = precision
        self.use_grammar = use_grammar
        self.use_feedback = use_feedback
        self.mutation_prob = mutation_prob
        self.grammar = grammar or GrammarSpec(precision=precision)
        self.successes = SuccessSet(self._rng.split("successes"), success_capacity)
        self._counter = 0

    # -- ProgramGenerator --------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        self._counter += 1
        rng = self._rng.split(f"prog-{self._counter}")
        strategy = self._pick_strategy(rng)

        if strategy == "mutation":
            prompt = mutation_prompt(self.successes.sample(), self.precision)
        elif strategy == "grammar":
            prompt = grammar_prompt(self.precision, self.grammar)
        else:
            prompt = direct_prompt(self.precision)

        source = self.llm.complete(prompt)
        inputs = self._inputs_for(rng, source)
        return GeneratedProgram(
            source=source,
            inputs=inputs,
            meta={"strategy": strategy, "approach": self.name, "index": self._counter},
        )

    def notify_success(self, program: GeneratedProgram) -> None:
        if self.use_feedback:
            self.successes.add(program.source)

    # -- internals -------------------------------------------------------------------

    def _pick_strategy(self, rng: SplittableRng) -> str:
        if self.use_feedback and len(self.successes) > 0 and rng.bernoulli(
            self.mutation_prob
        ):
            return "mutation"
        return "grammar" if self.use_grammar else "direct"

    def _inputs_for(self, rng: SplittableRng, source: str) -> tuple:
        """Pair the program with an input vector matching its signature."""
        try:
            unit = parse_program(source)
            compute = unit.function("compute")
        except (ReproError, KeyError):
            return ()
        param_types = []
        for p in compute.params:
            ty = p.type.base + ("*" if p.type.pointers else "")
            param_types.append(ty)
        return generate_inputs(
            rng.split("inputs"),
            param_types,
            self.input_profile,
            max_trip=self.grammar.max_loop_trip,
            array_len=_ARRAY_LEN,
        )
