"""Prompt parsing — the simulated LLM's 'reading' of its instructions.

The SimLLM honours only what the prompt says, extracted here: the strategy
(direct / grammar-guided / mutation), the requested precision, and the
mutation example.  This keeps the framework-to-LLM interface string-typed
and identical to the paper's, so the prompt builders are genuinely under
test: a prompt that forgets the grammar section produces direct-style
output.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.fp.formats import Precision

__all__ = ["PromptKind", "GenerationRequest", "parse_prompt"]


class PromptKind(enum.Enum):
    DIRECT = "direct"
    GRAMMAR = "grammar"
    MUTATION = "mutation"


@dataclass(frozen=True)
class GenerationRequest:
    kind: PromptKind
    precision: Precision
    example: str | None = None
    strategies: tuple[str, ...] = ()
    #: the strategy the prompt asks to emphasize (island fitness steering)
    focus: str | None = None


_FENCE = re.compile(r"```\n(.*?)\n```", re.DOTALL)
_STRATEGY_LINE = re.compile(r"^- (.+)$", re.MULTILINE)
_FOCUS_LINE = re.compile(r"^Focus especially on this strategy: (.+)\.$", re.MULTILINE)


def parse_prompt(prompt: str) -> GenerationRequest:
    """Extract the structured request from prompt text."""
    if "single precision" in prompt:
        precision = Precision.SINGLE
    else:
        precision = Precision.DOUBLE

    if "Change the given floating-point C program" in prompt:
        m = _FENCE.search(prompt)
        example = m.group(1) if m else None
        strategies: tuple[str, ...] = ()
        if "Mutation strategies to consider:" in prompt:
            section = prompt.split("Mutation strategies to consider:")[1]
            section = section.split("\n\n")[0]
            strategies = tuple(_STRATEGY_LINE.findall(section))
        focus_match = _FOCUS_LINE.search(prompt)
        focus = focus_match.group(1) if focus_match else None
        return GenerationRequest(
            PromptKind.MUTATION,
            precision,
            example=example,
            strategies=strategies,
            focus=focus,
        )

    if "must follow this grammar" in prompt:
        return GenerationRequest(PromptKind.GRAMMAR, precision)

    return GenerationRequest(PromptKind.DIRECT, precision)
