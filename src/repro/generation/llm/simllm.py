"""SimLLM: the offline GPT-4 stand-in.

``complete(prompt)`` is the whole interface — exactly what the paper's
framework sends to the OpenAI API.  The model parses its instructions out
of the prompt (strategy, precision, grammar presence, mutation example),
then synthesizes plain C from the pattern library or mutates the example.
A short presence memory across completions implements the presence-penalty
behaviour (§3.1.4: penalties were tuned to "encourage new patterns").
"""

from __future__ import annotations

from collections import deque

from repro.generation.llm.base import GenerationConfig, LatencyModel
from repro.generation.llm.codegen import ProgramSynthesizer
from repro.generation.llm.mutator import Mutator
from repro.generation.llm.parsing import PromptKind, parse_prompt
from repro.utils.rng import SplittableRng

__all__ = ["SimLLM"]


class SimLLM:
    """A deterministic-under-seed, prompt-driven program generator."""

    def __init__(
        self,
        rng: SplittableRng,
        config: GenerationConfig | None = None,
        latency: LatencyModel | None = None,
        presence_window: int = 8,
    ) -> None:
        self._rng = rng.split("simllm")
        self.config = config or GenerationConfig()
        self.latency = latency
        self._synth = ProgramSynthesizer(self.config)
        self._mutator = Mutator(self.config)
        self._presence: deque[str] = deque(maxlen=presence_window)
        self.calls = 0

    # -- LLMClient ------------------------------------------------------------

    def complete(self, prompt: str) -> str:
        """Generate plain C code for the given prompt."""
        self.calls += 1
        if self.latency is not None:
            self.latency.charge()
        rng = self._rng.split(f"call-{self.calls}")
        request = parse_prompt(prompt)

        if request.kind is PromptKind.MUTATION and request.example:
            mutated = self._mutator.mutate(
                rng.split("mutate"),
                request.example,
                request.precision,
                focus=request.focus,
            )
            if mutated is not None:
                source, applied = mutated
                self._presence.extend(applied[:2])
                return source
            # Mutation failed to produce a valid variant: fall back to
            # fresh grammar-style generation, as a capable model would.
            request = parse_prompt(prompt.replace(
                "Change the given floating-point C program", ""
            ))
            source, used = self._synth.synthesize(
                rng.split("fallback"),
                PromptKind.GRAMMAR,
                request.precision,
                list(self._presence),
            )
            self._presence.extend(used)
            return source

        source, used = self._synth.synthesize(
            rng.split("synth"), request.kind, request.precision, list(self._presence)
        )
        self._presence.extend(used)
        return source

    @property
    def simulated_latency_seconds(self) -> float:
        return self.latency.total_seconds if self.latency else 0.0

    # -- generator lifecycle support -------------------------------------------

    def rebind(self, rng: SplittableRng) -> None:
        """Re-derive the completion stream from a fresh root (island bind).

        Resets the call counter and the presence memory so a rebound model
        behaves exactly like one constructed with ``rng`` — which is what
        makes an island's completions independent of which process or entry
        point constructed the model.
        """
        self._rng = rng.split("simllm")
        self._presence.clear()
        self.calls = 0

    def export_state(self) -> dict:
        return {"calls": self.calls, "presence": list(self._presence)}

    def import_state(self, state: dict) -> None:
        self.calls = int(state["calls"])
        self._presence.clear()
        self._presence.extend(state["presence"])
