"""The SimLLM's code synthesis: a library of HPC-flavoured numerical patterns.

This models the paper's core insight (§1): an LLM's prior over "code it has
seen" yields *semantically plausible* floating-point computations — guarded
denominators, polynomial/stencil/reduction idioms, precomputed constants —
rather than Varity's unguided expression soup.  Plausibility is why LLM4FP's
inconsistencies are overwhelmingly {Real, Real} (RQ2), and the density of
transcendental calls, contractible ``a*b+c`` shapes, and long accumulation
chains is why its trigger rate is higher (RQ1).

Pattern choice is a softmax over pattern weights with the paper's sampling
hyperparameters applied: temperature scales entropy, frequency penalty
discourages reusing a pattern within one program, presence penalty
discourages patterns used in recent completions (§3.1.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.generation.llm.parsing import PromptKind
from repro.generation.llm.base import GenerationConfig
from repro.fp.formats import Precision
from repro.utils.rng import SplittableRng

__all__ = ["ProgramSynthesizer", "PATTERNS", "Pattern"]

_NAME_STYLES = (
    {"fp": ("x", "y", "z", "u", "v"), "int": "n", "arr": "data",
     "locals": ("t", "s", "r", "w", "q", "h", "g", "m")},
    {"fp": ("a", "b", "c", "d", "e"), "int": "count", "arr": "vec",
     "locals": ("acc", "term", "scale", "delta", "rate", "prev", "curr", "step")},
    {"fp": ("val_1", "val_2", "val_3", "val_4", "val_5"), "int": "len", "arr": "buf",
     "locals": ("tmp_a", "tmp_b", "tmp_c", "tmp_d", "tmp_e", "tmp_f", "tmp_g", "tmp_h")},
    {"fp": ("alpha", "beta", "gamma", "delta_0", "omega"), "int": "steps", "arr": "arr",
     "locals": ("weight", "bias", "factor", "coeff", "accum", "energy", "phase", "norm")},
    {"fp": ("x0", "x1", "x2", "x3", "x4"), "int": "iters", "arr": "grid",
     "locals": ("res_a", "res_b", "res_c", "res_d", "res_e", "res_f", "res_g", "res_h")},
    {"fp": ("left", "right", "upper", "lower", "center"), "int": "width", "arr": "cells",
     "locals": ("sum_v", "avg_v", "min_v", "max_v", "mid_v", "dev_v", "err_v", "tol_v")},
    {"fp": ("in_a", "in_b", "in_c", "in_d", "in_e"), "int": "reps", "arr": "samples",
     "locals": ("part", "whole", "ratio", "bound", "level", "stage", "order", "unit")},
)

_ARRAY_LEN = 8


@dataclass
class EmitCtx:
    """State threaded through pattern emitters while building one program."""

    rng: SplittableRng
    fp: str
    fp_params: list[str]
    int_param: str | None
    arr_param: str | None
    local_names: tuple[str, ...]
    lines: list[str] = field(default_factory=list)
    fp_locals: list[str] = field(default_factory=list)
    _fresh: int = 0

    def fresh(self) -> str:
        base = self.local_names[self._fresh % len(self.local_names)]
        n = self._fresh // len(self.local_names)
        self._fresh += 1
        return base if n == 0 else f"{base}_{n + 1}"

    def operand(self) -> str:
        """A floating-point operand: parameter, declared local, or literal."""
        pool = self.fp_params * 2 + self.fp_locals
        if self.rng.bernoulli(0.85) and pool:
            return self.rng.choice(pool)
        return self.literal()

    def _suffix(self) -> str:
        """Literal suffix: 'f' in float programs so arithmetic stays in
        binary32 (unsuffixed literals would promote everything to double,
        hiding single-precision effects behind the final narrowing)."""
        return "f" if self.fp == "float" else ""

    def literal(self, lo: float = -6.0, hi: float = 6.0) -> str:
        roll = self.rng.random()
        if roll < 0.2:
            base = self.rng.choice(["0.5", "1.0", "2.0", "0.25", "1.5", "3.0"])
        else:
            base = f"{self.rng.uniform(lo, hi):.6g}"
        return base + self._suffix()

    def small_positive(self) -> str:
        return f"{self.rng.uniform(0.05, 3.0):.4g}" + self._suffix()

    def trip(self, lo: int = 4, hi: int = 32) -> str:
        if self.int_param and self.rng.bernoulli(0.5):
            return self.int_param
        return str(self.rng.randint(lo, hi))

    def emit(self, text: str) -> None:
        self.lines.append(text)


@dataclass(frozen=True)
class Pattern:
    """One synthesis idiom: emitter + per-strategy weights."""

    name: str
    weight_grammar: float
    weight_direct: float
    emit: object  # Callable[[EmitCtx], None]
    grammar_only: bool = False


# --------------------------------------------------------------------- emitters


def _horner(ctx: EmitCtx) -> None:
    x = ctx.operand()
    c = [ctx.literal() for _ in range(4)]
    ctx.emit(
        f"comp += (({c[0]} * {x} + {c[1]}) * {x} + {c[2]}) * {x} + {c[3]};"
    )


def _dot_loop(ctx: EmitCtx) -> None:
    acc = ctx.fresh()
    x, y = ctx.operand(), ctx.operand()
    i = ctx.fresh()
    ctx.emit(f"{ctx.fp} {acc} = 0.0;")
    ctx.emit(f"for (int {i} = 0; {i} < {ctx.trip()}; ++{i}) {{")
    ctx.emit(f"  {acc} += ({x} + {i} * {ctx.literal()}) * ({y} - {i} * {ctx.literal()});")
    ctx.emit("}")
    ctx.emit(f"comp += {acc};")
    ctx.fp_locals.append(acc)


def _series_loop(ctx: EmitCtx) -> None:
    term = ctx.fresh()
    x = ctx.operand()
    i = ctx.fresh()
    ctx.emit(f"{ctx.fp} {term} = 1.0;")
    ctx.emit(f"for (int {i} = 1; {i} < {ctx.trip(4, 20)}; ++{i}) {{")
    ctx.emit(f"  {term} *= {x} / ({i} + {ctx.small_positive()});")
    ctx.emit(f"  comp += {term};")
    ctx.emit("}")
    ctx.fp_locals.append(term)


def _trig_mix(ctx: EmitCtx) -> None:
    x, y = ctx.operand(), ctx.operand()
    f1 = ctx.rng.choice(["sin", "cos", "tanh", "atan", "erf"])
    f2 = ctx.rng.choice(["cos", "sin", "tanh", "cbrt"])
    ctx.emit(
        f"comp += {f1}({x}) * {f2}({y}) + tanh({x} * {y}) / (fabs({x}) + {ctx.small_positive()});"
    )


def _const_literal(ctx: EmitCtx) -> None:
    k = ctx.fresh()
    fn = ctx.rng.choice(["sin", "cos", "exp", "log1p", "atan", "tanh"])
    lit = f"{ctx.rng.uniform(0.05, 2.5):.6g}" + ctx._suffix()
    ctx.emit(f"{ctx.fp} {k} = {fn}({lit});")
    ctx.emit(f"comp += {k} * {ctx.operand()};")
    ctx.fp_locals.append(k)


def _const_propagated(ctx: EmitCtx) -> None:
    w, k = ctx.fresh(), ctx.fresh()
    fn = ctx.rng.choice(["cos", "sin", "exp", "erf", "atan", "log1p"])
    lit = f"{ctx.rng.uniform(0.05, 2.5):.6g}" + ctx._suffix()
    ctx.emit(f"{ctx.fp} {w} = {lit};")
    ctx.emit(f"{ctx.fp} {k} = {fn}({w});")
    ctx.emit(f"comp += {k} * ({ctx.operand()} + {ctx.operand()});")
    ctx.fp_locals.extend((w, k))


def _newton_iter(ctx: EmitCtx) -> None:
    r = ctx.fresh()
    x = ctx.operand()
    i = ctx.fresh()
    ctx.emit(f"{ctx.fp} {r} = fabs({x}) * 0.5 + 1.0;")
    ctx.emit(f"for (int {i} = 0; {i} < {ctx.rng.randint(3, 8)}; ++{i}) {{")
    ctx.emit(f"  {r} = 0.5 * ({r} + fabs({x}) / ({r} + 1.0e-12));")
    ctx.emit("}")
    ctx.emit(f"comp += {r};")
    ctx.fp_locals.append(r)


def _guarded_norm(ctx: EmitCtx) -> None:
    x = ctx.operand()
    ctx.emit(f"comp += {x} / (fabs({x}) + {ctx.small_positive()});")


def _stencil_array(ctx: EmitCtx) -> None:
    buf = ctx.fresh()
    size = ctx.rng.randint(5, _ARRAY_LEN)
    init = ", ".join(ctx.literal() for _ in range(size))
    i = ctx.fresh()
    x = ctx.operand()
    ctx.emit(f"{ctx.fp} {buf}[{size}] = {{{init}}};")
    ctx.emit(f"for (int {i} = 1; {i} < {size - 1}; ++{i}) {{")
    ctx.emit(f"  {buf}[{i}] = ({buf}[{i} - 1] + {buf}[{i} + 1]) * 0.5 + {x} * {ctx.literal()};")
    ctx.emit("}")
    ctx.emit(f"comp += {buf}[{size // 2}];")


def _array_reduce(ctx: EmitCtx) -> None:
    if ctx.arr_param is None:
        return _dot_loop(ctx)
    i = ctx.fresh()
    acc = ctx.fresh()
    ctx.emit(f"{ctx.fp} {acc} = 0.0;")
    ctx.emit(f"for (int {i} = 0; {i} < {_ARRAY_LEN}; ++{i}) {{")
    ctx.emit(f"  {acc} += {ctx.arr_param}[{i}] * ({ctx.operand()} + {i});")
    ctx.emit("}")
    ctx.emit(f"comp += {acc};")
    ctx.fp_locals.append(acc)


def _exp_decay_loop(ctx: EmitCtx) -> None:
    i = ctx.fresh()
    rate = ctx.small_positive()
    x = ctx.operand()
    ctx.emit(f"for (int {i} = 0; {i} < {ctx.trip(4, 24)}; ++{i}) {{")
    ctx.emit(f"  comp += exp(-({rate}) * {i}) * {x};")
    ctx.emit("}")


def _pow_mix(ctx: EmitCtx) -> None:
    x, y = ctx.operand(), ctx.operand()
    e1 = ctx.rng.choice(["2.0", "3.0", "0.5", "4.0"])
    ctx.emit(
        f"comp += pow(fabs({x}) + 1.0, {e1}) - sqrt(fabs({y}) + {ctx.small_positive()});"
    )


def _rescale_gain(ctx: EmitCtx) -> None:
    """comp *= (base + s*f(x)) — a bounded multiplicative gain.

    Multiplicative coupling lets the gain's libm rounding reach the printed
    bits whatever comp's magnitude; common HPC idiom (damping/normalization
    factors) and a strong host-device trigger at every level.
    """
    f = ctx.rng.choice(["tanh", "atan", "erf", "sin", "cos"])
    x = ctx.operand()
    base = f"{ctx.rng.uniform(1.0, 1.3):.6g}" + ctx._suffix()
    scale = f"{ctx.rng.uniform(0.2, 0.5):.6g}" + ctx._suffix()
    ctx.emit(f"comp *= {base} + {scale} * {f}({x});")


def _cond_update(ctx: EmitCtx) -> None:
    thr = ctx.literal(1.0, 100.0)
    ctx.emit(f"if (fabs(comp) > {thr}) {{")
    ctx.emit(f"  comp *= {ctx.rng.uniform(0.05, 0.9):.4g}{ctx._suffix()};")
    ctx.emit("} else {")
    ctx.emit(f"  comp += {ctx.operand()} * {ctx.literal()};")
    ctx.emit("}")


def _log_guarded(ctx: EmitCtx) -> None:
    x, y = ctx.operand(), ctx.operand()
    ctx.emit(f"comp += log(fabs({x} * {y}) + 1.0);")


def _sum_chain(ctx: EmitCtx) -> None:
    terms = []
    for _ in range(ctx.rng.randint(4, 7)):
        v = ctx.operand()
        lit = ctx.literal()
        form = ctx.rng.choice([f"{v} * {lit}", f"{v}", f"({v} + {lit})", f"{v} / {ctx.small_positive()}"])
        terms.append(form)
    joined = " + ".join(terms)
    ctx.emit(f"comp += {joined};")


def _simple_arith(ctx: EmitCtx) -> None:
    t = ctx.fresh()
    ctx.emit(f"{ctx.fp} {t} = {ctx.operand()} + {ctx.operand()};")
    ctx.emit(f"comp += {t};")
    ctx.emit(f"comp *= {ctx.literal(0.2, 1.8)};")
    ctx.fp_locals.append(t)


def _ternary_clamp(ctx: EmitCtx) -> None:
    t = ctx.fresh()
    x, y = ctx.operand(), ctx.operand()
    ctx.emit(f"{ctx.fp} {t} = {x} > {y} ? {x} : {y};")
    ctx.emit(f"comp += {t} * {ctx.literal()};")
    ctx.fp_locals.append(t)


def _while_halve(ctx: EmitCtx) -> None:
    h = ctx.fresh()
    x = ctx.operand()
    ctx.emit(f"{ctx.fp} {h} = fabs({x}) + 2.0;")
    ctx.emit(f"while ({h} > 1.5) {{")
    ctx.emit(f"  {h} *= 0.5;")
    ctx.emit("}")
    ctx.emit(f"comp += {h};")
    ctx.fp_locals.append(h)


PATTERNS: tuple[Pattern, ...] = (
    Pattern("horner", 1.1, 0.6, _horner),
    Pattern("dot_loop", 1.0, 0.6, _dot_loop),
    Pattern("series_loop", 0.8, 0.5, _series_loop),
    Pattern("trig_mix", 1.3, 0.7, _trig_mix),
    Pattern("const_literal", 0.5, 0.35, _const_literal),
    Pattern("const_propagated", 1.1, 0.5, _const_propagated),
    Pattern("newton_iter", 0.6, 0.5, _newton_iter),
    Pattern("guarded_norm", 0.8, 0.7, _guarded_norm),
    Pattern("stencil_array", 0.9, 0.2, _stencil_array, grammar_only=True),
    Pattern("array_reduce", 0.9, 0.2, _array_reduce, grammar_only=True),
    Pattern("exp_decay_loop", 0.9, 0.5, _exp_decay_loop),
    Pattern("pow_mix", 0.7, 0.5, _pow_mix),
    Pattern("rescale_gain", 1.0, 0.45, _rescale_gain),
    Pattern("cond_update", 0.6, 0.5, _cond_update),
    Pattern("log_guarded", 0.7, 0.5, _log_guarded),
    Pattern("sum_chain", 0.9, 0.8, _sum_chain),
    Pattern("simple_arith", 0.3, 0.8, _simple_arith),
    Pattern("ternary_clamp", 0.0, 0.7, _ternary_clamp),
    Pattern("while_halve", 0.0, 0.5, _while_halve),
)


class ProgramSynthesizer:
    """Builds one program for a parsed generation request."""

    def __init__(self, config: GenerationConfig) -> None:
        self.config = config

    def synthesize(
        self,
        rng: SplittableRng,
        kind: PromptKind,
        precision: Precision,
        presence_memory: list[str],
    ) -> tuple[str, list[str]]:
        """Returns (source, pattern names used)."""
        fp = precision.c_type
        style = _NAME_STYLES[rng.randint(0, len(_NAME_STYLES) - 1)]
        n_fp = rng.randint(2, 4)
        fp_params = list(style["fp"][:n_fp])
        int_param = style["int"] if rng.bernoulli(0.7) else None
        arr_param = style["arr"] if rng.bernoulli(0.35) else None

        ctx = EmitCtx(
            rng=rng.split("emit"),
            fp=fp,
            fp_params=fp_params,
            int_param=int_param,
            arr_param=arr_param,
            local_names=style["locals"],
        )
        init = rng.choice(
            ["0.0", f"{fp_params[0]} * {ctx.literal()}", f"{fp_params[0]} + {fp_params[-1]}"]
        )
        ctx.emit(f"{fp} comp = {init};")

        if kind is PromptKind.GRAMMAR:
            n_patterns = rng.randint(2, 4)
        else:
            n_patterns = rng.randint(2, 3)
        used: list[str] = []
        for _ in range(n_patterns):
            pat = self._sample_pattern(rng, kind, used, presence_memory)
            pat.emit(ctx)
            used.append(pat.name)

        ctx.emit('printf("%.17g\\n", comp);')
        return self._assemble(ctx, fp, fp_params, int_param, arr_param), used

    # -- pattern sampling ---------------------------------------------------------

    def _sample_pattern(
        self,
        rng: SplittableRng,
        kind: PromptKind,
        used_in_program: list[str],
        presence_memory: list[str],
    ) -> Pattern:
        cfg = self.config
        candidates: list[Pattern] = []
        logits: list[float] = []
        for pat in PATTERNS:
            w = pat.weight_grammar if kind is PromptKind.GRAMMAR else pat.weight_direct
            if kind is PromptKind.GRAMMAR and pat.grammar_only:
                w = pat.weight_grammar
            if kind is not PromptKind.GRAMMAR and pat.grammar_only:
                w = 0.0
            if w <= 0.0:
                continue
            logit = math.log(w)
            logit -= cfg.frequency_penalty * used_in_program.count(pat.name)
            if pat.name in presence_memory:
                logit -= cfg.presence_penalty
            candidates.append(pat)
            logits.append(logit)
        t = max(cfg.temperature, 0.05)
        mx = max(logits)
        weights = [math.exp((lg - mx) / t) for lg in logits]
        return candidates[rng.weighted_index(weights)]

    # -- program assembly ------------------------------------------------------------

    @staticmethod
    def _assemble(
        ctx: EmitCtx,
        fp: str,
        fp_params: list[str],
        int_param: str | None,
        arr_param: str | None,
    ) -> str:
        params: list[str] = [f"{fp} {p}" for p in fp_params]
        if int_param:
            params.append(f"int {int_param}")
        if arr_param:
            params.append(f"{fp} *{arr_param}")

        # indentation: re-indent emitted lines by brace depth
        body_lines: list[str] = []
        depth = 1
        for line in ctx.lines:
            stripped = line.strip()
            if stripped.startswith("}"):
                depth -= 1
            body_lines.append("  " * depth + stripped)
            if stripped.endswith("{"):
                depth += 1
        body = "\n".join(body_lines)

        main_pre: list[str] = []
        call_args: list[str] = []
        argi = 1
        for p in fp_params:
            call_args.append(f"atof(argv[{argi}])")
            argi += 1
        if int_param:
            call_args.append(f"atoi(argv[{argi}])")
            argi += 1
        if arr_param:
            elems = ", ".join(f"atof(argv[{argi + k}])" for k in range(_ARRAY_LEN))
            main_pre.append(f"  {fp} in_{arr_param}[{_ARRAY_LEN}] = {{{elems}}};")
            call_args.append(f"in_{arr_param}")

        main_body = "\n".join(
            main_pre + [f"  compute({', '.join(call_args)});", "  return 0;"]
        )
        return (
            "#include <stdio.h>\n"
            "#include <stdlib.h>\n"
            "#include <math.h>\n\n"
            f"void compute({', '.join(params)}) {{\n"
            f"{body}\n"
            "}\n\n"
            "int main(int argc, char **argv) {\n"
            f"{main_body}\n"
            "}\n"
        )
