"""The LLM client layer.

:class:`SimLLM` is the offline stand-in for the paper's GPT-4
(`gpt-4.1-2025-04-14`, §3.1.4): it consumes the exact prompt text the
strategies build, honours only what the prompt states, and emits plain C.
Sampling hyperparameters (temperature 1.2, frequency penalty 0.5, presence
penalty 0.6) map onto its pattern-sampling entropy and anti-repetition
weights.  See DESIGN.md "Substitutions".
"""

from repro.generation.llm.base import GenerationConfig, LatencyModel, LLMClient, SuccessSet
from repro.generation.llm.simllm import SimLLM
from repro.generation.llm.generator import LLMProgramGenerator

__all__ = [
    "GenerationConfig",
    "LatencyModel",
    "LLMClient",
    "SuccessSet",
    "SimLLM",
    "LLMProgramGenerator",
]
