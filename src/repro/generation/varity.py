"""The Varity baseline: random grammar-based program generation.

Faithful to the paper's description of Varity (§2.2, §3.2.1): programs are
drawn from the Figure 2 grammar with no domain knowledge and no feedback —
unguarded divisions, math calls on arbitrary arguments, and wide-range
inputs.  This unguardedness is what makes Varity's inconsistencies skew
toward extreme-value kinds (Figure 3) while keeping its trigger rate low.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.generation.grammar import GrammarSpec, DEFAULT_GRAMMAR
from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.program import GeneratedProgram, GeneratorCapabilities
from repro.utils.rng import SplittableRng

__all__ = ["VarityGenerator"]

_ARRAY_LEN = 8


@dataclass
class _Ctx:
    """Names visible at the current generation point."""

    fp_vars: list[str]
    int_vars: list[str]
    arrays: list[str]
    depth: int = 0


class VarityGenerator:
    """Random generator over the Varity grammar."""

    name = "varity"
    input_profile = InputProfile.WIDE
    capabilities = GeneratorCapabilities(feedback=False, shardable=True)

    def __init__(
        self,
        rng: SplittableRng,
        grammar: GrammarSpec = DEFAULT_GRAMMAR,
        math_call_prob: float = 0.20,
    ) -> None:
        self._rng = rng.split("varity")
        self.grammar = grammar
        self.math_call_prob = math_call_prob
        self._counter = 0

    # -- public API --------------------------------------------------------------

    def generate(self) -> GeneratedProgram:
        self._counter += 1
        rng = self._rng.split(f"prog-{self._counter}")
        source, param_types = self._program(rng)
        inputs = generate_inputs(
            rng.split("inputs"),
            param_types,
            self.input_profile,
            max_trip=self.grammar.max_loop_trip,
            array_len=_ARRAY_LEN,
        )
        return GeneratedProgram(
            source=source,
            inputs=inputs,
            meta={"strategy": "varity", "index": self._counter},
        )

    def bind(self, shard_index: int, shard_count: int, rng_seed: int) -> None:
        """Binding ``0/1`` keeps the constructor stream (classic sharding
        replays the identical unsharded stream on every shard); binding a
        real partition re-derives the stream from ``(rng_seed, k, n)``."""
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ValueError(f"invalid partition {shard_index}/{shard_count}")
        if shard_count > 1:
            base = SplittableRng(rng_seed, f"island-{shard_index}of{shard_count}-{self.name}")
            self._rng = base.split("varity")
            self._counter = 0

    def observe(self, outcome) -> None:
        """Varity has no feedback loop — verdicts are not reused."""

    def notify_success(self, program: GeneratedProgram) -> None:
        """Varity has no feedback loop — successes are not reused."""

    def export_state(self) -> dict:
        return {"counter": self._counter}

    def import_state(self, state: dict) -> None:
        self._counter = int(state["counter"])

    # -- program synthesis ---------------------------------------------------------

    def _program(self, rng: SplittableRng) -> tuple[str, list[str]]:
        fp = self.grammar.fp_type
        n_fp = rng.randint(2, min(4, self.grammar.max_params))
        has_int = rng.bernoulli(0.6)
        has_ptr = self.grammar.allow_arrays and rng.bernoulli(0.3)

        params: list[tuple[str, str]] = [(fp, f"var_{i + 1}") for i in range(n_fp)]
        param_types = [fp] * n_fp
        int_name = None
        ptr_name = None
        if has_int:
            int_name = f"var_{len(params) + 1}"
            params.append(("int", int_name))
            param_types.append("int")
        if has_ptr:
            ptr_name = f"var_{len(params) + 1}"
            params.append((fp + " *", ptr_name))
            param_types.append(fp + "*")

        ctx = _Ctx(
            fp_vars=[name for ty, name in params if ty == fp],
            int_vars=[int_name] if int_name else [],
            arrays=[ptr_name] if ptr_name else [],
        )

        lines: list[str] = []
        lines.append(f"{fp} comp = {self._expr(rng, ctx, 0)};")
        n_stmts = rng.randint(1, 4)
        tmp_count = 0
        for _ in range(n_stmts):
            roll = rng.random()
            if roll < 0.35:
                tmp_count += 1
                name = f"tmp_{tmp_count}"
                lines.append(f"{fp} {name} = {self._expr(rng, ctx, 0)};")
                ctx.fp_vars.append(name)
            elif roll < 0.65:
                op = rng.choice(["+=", "-=", "*=", "/="])
                lines.append(f"comp {op} {self._expr(rng, ctx, 0)};")
            elif roll < 0.80 and self.grammar.allow_conditionals:
                lines.extend(self._if_block(rng, ctx))
            else:
                lines.extend(self._for_block(rng, ctx))
        lines.append('printf("%.17g\\n", comp);')

        body = "\n  ".join(lines)
        sig = ", ".join(f"{ty}{'' if ty.endswith('*') else ' '}{name}" for ty, name in params)
        main_body, argv_used = self._main_body(params, fp)
        source = (
            "#include <stdio.h>\n"
            "#include <stdlib.h>\n"
            "#include <math.h>\n\n"
            f"void compute({sig}) {{\n  {body}\n}}\n\n"
            "int main(int argc, char **argv) {\n"
            f"{main_body}"
            "  return 0;\n"
            "}\n"
        )
        return source, param_types

    def _main_body(self, params: list[tuple[str, str]], fp: str) -> tuple[str, int]:
        args: list[str] = []
        pre: list[str] = []
        argi = 1
        for ty, name in params:
            if ty == "int":
                args.append(f"atoi(argv[{argi}])")
                argi += 1
            elif ty.endswith("*"):
                arr = f"in_{name}"
                elems = ", ".join(f"atof(argv[{argi + k}])" for k in range(_ARRAY_LEN))
                pre.append(f"  {fp} {arr}[{_ARRAY_LEN}] = {{{elems}}};\n")
                argi += _ARRAY_LEN
                args.append(arr)
            else:
                args.append(f"atof(argv[{argi}])")
                argi += 1
        call = f"  compute({', '.join(args)});\n"
        return "".join(pre) + call, argi - 1

    # -- statements --------------------------------------------------------------------

    def _if_block(self, rng: SplittableRng, ctx: _Ctx) -> list[str]:
        guard_var = rng.choice(ctx.fp_vars)
        op = rng.choice(["<", ">", "<=", ">="])
        bound = self._expr(rng, ctx, 2)
        inner_op = rng.choice(["+=", "-=", "*=", "/="])
        lines = [f"if ({guard_var} {op} {bound}) {{"]
        lines.append(f"  comp {inner_op} {self._expr(rng, ctx, 1)};")
        if rng.bernoulli(0.4):
            lines.append("} else {")
            lines.append(f"  comp {rng.choice(['+=', '-='])} {self._expr(rng, ctx, 1)};")
        lines.append("}")
        return lines

    def _for_block(self, rng: SplittableRng, ctx: _Ctx, depth: int = 0) -> list[str]:
        loop_var = "i" if depth == 0 else "j"
        if ctx.int_vars and rng.bernoulli(0.6):
            bound = rng.choice(ctx.int_vars)
        else:
            bound = str(rng.randint(2, self.grammar.max_loop_trip))
        saved = list(ctx.int_vars)
        ctx.int_vars.append(loop_var)
        lines = [f"for (int {loop_var} = 0; {loop_var} < {bound}; ++{loop_var}) {{"]
        inner: list[str] = []
        op = rng.choice(["+=", "-=", "*=", "/="])
        inner.append(f"comp {op} {self._expr(rng, ctx, 1)};")
        if (
            depth + 1 < self.grammar.max_loop_depth
            and rng.bernoulli(0.25)
        ):
            inner.extend(self._for_block(rng, ctx, depth + 1))
        lines.extend(f"  {line}" for line in inner)
        lines.append("}")
        ctx.int_vars = saved
        return lines

    # -- expressions -----------------------------------------------------------------------

    def _literal(self, rng: SplittableRng) -> str:
        # Varity's rigid grammar reuses a small constant vocabulary often,
        # which is part of why its corpus is the least diverse (Table 2).
        roll = rng.random()
        if roll < 0.60:
            return rng.choice(["0.0", "0.5", "1.5", "0.25", "2.5", "0.75", "1.0", "-0.5"])
        if roll < 0.85:
            return f"{rng.uniform(-10.0, 10.0):.6g}"
        exp = rng.randint(-12, 12)
        return f"{rng.uniform(-9.0, 9.0):.4g}e{exp}"

    def _leaf(self, rng: SplittableRng, ctx: _Ctx) -> str:
        choices: list[str] = []
        choices.extend(ctx.fp_vars * 3)  # favour variables over literals
        if ctx.arrays:
            arr = rng.choice(ctx.arrays)
            choices.append(f"{arr}[{rng.randint(0, _ARRAY_LEN - 1)}]")
        if ctx.int_vars and rng.bernoulli(0.3):
            choices.append(rng.choice(ctx.int_vars))
        choices.append(self._literal(rng))
        return rng.choice(choices)

    def _expr(self, rng: SplittableRng, ctx: _Ctx, depth: int) -> str:
        if depth >= self.grammar.max_expr_depth:
            return self._leaf(rng, ctx)
        roll = rng.random()
        if roll < self.math_call_prob:
            fn = rng.choice(self.grammar.functions)
            from repro.fp.mathlib import MATH_FUNCTIONS

            arity = MATH_FUNCTIONS[fn].arity
            args = ", ".join(self._expr(rng, ctx, depth + 2) for _ in range(arity))
            return f"{fn}({args})"
        if roll < self.math_call_prob + 0.50:
            op = rng.choice(self.grammar.operators)
            left = self._expr(rng, ctx, depth + 1)
            right = self._expr(rng, ctx, depth + 1)
            text = f"{left} {op} {right}"
            if rng.bernoulli(0.4):
                return f"({text})"
            return text
        return self._leaf(rng, ctx)
