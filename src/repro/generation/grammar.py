"""The Varity grammar specification (paper Figure 2).

The spec is both data (the structural limits generators respect) and text
(the BNF block embedded into grammar-guided prompts, §2.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fp.formats import Precision

#: Math functions the grammar exposes, grouped by how generators use them.
SAFE_UNARY = ("sin", "cos", "tanh", "atan", "erf", "fabs", "cbrt")
GROWING_UNARY = ("exp", "sinh", "cosh", "expm1")
DOMAIN_LIMITED_UNARY = ("log", "log2", "log10", "log1p", "sqrt", "asin", "acos", "tan")
BINARY_FUNCS = ("pow", "atan2", "hypot", "fmin", "fmax", "fmod")

ALL_GRAMMAR_FUNCS = SAFE_UNARY + GROWING_UNARY + DOMAIN_LIMITED_UNARY + BINARY_FUNCS


@dataclass(frozen=True)
class GrammarSpec:
    """Structural constraints for generated ``compute`` functions."""

    precision: Precision = Precision.DOUBLE
    operators: tuple[str, ...] = ("+", "-", "*", "/")
    max_params: int = 6
    min_params: int = 2
    max_loop_depth: int = 2
    max_loop_trip: int = 64
    max_expr_depth: int = 6
    max_array_size: int = 16
    allow_arrays: bool = True
    allow_conditionals: bool = True
    functions: tuple[str, ...] = ALL_GRAMMAR_FUNCS

    @property
    def fp_type(self) -> str:
        return self.precision.c_type

    def render(self) -> str:
        """The Figure 2 BNF text, parameterized by precision."""
        fp = self.fp_type
        ops = " | ".join(f'"{op}"' for op in self.operators)
        return (
            '<function> ::= "void" "compute" "(" <param-list> ")" "{" <block> "}"\n'
            "<param-list> ::= <param-declaration> | <param-list> \",\" <param-declaration>\n"
            f'<param-declaration> ::= "int" <id> | "{fp}" <id> | "{fp}" "*" <id>\n'
            '<assignment> ::= "comp" <assign-op> <expression> ";"\n'
            f'             | "{fp}" <id> <assign-op> <expression> ";"\n'
            "<expression> ::= <term> | \"(\" <expression> \")\"\n"
            "             | <expression> <op> <expression>\n"
            f"<op> ::= {ops}\n"
            "<term> ::= <identifier> | <fp-numeral> | <math-call>\n"
            "<math-call> ::= <math-function> \"(\" <expression> {\",\" <expression>} \")\"\n"
            "<block> ::= {<assignment>}+ | <if-block> <block> | <for-loop-block> <block>\n"
            '<if-block> ::= "if" "(" <bool-expression> ")" "{" <block> "}"\n'
            '<for-loop-block> ::= "for" "(" <loop-header> ")" "{" <block> "}"\n'
            "<bool-expression> ::= <id> <bool-op> <expression>\n"
            '<loop-header> ::= "int" <id> ";" <id> "<" <int-numeral> ";" "++" <id>\n'
        )


#: The paper's default configuration: FP64 (§3.1.3).
DEFAULT_GRAMMAR = GrammarSpec()
