"""Program generation: the Varity baseline, prompt builders, and the LLM.

Four generator configurations correspond to the paper's four approaches
(§3.2.1): ``Varity`` (random grammar-based, no LLM), ``Direct-Prompt``
(LLM, no grammar, no feedback), ``Grammar-Guided`` (LLM + grammar spec),
and ``LLM4FP`` (LLM + grammar + feedback-based mutation).  The ``loops``
extension (:class:`~repro.generation.loops.LoopReductionGenerator`)
targets the toolchains' vectorization tier with reduction-loop kernels.
"""

from repro.generation.grammar import GrammarSpec, DEFAULT_GRAMMAR
from repro.generation.program import GeneratedProgram, ProgramGenerator
from repro.generation.inputs import InputProfile, generate_inputs
from repro.generation.loops import LoopReductionGenerator
from repro.generation.varity import VarityGenerator
from repro.generation.prompts import (
    direct_prompt,
    grammar_prompt,
    mutation_prompt,
    MUTATION_STRATEGIES,
)
from repro.generation.llm import SimLLM, GenerationConfig, LLMProgramGenerator

__all__ = [
    "GrammarSpec",
    "DEFAULT_GRAMMAR",
    "GeneratedProgram",
    "ProgramGenerator",
    "InputProfile",
    "generate_inputs",
    "LoopReductionGenerator",
    "VarityGenerator",
    "direct_prompt",
    "grammar_prompt",
    "mutation_prompt",
    "MUTATION_STRATEGIES",
    "SimLLM",
    "GenerationConfig",
    "LLMProgramGenerator",
]
