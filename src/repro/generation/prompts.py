"""Prompt construction for the LLM-based strategies (paper §2.3).

The prompts are real text artifacts: the harness builds them, the LLM
client consumes them, and the simulated LLM extracts every constraint it
honours *from the prompt alone* — keeping the framework/LLM interface
identical to the paper's.
"""

from __future__ import annotations

from repro.fp.formats import Precision
from repro.generation.grammar import GrammarSpec

__all__ = [
    "GUIDELINES",
    "MUTATION_STRATEGIES",
    "direct_prompt",
    "grammar_prompt",
    "mutation_prompt",
    "OUTPUT_INSTRUCTION",
]

#: Robustness/code-quality guidelines (§2.3.1): header allow-list,
#: initialization, and UB avoidance.
GUIDELINES = (
    "Guidelines:\n"
    "- Use only these headers: stdio.h, stdlib.h, math.h.\n"
    "- Initialize every variable before it is used.\n"
    "- Avoid undefined behavior: keep array indices in bounds, avoid\n"
    "  integer overflow and division of integers by zero.\n"
    "- Keep loops bounded by small constants or the int parameter.\n"
)

#: High-level program structure (§2.2): exactly two functions.
STRUCTURE = (
    "Program structure:\n"
    "- Define exactly two functions: `compute` and `main`.\n"
    "- `compute` takes scalar floating-point arguments (optionally an int\n"
    "  and a pointer argument), performs a sequence of floating-point\n"
    "  operations, stores the scalar result in a variable named `comp`,\n"
    '  and prints it with printf("%.17g\\n", comp).\n'
    "- `main` reads the inputs with atof/atoi from argv and calls `compute`.\n"
)

#: Mutation strategies listed in the Feedback-Based Mutation prompt (§2.3.2).
MUTATION_STRATEGIES = (
    "reorder or deeply nest arithmetic expressions",
    "change numeric constants",
    "introduce new control flow such as nested loops or conditionals",
    "use different math library functions",
    "insert intermediate computations",
)

OUTPUT_INSTRUCTION = (
    "Output the plain C code only, with no markdown formatting and no "
    "explanation."
)


def _precision_line(precision: Precision) -> str:
    return (
        f"Use {precision.value} precision ({precision.c_type}) for all "
        "floating-point variables.\n"
    )


def direct_prompt(precision: Precision = Precision.DOUBLE) -> str:
    """The Direct-Prompt baseline: no grammar, no examples."""
    return (
        "Create a random but valid floating-point C program.\n\n"
        + _precision_line(precision)
        + "\n"
        + STRUCTURE
        + "\n"
        + GUIDELINES
        + "\n"
        + OUTPUT_INSTRUCTION
    )


def grammar_prompt(
    precision: Precision = Precision.DOUBLE, grammar: GrammarSpec | None = None
) -> str:
    """Grammar-Based Generation (§2.3.1): structure + Figure 2 grammar."""
    grammar = grammar or GrammarSpec(precision=precision)
    return (
        "Create a random but valid floating-point C program.\n\n"
        + _precision_line(precision)
        + "\n"
        + STRUCTURE
        + "\n"
        + "The body of `compute` must follow this grammar:\n"
        + grammar.render()
        + "\n"
        + GUIDELINES
        + "\n"
        + OUTPUT_INSTRUCTION
    )


def mutation_prompt(
    example_source: str,
    precision: Precision = Precision.DOUBLE,
    focus: str | None = None,
) -> str:
    """Feedback-Based Mutation (§2.3.2): mutate a successful program.

    ``focus`` names one of :data:`MUTATION_STRATEGIES` to emphasize — the
    island model's fitness-weighted operator selection speaks to the LLM
    through this prompt line, the same string-typed interface everything
    else uses (the simulated LLM extracts it in
    :func:`repro.generation.llm.parsing.parse_prompt`).
    """
    if focus is not None and focus not in MUTATION_STRATEGIES:
        raise ValueError(f"unknown mutation strategy: {focus!r}")
    strategies = "\n".join(f"- {s}" for s in MUTATION_STRATEGIES)
    focus_line = (
        f"Focus especially on this strategy: {focus}.\n\n" if focus is not None else ""
    )
    return (
        "Change the given floating-point C program to create a new one that "
        "behaves differently.\n\n"
        + _precision_line(precision)
        + "\n"
        + STRUCTURE
        + "\n"
        + GUIDELINES
        + "\n"
        + "Mutation strategies to consider:\n"
        + strategies
        + "\n\n"
        + focus_line
        + "Example program (previously triggered a numerical inconsistency):\n"
        + "```\n"
        + example_source.strip()
        + "\n```\n\n"
        + OUTPUT_INSTRUCTION
    )
