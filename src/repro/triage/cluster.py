"""Campaign-wide trigger clustering and the ranked triage report.

A budget-N campaign can produce dozens of triggering programs that all
boil down to a handful of root causes.  The clusterer triages each
trigger — bisect every divergent cell to a responsible pass / environment
delta, optionally reduce the program — and dedupes by

    (inconsistency kinds, responsible passes, divergent-cell pattern)

so a nightly run reads as "3 findings" instead of "41 triggering
programs".  Clusters are ranked by size (ties broken by key), each is
represented by its smallest reduced member, and rendering avoids
timestamps, timings and machine paths, so two triage runs over the same
campaign produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.difftest.record import CampaignResult, ProgramOutcome
from repro.errors import TriageError
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.toolchains import default_compilers
from repro.toolchains.base import Compiler
from repro.triage.bisect import BisectionResult, bisect_signature
from repro.triage.oracle import compilers_by_name
from repro.triage.reduce import DEFAULT_MAX_TESTS, ReductionResult, reduce_program
from repro.triage.signature import (
    InconsistencySignature,
    canonical_signature,
    divergence_cells,
    signatures_of,
)
from repro.utils.tables import TextTable

__all__ = [
    "TriageEntry",
    "TriageCluster",
    "TriageReport",
    "outcome_signature",
    "triage_outcomes",
    "cluster_entries",
    "triage_campaign",
    "triage_results",
    "triage_single",
]


def outcome_signature(
    outcome: ProgramOutcome,
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """The cheap part of a trigger's cluster identity: (kinds, cells).

    The full :attr:`TriageEntry.cluster_key` needs per-cell bisection;
    this bisection-free projection — the same ``kinds`` and ``cells`` a
    full triage computes — is what island fitness scores signature
    novelty against, so scoring stays cheap enough to run inline during
    generation.
    """
    sigs = signatures_of(outcome)
    kinds = tuple(sorted({s.kind for s in sigs}))
    return kinds, divergence_cells(outcome)


@dataclass(frozen=True)
class TriageEntry:
    """One triggering program, fully triaged."""

    source_label: str  # campaign/checkpoint this trigger came from
    index: int  # budget index within that campaign
    program_source: str
    inputs: tuple
    canonical: InconsistencySignature
    cells: tuple[str, ...]  # divergent-pair signature across the matrix
    kinds: tuple[str, ...]  # distinct inconsistency kinds, sorted
    bisections: tuple[BisectionResult, ...]  # one per divergent cell
    reduction: ReductionResult | None  # None when reduction was skipped

    @property
    def responsibles(self) -> tuple[str, ...]:
        """Distinct responsible-pass/environment labels, sorted."""
        return tuple(sorted({b.responsible for b in self.bisections}))

    @property
    def env_deltas(self) -> tuple[str, ...]:
        """Distinct observable environment deltas, sorted."""
        return tuple(
            sorted({b.env_delta.label() for b in self.bisections if b.env_delta})
        )

    @property
    def reduced_source(self) -> str:
        return (
            self.reduction.reduced_source
            if self.reduction is not None
            else self.program_source
        )

    @property
    def cluster_key(self) -> tuple:
        return (self.kinds, self.responsibles, self.cells)


@dataclass
class TriageCluster:
    """All triggers sharing one (kinds, responsibles, cells) root cause."""

    key: tuple
    entries: list[TriageEntry] = field(default_factory=list)

    @property
    def kinds(self) -> tuple[str, ...]:
        return self.key[0]

    @property
    def responsibles(self) -> tuple[str, ...]:
        return self.key[1]

    @property
    def cells(self) -> tuple[str, ...]:
        return self.key[2]

    @property
    def count(self) -> int:
        return len(self.entries)

    @property
    def representative(self) -> TriageEntry:
        """Smallest reduced member (ties: source text, then origin)."""
        return min(
            self.entries,
            key=lambda e: (
                len(e.reduced_source),
                e.reduced_source,
                e.source_label,
                e.index,
            ),
        )


def _triage_one(
    outcome: ProgramOutcome,
    compilers: list[Compiler],
    source_label: str,
    reduce: bool,
    max_steps: int,
    max_reduce_tests: int,
    bisect_cache: dict,
    backend=None,
    exec_mode: str = "tree",
) -> TriageEntry:
    sigs = signatures_of(outcome)
    canonical = canonical_signature(outcome)
    by_name = compilers_by_name(compilers)
    program = outcome.program
    bisections = []
    for sig in sigs:
        # Levels with identical (pipeline, environment) classes on both
        # sides bisect identically; memoize by cache token.
        ca, cb = by_name.get(sig.compiler_a), by_name.get(sig.compiler_b)
        if ca is None or cb is None:
            missing = sig.compiler_a if ca is None else sig.compiler_b
            raise TriageError(
                f"campaign names compiler {missing!r} but it was not provided"
            )
        key = (
            program.source,
            sig.compiler_a,
            sig.compiler_b,
            ca.cache_token(sig.level),
            cb.cache_token(sig.level),
            sig.kind,
        )
        if key not in bisect_cache:
            bisect_cache[key] = bisect_signature(
                program.source, program.inputs, sig, compilers, max_steps=max_steps
            )
        cached = bisect_cache[key]
        bisections.append(
            cached if cached.target == sig else BisectionResult(
                target=sig,
                responsible_pass=cached.responsible_pass,
                env_delta=cached.env_delta,
                env_deltas=cached.env_deltas,
                trace=cached.trace,
            )
        )
    reduction = None
    if reduce:
        reduction = reduce_program(
            program.source,
            program.inputs,
            canonical,
            compilers,
            max_steps=max_steps,
            max_tests=max_reduce_tests,
            backend=backend,
            exec_mode=exec_mode,
        )
    return TriageEntry(
        source_label=source_label,
        index=outcome.index,
        program_source=program.source,
        inputs=program.inputs,
        canonical=canonical,
        cells=divergence_cells(outcome),
        kinds=tuple(sorted({s.kind for s in sigs})),
        bisections=tuple(bisections),
        reduction=reduction,
    )


def triage_outcomes(
    outcomes: list[ProgramOutcome],
    compilers: list[Compiler] | None = None,
    source_label: str = "",
    reduce: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_reduce_tests: int = DEFAULT_MAX_TESTS,
    backend=None,
    exec_mode: str = "tree",
    _bisect_cache: dict | None = None,
) -> list[TriageEntry]:
    """Triage every triggering outcome (non-triggering ones are skipped).

    ``backend`` / ``exec_mode`` fan each reduction's ddmin rounds out via
    :func:`~repro.triage.reduce.reduce_program`; the report is
    byte-identical with or without them.
    """
    compilers = compilers if compilers is not None else default_compilers()
    cache = _bisect_cache if _bisect_cache is not None else {}
    entries = []
    for outcome in outcomes:
        if not outcome.triggered:
            continue
        entries.append(
            _triage_one(
                outcome,
                compilers,
                source_label,
                reduce,
                max_steps,
                max_reduce_tests,
                cache,
                backend,
                exec_mode,
            )
        )
    return entries


def cluster_entries(entries: list[TriageEntry]) -> list[TriageCluster]:
    """Group by root-cause key; rank by size desc, then key."""
    clusters: dict[tuple, TriageCluster] = {}
    for entry in sorted(entries, key=lambda e: (e.source_label, e.index)):
        clusters.setdefault(entry.cluster_key, TriageCluster(entry.cluster_key))
        clusters[entry.cluster_key].entries.append(entry)
    return sorted(clusters.values(), key=lambda c: (-c.count, c.key))


@dataclass
class TriageReport:
    """The ranked, deduplicated output of a triage run.

    One :class:`TriageCluster` per distinct root cause — triggers that
    share (inconsistency kinds, responsible passes, divergent-cell
    pattern) — ranked by cluster size, each represented by its smallest
    reduced member.  :meth:`render` is deterministic: no timestamps,
    timings or machine paths, so two runs over the same campaign emit
    byte-identical reports (the property CI diffs rely on).  Produced by
    :func:`triage_results` / :func:`triage_campaign` / :func:`triage_single`
    or the ``llm4fp triage`` CLI.
    """

    clusters: list[TriageCluster]
    campaigns: tuple[str, ...]  # labels of the triaged campaigns
    programs_seen: int  # outcomes examined (all programs)
    triggers: int  # triggering programs triaged

    def render(self, show_traces: bool = True) -> str:
        """Deterministic human-readable report (byte-identical per input)."""
        lines = [
            "TRIAGE REPORT",
            f"campaigns:           {', '.join(self.campaigns) or '-'}",
            f"programs examined:   {self.programs_seen}",
            f"triggering programs: {self.triggers}",
            f"distinct findings:   {len(self.clusters)}",
            "",
        ]
        table = TextTable(
            ["#", "count", "kinds", "responsible", "env deltas", "divergent cells"],
            title="ranked findings (one row per root cause):",
        )
        for rank, cluster in enumerate(self.clusters, 1):
            rep = cluster.representative
            table.add_row(
                [
                    rank,
                    cluster.count,
                    " ".join(cluster.kinds),
                    ", ".join(cluster.responsibles),
                    ", ".join(rep.env_deltas) or "-",
                    f"{len(cluster.cells)} cells",
                ]
            )
        lines.append(table.render())
        for rank, cluster in enumerate(self.clusters, 1):
            rep = cluster.representative
            lines.append("")
            lines.append("=" * 72)
            lines.append(
                f"finding #{rank}: {cluster.count} trigger(s), "
                f"kinds {' '.join(cluster.kinds)}"
            )
            lines.append(f"responsible:      {', '.join(cluster.responsibles)}")
            lines.append(f"env deltas:       {', '.join(rep.env_deltas) or '-'}")
            lines.append(f"divergent cells:  {', '.join(cluster.cells)}")
            lines.append(
                f"representative:   {rep.source_label or 'campaign'}"
                f" program #{rep.index}, inputs {rep.inputs!r}"
            )
            if rep.reduction is not None:
                r = rep.reduction
                lines.append(
                    f"reduction:        {r.original_nodes} -> {r.reduced_nodes} AST "
                    f"nodes in {r.accepted_edits} edits ({r.tests} oracle tests)"
                )
            lines.append("")
            lines.append(rep.reduced_source.rstrip("\n"))
            if show_traces:
                canonical_bisection = rep.bisections[0]
                lines.append("")
                lines.append(
                    f"bisection of {canonical_bisection.target.cell}:"
                )
                lines.extend(f"  {t}" for t in canonical_bisection.trace)
        lines.append("")
        return "\n".join(lines)


def triage_results(
    results: list[tuple[str, CampaignResult]],
    compilers: list[Compiler] | None = None,
    reduce: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_reduce_tests: int = DEFAULT_MAX_TESTS,
    backend=None,
    exec_mode: str = "tree",
) -> TriageReport:
    """Triage several labelled campaign results into one ranked report.

    This is the multi-checkpoint entry point behind ``llm4fp triage``:
    triggers from every campaign are clustered *together*, so the same
    root cause found by different approaches, shards or backends appears
    as one finding.

    When ``compilers`` is omitted they are rebuilt under the divergence-
    tier profile the campaigns recorded, so replay-based reduction and
    bisection observe the same matrix the campaign did.
    """
    if compilers is None:
        profiles = {result.tiers for _, result in results}
        if len(profiles) > 1:
            raise ValueError(
                "checkpoints disagree on the divergence-tier profile "
                f"({', '.join(sorted(profiles))}); triage them separately "
                "or pass explicit compilers"
            )
        compilers = default_compilers(tiers=profiles.pop()) if profiles else None
    entries: list[TriageEntry] = []
    cache: dict = {}
    programs_seen = 0
    for label, result in results:
        programs_seen += len(result.outcomes)
        entries.extend(
            triage_outcomes(
                result.outcomes,
                compilers,
                source_label=label,
                reduce=reduce,
                max_steps=max_steps,
                max_reduce_tests=max_reduce_tests,
                backend=backend,
                exec_mode=exec_mode,
                _bisect_cache=cache,
            )
        )
    return TriageReport(
        clusters=cluster_entries(entries),
        campaigns=tuple(label for label, _ in results),
        programs_seen=programs_seen,
        triggers=len(entries),
    )


def triage_single(
    outcome: ProgramOutcome,
    compilers: list[Compiler] | None = None,
    label: str = "program",
    reduce: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_reduce_tests: int = DEFAULT_MAX_TESTS,
    backend=None,
    exec_mode: str = "tree",
) -> TriageReport:
    """Triage one already-tested outcome into a one-campaign report.

    The single-trigger path behind ``llm4fp triage --demo`` / ``--program``
    and the triage example: test the program through the matrix first
    (``CampaignEngine.test_program``), then hand the outcome here.
    """
    entries = triage_outcomes(
        [outcome],
        compilers,
        source_label=label,
        reduce=reduce,
        max_steps=max_steps,
        max_reduce_tests=max_reduce_tests,
        backend=backend,
        exec_mode=exec_mode,
    )
    return TriageReport(
        clusters=cluster_entries(entries),
        campaigns=(label,),
        programs_seen=1,
        triggers=len(entries),
    )


def triage_campaign(
    result: CampaignResult,
    compilers: list[Compiler] | None = None,
    reduce: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_reduce_tests: int = DEFAULT_MAX_TESTS,
    backend=None,
    exec_mode: str = "tree",
) -> TriageReport:
    """Triage one campaign result into a ranked report."""
    return triage_results(
        [(result.approach, result)],
        compilers,
        reduce=reduce,
        max_steps=max_steps,
        max_reduce_tests=max_reduce_tests,
        backend=backend,
        exec_mode=exec_mode,
    )
