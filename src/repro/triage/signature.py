"""Identity of one observed inconsistency, and canonical orderings.

A triggering program diverges in one or more cells of the (compiler pair,
optimization level) matrix.  Triage names each divergence by an
:class:`InconsistencySignature` — the pair, the level, and the
inconsistency *kind* (the paper's §3.3 category pair, or ``print-count``
when the two runs printed different numbers of values and no value pair
can be classified).  The reducer's interesting-predicate is "the candidate
still exhibits the *same* signature"; the clusterer keys on the set of
divergent cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.difftest.classify import kind_label
from repro.difftest.record import ComparisonRecord, ProgramOutcome
from repro.toolchains.optlevels import ALL_LEVELS, OptLevel

__all__ = [
    "PRINT_COUNT_KIND",
    "InconsistencySignature",
    "signature_of",
    "signatures_of",
    "canonical_signature",
    "divergence_cells",
    "level_order",
]

#: Kind label for divergences with no classifiable value pair (the two
#: runs printed different numbers of values).
PRINT_COUNT_KIND = "print-count"


def level_order(level: OptLevel) -> int:
    """Table 1 position of ``level`` (the canonical level ordering)."""
    return ALL_LEVELS.index(level)


@dataclass(frozen=True)
class InconsistencySignature:
    """One divergent cell: compiler pair, level, inconsistency kind."""

    compiler_a: str
    compiler_b: str
    level: OptLevel
    kind: str  # kind_label(...) or PRINT_COUNT_KIND

    @property
    def pair(self) -> tuple[str, str]:
        return (self.compiler_a, self.compiler_b)

    @property
    def cell(self) -> str:
        """The matrix cell alone, without the kind."""
        return f"{self.compiler_a}-{self.compiler_b}@{self.level}"

    def label(self) -> str:
        return f"{self.cell} {self.kind}"

    def sort_key(self) -> tuple:
        """Least-aggressive-configuration-first ordering: level (Table 1
        order), then pair, then kind."""
        return (level_order(self.level), self.compiler_a, self.compiler_b, self.kind)


def signature_of(record: ComparisonRecord) -> InconsistencySignature:
    """The signature of one inconsistent :class:`ComparisonRecord`.

    A structural kind — any divergence-tier tag from :mod:`repro.tiers`
    (``vector-reduction``, ``masked-lane``, ``vec-libm``, ...) — takes
    precedence over the value-class pair: it carries strictly more
    information about the root cause, so triage clusters structural
    divergences separately from same-class environmental ones.  New
    registry tiers flow through here (and hence into
    :func:`repro.corpus.signature_key`) with no per-tag code.
    """
    if record.consistent:
        raise ValueError("comparison is consistent; it has no signature")
    if record.tag is not None:
        kind = record.tag
    else:
        cls = record.kind
        kind = kind_label(cls) if cls is not None else PRINT_COUNT_KIND
    return InconsistencySignature(
        compiler_a=record.compiler_a,
        compiler_b=record.compiler_b,
        level=record.level,
        kind=kind,
    )


def signatures_of(outcome: ProgramOutcome) -> tuple[InconsistencySignature, ...]:
    """All divergent cells of one outcome, in canonical order."""
    sigs = {signature_of(c) for c in outcome.inconsistent_comparisons}
    return tuple(sorted(sigs, key=InconsistencySignature.sort_key))


def canonical_signature(outcome: ProgramOutcome) -> InconsistencySignature:
    """The trigger's canonical divergence: the least aggressive
    configuration that exhibits it (lowest level, first pair).  This is the
    cell the reducer preserves."""
    sigs = signatures_of(outcome)
    if not sigs:
        raise ValueError(f"program {outcome.index} triggered no inconsistency")
    return sigs[0]


def divergence_cells(outcome: ProgramOutcome) -> tuple[str, ...]:
    """The divergent-pair signature used for clustering: every divergent
    (pair, level) cell, canonically ordered, kinds dropped."""
    cells = {s.cell: s.sort_key()[:3] for s in signatures_of(outcome)}
    return tuple(sorted(cells, key=cells.__getitem__))
