"""Pass-pipeline and FP-environment bisection of one divergent cell.

Because every compiler in :mod:`repro.toolchains` is an *explicit* pass
pipeline bound to an explicit :class:`~repro.fp.env.FPEnvironment`, a
divergence can be attributed exactly instead of guessed from binaries.
Two deterministic replays:

* **pass walk** — hold both sides in a *shared* environment (compiler A's)
  and grow pipeline prefixes along the canonical schedule
  ``(0,0) → (1,0) → ... → (m,0) → (m,1) → ... → (m,n)``: first all of A's
  passes, then all of B's.  The first prefix whose outputs differ names
  the optimization pass that introduced the divergence.  If no prefix
  differs, the passes are innocent: the divergence is purely
  environmental.
* **environment walk** — hold both kernels fully optimized, start B in
  A's environment, and apply B's true environment one differing field at
  a time (canonical field order: precision, libm, ftz, approx_div,
  approx_sqrt).  The first field whose introduction changes B's output is
  the first FP-environment delta that contributes to — and, when the pass
  walk found nothing, flips — the comparison.

Both walks replay the *same* front-ended kernels the campaign compiled,
so the attribution describes the observed trigger, not an approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.difftest.engine import frontend_kernels
from repro.errors import TriageError
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.worker import run_kernel
from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir
from repro.toolchains.base import Compiler
from repro.toolchains.optlevels import OptLevel
from repro.triage.oracle import compilers_by_name
from repro.triage.signature import InconsistencySignature

__all__ = ["PassStep", "EnvDelta", "BisectionResult", "bisect_cell", "bisect_signature"]

#: Canonical order in which environment deltas are introduced.
ENV_FIELDS = ("precision", "libm", "ftz", "approx_div", "approx_sqrt")


def _env_value(env: FPEnvironment, field: str) -> str:
    value = getattr(env, field)
    if field == "libm":
        return value.name
    if field == "precision":
        return value.value
    return str(value)


@dataclass(frozen=True)
class PassStep:
    """One optimization pass of one side's pipeline."""

    compiler: str
    index: int  # 0-based position in that compiler's pipeline at the level
    name: str

    def label(self) -> str:
        return f"{self.compiler}:{self.name}"


@dataclass(frozen=True)
class EnvDelta:
    """One FP-environment field on which the two sides differ."""

    field: str
    value_a: str
    value_b: str

    def label(self) -> str:
        return f"{self.field}: {self.value_a} -> {self.value_b}"


@dataclass(frozen=True)
class BisectionResult:
    """Attribution of one divergent (compiler pair, level) cell."""

    target: InconsistencySignature
    #: first pass that flips the comparison under a shared environment;
    #: None when the pipelines are innocent (environment-only divergence)
    responsible_pass: PassStep | None
    #: first environment delta that observably changes side B's output;
    #: None when both environments coincide or no delta is observable
    env_delta: EnvDelta | None
    #: every field on which the two environments differ, canonical order
    env_deltas: tuple[EnvDelta, ...]
    #: replay log, one line per step, for the triage report
    trace: tuple[str, ...]

    @property
    def responsible(self) -> str:
        """Cluster label: the responsible pass, or ``environment``."""
        if self.responsible_pass is not None:
            return self.responsible_pass.label()
        if self.env_delta is not None:
            return f"environment({self.env_delta.field})"
        return "environment"


def bisect_cell(
    source: str,
    inputs: tuple,
    compiler_a: Compiler,
    compiler_b: Compiler,
    level: OptLevel,
    target: InconsistencySignature | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> BisectionResult:
    """Attribute the divergence of one matrix cell to a pass + env delta."""
    if target is None:
        target = InconsistencySignature(
            compiler_a.name, compiler_b.name, level, kind="?"
        )
    frontend = frontend_kernels(source)
    kernels: list[ir.Kernel] = []
    for compiler in (compiler_a, compiler_b):
        kernel = frontend.kernels.get(compiler.kind)
        if kernel is None:
            raise TriageError(
                f"{compiler.name}: front end rejected the trigger: "
                f"{frontend.errors.get(compiler.kind, 'unknown error')}"
            )
        kernels.append(kernel)
    kernel_a, kernel_b = kernels
    passes_a = list(compiler_a.pipeline(level).passes)
    passes_b = list(compiler_b.pipeline(level).passes)
    env_a = compiler_a.environment(level)
    env_b = compiler_b.environment(level)

    def sig(kernel: ir.Kernel, env: FPEnvironment) -> str | None:
        result = run_kernel(kernel, env, inputs, max_steps)
        return result.signature()

    trace: list[str] = []

    # -- pass walk (shared environment) -----------------------------------------
    # Prefix kernels build incrementally (pass i applied to prefix i-1 ==
    # PassPipeline(passes[:i]).run) and signatures compute lazily: the walk
    # usually stops at the first divergence, often step 1.
    responsible: PassStep | None = None
    ka_prefixes = [kernel_a]
    for p in passes_a:
        ka_prefixes.append(p.run(ka_prefixes[-1]))
    kb_prefixes = [kernel_b]
    for p in passes_b:
        kb_prefixes.append(p.run(kb_prefixes[-1]))

    schedule: list[tuple[int, int, PassStep | None]] = [(0, 0, None)]
    for i in range(1, len(passes_a) + 1):
        schedule.append((i, 0, PassStep(compiler_a.name, i - 1, passes_a[i - 1].name)))
    for j in range(1, len(passes_b) + 1):
        schedule.append(
            (len(passes_a), j, PassStep(compiler_b.name, j - 1, passes_b[j - 1].name))
        )
    sa_cache: dict[int, str | None] = {}
    sb_cache: dict[int, str | None] = {}
    for i, j, step in schedule:
        if i not in sa_cache:
            sa_cache[i] = sig(ka_prefixes[i], env_a)
        if j not in sb_cache:
            sb_cache[j] = sig(kb_prefixes[j], env_a)
        sa, sb = sa_cache[i], sb_cache[j]
        differs = sa != sb
        what = "front-ended kernels" if step is None else f"+ {step.label()}"
        trace.append(
            f"passes   [{i}/{len(passes_a)} | {j}/{len(passes_b)}] {what:<28} "
            f"{'DIVERGES' if differs else 'agree'} (shared env {env_a.describe()})"
        )
        if differs:
            responsible = step  # None at (0,0): lowering itself diverged
            break

    # -- environment walk (true kernels) -----------------------------------------
    kernel_a_full = ka_prefixes[-1]
    kernel_b_full = kb_prefixes[-1]
    deltas = tuple(
        EnvDelta(f, _env_value(env_a, f), _env_value(env_b, f))
        for f in ENV_FIELDS
        if _env_value(env_a, f) != _env_value(env_b, f)
    )
    env_delta: EnvDelta | None = None
    sig_a_true = sig(kernel_a_full, env_a)
    env_cur = env_a
    sig_b_prev = sig(kernel_b_full, env_cur)
    for delta in deltas:
        env_cur = replace(env_cur, **{delta.field: getattr(env_b, delta.field)})
        sig_b = sig(kernel_b_full, env_cur)
        changed = sig_b != sig_b_prev
        state = "agree" if sig_b == sig_a_true else "DIVERGES"
        trace.append(
            f"env      + {delta.label():<28} output "
            f"{'changes' if changed else 'unchanged'}; comparison {state}"
        )
        if changed and env_delta is None:
            env_delta = delta
        sig_b_prev = sig_b

    return BisectionResult(
        target=target,
        responsible_pass=responsible,
        env_delta=env_delta,
        env_deltas=deltas,
        trace=tuple(trace),
    )


def bisect_signature(
    source: str,
    inputs: tuple,
    target: InconsistencySignature,
    compilers: list[Compiler],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> BisectionResult:
    """:func:`bisect_cell` addressed by an :class:`InconsistencySignature`."""
    by_name = compilers_by_name(compilers)
    try:
        ca, cb = by_name[target.compiler_a], by_name[target.compiler_b]
    except KeyError as e:
        raise TriageError(f"signature names unknown compiler {e.args[0]!r}") from e
    return bisect_cell(
        source, inputs, ca, cb, target.level, target=target, max_steps=max_steps
    )
