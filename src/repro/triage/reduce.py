"""Delta-debugging reducer over the C-subset AST.

Takes a triggering program and shrinks it while an oracle keeps observing
the *same* inconsistency (same kind, same compiler pair, same level —
:class:`~repro.triage.signature.InconsistencySignature`).  Three kinds of
candidate edits, all applied to the ``compute`` function only (``main``
stays fixed so the stored input vector keeps meaning):

* **statement ddmin** — Zeller's ddmin over every block's statement list,
  innermost blocks included;
* **statement simplification** — unwrap control flow: drop an ``else``,
  hoist an ``if``'s then-branch, replace a loop with one straight-line
  iteration (``for`` keeps its init so the induction variable stays
  declared);
* **expression simplification** — replace an expression by one of its own
  operands, or a multi-node expression by a literal.

Every candidate is pretty-printed (:func:`~repro.frontend.printer.print_c`)
and re-validated through the full front end by the oracle, so invalid
programs (uses of deleted variables, missing ``printf``, ...) are simply
rejected.  Every *accepted* edit strictly decreases the AST node count and
candidates are enumerated in a fixed order, so reduction terminates and is
deterministic: the same trigger always reduces to the same minimal
program.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError, TriageError
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.printer import expr_to_c, print_c
from repro.toolchains.base import Compiler
from repro.triage.oracle import PairOracle, compilers_by_name
from repro.triage.signature import InconsistencySignature

__all__ = ["ReductionResult", "reduce_program", "DEFAULT_MAX_TESTS"]

#: Predicate-evaluation budget: reduction stops (deterministically) when
#: exhausted, returning the best program found so far.
DEFAULT_MAX_TESTS = 3000


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of reducing one triggering program."""

    original_source: str
    reduced_source: str
    target: InconsistencySignature
    original_nodes: int
    reduced_nodes: int
    accepted_edits: int
    tests: int  # oracle evaluations spent

    @property
    def shrunk(self) -> bool:
        return self.reduced_nodes < self.original_nodes


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


class _Reducer:
    def __init__(
        self,
        oracle: PairOracle,
        inputs: tuple,
        budget: _Budget,
        backend=None,
        exec_mode: str = "tree",
    ) -> None:
        self.oracle = oracle
        self.inputs = inputs
        self.budget = budget
        self.backend = backend
        self.exec_mode = exec_mode
        self.accepted = 0

    # -- the predicate -----------------------------------------------------------

    def interesting(self, unit: ast.TranslationUnit, target) -> bool:
        if not self.budget.take():
            return False
        try:
            source = print_c(unit)
        except (ReproError, TypeError, KeyError):
            return False
        return self.oracle.matches(source, self.inputs, target)

    # -- candidate application ---------------------------------------------------

    def _try(self, unit, candidate, target):
        """Accept ``candidate`` iff strictly smaller and still interesting."""
        if ast.node_count(candidate) >= ast.node_count(unit):
            return None
        if self.interesting(candidate, target):
            self.accepted += 1
            return candidate
        return None

    def _first_accepted(self, unit, candidate_units, target):
        """First strictly-smaller candidate that is still interesting.

        Returns ``(index, candidate)`` or None.  With a backend, the whole
        budget-capped window of candidates is evaluated at once through
        :meth:`PairOracle.observe_batch`, but the budget is charged
        exactly as the serial scan would charge it — up to and including
        the first match — so the reduction (accepted edits, tests spent,
        final program) is byte-identical to the backend-free path.
        """
        limit_nodes = ast.node_count(unit)
        viable = [
            (i, cand)
            for i, cand in enumerate(candidate_units)
            if ast.node_count(cand) < limit_nodes  # uncharged, as in _try
        ]
        remaining = max(self.budget.limit - self.budget.spent, 0)
        window = viable[:remaining]
        if self.backend is not None and len(window) >= 2:
            sources: list[str | None] = []
            for _, cand in window:
                try:
                    sources.append(print_c(cand))
                except (ReproError, TypeError, KeyError):
                    sources.append(None)  # charged but uninteresting
            observed = iter(
                self.oracle.observe_batch(
                    [s for s in sources if s is not None],
                    self.inputs,
                    self.backend,
                    self.exec_mode,
                )
            )
            for (i, cand), source in zip(window, sources):
                self.budget.take()
                obs = None if source is None else next(observed)
                if obs is not None and obs.inconsistent and obs.kind == target.kind:
                    self.accepted += 1
                    return i, cand
            return None
        for i, cand in viable:
            accepted = self._try(unit, cand, target)
            if accepted is not None:
                return i, accepted
        return None

    # -- statement ddmin ---------------------------------------------------------

    def _compute_path(self, unit) -> ast.Path:
        for i, fn in enumerate(unit.functions):
            if fn.name == "compute":
                return (("functions", i),)
        raise TriageError("program has no `compute` function")

    def _block_paths(self, unit) -> list[ast.Path]:
        """Paths to every Block inside ``compute``, pre-order."""
        base = self._compute_path(unit)
        fn = ast.node_at(unit, base)
        return [
            base + path
            for path, node in ast.walk_paths(fn)
            if isinstance(node, ast.Block)
        ]

    def _ddmin_block(self, unit, path, target):
        """Classic ddmin over the statement tuple of the block at ``path``."""
        block = ast.node_at(unit, path)
        stmts = block.stmts
        n = 2
        while len(stmts) >= 2:
            chunk = max(1, len(stmts) // n)
            starts = range(0, len(stmts), chunk)
            subsets = [stmts[s : s + chunk] for s in starts]
            # Try each subset alone, then each complement, in order; the
            # same-size skip is uncharged, as ever.
            cand_lists = [
                cand_stmts
                for cand_stmts in subsets
                + [stmts[:s] + stmts[s + chunk :] for s in starts]
                if len(cand_stmts) < len(stmts)
            ]
            found = self._first_accepted(
                unit,
                [
                    ast.replace_at(unit, path, ast.Block(tuple(cand_stmts)))
                    for cand_stmts in cand_lists
                ],
                target,
            )
            if found is not None:
                i, unit = found
                stmts = tuple(cand_lists[i])
                n = max(n - 1, 2)
            else:
                if n >= len(stmts):
                    break
                n = min(len(stmts), 2 * n)
        return unit

    def ddmin_pass(self, unit, target):
        """ddmin every block of ``compute``, outermost first."""
        i = 0
        while True:
            paths = self._block_paths(unit)
            if i >= len(paths):
                return unit
            unit = self._ddmin_block(unit, paths[i], target)
            i += 1

    # -- statement simplification ------------------------------------------------

    @staticmethod
    def _stmt_rewrites(stmt):
        """Smaller statements that may preserve the divergence."""
        if isinstance(stmt, ast.If):
            if stmt.other is not None:
                yield ast.If(stmt.cond, stmt.then, None)
                yield stmt.other
            yield stmt.then
        elif isinstance(stmt, ast.For):
            init = (stmt.init,) if stmt.init is not None else ()
            yield ast.Block(init + stmt.body.stmts)
        elif isinstance(stmt, ast.While):
            yield stmt.body

    def simplify_stmts_pass(self, unit, target):
        changed = True
        while changed:
            changed = False
            base = self._compute_path(unit)
            fn = ast.node_at(unit, base)
            for path, node in ast.walk_paths(fn):
                if not isinstance(node, (ast.If, ast.For, ast.While)):
                    continue
                for rewrite in self._stmt_rewrites(node):
                    candidate = ast.replace_at(unit, base + path, rewrite)
                    accepted = self._try(unit, candidate, target)
                    if accepted is not None:
                        unit = accepted
                        changed = True
                        break
                if changed:
                    break
        return unit

    # -- expression simplification -------------------------------------------------

    @staticmethod
    def _expr_rewrites(expr):
        """Smaller replacement expressions, most aggressive first."""
        operands: list[ast.Expr] = []
        if isinstance(expr, ast.Binary):
            operands = [expr.left, expr.right]
        elif isinstance(expr, ast.Unary):
            operands = [expr.operand]
        elif isinstance(expr, ast.Ternary):
            operands = [expr.then, expr.other]
        elif isinstance(expr, ast.Cast):
            operands = [expr.operand]
        elif isinstance(expr, ast.Call) and expr.name != "printf":
            operands = [a for a in expr.args if not isinstance(a, ast.StrLit)]
        rewrites = []
        if ast.node_count(expr) >= 2 and not isinstance(expr, ast.StrLit):
            rewrites.append(ast.FloatLit(1.0, text="1.0"))
        rewrites.extend(operands)
        return sorted(rewrites, key=lambda r: (ast.node_count(r), _expr_key(r)))

    def simplify_exprs_pass(self, unit, target):
        changed = True
        while changed:
            changed = False
            base = self._compute_path(unit)
            fn = ast.node_at(unit, base)
            for path, node in ast.walk_paths(fn):
                if not isinstance(node, ast.EXPR_TYPES):
                    continue
                for rewrite in self._expr_rewrites(node):
                    candidate = ast.replace_at(unit, base + path, rewrite)
                    accepted = self._try(unit, candidate, target)
                    if accepted is not None:
                        unit = accepted
                        changed = True
                        break
                if changed:
                    break
        return unit


def _expr_key(expr) -> str:
    """Stable tie-break for equally sized rewrite candidates."""
    try:
        return expr_to_c(expr)
    except (TypeError, KeyError):  # pragma: no cover - all rewrites printable
        return repr(expr)


def reduce_program(
    source: str,
    inputs: tuple,
    target: InconsistencySignature,
    compilers: list[Compiler],
    max_steps: int | None = None,
    max_tests: int = DEFAULT_MAX_TESTS,
    backend=None,
    exec_mode: str = "tree",
) -> ReductionResult:
    """Shrink ``source`` while it keeps exhibiting ``target``.

    ``compilers`` must contain both compilers the signature names.
    ``max_tests`` bounds oracle evaluations; when exhausted the best
    program found so far is returned (still a valid trigger — every
    intermediate step is).  Deterministic: the same arguments always
    produce the same reduced program.

    ``backend`` (an :class:`~repro.difftest.backend.ExecutionBackend`)
    fans each ddmin round's candidate executions out concurrently;
    ``exec_mode`` picks the executor (``tree`` by default — reduction
    kernels mostly run once, so tape compilation rarely amortizes).
    Both knobs change only the schedule, never the result.
    """
    by_name = compilers_by_name(compilers)
    try:
        ca, cb = by_name[target.compiler_a], by_name[target.compiler_b]
    except KeyError as e:
        raise TriageError(f"signature names unknown compiler {e.args[0]!r}") from e
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    probe = PairOracle(ca, cb, target.level, **kwargs)
    observation = probe.observe(source, inputs)
    if not (observation.inconsistent and observation.kind == target.kind):
        raise TriageError(
            f"trigger does not exhibit {target.label()} on the given inputs"
        )
    # Candidate edits can produce runaway loops (a deleted increment, a
    # constant-folded condition); cap candidates relative to what the
    # original trigger actually needed so each such candidate is rejected
    # in ~original time instead of burning the full interpreter budget.
    step_cap = max(4 * observation.steps, 10_000)
    if max_steps is not None:
        step_cap = min(step_cap, max_steps)
    oracle = PairOracle(ca, cb, target.level, max_steps=step_cap)
    budget = _Budget(max_tests)
    reducer = _Reducer(oracle, inputs, budget, backend=backend, exec_mode=exec_mode)

    try:
        unit = parse_program(source)
    except ReproError as e:
        raise TriageError(f"trigger does not parse: {e}") from e

    while True:
        before = ast.node_count(unit)
        unit = reducer.ddmin_pass(unit, target)
        unit = reducer.simplify_stmts_pass(unit, target)
        unit = reducer.simplify_exprs_pass(unit, target)
        if ast.node_count(unit) >= before:
            break

    original_unit = parse_program(source)
    return ReductionResult(
        original_source=source,
        reduced_source=print_c(unit),
        target=target,
        original_nodes=ast.node_count(original_unit),
        reduced_nodes=ast.node_count(unit),
        accepted_edits=reducer.accepted,
        tests=budget.spent,
    )
