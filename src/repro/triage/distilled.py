"""The distilled demonstration trigger used by docs, CLI ``--demo`` and CI.

A transcendental feeding an FMA-shaped update in a loop: host/device libm
differences make every host-vs-nvcc cell diverge, and ptxas' selective FMA
contraction fires on the ``sin(x + i) * coef + k`` site, so the pass
bisector has both a responsible pass (``fma-contract``) and an observable
environment delta (``libm: glibc -> cuda``) to name.  ``O3_fastmath``
additionally splits the host compilers (different reassociation orders).
"""

from __future__ import annotations

from repro.generation.program import GeneratedProgram

__all__ = ["DISTILLED_SOURCE", "DISTILLED_INPUTS", "distilled_trigger"]

DISTILLED_SOURCE = """\
#include <stdio.h>
#include <stdlib.h>
#include <math.h>

void compute(double x, double coef, int steps) {
  double comp = 0.0;
  double k = sin(0.731);
  for (int i = 0; i < steps; ++i) {
    comp += sin(x + i) * coef + k;
  }
  printf("%.17g\\n", comp);
}

int main(int argc, char **argv) {
  compute(atof(argv[1]), atof(argv[2]), atoi(argv[3]));
  return 0;
}
"""

DISTILLED_INPUTS = (0.37, 1.91, 23)


def distilled_trigger() -> GeneratedProgram:
    """The distilled trigger as a :class:`GeneratedProgram`."""
    return GeneratedProgram(
        source=DISTILLED_SOURCE,
        inputs=DISTILLED_INPUTS,
        meta={"strategy": "distilled-demo"},
    )
