"""The reducer's test oracle: does a candidate still show the divergence?

A :class:`PairOracle` pins one (compiler pair, optimization level) cell
and evaluates candidate *source text* through the same path the campaign
engine uses — :func:`~repro.difftest.engine.frontend_kernels` per target
kind, the compiler's pass pipeline, the deterministic interpreter — so a
reduction verdict agrees bit-for-bit with what a campaign would observe.
Any front-end, compile, or runtime failure simply makes the candidate
uninteresting; delta debugging proposes many invalid programs and the
frontend re-validation here is what rejects them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.difftest.classify import (
    devectorized_fingerprint,
    inconsistency_kind,
    kind_label,
)
from repro.difftest.engine import _differing_values, _BinaryRun, frontend_kernels
from repro.errors import CompileError
from repro.execution.batch import run_batch_task
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.tiers import shape_vector, structural_tag_from_shapes
from repro.toolchains.base import Compiler
from repro.toolchains.cache import scalar_env_fingerprint
from repro.toolchains.optlevels import OptLevel
from repro.triage.signature import PRINT_COUNT_KIND, InconsistencySignature

__all__ = ["PairObservation", "PairOracle", "compilers_by_name"]


def compilers_by_name(compilers: list[Compiler]) -> dict[str, Compiler]:
    """Name -> compiler map (names are unique by engine validation)."""
    return {c.name: c for c in compilers}


@dataclass(frozen=True)
class PairObservation:
    """What one candidate did in the oracle's matrix cell."""

    ok: bool  # both sides front-ended, compiled and ran
    consistent: bool = True
    kind: str | None = None  # divergence kind label when inconsistent
    signature_a: str | None = None
    signature_b: str | None = None
    steps: int = 0  # max interpreter steps either side spent

    @property
    def inconsistent(self) -> bool:
        return self.ok and not self.consistent


class PairOracle:
    """Compile + run candidates in one (compiler pair, level) cell."""

    def __init__(
        self,
        compiler_a: Compiler,
        compiler_b: Compiler,
        level: OptLevel,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> None:
        self.compiler_a = compiler_a
        self.compiler_b = compiler_b
        self.level = level
        self.max_steps = max_steps
        #: predicate evaluations performed (reduction cost accounting)
        self.evaluations = 0

    def _compile_pair(self, source: str) -> list | None:
        """Front-end + compile ``source`` on both sides; None on failure."""
        frontend = frontend_kernels(source)
        binaries = []
        for compiler in (self.compiler_a, self.compiler_b):
            kernel = frontend.kernels.get(compiler.kind)
            if kernel is None:
                return None
            try:
                binaries.append(compiler.compile_kernel(kernel, self.level))
            except CompileError:
                return None
        return binaries

    def _verdict(self, binaries: list, ra, rb) -> PairObservation:
        """Classify one candidate from its two execution results."""
        if not (ra.ok and rb.ok):
            return PairObservation(ok=False)
        steps = max(ra.steps, rb.steps)
        sig_a, sig_b = ra.signature(), rb.signature()
        if sig_a == sig_b:
            return PairObservation(
                ok=True, consistent=True, signature_a=sig_a, signature_b=sig_b,
                steps=steps,
            )
        va, vb = _differing_values(
            _BinaryRun(sig_a, ra.value, ra.printed),
            _BinaryRun(sig_b, rb.value, rb.printed),
        )
        # Same precedence as the engine's compare stage: the registry's
        # structural kind over the value-class pair, so a reduction
        # verdict agrees with what the campaign recorded.
        ba, bb = binaries
        tag = structural_tag_from_shapes(
            shape_vector(ba.kernel, ba.env),
            shape_vector(bb.kernel, bb.env),
            scalar_env_fingerprint(ba.env) == scalar_env_fingerprint(bb.env),
            devectorized_fingerprint(ba.kernel) == devectorized_fingerprint(bb.kernel),
        )
        if tag is not None:
            kind = tag
        else:
            kind = (
                kind_label(inconsistency_kind(va, vb))
                if va is not None and vb is not None
                else PRINT_COUNT_KIND
            )
        return PairObservation(
            ok=True, consistent=False, kind=kind, signature_a=sig_a,
            signature_b=sig_b, steps=steps,
        )

    def observe(self, source: str, inputs: tuple) -> PairObservation:
        """Front-end, compile and run ``source`` on both sides of the cell."""
        self.evaluations += 1
        binaries = self._compile_pair(source)
        if binaries is None:
            return PairObservation(ok=False)
        ra, rb = (b.run(inputs, self.max_steps) for b in binaries)
        return self._verdict(binaries, ra, rb)

    def observe_batch(
        self,
        sources: list[str],
        inputs: tuple,
        backend=None,
        exec_mode: str = "tree",
    ) -> list[PairObservation]:
        """Observe many candidates at once, fanning the executions out.

        Compilation stays in the calling process (the compilers' pipeline
        caches live there); the 2x len(``sources``) kernel runs ship to
        ``backend`` (an :class:`~repro.difftest.backend.ExecutionBackend`)
        as batched tasks under ``exec_mode``.  Verdicts are returned in
        source order and are bit-identical to looping :meth:`observe` —
        runs are pure, so only the schedule differs.
        """
        self.evaluations += len(sources)
        compiled = [self._compile_pair(source) for source in sources]
        tasks = [
            (b.kernel, b.env, (inputs,), self.max_steps, exec_mode, None)
            for binaries in compiled
            if binaries is not None
            for b in binaries
        ]
        if backend is not None and len(tasks) > 1:
            batches = backend.run_batches(tasks)
        else:
            batches = [run_batch_task(task) for task in tasks]
        results = iter(batches)
        observations = []
        for binaries in compiled:
            if binaries is None:
                observations.append(PairObservation(ok=False))
                continue
            (ra,), (rb,) = next(results), next(results)
            observations.append(self._verdict(binaries, ra, rb))
        return observations

    def matches(self, source: str, inputs: tuple, target: InconsistencySignature) -> bool:
        """The interesting-predicate: the candidate still exhibits the same
        inconsistency kind in this oracle's cell."""
        obs = self.observe(source, inputs)
        return obs.inconsistent and obs.kind == target.kind
