"""Automatic triage of campaign findings: reduce -> bisect -> cluster.

The campaign engine (:mod:`repro.difftest.engine`) *detects* floating-point
inconsistencies; this package turns the raw triggering programs into
actionable findings, which the modeled toolchains make uniquely tractable
— every compiler is an explicit pass pipeline bound to an explicit FP
environment, so divergences can be attributed exactly:

* :func:`reduce_program` — statement/expression-level delta debugging with
  full front-end re-validation; the interesting-predicate is "same
  inconsistency kind on the same compiler pair and level".
* :func:`bisect_signature` — replays the trigger through prefixes of the
  responsible toolchain's pass pipeline and through field-by-field
  environment deltas to name the first pass / first FP-environment delta
  that flips the comparison.
* :func:`triage_results` / :func:`triage_campaign` — dedupe campaign-wide
  triggers by (kind, responsible pass, divergent-cell pattern) and emit a
  ranked, byte-deterministic :class:`TriageReport`.

CLI: ``llm4fp triage checkpoint.jsonl`` (or ``--demo`` / ``--program``).
"""

from repro.triage.bisect import (
    BisectionResult,
    EnvDelta,
    PassStep,
    bisect_cell,
    bisect_signature,
)
from repro.triage.cluster import (
    TriageCluster,
    TriageEntry,
    TriageReport,
    cluster_entries,
    triage_campaign,
    triage_outcomes,
    triage_results,
    triage_single,
)
from repro.triage.distilled import (
    DISTILLED_INPUTS,
    DISTILLED_SOURCE,
    distilled_trigger,
)
from repro.triage.oracle import PairObservation, PairOracle
from repro.triage.reduce import ReductionResult, reduce_program
from repro.triage.signature import (
    InconsistencySignature,
    canonical_signature,
    divergence_cells,
    signatures_of,
)

__all__ = [
    "BisectionResult",
    "EnvDelta",
    "PassStep",
    "bisect_cell",
    "bisect_signature",
    "TriageCluster",
    "TriageEntry",
    "TriageReport",
    "cluster_entries",
    "triage_campaign",
    "triage_outcomes",
    "triage_results",
    "triage_single",
    "DISTILLED_INPUTS",
    "DISTILLED_SOURCE",
    "distilled_trigger",
    "PairObservation",
    "PairOracle",
    "ReductionResult",
    "reduce_program",
    "InconsistencySignature",
    "canonical_signature",
    "divergence_cells",
    "signatures_of",
]
