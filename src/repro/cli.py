"""The ``llm4fp`` command-line interface.

    llm4fp run --approach llm4fp --budget 100 --seed 1
    llm4fp tables table2 table5
    llm4fp show-prompt grammar
"""

from __future__ import annotations

import argparse
import sys

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import EngineConfig
from repro.difftest.harness import run_campaign
from repro.difftest.record import ProgramOutcome
from repro.difftest.report import CampaignReport
from repro.experiments import table2, table3, table4, table5, figure3
from repro.experiments.approaches import APPROACHES, make_generator
from repro.experiments.runner import ExperimentContext
from repro.experiments.settings import ExperimentSettings
from repro.fp.formats import Precision
from repro.generation.prompts import direct_prompt, grammar_prompt, mutation_prompt
from repro.toolchains import default_compilers
from repro.utils.rng import SplittableRng
from repro.utils.timing import format_hms

_TABLES = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure3": figure3.run,
}


class _StreamProgress:
    """Streams per-program campaign state to stderr as the engine runs.

    One carriage-returned status line per program — running counts of
    triggering programs and inconsistent comparisons — so long campaigns
    are observable without touching the result plumbing.
    """

    def __init__(self, budget: int, stream=None) -> None:
        self.budget = budget
        self.stream = stream if stream is not None else sys.stderr
        self.triggered = 0
        self.inconsistencies = 0

    def __call__(self, index: int, outcome: ProgramOutcome) -> None:
        self.triggered += bool(outcome.triggered)
        self.inconsistencies += len(outcome.inconsistent_comparisons)
        width = len(str(self.budget))
        self.stream.write(
            f"\r[{index + 1:>{width}}/{self.budget}] "
            f"triggering {self.triggered} · inconsistencies {self.inconsistencies}"
        )
        self.stream.flush()

    def finish(self) -> None:
        self.stream.write("\n")
        self.stream.flush()


def _cmd_run(args: argparse.Namespace) -> int:
    rng = SplittableRng(args.seed, f"cli-{args.approach}")
    generator = make_generator(args.approach, rng)
    config = CampaignConfig(budget=args.budget, seed=args.seed)
    engine_config = EngineConfig(jobs=args.jobs, compile_cache=not args.no_cache)
    progress = None if args.quiet else _StreamProgress(args.budget)
    result = run_campaign(
        generator,
        default_compilers(),
        config,
        progress=progress,
        engine_config=engine_config,
    )
    if progress is not None:
        progress.finish()
    report = CampaignReport(result)
    s = report.summary()
    print(f"approach:             {s['approach']}")
    print(f"programs:             {args.budget}")
    print(f"jobs:                 {args.jobs}")
    print(f"compile cache:        {'off' if args.no_cache else 'on'}")
    print(f"total comparisons:    {s['total_comparisons']:,}")
    print(f"inconsistencies:      {s['inconsistencies']:,}")
    print(f"inconsistency rate:   {s['inconsistency_rate'] * 100:.2f}%")
    print(f"triggering programs:  {s['triggering_programs']}")
    print(f"time cost:            {format_hms(s['time_seconds'])}")
    print(report.render_stages())
    kinds = report.kind_counts().as_labels()
    if kinds:
        print("kinds:")
        for label, count in kinds.items():
            print(f"  {label:<16} {count}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    settings = ExperimentSettings(
        budget=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        compile_cache=not args.no_cache,
    )
    ctx = ExperimentContext(settings)
    names = args.names or list(_TABLES)
    for name in names:
        runner = _TABLES.get(name)
        if runner is None:
            print(f"unknown artefact {name!r}", file=sys.stderr)
            return 2
        print(runner(ctx))
        print()
    return 0


def _cmd_show_prompt(args: argparse.Namespace) -> int:
    if args.kind == "direct":
        print(direct_prompt(Precision.DOUBLE))
    elif args.kind == "grammar":
        print(grammar_prompt(Precision.DOUBLE))
    else:
        example = (
            "#include <stdio.h>\n#include <math.h>\n"
            "void compute(double x) { double comp = sin(x);"
            ' printf("%.17g\\n", comp); }\n'
            "int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }"
        )
        print(mutation_prompt(example, Precision.DOUBLE))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="llm4fp", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one approach's campaign")
    p_run.add_argument("--approach", choices=APPROACHES, default="llm4fp")
    p_run.add_argument("--budget", type=int, default=100)
    p_run.add_argument("--seed", type=int, default=20250916)
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="worker threads for the compile+execute matrix (default 1; "
        "throughput gains come from caching/run sharing, not the GIL-bound threads)",
    )
    p_run.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed compile cache",
    )
    p_run.add_argument(
        "--quiet", action="store_true",
        help="suppress the streaming per-program progress line",
    )
    p_run.set_defaults(func=_cmd_run)

    p_tab = sub.add_parser("tables", help="regenerate paper tables/figures")
    p_tab.add_argument("names", nargs="*", help=f"subset of {list(_TABLES)}")
    p_tab.add_argument("--budget", type=int, default=200)
    p_tab.add_argument("--seed", type=int, default=20250916)
    p_tab.add_argument(
        "--jobs", type=int, default=1,
        help="worker threads for the compile+execute matrix (default 1; "
        "throughput gains come from caching/run sharing, not the GIL-bound threads)",
    )
    p_tab.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed compile cache",
    )
    p_tab.set_defaults(func=_cmd_tables)

    p_show = sub.add_parser("show-prompt", help="print one of the paper's prompts")
    p_show.add_argument("kind", choices=("direct", "grammar", "mutation"))
    p_show.set_defaults(func=_cmd_show_prompt)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
