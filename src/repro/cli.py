"""The ``llm4fp`` command-line interface.

    llm4fp run --approach llm4fp --budget 100 --seed 1
    llm4fp serve --shards 4 --workers 2 --approach loops --budget 1000
    llm4fp tables table2 table5
    llm4fp triage campaign.jsonl
    llm4fp corpus diff corpus.jsonl campaign.jsonl
    llm4fp show-prompt grammar
"""

from __future__ import annotations

import argparse
import sys

from repro.difftest.backend import BACKENDS, create_backend, parse_jobs
from repro.execution.batch import EXEC_MODES
from repro.difftest.config import CampaignConfig
from repro.difftest.engine import EngineConfig, JsonLineProgress
from repro.difftest.harness import run_campaign
from repro.difftest.record import ProgramOutcome
from repro.difftest.report import CampaignReport
from repro.difftest.store import CampaignStore, load_result, merge_shards
from repro.experiments import table2, table3, table4, table5, figure3, triage_summary
from repro.experiments.approaches import ALL_APPROACHES, make_generator
from repro.experiments.runner import ExperimentContext
from repro.experiments.settings import ExperimentSettings, parse_shard
from repro.fp.formats import Precision
from repro.generation.prompts import direct_prompt, grammar_prompt, mutation_prompt
from repro.toolchains import TIER_PROFILES, default_compilers
from repro.triage.reduce import DEFAULT_MAX_TESTS
from repro.utils.rng import SplittableRng
from repro.utils.timing import format_hms

_TABLES = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "figure3": figure3.run,
    "triage": triage_summary.run,
}


class _StreamProgress:
    """Streams per-program campaign state to stderr as the engine runs.

    One carriage-returned status line per program — running counts of
    triggering programs and inconsistent comparisons — so long campaigns
    are observable without touching the result plumbing.
    """

    def __init__(self, budget: int, stream=None) -> None:
        self.budget = budget
        self.stream = stream if stream is not None else sys.stderr
        self.triggered = 0
        self.inconsistencies = 0

    def __call__(self, index: int, outcome: ProgramOutcome) -> None:
        self.triggered += bool(outcome.triggered)
        self.inconsistencies += len(outcome.inconsistent_comparisons)
        width = len(str(self.budget))
        self.stream.write(
            f"\r[{index + 1:>{width}}/{self.budget}] "
            f"triggering {self.triggered} · inconsistencies {self.inconsistencies}"
        )
        self.stream.flush()

    def finish(self) -> None:
        self.stream.write("\n")
        self.stream.flush()


def _jobs_arg(value: str) -> int | str:
    """``--jobs N`` or ``--jobs auto`` (one worker per CPU)."""
    try:
        return parse_jobs(value)
    except ValueError as e:
        raise argparse.ArgumentTypeError(str(e)) from e


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.generation.islands import derive_peer_paths
    from repro.generation.program import generator_capabilities

    rng = SplittableRng(args.seed, f"cli-{args.approach}")
    generator = make_generator(args.approach, rng, tiers=args.tiers)
    corpus_path = (
        args.corpus if args.corpus is not None else ExperimentSettings().corpus_path
    )
    replay_seeds = 0
    if corpus_path:
        from repro.corpus import CorpusError, CorpusReplayGenerator, TriggerCorpus

        try:
            seeds = TriggerCorpus.load(corpus_path).seeds()
        except CorpusError as e:
            print(str(e), file=sys.stderr)
            return 2
        generator = CorpusReplayGenerator(seeds, generator)
        replay_seeds = len(seeds)
    config = CampaignConfig(budget=args.budget, seed=args.seed)
    shard_index, shard_count = parse_shard(args.shard)
    islands = args.islands
    if islands is None:
        islands = ExperimentSettings().islands  # REPRO_ISLANDS, default 0
        if not islands and shard_count > 1:
            caps = generator_capabilities(generator)
            if caps.feedback:
                # A sharded feedback approach only works island-partitioned;
                # default to one island per shard rather than erroring out.
                islands = shard_count
                print(
                    f"note: {args.approach} is a feedback approach; running "
                    f"shard {shard_index}/{shard_count} as an island campaign "
                    f"(--islands {islands})",
                    file=sys.stderr,
                )
    merge_every = (
        args.merge_every
        if args.merge_every is not None
        else ExperimentSettings().merge_every  # REPRO_MERGE_EVERY, default 25
    )
    island_peers: tuple = ()
    if islands and shard_count > 1:
        if not args.resume:
            print(
                "sharded island campaigns need --resume PATH: island shards "
                "exchange migrants through each other's checkpoint files",
                file=sys.stderr,
            )
            return 2
        try:
            island_peers = tuple(
                str(p)
                for p in derive_peer_paths(args.resume, shard_index, shard_count)
            )
        except ValueError as e:
            print(str(e), file=sys.stderr)
            return 2
    engine_kwargs = dict(
        jobs=args.jobs,
        compile_cache=not args.no_cache,
        backend=args.backend,
        shard_index=shard_index,
        shard_count=shard_count,
        islands=islands,
        merge_every=merge_every,
        island_peers=island_peers,
    )
    if args.exec_mode is not None:  # else REPRO_EXEC_MODE / the default
        engine_kwargs["exec_mode"] = args.exec_mode
    engine_config = EngineConfig(**engine_kwargs)
    store = CampaignStore(args.resume) if args.resume else None
    progress: object | None
    if args.progress_json:
        progress = JsonLineProgress(args.budget)
    elif args.quiet:
        progress = None
    else:
        progress = _StreamProgress(args.budget)
    result = run_campaign(
        generator,
        default_compilers(tiers=args.tiers),
        config,
        progress=progress,
        engine_config=engine_config,
        store=store,
    )
    if progress is not None:
        progress.finish()
    report = CampaignReport(result)
    s = report.summary()
    print(f"approach:             {s['approach']}")
    print(f"programs:             {args.budget}")
    print(f"backend:              {args.backend}")
    if args.tiers != "baseline":
        print(f"tier profile:         {args.tiers}")
    print(f"exec mode:            {engine_config.exec_mode}")
    print(f"jobs:                 {engine_config.resolved_jobs}")
    if shard_count > 1:
        owned = len(range(shard_index, args.budget, shard_count))
        print(f"shard:                {shard_index}/{shard_count} ({owned} programs)")
    if islands:
        print(f"islands:              {islands} (merge every {merge_every})")
    if store is not None:
        print(f"checkpoint:           {store.path}")
    if corpus_path:
        print(f"corpus replay:        {replay_seeds} seed(s) from {corpus_path}")
    print(f"compile cache:        {'off' if args.no_cache else 'on'}")
    print(f"total comparisons:    {s['total_comparisons']:,}")
    print(f"inconsistencies:      {s['inconsistencies']:,}")
    print(f"inconsistency rate:   {s['inconsistency_rate'] * 100:.2f}%")
    print(f"triggering programs:  {s['triggering_programs']}")
    print(f"time cost:            {format_hms(s['time_seconds'])}")
    print(report.render_stages())
    _print_kinds(report)
    return 0


def _print_kinds(report: CampaignReport) -> None:
    kinds = report.kind_counts().as_labels()
    if kinds:
        print("kinds:")
        for label, count in kinds.items():
            print(f"  {label:<16} {count}")
    tags = report.tag_counts()
    if tags:
        print("structural kinds:")
        for label, count in tags.items():
            print(f"  {label:<16} {count}")


def _cmd_tables(args: argparse.Namespace) -> int:
    # Only flags the user actually passed override ExperimentSettings;
    # omitted ones fall through to the REPRO_* environment knobs.
    overrides = {
        "budget": args.budget,
        "seed": args.seed,
        "jobs": args.jobs,
        "backend": args.backend,
        "exec_mode": args.exec_mode,
        "checkpoint_dir": args.checkpoint_dir,
    }
    kwargs = {k: v for k, v in overrides.items() if v is not None}
    if args.no_cache:
        kwargs["compile_cache"] = False
    settings = ExperimentSettings(**kwargs)
    # Sharded table runs (REPRO_SHARD) execute every classically shardable
    # approach and append a per-approach skip note for the rest; feedback
    # approaches can still participate as island campaigns (REPRO_ISLANDS
    # with --checkpoint-dir).
    ctx = ExperimentContext(settings)
    names = args.names or list(_TABLES)
    for name in names:
        runner = _TABLES.get(name)
        if runner is None:
            print(f"unknown artefact {name!r}", file=sys.stderr)
            return 2
        print(runner(ctx))
        print()
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Splice shard checkpoint files back into one campaign report."""
    results = [load_result(path) for path in args.checkpoints]
    merged = merge_shards(results)
    report = CampaignReport(merged)
    s = report.summary()
    print(f"approach:             {s['approach']}")
    print(f"programs:             {merged.budget}")
    print(f"shards merged:        {len(results)}")
    print(f"total comparisons:    {s['total_comparisons']:,}")
    print(f"inconsistencies:      {s['inconsistencies']:,}")
    print(f"inconsistency rate:   {s['inconsistency_rate'] * 100:.2f}%")
    print(f"triggering programs:  {s['triggering_programs']}")
    _print_kinds(report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Supervise a sharded campaign fleet (or drain a queue of them)."""
    import asyncio

    from repro.fleet.queue import drain_queue
    from repro.fleet.supervisor import (
        CampaignSpec,
        FleetConfig,
        FleetSupervisor,
        format_fleet_summary,
    )

    settings = ExperimentSettings()
    config = FleetConfig(
        workers=args.workers if args.workers is not None else settings.fleet_workers,
        heartbeat=(
            args.heartbeat if args.heartbeat is not None else settings.fleet_heartbeat
        ),
        stall_timeout=(
            args.stall_timeout
            if args.stall_timeout is not None
            else settings.fleet_stall_timeout
        ),
        max_retries=(
            args.max_retries
            if args.max_retries is not None
            else settings.fleet_max_retries
        ),
        chaos_kill_after=args.chaos_kill_after,
    )
    corpus_path = (
        args.corpus if args.corpus is not None else settings.corpus_path
    )
    if args.queue is not None:
        results = asyncio.run(
            drain_queue(
                args.queue,
                args.dir,
                config=config,
                chain_triage=args.triage,
                corpus_path=corpus_path,
            )
        )
    else:
        spec = CampaignSpec(
            approach=args.approach,
            budget=args.budget,
            seed=args.seed,
            backend=args.backend,
            jobs=None if args.jobs is None else str(args.jobs),
            exec_mode=args.exec_mode,
            compile_cache=not args.no_cache,
            islands=args.islands,
            merge_every=args.merge_every,
        )
        supervisor = FleetSupervisor(
            spec,
            args.shards,
            args.dir,
            config=config,
            chain_triage=args.triage,
            corpus_path=corpus_path,
        )
        results = [asyncio.run(supervisor.run())]
    for result in results:
        print(format_fleet_summary(result))
        print()
    return 0 if all(r.ok for r in results) else 1


def _parse_inputs(spec: str) -> tuple:
    """``"0.37,1.91,23"`` -> ``(0.37, 1.91, 23)`` (ints stay ints)."""
    values: list = []
    for token in spec.replace(",", " ").split():
        try:
            values.append(int(token))
        except ValueError:
            try:
                values.append(float(token))
            except ValueError as e:
                raise argparse.ArgumentTypeError(
                    f"inputs must be numbers, got {token!r}"
                ) from e
    if not values:
        raise argparse.ArgumentTypeError("inputs must name at least one value")
    return tuple(values)


def _cmd_triage(args: argparse.Namespace) -> int:
    """Reduce -> bisect -> cluster triggering programs into a ranked report."""
    from repro.difftest.engine import CampaignEngine
    from repro.generation.program import GeneratedProgram
    from repro.triage import distilled_trigger, triage_results, triage_single

    sources = bool(args.checkpoints) + (args.program is not None) + args.demo
    if sources != 1:
        print(
            "triage needs exactly one input: checkpoint file(s), "
            "--program FILE --inputs ..., or --demo",
            file=sys.stderr,
        )
        return 2
    kwargs = dict(reduce=not args.no_reduce, max_reduce_tests=args.max_reduce_tests)
    with create_backend(args.backend, args.jobs) as backend:
        if backend.jobs > 1:
            kwargs["backend"] = backend
        if args.checkpoints:
            results = [(path, load_result(path)) for path in args.checkpoints]
            report = triage_results(results, **kwargs)
        else:
            if args.demo:
                program, label = distilled_trigger(), "demo"
            else:
                if args.inputs is None:
                    print("--program requires --inputs", file=sys.stderr)
                    return 2
                with open(args.program, encoding="utf-8") as f:
                    source = f.read()
                program = GeneratedProgram(source=source, inputs=args.inputs)
                label = args.program
            compilers = default_compilers(tiers=args.tiers)
            engine = CampaignEngine(compilers, CampaignConfig(budget=1))
            kwargs["compilers"] = compilers
            outcome = engine.test_program(0, program)
            if not outcome.triggered:
                print(f"{label}: no inconsistency on the given inputs", file=sys.stderr)
                return 1
            report = triage_single(outcome, label=label, **kwargs)
    text = report.render()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    """Longitudinal trigger corpus: cross-campaign root-cause memory."""
    import json as _json
    from pathlib import Path

    from repro.corpus import (
        CorpusError,
        TriggerCorpus,
        format_corpus_list,
        format_diff_report,
        format_ingest_report,
        format_seeds,
        render_signature,
    )
    from repro.difftest.store import CampaignStoreError

    try:
        if args.action == "ingest":
            if not args.checkpoints:
                print("corpus ingest needs checkpoint file(s)", file=sys.stderr)
                return 2
            all_new: set[str] = set()
            with TriggerCorpus(args.corpus) as corpus:
                for path in args.checkpoints:
                    result = load_result(path)
                    label = args.label or Path(path).name
                    report = corpus.ingest(
                        result, label, timestamp=args.timestamp
                    )
                    print(format_ingest_report(report, corpus))
                    all_new.update(report.new_keys)
            if args.out:
                lines = [render_signature(k) for k in sorted(all_new)]
                with open(args.out, "w", encoding="utf-8") as f:
                    f.write("\n".join([f"new signatures: {len(lines)}", *lines]))
                    f.write("\n")
                print(f"wrote {args.out}")
            return 0
        corpus = TriggerCorpus.load(args.corpus)
        if args.action == "diff":
            if not args.checkpoints:
                print("corpus diff needs checkpoint file(s)", file=sys.stderr)
                return 2
            outcomes = [
                o for path in args.checkpoints for o in load_result(path).outcomes
            ]
            report = corpus.diff(outcomes)
            text = format_diff_report(report, corpus, len(args.checkpoints))
            print(text)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as f:
                    f.write(text + "\n")
            return 0
        if args.action == "list":
            print(format_corpus_list(corpus))
            return 0
        # seeds
        if args.dir:
            outdir = Path(args.dir)
            outdir.mkdir(parents=True, exist_ok=True)
            manifest = []
            for position, seed in enumerate(corpus.seeds()):
                name = f"seed-{position:03d}.c"
                (outdir / name).write_text(seed.source, encoding="utf-8")
                manifest.append(
                    {
                        "file": name,
                        "signature": render_signature(seed.key),
                        "inputs": list(seed.inputs),
                        "origin": f"{seed.origin_label}#{seed.origin_index}",
                    }
                )
            with open(outdir / "seeds.json", "w", encoding="utf-8") as f:
                _json.dump(manifest, f, indent=2)
                f.write("\n")
            print(f"wrote {len(manifest)} seed(s) to {outdir}")
        else:
            print(format_seeds(corpus))
        return 0
    except (CorpusError, CampaignStoreError) as e:
        print(str(e), file=sys.stderr)
        return 2
    except OSError as e:
        print(f"corpus: {e}", file=sys.stderr)
        return 2


def _cmd_show_prompt(args: argparse.Namespace) -> int:
    if args.kind == "direct":
        print(direct_prompt(Precision.DOUBLE))
    elif args.kind == "grammar":
        print(grammar_prompt(Precision.DOUBLE))
    else:
        example = (
            "#include <stdio.h>\n#include <math.h>\n"
            "void compute(double x) { double comp = sin(x);"
            ' printf("%.17g\\n", comp); }\n'
            "int main(int argc, char **argv) { compute(atof(argv[1])); return 0; }"
        )
        print(mutation_prompt(example, Precision.DOUBLE))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="llm4fp", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one approach's campaign")
    p_run.add_argument("--approach", choices=ALL_APPROACHES, default="llm4fp")
    p_run.add_argument("--budget", type=int, default=100)
    p_run.add_argument("--seed", type=int, default=20250916)
    p_run.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="matrix fan-out: serial (inline), thread (GIL-bound pool), "
        "process (multi-core execute stage); results are byte-identical",
    )
    p_run.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="workers for the compile+execute matrix (default 1; 'auto' = "
        "one per CPU; real CPU parallelism needs --backend process)",
    )
    p_run.add_argument(
        "--exec-mode", choices=EXEC_MODES, default=None, dest="exec_mode",
        help="execute-stage mode: tape (compiled, default), tree "
        "(reference interpreter) or check (both, trap on any bit of "
        "divergence); default: REPRO_EXEC_MODE or tape",
    )
    p_run.add_argument(
        "--shard", default=None, metavar="i/n",
        help="test only budget indices with index %% n == i; disjoint "
        "shards merge bit-identically (feedback approaches shard via the "
        "island model — see --islands)",
    )
    p_run.add_argument(
        "--islands", type=int, default=None, metavar="N",
        help="island-model generation: partition generation itself into N "
        "islands (index %% N), each evolving its own population with "
        "fitness-weighted mutation; the sharding mode that admits feedback "
        "approaches (default: REPRO_ISLANDS, or auto = shard count for a "
        "sharded feedback approach)",
    )
    p_run.add_argument(
        "--merge-every", type=int, default=None, metavar="K", dest="merge_every",
        help="island merge-point cadence: exchange top triggers after "
        "every K owned programs (default: REPRO_MERGE_EVERY or 25)",
    )
    p_run.add_argument(
        "--resume", default=None, metavar="PATH",
        help="JSONL checkpoint file: completed programs are replayed from "
        "it, new ones appended, so an interrupted campaign continues "
        "(sharded island runs require it, with 'shard<i>' in the filename)",
    )
    p_run.add_argument(
        "--corpus", default=None, metavar="CORPUS.jsonl",
        help="replay this trigger corpus's regression seeds before the "
        "approach's own stream — every campaign opens with a regression "
        "sweep (default: REPRO_CORPUS_PATH; missing file = no seeds)",
    )
    p_run.add_argument(
        "--tiers", choices=TIER_PROFILES, default="baseline",
        help="divergence-tier profile: baseline (byte-identical to "
        "pre-registry campaigns) or full (adds the vec-libm, "
        "mixed-precision and masked-int-guard tiers to every compiler's "
        "pipeline and FP environment)",
    )
    p_run.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed compile cache",
    )
    p_run.add_argument(
        "--quiet", action="store_true",
        help="suppress the streaming per-program progress line",
    )
    p_run.add_argument(
        "--progress-json", action="store_true", dest="progress_json",
        help="emit machine-readable progress to stderr: one JSON line per "
        "completed program (what fleet worker logs record); overrides "
        "--quiet",
    )
    p_run.set_defaults(func=_cmd_run)

    p_tab = sub.add_parser("tables", help="regenerate paper tables/figures")
    p_tab.add_argument("names", nargs="*", help=f"subset of {list(_TABLES)}")
    # defaults stay None so the REPRO_* environment knobs apply when a
    # flag is omitted (flags win when given)
    p_tab.add_argument(
        "--budget", type=int, default=None,
        help="programs per approach (default: REPRO_BUDGET or 200)",
    )
    p_tab.add_argument(
        "--seed", type=int, default=None,
        help="campaign seed (default: REPRO_SEED or 20250916)",
    )
    p_tab.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="matrix fan-out backend, byte-identical results "
        "(default: REPRO_BACKEND or thread)",
    )
    p_tab.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N|auto",
        help="workers for the compile+execute matrix, 'auto' = one per "
        "CPU (default: REPRO_JOBS or 1)",
    )
    p_tab.add_argument(
        "--exec-mode", choices=EXEC_MODES, default=None, dest="exec_mode",
        help="execute-stage mode: tape / tree / check "
        "(default: REPRO_EXEC_MODE or tape)",
    )
    p_tab.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist per-approach JSONL checkpoints here; re-running with "
        "identical settings resumes instead of recomputing",
    )
    p_tab.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed compile cache",
    )
    p_tab.set_defaults(func=_cmd_tables)

    p_merge = sub.add_parser(
        "merge",
        help="merge shard checkpoint files into one campaign report",
        description="Merge the JSONL checkpoints of a sharded campaign "
        "(each produced by `run --shard i/n --resume PATH`, possibly on "
        "different machines) and report the combined result — "
        "bit-identical to an unsharded run.",
    )
    p_merge.add_argument(
        "checkpoints", nargs="+", metavar="SHARD.jsonl",
        help="one completed checkpoint file per shard (all n of them)",
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_serve = sub.add_parser(
        "serve",
        help="supervise a sharded campaign fleet (launch/heal/merge)",
        description="Campaign fleet supervisor: launches one `llm4fp run "
        "--shard i/n --resume` worker per shard (at most --workers "
        "concurrently), heartbeats each on its checkpoint's tail growth, "
        "kills and reassigns dead or stalled shards with bounded retries, "
        "then splices the shard checkpoints into a merged store "
        "byte-identical to an unkilled single-process run.  Every "
        "scheduling decision lands in DIR/fleet_events.jsonl.  With "
        "--queue, drains a JSONL job file instead, one campaign per line "
        "(see docs/fleet.md).  Exits 0 only if every campaign merged.",
    )
    p_serve.add_argument(
        "--dir", required=True, metavar="DIR",
        help="fleet working directory: shard checkpoints, worker logs, "
        "fleet_events.jsonl and merged.jsonl accumulate here",
    )
    p_serve.add_argument(
        "--shards", type=int, default=4, metavar="N",
        help="shard count the budget splits into (default 4)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="concurrent shard workers (default: REPRO_FLEET_WORKERS or 2)",
    )
    p_serve.add_argument("--approach", choices=ALL_APPROACHES, default="loops",
                         help="approach to run (default loops; feedback "
                         "approaches run as island campaigns automatically)")
    p_serve.add_argument("--budget", type=int, default=100)
    p_serve.add_argument("--seed", type=int, default=20250916)
    p_serve.add_argument(
        "--islands", type=int, default=None, metavar="N",
        help="run workers as island shards (N must equal --shards); "
        "default: worker auto-detection (islands for feedback approaches)",
    )
    p_serve.add_argument(
        "--merge-every", type=int, default=None, metavar="K", dest="merge_every",
        help="island merge-point cadence forwarded to workers "
        "(default: each worker's REPRO_MERGE_EVERY or 25)",
    )
    p_serve.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="worker engine backend (default: each worker's own default)",
    )
    p_serve.add_argument(
        "--jobs", type=_jobs_arg, default=None, metavar="N|auto",
        help="per-worker matrix jobs (default: each worker's own default)",
    )
    p_serve.add_argument(
        "--exec-mode", choices=EXEC_MODES, default=None, dest="exec_mode",
        help="worker execute-stage mode (default: each worker's own default)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the compile cache in every worker",
    )
    p_serve.add_argument(
        "--queue", default=None, metavar="JOBS.jsonl",
        help="drain a JSONL job queue instead of running one campaign; "
        "each line is {\"approach\": ..., \"budget\": ..., \"shards\": ...}",
    )
    p_serve.add_argument(
        "--triage", action="store_true",
        help="chain `llm4fp triage` over each merged store",
    )
    p_serve.add_argument(
        "--corpus", default=None, metavar="CORPUS.jsonl",
        help="chain a trigger-corpus ingest over each merged store (after "
        "--triage when both are given); never-seen signatures land in "
        "DIR/corpus_new.txt (default: REPRO_CORPUS_PATH)",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="checkpoint-tail poll interval "
        "(default: REPRO_FLEET_HEARTBEAT or 2.0)",
    )
    p_serve.add_argument(
        "--stall-timeout", type=float, default=None, metavar="SECONDS",
        dest="stall_timeout",
        help="no-row-growth threshold before a live worker is killed and "
        "its shard reassigned (default: REPRO_FLEET_STALL or 300)",
    )
    p_serve.add_argument(
        "--max-retries", type=int, default=None, metavar="N", dest="max_retries",
        help="respawns per shard after its first death before the fleet "
        "settles for a partial verdict (default: REPRO_FLEET_RETRIES or 2)",
    )
    p_serve.add_argument(
        "--chaos-kill-after", type=int, default=None, metavar="ROWS",
        dest="chaos_kill_after",
        help="fault-injection drill: SIGKILL the first worker whose shard "
        "reaches ROWS checkpoint rows, then watch the fleet repair it",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_triage = sub.add_parser(
        "triage",
        help="reduce, bisect and cluster triggering programs",
        description="Automatic triage of campaign findings: delta-debug "
        "each triggering program down to a minimal trigger, bisect the "
        "responsible toolchain's pass pipeline and FP-environment deltas "
        "to name what flipped the comparison, and dedupe everything into "
        "a ranked report.  Input is one or more campaign checkpoints "
        "(written by `run --resume` or `tables --checkpoint-dir`), a raw "
        "C file with --program/--inputs, or the built-in --demo trigger.  "
        "The report is deterministic: two runs over the same input are "
        "byte-identical.",
    )
    p_triage.add_argument(
        "checkpoints", nargs="*", metavar="CHECKPOINT.jsonl",
        help="campaign checkpoint file(s); triggers from all of them are "
        "clustered together",
    )
    p_triage.add_argument(
        "--program", default=None, metavar="FILE.c",
        help="triage one raw trigger program instead of a checkpoint",
    )
    p_triage.add_argument(
        "--inputs", type=_parse_inputs, default=None, metavar="V,V,...",
        help="input vector for --program (one value per compute parameter)",
    )
    p_triage.add_argument(
        "--demo", action="store_true",
        help="triage the built-in distilled demonstration trigger",
    )
    p_triage.add_argument(
        "--no-reduce", action="store_true",
        help="skip delta-debugging reduction (bisect + cluster only)",
    )
    p_triage.add_argument(
        "--tiers", choices=TIER_PROFILES, default="baseline",
        help="divergence-tier profile for --program/--demo (checkpoints "
        "carry their own profile and are triaged under it automatically)",
    )
    p_triage.add_argument(
        "--backend", choices=BACKENDS, default="thread",
        help="fan-out policy for reduction candidate runs (with --jobs > 1); "
        "the report is byte-identical across backends",
    )
    p_triage.add_argument(
        "--jobs", type=_jobs_arg, default=1, metavar="N|auto",
        help="workers for reduction candidate runs (default 1 = serial; "
        "real CPU parallelism needs --backend process)",
    )
    p_triage.add_argument(
        "--max-reduce-tests", type=int, default=DEFAULT_MAX_TESTS, metavar="N",
        help="oracle-evaluation budget per reduction "
        f"(default {DEFAULT_MAX_TESTS})",
    )
    p_triage.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    p_triage.set_defaults(func=_cmd_triage)

    p_corpus = sub.add_parser(
        "corpus",
        help="longitudinal trigger corpus: ingest / diff / list / seeds",
        description="Cross-campaign root-cause memory.  `ingest` folds a "
        "campaign checkpoint's triggers into an append-only corpus keyed "
        "by cluster signature (recording first/last-seen provenance, the "
        "compiler-model fingerprint, and the smallest trigger as a "
        "regression seed); `diff` reports ONLY signatures the corpus has "
        "never seen, so nightlies stop re-announcing known root causes; "
        "`list` summarizes every signature's lifetime; `seeds` exports "
        "the regression seeds `llm4fp run --corpus` replays.  All output "
        "is deterministic: same corpus + same checkpoints = same bytes.",
    )
    p_corpus.add_argument(
        "action", choices=("ingest", "diff", "list", "seeds"),
        help="ingest: fold checkpoints in (appends); diff: report "
        "never-seen signatures (read-only); list: per-signature summary; "
        "seeds: print or export regression seeds",
    )
    p_corpus.add_argument(
        "corpus", metavar="CORPUS.jsonl",
        help="corpus file (ingest creates it when missing; diff on a "
        "missing corpus treats every signature as new)",
    )
    p_corpus.add_argument(
        "checkpoints", nargs="*", metavar="CHECKPOINT.jsonl",
        help="campaign checkpoint file(s) for ingest / diff",
    )
    p_corpus.add_argument(
        "--label", default=None, metavar="NAME",
        help="provenance label recorded with the ingest "
        "(default: each checkpoint's file name)",
    )
    p_corpus.add_argument(
        "--timestamp", default="", metavar="STAMP",
        help="operator-supplied timestamp string recorded with the ingest "
        "(default empty: corpus bytes stay content-deterministic)",
    )
    p_corpus.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the new-signature report to PATH (ingest/diff)",
    )
    p_corpus.add_argument(
        "--dir", default=None, metavar="DIR",
        help="seeds: write seed-NNN.c files plus a seeds.json manifest "
        "here instead of printing",
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    p_show = sub.add_parser("show-prompt", help="print one of the paper's prompts")
    p_show.add_argument("kind", choices=("direct", "grammar", "mutation"))
    p_show.set_defaults(func=_cmd_show_prompt)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
