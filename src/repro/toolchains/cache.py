"""Content-addressed compile caching for the campaign engine.

A simulated compilation is a pure function of (lowered kernel, pass
pipeline, FP environment), so its :class:`~repro.toolchains.base.Binary`
can be reused whenever all three coincide — across optimization levels of
one compiler (gcc models the same pipeline at O1/O2/O3), and across
structurally identical kernels anywhere in a campaign (mutation-based
generators revisit shapes constantly).

Keys are *content addresses*, never object identities:

* :func:`kernel_fingerprint` hashes the canonical ``repr`` of the frozen
  IR tree.  ``repr`` distinguishes ``-0.0`` from ``0.0`` (structural
  ``==`` would conflate them — a signed-zero print is observable) and
  collapses all NaN literals, matching the signature canonicalization.
* :func:`env_fingerprint` captures everything an
  :class:`~repro.fp.env.FPEnvironment` feeds into execution: precision,
  libm identity + perturbation parameters, FTZ and approx-unit flags.
* The per-(compiler, level) component is the compiler's
  ``cache_token(level)`` (see :class:`~repro.toolchains.base.Compiler`),
  which maps levels with identical (pipeline, environment) to one token.

:class:`CompileCache` is a bounded LRU safe for use from the engine's
worker threads; eviction only ever costs a recompile, never correctness.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir
from repro.toolchains.base import Binary

__all__ = [
    "kernel_fingerprint",
    "env_fingerprint",
    "scalar_env_fingerprint",
    "CacheStats",
    "CompileCache",
]


def _libm_key(libm) -> tuple | None:
    if libm is None:
        return None
    return (
        type(libm).__name__,
        libm.name,
        getattr(libm, "max_ulps", None),
        getattr(libm, "perturb_prob", None),
        getattr(libm, "huge_trig_nan_prob", None),
    )


def kernel_fingerprint(kernel: ir.Kernel) -> str:
    """A stable content address for a lowered (or optimized) kernel.

    The IR is a tree of frozen dataclasses whose ``repr`` is canonical and
    deterministic, so hashing it addresses the kernel by *content*: two
    programs that lower to the same IR share one fingerprint regardless of
    where in the campaign they appeared.
    """
    return hashlib.sha256(repr(kernel).encode("utf-8")).hexdigest()


def env_fingerprint(env: FPEnvironment) -> tuple:
    """Content key of an FP environment (everything execution observes).

    Includes the vector math library: two binaries that differ only in
    their vec-libm binding execute differently, so they must not share
    a run.  The vec-libm element is appended only when one is bound, so
    environments without one fingerprint exactly as they did before the
    tier existed (the corpus model fingerprint hashes these — a baseline
    toolchain must not read as a new compiler model).
    """
    scalar = scalar_env_fingerprint(env)
    if env.veclibm is None:
        return scalar
    return scalar + (_libm_key(env.veclibm),)


def scalar_env_fingerprint(env: FPEnvironment) -> tuple:
    """The fingerprint's scalar projection — everything but the vec-libm.

    Structural-tag preconditions compare environments with this key:
    a vectorized-libm difference is exactly what the vec-libm *tier*
    reports, so it must not disqualify the pair from structural tagging
    the way a genuine scalar-semantics difference does.
    """
    return (
        env.precision.value,
        _libm_key(env.libm),
        env.ftz,
        env.approx_div,
        env.approx_sqrt,
        env._salt,
    )


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters plus occupancy of one :class:`CompileCache`."""

    hits: int
    misses: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CompileCache:
    """Bounded LRU of compiled binaries keyed by content address.

    Key: ``(kernel fingerprint, compiler name, cache token)``.  Thread
    safe — the engine's compile stage may probe and fill it from several
    workers at once; concurrent fills of one key are benign because the
    pipelines are deterministic, so both writers store equal binaries.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Binary] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: tuple) -> Binary | None:
        with self._lock:
            binary = self._entries.get(key)
            if binary is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return binary

    def put(self, key: tuple, binary: Binary) -> None:
        with self._lock:
            self._entries[key] = binary
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                capacity=self.capacity,
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
