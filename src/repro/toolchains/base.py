"""Compiler and binary abstractions shared by all toolchain models."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CompileError, ReproError
from repro.execution.interp import Interpreter
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.result import ExecutionResult
from repro.fp.env import FPEnvironment
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.sema import SemaOptions, check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes.base import PassPipeline
from repro.toolchains.optlevels import OptLevel, flags_for

__all__ = ["CompilerKind", "Binary", "Compiler"]


class CompilerKind(enum.Enum):
    HOST = "host"
    DEVICE = "device"


@dataclass(frozen=True)
class Binary:
    """The output of one compilation: optimized IR bound to an environment."""

    compiler: str
    level: OptLevel
    kernel: ir.Kernel
    env: FPEnvironment
    flags: str = ""

    @property
    def label(self) -> str:
        return f"{self.compiler}/{self.level}"

    def run(self, inputs: tuple, max_steps: int = DEFAULT_MAX_STEPS) -> ExecutionResult:
        """Execute on one input vector; a fresh interpreter per run."""
        return Interpreter(self.kernel, self.env, max_steps).run(inputs)


class Compiler:
    """A simulated compiler: per-level pass pipelines + FP environments.

    Subclasses define :meth:`pipeline` and :meth:`environment`; compilation
    itself (parse -> sema -> lower -> optimize) is shared.  ``compile``
    raises :class:`CompileError` on any front-end rejection, which the
    differential harness records as a failed compilation.
    """

    #: family name used in reports and Table 1 flag lookup
    name: str = "abstract"
    kind: CompilerKind = CompilerKind.HOST
    version: str = ""

    def pipeline(self, level: OptLevel) -> PassPipeline:
        raise NotImplementedError

    def environment(self, level: OptLevel) -> FPEnvironment:
        raise NotImplementedError

    # -- compilation -----------------------------------------------------------

    def compile_source(self, source: str, level: OptLevel) -> Binary:
        """Compile C (host) / CUDA-equivalent (device) source text."""
        try:
            unit = parse_program(source)
        except ReproError as e:
            raise CompileError(f"{self.name}: parse error: {e}") from e
        return self.compile_unit(unit, level)

    def compile_unit(self, unit: ast.TranslationUnit, level: OptLevel) -> Binary:
        try:
            sema = check_program(unit, self.sema_options())
            kernel = lower_compute(sema)
        except ReproError as e:
            raise CompileError(f"{self.name}: {e}") from e
        return self.compile_kernel(kernel, level)

    def compile_kernel(self, kernel: ir.Kernel, level: OptLevel) -> Binary:
        """Back-end only: optimize an already-lowered kernel.

        The differential harness front-ends each program once and reuses
        the kernel across this compiler's levels, like a build farm reusing
        a parse tree — semantics are identical to :meth:`compile_unit`.
        """
        optimized = self.pipeline(level).run(kernel)
        return Binary(
            compiler=self.name,
            level=level,
            kernel=optimized,
            env=self.environment(level),
            flags=flags_for(self.name, level),
        )

    def sema_options(self) -> SemaOptions:
        return SemaOptions()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        v = f" {self.version}" if self.version else ""
        return f"<{type(self).__name__}{v} ({self.kind.value})>"
