"""Compiler and binary abstractions shared by all toolchain models."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import CompileError, ReproError
from repro.execution.interp import Interpreter
from repro.execution.limits import DEFAULT_MAX_STEPS
from repro.execution.result import ExecutionResult
from repro.fp.env import FPEnvironment
from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.sema import SemaOptions, check_program
from repro.ir import nodes as ir
from repro.ir.lower import lower_compute
from repro.ir.passes.base import PassPipeline
from repro.toolchains.optlevels import OptLevel, flags_for

__all__ = ["CompilerKind", "Binary", "Compiler"]


class CompilerKind(enum.Enum):
    HOST = "host"
    DEVICE = "device"


def _flags_or(name: str, level: OptLevel, fallback: str) -> str:
    """Table 1 flags for known families; custom compilers keep theirs."""
    try:
        return flags_for(name, level)
    except KeyError:
        return fallback


@dataclass(frozen=True)
class Binary:
    """The output of one compilation: optimized IR bound to an environment."""

    compiler: str
    level: OptLevel
    kernel: ir.Kernel
    env: FPEnvironment
    flags: str = ""

    @property
    def label(self) -> str:
        return f"{self.compiler}/{self.level}"

    def run(self, inputs: tuple, max_steps: int = DEFAULT_MAX_STEPS) -> ExecutionResult:
        """Execute on one input vector; a fresh interpreter per run."""
        return Interpreter(self.kernel, self.env, max_steps).run(inputs)


class Compiler:
    """A simulated compiler: per-level pass pipelines + FP environments.

    Subclasses define :meth:`pipeline` and :meth:`environment`; compilation
    itself (parse -> sema -> lower -> optimize) is shared.  ``compile``
    raises :class:`CompileError` on any front-end rejection, which the
    differential harness records as a failed compilation.
    """

    #: family name used in reports and Table 1 flag lookup
    name: str = "abstract"
    kind: CompilerKind = CompilerKind.HOST
    version: str = ""

    def pipeline(self, level: OptLevel) -> PassPipeline:
        raise NotImplementedError

    def environment(self, level: OptLevel) -> FPEnvironment:
        raise NotImplementedError

    # -- compilation -----------------------------------------------------------

    def compile_source(self, source: str, level: OptLevel) -> Binary:
        """Compile C (host) / CUDA-equivalent (device) source text."""
        try:
            unit = parse_program(source)
        except ReproError as e:
            raise CompileError(f"{self.name}: parse error: {e}") from e
        return self.compile_unit(unit, level)

    def compile_unit(self, unit: ast.TranslationUnit, level: OptLevel) -> Binary:
        try:
            sema = check_program(unit, self.sema_options())
            kernel = lower_compute(sema)
        except ReproError as e:
            raise CompileError(f"{self.name}: {e}") from e
        return self.compile_kernel(kernel, level)

    def compile_kernel(self, kernel: ir.Kernel, level: OptLevel) -> Binary:
        """Back-end only: optimize an already-lowered kernel.

        The differential harness front-ends each program once and reuses
        the kernel across this compiler's levels, like a build farm reusing
        a parse tree — semantics are identical to :meth:`compile_unit`.
        """
        optimized = self.pipeline(level).run(kernel)
        return Binary(
            compiler=self.name,
            level=level,
            kernel=optimized,
            env=self.environment(level),
            flags=flags_for(self.name, level),
        )

    # -- compile caching ---------------------------------------------------------

    def cache_token(self, level: OptLevel) -> str:
        """Cache-key component identifying this compiler's (pipeline,
        environment) pair at ``level``.

        Levels whose pipeline *and* environment coincide may return one
        token, letting the compile cache serve a single optimized binary
        for the whole equivalence class (gcc's O1/O2/O3 run the same
        passes, nvcc contracts FMA identically at every level but
        ``O0_nofma``, ...).  The default is maximally conservative — one
        token per level — which is always correct.
        """
        return str(level)

    def compile_kernel_cached(
        self,
        kernel: ir.Kernel,
        level: OptLevel,
        cache,
        kernel_key: str,
        token: str | None = None,
    ) -> tuple[Binary, bool]:
        """Compile via a content-addressed cache; returns (binary, hit).

        ``cache`` is a :class:`~repro.toolchains.cache.CompileCache` (or
        anything with its get/put interface) and ``kernel_key`` the
        kernel's content fingerprint.  ``token`` overrides the level
        component of the key (defaults to :meth:`cache_token`).  A cached
        binary compiled at a sibling level of the same equivalence class
        is re-labelled with this level's metadata; its optimized kernel
        and environment are identical by construction.
        """
        key = (kernel_key, self.name, token if token is not None else self.cache_token(level))
        binary = cache.get(key)
        if binary is not None:
            if binary.level is not level:
                binary = replace(
                    binary, level=level, flags=_flags_or(self.name, level, binary.flags)
                )
            return binary, True
        binary = self.compile_kernel(kernel, level)
        cache.put(key, binary)
        return binary, False

    def sema_options(self) -> SemaOptions:
        return SemaOptions()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        v = f" {self.version}" if self.version else ""
        return f"<{type(self).__name__}{v} ({self.kind.value})>"
