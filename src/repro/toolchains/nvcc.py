"""The nvcc 12.3 device-compiler model.

The device compiler consumes the CUDA translation of the candidate program
(§2.4: ``compute`` as a ``__global__`` kernel, single block/thread); the
lowered kernel IR is identical, so this model compiles the same unit with
device semantics:

* links the CUDA Math Library (:func:`~repro.fp.mathlib.CudaLibm`), whose
  faithful-rounding outcomes differ from glibc's — the dominant host-device
  inconsistency source at every level (paper RQ3);
* contracts FMA at **every** level except ``O0_nofma`` (``--fmad=true`` is
  the nvcc default; only the explicit ``--fmad=false`` disables it) — hence
  the paper's flat nvcc rows in Tables 4/5 and the nonzero nvcc O0 vs
  O0_nofma entry in Table 5;
* models the CUDA port's **warp-level reduction**: innermost reduction
  loops widen to :data:`~repro.toolchains.optlevels.WARP_WIDTH` (32)
  lanes with a ``butterfly`` (``shfl_down``-style) horizontal reduction.
  The warp structure is a property of the translation, not of an
  optimization level, so — like FMA contraction — it applies at every
  level except the explicit most-IEEE baseline ``O0_nofma``, keeping the
  nvcc column flat across O0..O3;
* **predicates** conditional loop bodies at every vectorizing level:
  warp "branches" are predication (divergent lanes execute both sides
  under an active mask), a property of the machine rather than of an
  optimization level, so conditional reductions if-convert and widen
  wherever the warp reduction itself engages;
* under ``--use_fast_math`` the *single-precision* pipeline additionally
  flushes subnormals to zero and uses approximate division/square root and
  hardware intrinsics; double-precision math is unaffected (matching CUDA's
  documented fast-math scope, and the paper's nearly-flat nvcc column in
  Table 5).
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.fp.formats import Precision
from repro.fp.mathlib import CudaLibm, FastCudaLibm, NvccVecLibm
from repro.ir.passes import FmaContract, IfConvert, PassPipeline, Vectorize
from repro.toolchains.base import Compiler, CompilerKind
from repro.toolchains.optlevels import OptLevel, TierPolicy, tier_policy

__all__ = ["NvccCompiler"]


class NvccCompiler(Compiler):
    name = "nvcc"
    kind = CompilerKind.DEVICE
    version = "12.3"

    #: fraction of eligible multiply-add sites ptxas actually fuses (see
    #: :class:`~repro.ir.passes.fma_contract.FmaContract` — selective,
    #: deterministic per site, identical across levels)
    DEFAULT_FMAD_PROB = 0.10

    def __init__(
        self,
        precision: Precision = Precision.DOUBLE,
        fmad_prob: float = DEFAULT_FMAD_PROB,
        tiers: str = "baseline",
    ) -> None:
        #: kernel precision: fast-math FTZ/approx units apply to FP32 only.
        self.precision = precision
        self.fmad_prob = fmad_prob
        #: divergence-tier profile (see ``optlevels.tier_policy``)
        self.tiers = tiers

    #: warp reductions combine lanes shfl_down-style (recursive halves)
    REDUCE_STYLE = "butterfly"

    def _policy(self, level: OptLevel) -> TierPolicy:
        return tier_policy(self.name, level, self.tiers)

    def pipeline(self, level: OptLevel) -> PassPipeline:
        pol = self._policy(level)
        if not pol.vector_width:
            return PassPipeline()
        return PassPipeline(
            [
                FmaContract(site_prob=self.fmad_prob),
                IfConvert(),
                Vectorize(
                    pol.vector_width,
                    style=self.REDUCE_STYLE,
                    masked=True,
                    int_guards=pol.int_guards,
                    mixed=pol.mixed_precision,
                ),
            ]
        )

    def cache_token(self, level: OptLevel) -> str:
        # One FmaContract+Vectorize pipeline everywhere except O0_nofma;
        # fast math changes the environment only for single-precision
        # kernels.  The token carries the instance knobs because cache keys
        # include only the family name, and two NvccCompiler instances may
        # differ.
        cfg = f"{self.precision.value},fmad={self.fmad_prob}"
        if self.tiers != "baseline":
            cfg += f",tiers={self.tiers}"
        if level is OptLevel.O0_NOFMA:
            return f"O0_nofma[{cfg}]"
        fast32 = (
            level is OptLevel.O3_FASTMATH and self.precision is Precision.SINGLE
        )
        if fast32:
            return f"fast32[{cfg}]"
        return f"fmad[{cfg}]"

    def environment(self, level: OptLevel) -> FPEnvironment:
        fast32 = (
            level is OptLevel.O3_FASTMATH and self.precision is Precision.SINGLE
        )
        if fast32:
            # The SIMT-intrinsic vector library follows fast math's
            # single-precision scope, like the FTZ/approx units.
            veclibm = NvccVecLibm() if self._policy(level).vec_libm else None
            return FPEnvironment(
                precision=self.precision,
                libm=FastCudaLibm(),
                ftz=True,
                approx_div=True,
                approx_sqrt=True,
                veclibm=veclibm,
            )
        return FPEnvironment(precision=self.precision, libm=CudaLibm())
