"""Optimization levels and their command-line flags (paper Table 1)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OptLevel(enum.Enum):
    """The six levels of the paper's evaluation, in ascending aggressiveness.

    ``O0_NOFMA`` is the most IEEE-compliant configuration (``-O0`` with FMA
    contraction explicitly disabled) and serves as the RQ4 baseline;
    ``O3_FASTMATH`` trades IEEE compliance for speed.
    """

    O0_NOFMA = "O0_nofma"
    O0 = "O0"
    O1 = "O1"
    O2 = "O2"
    O3 = "O3"
    O3_FASTMATH = "O3_fastmath"

    def __str__(self) -> str:
        return self.value


#: All levels in Table 1 order.
ALL_LEVELS: tuple[OptLevel, ...] = (
    OptLevel.O0_NOFMA,
    OptLevel.O0,
    OptLevel.O1,
    OptLevel.O2,
    OptLevel.O3,
    OptLevel.O3_FASTMATH,
)

_HOST_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 -ffp-contract=off",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 -ffast-math",
}

_NVCC_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 --fmad=false",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 --use_fast_math",
}


def flags_for(compiler_family: str, level: OptLevel) -> str:
    """Table 1: the flag string for a compiler family at a level."""
    if compiler_family in ("gcc", "clang"):
        return _HOST_FLAGS[level]
    if compiler_family == "nvcc":
        return _NVCC_FLAGS[level]
    raise KeyError(f"unknown compiler family {compiler_family!r}")


# -- the vectorization tier ----------------------------------------------------
#
# Modeled auto-vectorization widths (lanes) per family and level.  Host
# compilers engage the loop vectorizer from -O2 (128-bit vectors, 4 lanes)
# and widen to 8 lanes at -O3 and under fast math (256-bit vectors plus
# vectorizer-driven unrolling); nvcc models the CUDA translation's
# warp-level reduction — 32 lanes at every level except the explicit
# most-IEEE baseline O0_nofma, mirroring how only ``--fmad=false`` turns
# off its other aggressive default.  A width of 0 means "no vector tier
# at this level".

_HOST_VECTOR_WIDTHS = {
    OptLevel.O2: 4,
    OptLevel.O3: 8,
    OptLevel.O3_FASTMATH: 8,
}

#: nvcc's modeled warp width.
WARP_WIDTH = 32


def vector_width_for(compiler_family: str, level: OptLevel) -> int:
    """Deprecated shim over :func:`tier_policy` — use the policy table.

    Kept for callers written against the pre-registry API; equivalent to
    ``tier_policy(compiler_family, level).vector_width``.
    """
    return tier_policy(compiler_family, level).vector_width


# -- the if-conversion (masking) tier ------------------------------------------
#
# Whether the family's vectorizer if-converts conditional loop bodies
# (select-based masking) before widening.  Hosts model the cost-driven
# behaviour of gcc/clang: masked vectorization only at -O3 and under
# fast math, where the vectorizer's cost model stops being conservative
# about the blend overhead — at -O2 conditional bodies stay scalar
# branches.  The device model predicates at every level that vectorizes
# at all: GPU "branches" within a warp *are* predication (divergent
# lanes execute both sides under an active mask), a property of the
# machine rather than of an optimization level, so — like FMA
# contraction and the warp reduction itself — only the explicit
# most-IEEE baseline O0_nofma turns it off.

_HOST_IF_CONVERT_LEVELS = frozenset({OptLevel.O3, OptLevel.O3_FASTMATH})


# -- the per-compiler tier-policy table ----------------------------------------
#
# One :class:`TierPolicy` per (family, level, profile) answers every "does
# this toolchain engage tier X here?" question the pipelines, environments
# and the divergence-tier registry (:mod:`repro.tiers`) ask.  The
# ``baseline`` profile reproduces the pre-registry behaviour exactly —
# vector widths and if-conversion as above, no vector math library, no
# mixed-precision or integer-guard widening — so existing campaigns replay
# byte-identically.  The ``full`` profile additionally engages the newer
# tiers where the modeled toolchains would:
#
# * ``vec_libm`` — vectorized libm calls resolve through a per-family
#   vector math library (gcc: libmvec, clang: SLEEF-style, nvcc: SIMT
#   intrinsics).  Real host compilers only emit vector math calls under
#   fast math (gcc needs ``-ffast-math``/``-fno-math-errno`` to use
#   ``_ZGV`` symbols), so the tier engages at O3_FASTMATH only.
# * ``mixed_precision`` — ``FpExt``/``FpTrunc`` conversion sites widen
#   with the loop body instead of blocking vectorization; engages wherever
#   the vectorizer itself does.
# * ``int_guards`` — trip-dependent integer guards (``if (i < m)``) widen
#   into iota/splat masks; engages wherever if-conversion does.

#: Recognized tier profiles, least to most aggressive.
TIER_PROFILES: tuple[str, ...] = ("baseline", "full")


@dataclass(frozen=True)
class TierPolicy:
    """Divergence-tier enablement of one (family, level, profile)."""

    #: vectorizer lanes (0 = scalar only; subsumes ``vector_width_for``)
    vector_width: int = 0
    #: if-convert conditional bodies before widening (``if_conversion_for``)
    if_convert: bool = False
    #: widen integer guard comparisons into iota/splat masks
    int_guards: bool = False
    #: link a vector math library for vectorized call sites
    vec_libm: bool = False
    #: widen FpExt/FpTrunc conversion sites (mixed-precision bodies)
    mixed_precision: bool = False


def tier_policy(
    compiler_family: str, level: OptLevel, profile: str = "baseline"
) -> TierPolicy:
    """The tier-policy table entry for ``compiler_family`` at ``level``."""
    if profile not in TIER_PROFILES:
        raise KeyError(f"unknown tier profile {profile!r}")
    if compiler_family in ("gcc", "clang"):
        width = _HOST_VECTOR_WIDTHS.get(level, 0)
        if_conv = bool(width) and level in _HOST_IF_CONVERT_LEVELS
    elif compiler_family == "nvcc":
        width = 0 if level is OptLevel.O0_NOFMA else WARP_WIDTH
        if_conv = bool(width)
    else:
        raise KeyError(f"unknown compiler family {compiler_family!r}")
    if profile == "baseline" or not width:
        return TierPolicy(vector_width=width, if_convert=if_conv)
    return TierPolicy(
        vector_width=width,
        if_convert=if_conv,
        int_guards=if_conv,
        vec_libm=level is OptLevel.O3_FASTMATH,
        mixed_precision=True,
    )


def if_conversion_for(compiler_family: str, level: OptLevel) -> bool:
    """Deprecated shim over :func:`tier_policy` — use the policy table.

    Kept for callers written against the pre-registry API; equivalent to
    ``tier_policy(compiler_family, level).if_convert``.
    """
    return tier_policy(compiler_family, level).if_convert
