"""Optimization levels and their command-line flags (paper Table 1)."""

from __future__ import annotations

import enum


class OptLevel(enum.Enum):
    """The six levels of the paper's evaluation, in ascending aggressiveness.

    ``O0_NOFMA`` is the most IEEE-compliant configuration (``-O0`` with FMA
    contraction explicitly disabled) and serves as the RQ4 baseline;
    ``O3_FASTMATH`` trades IEEE compliance for speed.
    """

    O0_NOFMA = "O0_nofma"
    O0 = "O0"
    O1 = "O1"
    O2 = "O2"
    O3 = "O3"
    O3_FASTMATH = "O3_fastmath"

    def __str__(self) -> str:
        return self.value


#: All levels in Table 1 order.
ALL_LEVELS: tuple[OptLevel, ...] = (
    OptLevel.O0_NOFMA,
    OptLevel.O0,
    OptLevel.O1,
    OptLevel.O2,
    OptLevel.O3,
    OptLevel.O3_FASTMATH,
)

_HOST_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 -ffp-contract=off",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 -ffast-math",
}

_NVCC_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 --fmad=false",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 --use_fast_math",
}


def flags_for(compiler_family: str, level: OptLevel) -> str:
    """Table 1: the flag string for a compiler family at a level."""
    if compiler_family in ("gcc", "clang"):
        return _HOST_FLAGS[level]
    if compiler_family == "nvcc":
        return _NVCC_FLAGS[level]
    raise KeyError(f"unknown compiler family {compiler_family!r}")
