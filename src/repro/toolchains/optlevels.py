"""Optimization levels and their command-line flags (paper Table 1)."""

from __future__ import annotations

import enum


class OptLevel(enum.Enum):
    """The six levels of the paper's evaluation, in ascending aggressiveness.

    ``O0_NOFMA`` is the most IEEE-compliant configuration (``-O0`` with FMA
    contraction explicitly disabled) and serves as the RQ4 baseline;
    ``O3_FASTMATH`` trades IEEE compliance for speed.
    """

    O0_NOFMA = "O0_nofma"
    O0 = "O0"
    O1 = "O1"
    O2 = "O2"
    O3 = "O3"
    O3_FASTMATH = "O3_fastmath"

    def __str__(self) -> str:
        return self.value


#: All levels in Table 1 order.
ALL_LEVELS: tuple[OptLevel, ...] = (
    OptLevel.O0_NOFMA,
    OptLevel.O0,
    OptLevel.O1,
    OptLevel.O2,
    OptLevel.O3,
    OptLevel.O3_FASTMATH,
)

_HOST_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 -ffp-contract=off",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 -ffast-math",
}

_NVCC_FLAGS = {
    OptLevel.O0_NOFMA: "-O0 --fmad=false",
    OptLevel.O0: "-O0",
    OptLevel.O1: "-O1",
    OptLevel.O2: "-O2",
    OptLevel.O3: "-O3",
    OptLevel.O3_FASTMATH: "-O3 --use_fast_math",
}


def flags_for(compiler_family: str, level: OptLevel) -> str:
    """Table 1: the flag string for a compiler family at a level."""
    if compiler_family in ("gcc", "clang"):
        return _HOST_FLAGS[level]
    if compiler_family == "nvcc":
        return _NVCC_FLAGS[level]
    raise KeyError(f"unknown compiler family {compiler_family!r}")


# -- the vectorization tier ----------------------------------------------------
#
# Modeled auto-vectorization widths (lanes) per family and level.  Host
# compilers engage the loop vectorizer from -O2 (128-bit vectors, 4 lanes)
# and widen to 8 lanes at -O3 and under fast math (256-bit vectors plus
# vectorizer-driven unrolling); nvcc models the CUDA translation's
# warp-level reduction — 32 lanes at every level except the explicit
# most-IEEE baseline O0_nofma, mirroring how only ``--fmad=false`` turns
# off its other aggressive default.  A width of 0 means "no vector tier
# at this level".

_HOST_VECTOR_WIDTHS = {
    OptLevel.O2: 4,
    OptLevel.O3: 8,
    OptLevel.O3_FASTMATH: 8,
}

#: nvcc's modeled warp width.
WARP_WIDTH = 32


def vector_width_for(compiler_family: str, level: OptLevel) -> int:
    """Lanes the family's vectorizer uses at ``level`` (0 = scalar only)."""
    if compiler_family in ("gcc", "clang"):
        return _HOST_VECTOR_WIDTHS.get(level, 0)
    if compiler_family == "nvcc":
        return 0 if level is OptLevel.O0_NOFMA else WARP_WIDTH
    raise KeyError(f"unknown compiler family {compiler_family!r}")


# -- the if-conversion (masking) tier ------------------------------------------
#
# Whether the family's vectorizer if-converts conditional loop bodies
# (select-based masking) before widening.  Hosts model the cost-driven
# behaviour of gcc/clang: masked vectorization only at -O3 and under
# fast math, where the vectorizer's cost model stops being conservative
# about the blend overhead — at -O2 conditional bodies stay scalar
# branches.  The device model predicates at every level that vectorizes
# at all: GPU "branches" within a warp *are* predication (divergent
# lanes execute both sides under an active mask), a property of the
# machine rather than of an optimization level, so — like FMA
# contraction and the warp reduction itself — only the explicit
# most-IEEE baseline O0_nofma turns it off.

_HOST_IF_CONVERT_LEVELS = frozenset({OptLevel.O3, OptLevel.O3_FASTMATH})


def if_conversion_for(compiler_family: str, level: OptLevel) -> bool:
    """Whether the family if-converts (masks) conditional loops at ``level``."""
    if not vector_width_for(compiler_family, level):
        return False
    if compiler_family in ("gcc", "clang"):
        return level in _HOST_IF_CONVERT_LEVELS
    return True  # nvcc: warp predication at every vectorizing level
