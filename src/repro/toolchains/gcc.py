"""The gcc 9.4 host-compiler model.

Mechanisms (see DESIGN.md "mechanism map"):

* links the glibc math library at O0..O3 (:func:`~repro.fp.mathlib.HostLibm`)
  and its finite/fast entry points under ``-ffast-math``;
* no FMA contraction at any level — a baseline x86-64 target has no FMA
  instruction, which is why the paper's Table 5 reports no gcc O0 vs
  O0_nofma difference;
* from ``-O1`` folds constant-argument libm calls with a correctly rounded
  compile-time evaluator (MPFR in real gcc), which may differ from the
  runtime glibc result by an ulp;
* from ``-O2`` the loop vectorizer engages (4 lanes at O2, 8 at O3): the
  enabling unroll then SLP widening of innermost reduction/map loops, with
  ``adjacent`` (haddpd-style pairwise) horizontal reductions — the
  vector-tier counterpart of gcc's balanced-tree reassociation;
* from ``-O3`` (and under fast math) the vectorizer also **if-converts**
  conditional loop bodies into masked select form before widening —
  every lane evaluates both arms and blends by mask — while at ``-O2``
  the cost model keeps conditional bodies as scalar branches;
* ``-ffast-math`` adds reciprocal math, pow expansion (including
  ``pow(x, 0.5) -> sqrt``), balanced-tree reassociation, and
  finite-math-only simplifications, then vectorizes at the full 8 lanes.
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import FastHostLibm, HostLibm
from repro.ir.passes import (
    ConstantFold,
    FiniteMathSimplify,
    FunctionSubstitution,
    IfConvert,
    LoopUnroll,
    PassPipeline,
    Reassociate,
    ReciprocalDivision,
    Vectorize,
)
from repro.toolchains.base import Compiler, CompilerKind
from repro.toolchains.optlevels import OptLevel, if_conversion_for, vector_width_for

__all__ = ["GccCompiler"]


class GccCompiler(Compiler):
    name = "gcc"
    kind = CompilerKind.HOST
    version = "9.4"

    #: horizontal-reduction shape of the modeled gcc vectorizer
    REDUCE_STYLE = "adjacent"

    def _vector_passes(self, level: OptLevel) -> list:
        width = vector_width_for(self.name, level)
        if not width:
            return []
        masked = if_conversion_for(self.name, level)
        passes: list = [IfConvert()] if masked else []
        passes += [
            LoopUnroll(width),
            Vectorize(width, style=self.REDUCE_STYLE, masked=masked),
        ]
        return passes

    def pipeline(self, level: OptLevel) -> PassPipeline:
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return PassPipeline()
        if level in (OptLevel.O1, OptLevel.O2, OptLevel.O3):
            return PassPipeline(
                [
                    ConstantFold(fold_calls=True, propagate=False),
                    *self._vector_passes(level),
                ]
            )
        return PassPipeline(
            [
                ConstantFold(fold_calls=True, propagate=False),
                FunctionSubstitution(max_pow_expand=4, pow_half_to_sqrt=True),
                ReciprocalDivision(),
                Reassociate(style="balanced"),
                FiniteMathSimplify(),
                *self._vector_passes(level),
            ]
        )

    def cache_token(self, level: OptLevel) -> str:
        # Five (pipeline, environment) classes: no passes at O0/O0_nofma,
        # literal constant folding at O1, folding + 4-lane vectorization
        # at O2, 8-lane at O3, the fast-math pipeline on top.
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return "O0"
        if level is OptLevel.O1:
            return "O1"
        if level in (OptLevel.O2, OptLevel.O3):
            return f"{level}+vec{vector_width_for(self.name, level)}"
        return "O3_fastmath"

    def environment(self, level: OptLevel) -> FPEnvironment:
        if level is OptLevel.O3_FASTMATH:
            return FPEnvironment(libm=FastHostLibm())
        return FPEnvironment(libm=HostLibm())
