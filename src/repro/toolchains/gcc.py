"""The gcc 9.4 host-compiler model.

Mechanisms (see DESIGN.md "mechanism map"):

* links the glibc math library at O0..O3 (:func:`~repro.fp.mathlib.HostLibm`)
  and its finite/fast entry points under ``-ffast-math``;
* no FMA contraction at any level — a baseline x86-64 target has no FMA
  instruction, which is why the paper's Table 5 reports no gcc O0 vs
  O0_nofma difference;
* from ``-O1`` folds constant-argument libm calls with a correctly rounded
  compile-time evaluator (MPFR in real gcc), which may differ from the
  runtime glibc result by an ulp;
* from ``-O2`` the loop vectorizer engages (4 lanes at O2, 8 at O3): the
  enabling unroll then SLP widening of innermost reduction/map loops, with
  ``adjacent`` (haddpd-style pairwise) horizontal reductions — the
  vector-tier counterpart of gcc's balanced-tree reassociation;
* from ``-O3`` (and under fast math) the vectorizer also **if-converts**
  conditional loop bodies into masked select form before widening —
  every lane evaluates both arms and blends by mask — while at ``-O2``
  the cost model keeps conditional bodies as scalar branches;
* ``-ffast-math`` adds reciprocal math, pow expansion (including
  ``pow(x, 0.5) -> sqrt``), balanced-tree reassociation, and
  finite-math-only simplifications, then vectorizes at the full 8 lanes.
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import FastHostLibm, GccVecLibm, HostLibm
from repro.ir.passes import (
    ConstantFold,
    FiniteMathSimplify,
    FunctionSubstitution,
    IfConvert,
    LoopUnroll,
    PassPipeline,
    Reassociate,
    ReciprocalDivision,
    Vectorize,
)
from repro.toolchains.base import Compiler, CompilerKind
from repro.toolchains.optlevels import OptLevel, TierPolicy, tier_policy

__all__ = ["GccCompiler"]


class GccCompiler(Compiler):
    name = "gcc"
    kind = CompilerKind.HOST
    version = "9.4"

    #: horizontal-reduction shape of the modeled gcc vectorizer
    REDUCE_STYLE = "adjacent"

    def __init__(self, tiers: str = "baseline") -> None:
        #: divergence-tier profile (see ``optlevels.tier_policy``)
        self.tiers = tiers

    def _policy(self, level: OptLevel) -> TierPolicy:
        return tier_policy(self.name, level, self.tiers)

    def _vector_passes(self, level: OptLevel) -> list:
        pol = self._policy(level)
        if not pol.vector_width:
            return []
        passes: list = [IfConvert()] if pol.if_convert else []
        passes += [
            LoopUnroll(pol.vector_width),
            Vectorize(
                pol.vector_width,
                style=self.REDUCE_STYLE,
                masked=pol.if_convert,
                int_guards=pol.int_guards,
                mixed=pol.mixed_precision,
            ),
        ]
        return passes

    def pipeline(self, level: OptLevel) -> PassPipeline:
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return PassPipeline()
        if level in (OptLevel.O1, OptLevel.O2, OptLevel.O3):
            return PassPipeline(
                [
                    ConstantFold(fold_calls=True, propagate=False),
                    *self._vector_passes(level),
                ]
            )
        return PassPipeline(
            [
                ConstantFold(fold_calls=True, propagate=False),
                FunctionSubstitution(max_pow_expand=4, pow_half_to_sqrt=True),
                ReciprocalDivision(),
                Reassociate(style="balanced"),
                FiniteMathSimplify(),
                *self._vector_passes(level),
            ]
        )

    def cache_token(self, level: OptLevel) -> str:
        # Five (pipeline, environment) classes: no passes at O0/O0_nofma,
        # literal constant folding at O1, folding + 4-lane vectorization
        # at O2, 8-lane at O3, the fast-math pipeline on top.  A
        # non-baseline tier profile changes both pipeline and environment,
        # so it suffixes every token.
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            token = "O0"
        elif level is OptLevel.O1:
            token = "O1"
        elif level in (OptLevel.O2, OptLevel.O3):
            token = f"{level}+vec{self._policy(level).vector_width}"
        else:
            token = "O3_fastmath"
        if self.tiers != "baseline":
            token += f"+tiers:{self.tiers}"
        return token

    def environment(self, level: OptLevel) -> FPEnvironment:
        veclibm = GccVecLibm() if self._policy(level).vec_libm else None
        if level is OptLevel.O3_FASTMATH:
            return FPEnvironment(libm=FastHostLibm(), veclibm=veclibm)
        return FPEnvironment(libm=HostLibm(), veclibm=veclibm)
