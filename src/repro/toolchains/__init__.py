"""Simulated compiler toolchains: gcc/clang host models and the nvcc device model.

Each compiler is a pass pipeline + floating-point environment per
optimization level (Table 1 of the paper).  The default trio matches the
paper's setup: ``gcc`` 9.4 and ``clang`` 12.0 as host compilers, ``nvcc``
12.3 as the device compiler compiling the CUDA translation.
"""

from repro.toolchains.base import Binary, Compiler, CompilerKind
from repro.toolchains.cache import (
    CacheStats,
    CompileCache,
    env_fingerprint,
    kernel_fingerprint,
    scalar_env_fingerprint,
)
from repro.toolchains.optlevels import (
    ALL_LEVELS,
    TIER_PROFILES,
    OptLevel,
    TierPolicy,
    flags_for,
    tier_policy,
)
from repro.toolchains.gcc import GccCompiler
from repro.toolchains.clang import ClangCompiler
from repro.toolchains.nvcc import NvccCompiler
from repro.toolchains.system import SystemGcc, system_gcc_available

__all__ = [
    "Binary",
    "CacheStats",
    "Compiler",
    "CompileCache",
    "CompilerKind",
    "env_fingerprint",
    "kernel_fingerprint",
    "scalar_env_fingerprint",
    "OptLevel",
    "ALL_LEVELS",
    "TIER_PROFILES",
    "TierPolicy",
    "tier_policy",
    "flags_for",
    "GccCompiler",
    "ClangCompiler",
    "NvccCompiler",
    "SystemGcc",
    "system_gcc_available",
    "default_compilers",
]


def default_compilers(tiers: str = "baseline") -> list[Compiler]:
    """The paper's compiler set: gcc, clang (host) and nvcc (device).

    ``tiers`` selects the divergence-tier profile every member compiles
    under (see :func:`repro.toolchains.optlevels.tier_policy`).
    """
    return [GccCompiler(tiers=tiers), ClangCompiler(tiers=tiers), NvccCompiler(tiers=tiers)]
