"""C -> CUDA translation utilities (paper §2.4).

The textual translation lives in :func:`repro.frontend.printer.print_cuda`;
this module packages it with the round-trip used by the compilation driver:
the device compiler receives the translated source, re-parses it, and
compiles the same ``compute`` kernel with device semantics.
"""

from __future__ import annotations

from repro.frontend import ast
from repro.frontend.parser import parse_program
from repro.frontend.printer import print_cuda

__all__ = ["translate_to_cuda", "cuda_source"]


def cuda_source(unit: ast.TranslationUnit) -> str:
    """Render the CUDA version of a host translation unit."""
    return print_cuda(unit)


def translate_to_cuda(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """Translate and re-parse, as the real pipeline would hand nvcc a file.

    The returned unit is semantically identical (the kernel body is
    untouched); round-tripping through text asserts the translation stays
    within the accepted language.
    """
    return parse_program(cuda_source(unit))
