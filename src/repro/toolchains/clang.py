"""The clang 12.0 host-compiler model.

Differences from the gcc model that drive gcc-vs-clang inconsistencies:

* clang's front end folds constant-argument libm calls at *every* level
  (including ``-O0``), while gcc folds only under optimization — a source
  of host-host divergence even at O0/O0_nofma;
* from ``-O1`` clang's constant propagation is modeled as more aggressive:
  const-initialized locals reach call arguments (``propagate=True``),
  folding sites gcc's literal-only folding misses — which is why the clang
  column of the paper's Table 5 is the most level-sensitive host column;
* like gcc, no FMA contraction for a baseline x86-64 target (clang 12
  defaults to ``-ffp-contract=off`` for C anyway);
* from ``-O2`` the loop vectorizer engages at the same widths as gcc
  (4 lanes at O2, 8 at O3) but reduces horizontally by sequential lane
  extraction (``ladder``) rather than gcc's pairwise tree — the vector
  analogue of clang's linear-chain canonicalization — so the two hosts
  bitwise-diverge on vectorized reductions even at matching widths;
* from ``-O3`` (and under fast math) the vectorizer if-converts
  conditional loop bodies into masked select form before widening, like
  gcc — the two hosts then diverge on *masked* reductions through their
  different horizontal styles;
* ``-ffast-math`` reassociates by operand rank (canonicalization) rather
  than gcc's balanced reduction, expands fewer pow special cases, and keeps
  ``pow(x, 0.5)`` as a call.
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import ClangVecLibm, FastHostLibm, HostLibm
from repro.ir.passes import (
    ConstantFold,
    FiniteMathSimplify,
    FunctionSubstitution,
    IfConvert,
    LoopUnroll,
    PassPipeline,
    Reassociate,
    ReciprocalDivision,
    Vectorize,
)
from repro.toolchains.base import Compiler, CompilerKind
from repro.toolchains.optlevels import OptLevel, TierPolicy, tier_policy

__all__ = ["ClangCompiler"]


class ClangCompiler(Compiler):
    name = "clang"
    kind = CompilerKind.HOST
    version = "12.0"

    #: horizontal-reduction shape of the modeled clang vectorizer
    REDUCE_STYLE = "ladder"

    def __init__(self, tiers: str = "baseline") -> None:
        #: divergence-tier profile (see ``optlevels.tier_policy``)
        self.tiers = tiers

    def _policy(self, level: OptLevel) -> TierPolicy:
        return tier_policy(self.name, level, self.tiers)

    def _vector_passes(self, level: OptLevel) -> list:
        pol = self._policy(level)
        if not pol.vector_width:
            return []
        passes: list = [IfConvert()] if pol.if_convert else []
        passes += [
            LoopUnroll(pol.vector_width),
            Vectorize(
                pol.vector_width,
                style=self.REDUCE_STYLE,
                masked=pol.if_convert,
                int_guards=pol.int_guards,
                mixed=pol.mixed_precision,
            ),
        ]
        return passes

    def pipeline(self, level: OptLevel) -> PassPipeline:
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return PassPipeline([ConstantFold(fold_calls=True, propagate=False)])
        if level in (OptLevel.O1, OptLevel.O2, OptLevel.O3):
            return PassPipeline(
                [
                    ConstantFold(fold_calls=True, propagate=True),
                    *self._vector_passes(level),
                ]
            )
        return PassPipeline(
            [
                ConstantFold(fold_calls=True, propagate=True),
                FunctionSubstitution(max_pow_expand=2, pow_half_to_sqrt=False),
                ReciprocalDivision(),
                Reassociate(style="ranked"),
                FiniteMathSimplify(),
                *self._vector_passes(level),
            ]
        )

    def cache_token(self, level: OptLevel) -> str:
        # Mirrors :meth:`pipeline`: front-end folding at O0/O0_nofma,
        # propagating folding at O1, vectorization widths splitting O2
        # and O3, the fast-math pipeline on top.  A non-baseline tier
        # profile changes both pipeline and environment, so it suffixes
        # every token.
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            token = "O0"
        elif level is OptLevel.O1:
            token = "O1"
        elif level in (OptLevel.O2, OptLevel.O3):
            token = f"{level}+vec{self._policy(level).vector_width}"
        else:
            token = "O3_fastmath"
        if self.tiers != "baseline":
            token += f"+tiers:{self.tiers}"
        return token

    def environment(self, level: OptLevel) -> FPEnvironment:
        veclibm = ClangVecLibm() if self._policy(level).vec_libm else None
        if level is OptLevel.O3_FASTMATH:
            return FPEnvironment(libm=FastHostLibm(), veclibm=veclibm)
        return FPEnvironment(libm=HostLibm(), veclibm=veclibm)
