"""The clang 12.0 host-compiler model.

Differences from the gcc model that drive gcc-vs-clang inconsistencies:

* clang's front end folds constant-argument libm calls at *every* level
  (including ``-O0``), while gcc folds only under optimization — a source
  of host-host divergence even at O0/O0_nofma;
* from ``-O1`` clang's constant propagation is modeled as more aggressive:
  const-initialized locals reach call arguments (``propagate=True``),
  folding sites gcc's literal-only folding misses — which is why the clang
  column of the paper's Table 5 is the most level-sensitive host column;
* like gcc, no FMA contraction for a baseline x86-64 target (clang 12
  defaults to ``-ffp-contract=off`` for C anyway);
* from ``-O2`` the loop vectorizer engages at the same widths as gcc
  (4 lanes at O2, 8 at O3) but reduces horizontally by sequential lane
  extraction (``ladder``) rather than gcc's pairwise tree — the vector
  analogue of clang's linear-chain canonicalization — so the two hosts
  bitwise-diverge on vectorized reductions even at matching widths;
* from ``-O3`` (and under fast math) the vectorizer if-converts
  conditional loop bodies into masked select form before widening, like
  gcc — the two hosts then diverge on *masked* reductions through their
  different horizontal styles;
* ``-ffast-math`` reassociates by operand rank (canonicalization) rather
  than gcc's balanced reduction, expands fewer pow special cases, and keeps
  ``pow(x, 0.5)`` as a call.
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.fp.mathlib import FastHostLibm, HostLibm
from repro.ir.passes import (
    ConstantFold,
    FiniteMathSimplify,
    FunctionSubstitution,
    IfConvert,
    LoopUnroll,
    PassPipeline,
    Reassociate,
    ReciprocalDivision,
    Vectorize,
)
from repro.toolchains.base import Compiler, CompilerKind
from repro.toolchains.optlevels import OptLevel, if_conversion_for, vector_width_for

__all__ = ["ClangCompiler"]


class ClangCompiler(Compiler):
    name = "clang"
    kind = CompilerKind.HOST
    version = "12.0"

    #: horizontal-reduction shape of the modeled clang vectorizer
    REDUCE_STYLE = "ladder"

    def _vector_passes(self, level: OptLevel) -> list:
        width = vector_width_for(self.name, level)
        if not width:
            return []
        masked = if_conversion_for(self.name, level)
        passes: list = [IfConvert()] if masked else []
        passes += [
            LoopUnroll(width),
            Vectorize(width, style=self.REDUCE_STYLE, masked=masked),
        ]
        return passes

    def pipeline(self, level: OptLevel) -> PassPipeline:
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return PassPipeline([ConstantFold(fold_calls=True, propagate=False)])
        if level in (OptLevel.O1, OptLevel.O2, OptLevel.O3):
            return PassPipeline(
                [
                    ConstantFold(fold_calls=True, propagate=True),
                    *self._vector_passes(level),
                ]
            )
        return PassPipeline(
            [
                ConstantFold(fold_calls=True, propagate=True),
                FunctionSubstitution(max_pow_expand=2, pow_half_to_sqrt=False),
                ReciprocalDivision(),
                Reassociate(style="ranked"),
                FiniteMathSimplify(),
                *self._vector_passes(level),
            ]
        )

    def cache_token(self, level: OptLevel) -> str:
        # Mirrors :meth:`pipeline`: front-end folding at O0/O0_nofma,
        # propagating folding at O1, vectorization widths splitting O2
        # and O3, the fast-math pipeline on top.
        if level in (OptLevel.O0_NOFMA, OptLevel.O0):
            return "O0"
        if level is OptLevel.O1:
            return "O1"
        if level in (OptLevel.O2, OptLevel.O3):
            return f"{level}+vec{vector_width_for(self.name, level)}"
        return "O3_fastmath"

    def environment(self, level: OptLevel) -> FPEnvironment:
        if level is OptLevel.O3_FASTMATH:
            return FPEnvironment(libm=FastHostLibm())
        return FPEnvironment(libm=HostLibm())
