"""Optional grounding backend: compile and run candidates with the real gcc.

Not part of the simulated evaluation — the paper's compilers are modeled in
:mod:`repro.toolchains` — but when a real ``gcc`` exists on the machine this
adapter lets tests sanity-check the simulated strict host semantics against
actual hardware for simple programs (transcendental-free ones, where the
simulation must agree bit-for-bit with IEEE hardware).
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.errors import CompileError, ExecError

__all__ = ["SystemGcc", "system_gcc_available"]


def system_gcc_available() -> bool:
    return shutil.which("gcc") is not None


class SystemGcc:
    """Compile C source with the host's gcc and run it with given argv."""

    def __init__(self, flags: tuple[str, ...] = ("-O0",), timeout: float = 10.0) -> None:
        if not system_gcc_available():
            raise CompileError("no system gcc on PATH")
        self.flags = flags
        self.timeout = timeout

    def run(self, source: str, argv: tuple[str, ...] = ()) -> str:
        """Compile + execute; returns stdout text."""
        with tempfile.TemporaryDirectory(prefix="llm4fp-gcc-") as tmp:
            src = Path(tmp) / "prog.c"
            exe = Path(tmp) / "prog"
            src.write_text(source)
            proc = subprocess.run(
                ["gcc", *self.flags, str(src), "-o", str(exe), "-lm"],
                capture_output=True,
                text=True,
                timeout=self.timeout,
            )
            if proc.returncode != 0:
                raise CompileError(f"system gcc failed:\n{proc.stderr}")
            run = subprocess.run(
                [str(exe), *argv],
                capture_output=True,
                text=True,
                timeout=self.timeout,
            )
            if run.returncode != 0:
                raise ExecError(
                    f"binary exited with {run.returncode}: {run.stderr.strip()}"
                )
            return run.stdout
