"""Expression IR, AST lowering, and the per-compiler optimization passes.

Types are made explicit here: every implicit C conversion becomes a node,
FP and integer operations are distinct, and FMA is a first-class operation
that only the contraction pass introduces.  Pipelines of passes — defined in
:mod:`repro.toolchains` — are the entire difference between two simulated
compilers at the IR level.
"""

from repro.ir.nodes import (
    Kernel,
    FBin,
    FCall,
    FConst,
    FNeg,
    Fma,
    IBin,
    IConst,
    INeg,
    Compare,
    Logic,
    Not,
    Select,
    SiToFp,
    FpToSi,
    FpExt,
    FpTrunc,
    Load,
    LoadElem,
    SAssign,
    SStoreElem,
    SDeclArray,
    SIf,
    SFor,
    SWhile,
    SPrint,
    SReturn,
)
from repro.ir.lower import lower_unit
from repro.ir.passes.base import Pass, PassPipeline

__all__ = [
    "Kernel",
    "FBin",
    "FCall",
    "FConst",
    "FNeg",
    "Fma",
    "IBin",
    "IConst",
    "INeg",
    "Compare",
    "Logic",
    "Not",
    "Select",
    "SiToFp",
    "FpToSi",
    "FpExt",
    "FpTrunc",
    "Load",
    "LoadElem",
    "SAssign",
    "SStoreElem",
    "SDeclArray",
    "SIf",
    "SFor",
    "SWhile",
    "SPrint",
    "SReturn",
    "lower_unit",
    "Pass",
    "PassPipeline",
]
