"""Optimization passes.

Each pass is semantics-changing *only* in ways a real compiler's
floating-point options permit: constant folding with a compile-time libm,
FMA contraction, and the fast-math family (reassociation, reciprocal
division, algebraic simplification, function substitution).  A compiler
model is just an ordered pipeline of these.
"""

from repro.ir.passes.base import Pass, PassPipeline
from repro.ir.passes.constant_fold import ConstantFold
from repro.ir.passes.fma_contract import FmaContract
from repro.ir.passes.if_convert import IfConvert
from repro.ir.passes.loop_unroll import LoopUnroll
from repro.ir.passes.reassociate import Reassociate
from repro.ir.passes.recip_div import ReciprocalDivision
from repro.ir.passes.finite_math import FiniteMathSimplify
from repro.ir.passes.func_subst import FunctionSubstitution
from repro.ir.passes.vectorize import Vectorize

__all__ = [
    "Pass",
    "PassPipeline",
    "ConstantFold",
    "FmaContract",
    "IfConvert",
    "LoopUnroll",
    "Reassociate",
    "ReciprocalDivision",
    "FiniteMathSimplify",
    "FunctionSubstitution",
    "Vectorize",
]
