"""Fast-math reassociation of floating-point chains.

Under ``-ffast-math`` a compiler may treat FP addition/multiplication as
associative.  Different compilers canonicalize chains differently, and any
regrouping of a >=3-term chain changes intermediate roundings — which is
why the paper sees its largest host-host divergence at ``O3_fastmath``
(Table 4, gcc-clang column).  Two styles are modeled:

* ``balanced`` — reduce the chain as a balanced tree (vectorizer-friendly
  partial sums; our gcc model), and
* ``ranked`` — sort operands by a deterministic structural rank and fold
  left (canonicalization; our clang model).

Subtraction is normalized to addition of a negation before flattening, so
``a - b + c`` chains participate too.
"""

from __future__ import annotations

import hashlib

from repro.ir import nodes as ir
from repro.ir.passes.base import ExprRewritePass

__all__ = ["Reassociate"]


def _flatten(e: ir.Expr, op: str, ty: str, out: list[ir.Expr]) -> None:
    """Collect the operand list of a +/* chain, normalizing '-' into '+'."""
    if isinstance(e, ir.FBin) and e.ty == ty:
        if e.op == op:
            _flatten(e.left, op, ty, out)
            _flatten(e.right, op, ty, out)
            return
        if op == "+" and e.op == "-":
            _flatten(e.left, op, ty, out)
            _flatten(ir.FNeg(e.right, ty), op, ty, out)
            return
    out.append(e)


def _rank(e: ir.Expr) -> str:
    """Deterministic structural key used by the 'ranked' style."""
    return hashlib.blake2b(repr(e).encode(), digest_size=8).hexdigest()


class Reassociate(ExprRewritePass):
    """Fast-math regrouping of >=3-term ``+``/``*`` chains: ``balanced``
    reduces as a pairwise tree (the gcc model), ``ranked`` sorts operands
    by structural hash and folds left (the clang model) — any regrouping
    changes intermediate roundings."""

    name = "reassociate"

    def __init__(self, style: str = "balanced") -> None:
        if style not in ("balanced", "ranked"):
            raise ValueError(f"unknown reassociation style {style!r}")
        self.style = style

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        if not isinstance(e, ir.FBin) or e.op not in ("+", "*"):
            return e
        op, ty = e.op, e.ty
        terms: list[ir.Expr] = []
        _flatten(e, op, ty, terms)
        if len(terms) < 3:
            return e
        if self.style == "ranked":
            terms.sort(key=_rank)
            acc = terms[0]
            for t in terms[1:]:
                acc = ir.FBin(op, acc, t, ty)
            return acc
        # balanced: pairwise reduction rounds
        level = terms
        while len(level) > 1:
            nxt: list[ir.Expr] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(ir.FBin(op, level[i], level[i + 1], ty))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]
