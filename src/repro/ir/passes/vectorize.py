"""Auto-vectorization of innermost reduction and map loops.

``Vectorize(width=W)`` widens a counted loop

    for (i = L; i < B; ++i) { acc = acc + E(i);  a[i] = M(i); }

into the classic three-piece shape every auto-vectorizer emits:

1. a **runtime guard** — the vector body only runs while at least one
   full vector of trips remains (``i + (W-1) < B``), so short loops are
   bitwise-untouched;
2. a **vector main loop** — each reduction gets a private ``W``-lane
   partial accumulator (``acc__vW``) initialized to the identity and
   updated lane-wise; each map store becomes a unit-stride vector store;
3. a **horizontal reduction + scalar epilogue** — the lane partials
   collapse through a :class:`~repro.ir.nodes.VecReduce` of this
   compiler's ``style``, combine into the scalar accumulator, and the
   remaining ``B mod W`` trips run the original scalar body.

The *observable* of this tier is the reassociation in steps 2–3: a scalar
reduction folds strictly left (``((s+x0)+x1)+x2...``) while the vector
form sums every ``W``-th element per lane and then tree-reduces the
lanes.  Both are deterministic — each is a fixed association order
evaluated through the binary's FPEnvironment — but they round
differently, which is why vectorized sums bitwise-diverge from scalar
ones (and from each other across widths and reduction styles).  Map
stores, by contrast, are lane-wise identical to scalar execution and
introduce no divergence.

SLP packing: when the loop was already unrolled by
:class:`~repro.ir.passes.loop_unroll.LoopUnroll` with factor ``W`` (a
stride-``W`` loop of ``W`` isomorphic statement copies), the vectorizer
re-rolls the copies and widens the canonical one, so
``unroll(W) -> vectorize(W)`` produces exactly the kernel that
``vectorize(W)`` alone would — the pass-ordering property the tests pin.

Masked (if-converted) tier: ``Vectorize(width, style, masked=True)``
additionally widens the select form
:class:`~repro.ir.passes.if_convert.IfConvert` produces.  A scalar
``Select`` becomes a :class:`~repro.ir.nodes.VecSelect` over a
:class:`~repro.ir.nodes.VecCmp` mask — **both** arms evaluate in every
lane, the blend only picks — and element loads inside an arm become
zero-masking :class:`~repro.ir.nodes.VecMaskedLoad` so speculation never
traps where the scalar guard would have skipped.  A scalar predicated
store (:class:`~repro.ir.nodes.SMaskedStore` at lanes=1) widens in place
to its vector form.  With ``masked=False`` (the default, and the host
behaviour below ``-O3``) all of these reject the loop, exactly as
before.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.base import Pass
from repro.ir.passes.loop_unroll import (
    CountedLoop,
    _straight_line,
    match_counted_loop,
    substitute_induction,
)

__all__ = ["Vectorize"]

#: Reduction ops the vectorizer accepts, with their lane-accumulation op,
#: identity, horizontal-reduce op and scalar combine op.
_REDUCTIONS = {
    "+": ("+", 0.0, "+", "+"),
    "-": ("+", 0.0, "+", "-"),  # c -= e  ==>  c = c - sum(e)
    "*": ("*", 1.0, "*", "*"),
}


class _Reduction:
    """One recognized reduction statement ``acc = acc op E``."""

    __slots__ = ("acc", "op", "expr", "ty")

    def __init__(self, acc: str, op: str, expr: ir.Expr, ty: str) -> None:
        self.acc = acc
        self.op = op
        self.expr = expr
        self.ty = ty


class Vectorize(Pass):
    """SLP-style widening of innermost reduction/map loops.

    >>> from repro.ir.passes.vectorize import Vectorize
    >>> Vectorize(width=4, style="adjacent").name
    'vectorize'
    """

    name = "vectorize"

    def __init__(
        self,
        width: int = 4,
        style: str = "adjacent",
        masked: bool = False,
        int_guards: bool = False,
        mixed: bool = False,
    ) -> None:
        if width < 2:
            raise ValueError("vector width must be >= 2")
        if style not in ir.REDUCE_STYLES:
            raise ValueError(
                f"unknown reduce style {style!r}; expected one of {ir.REDUCE_STYLES}"
            )
        self.width = width
        self.style = style
        #: widen if-converted select forms (vs refusing them, the
        #: pre-masking behaviour kept for levels that do not if-convert)
        self.masked = masked
        #: also widen *integer* guard comparisons (``if (i < m)``) into
        #: iota/splat masks; off by default — the masked-int-guard tier
        self.int_guards = int_guards
        #: also widen ``FpExt``/``FpTrunc`` conversion sites, letting
        #: mixed float/double bodies vectorize; off by default — the
        #: mixed-precision tier
        self.mixed = mixed

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        self._taken: set[str] = set(kernel.var_types)
        for s in ir.walk_stmts(kernel.body):
            if isinstance(s, ir.SAssign):
                self._taken.add(s.name)
        return kernel.with_body(self._stmts(kernel.body))

    # -- traversal ---------------------------------------------------------------

    def _stmts(self, stmts: tuple[ir.Stmt, ...]) -> tuple[ir.Stmt, ...]:
        out: list[ir.Stmt] = []
        i = 0
        while i < len(stmts):
            s = stmts[i]
            i += 1
            if isinstance(s, ir.SIf):
                out.append(ir.SIf(s.cond, self._stmts(s.then), self._stmts(s.other)))
                continue
            if isinstance(s, ir.SWhile):
                out.append(ir.SWhile(s.cond, self._stmts(s.body)))
                continue
            if isinstance(s, ir.SFor):
                following = stmts[i] if i < len(stmts) else None
                replaced = self._loop(s, following)
                if replaced is not None:
                    out.extend(replaced)
                    # The SLP path only fires when `following` is the
                    # unroller's scalar epilogue — identical to our own
                    # emitted epilogue (the last replaced statement), so
                    # the duplicate is consumed and unroll(W) ->
                    # vectorize(W) rebuilds the very kernel vectorize(W)
                    # alone produces.
                    if following is not None and following == replaced[-1]:
                        i += 1
                else:
                    out.append(
                        ir.SFor(s.init, s.cond, self._stmts(s.step), self._stmts(s.body))
                    )
                continue
            out.append(s)
        return tuple(out)

    # -- recognition -------------------------------------------------------------

    def _loop(self, s: ir.SFor, following: ir.Stmt | None) -> list[ir.Stmt] | None:
        loop = match_counted_loop(s)
        if loop is None or not loop.body:
            return None
        if loop.stride == 1 and loop.guard_offset == 0:
            body = loop.body
        elif loop.stride == self.width and loop.guard_offset == self.width - 1:
            body = self._reroll(loop)
            if body is None:
                return None
            # Only genuine LoopUnroll output may re-roll: the unroller
            # always emits its scalar epilogue right after the strided
            # loop, and our rewrite consumes that epilogue.  A *source*
            # loop that happens to be stride-W has no epilogue — adding
            # one would execute tail trips the original program skipped,
            # changing semantics, so such loops stay scalar.
            if following != self._scalar_epilogue(loop, body):
                return None
        else:
            return None
        plan = self._plan(body, loop)
        if plan is None:
            return None
        return self._emit(loop, body, plan)

    @staticmethod
    def _scalar_epilogue(loop: CountedLoop, body: tuple[ir.Stmt, ...]) -> ir.SFor:
        """The canonical remainder loop — both what :class:`LoopUnroll`
        emits after a strided main loop and what :meth:`_emit` appends."""
        var = loop.var
        return ir.SFor(
            init=(),
            cond=ir.Compare("<", ir.Load(var, "int"), loop.bound, fp=False),
            step=(
                ir.SAssign(var, ir.IBin("+", ir.Load(var, "int"), ir.IConst(1)), "int"),
            ),
            body=body,
        )

    def _reroll(self, loop: CountedLoop) -> tuple[ir.Stmt, ...] | None:
        """Undo a factor-``width`` unroll: ``width`` isomorphic copies of a
        canonical group collapse back to the group (SLP pack detection)."""
        w = self.width
        if len(loop.body) % w or not _straight_line(loop.body):
            return None
        group = len(loop.body) // w
        canonical = loop.body[:group]
        for j in range(1, w):
            copy = loop.body[j * group : (j + 1) * group]
            expected = tuple(substitute_induction(st, loop.var, j) for st in canonical)
            if copy != expected:
                return None
        return canonical

    def _plan(
        self, body: tuple[ir.Stmt, ...], loop: CountedLoop
    ) -> list[tuple[str, object]] | None:
        """Classify every body statement as a reduction or a map store."""
        accs: set[str] = set()
        plan: list[tuple[str, object]] = []
        for st in body:
            if isinstance(st, ir.SAssign):
                red = self._as_reduction(st)
                if red is None or red.acc in accs or red.acc == loop.var:
                    return None
                accs.add(red.acc)
                plan.append(("reduce", red))
            elif isinstance(st, ir.SStoreElem):
                if not (
                    isinstance(st.index, ir.Load) and st.index.name == loop.var
                ):
                    return None
                plan.append(("map", st))
            elif self.masked and isinstance(st, ir.SMaskedStore) and st.lanes == 1:
                if not (
                    isinstance(st.index, ir.Load) and st.index.name == loop.var
                ):
                    return None
                plan.append(("masked-map", st))
            else:
                return None

        def payload_exprs(kind: str, payload) -> tuple[ir.Expr, ...]:
            if kind == "reduce":
                return (payload.expr,)
            if kind == "masked-map":
                return (payload.mask, payload.value)
            return (payload.value,)

        # Accumulators must be private to their own statement: any other
        # read (in a map value, another reduction's expression) blocks.
        for kind, payload in plan:
            for expr in payload_exprs(kind, payload):
                for e in ir.walk(expr):
                    if isinstance(e, ir.Load) and e.name in accs:
                        return None
        # The bound variable must not be stored through a vectorized map
        # (it is re-read by the loop condition).
        if isinstance(loop.bound, ir.Load):
            for kind, payload in plan:
                if kind in ("map", "masked-map") and payload.name == loop.bound.name:
                    return None
        # No loop-carried memory dependence: if the body stores to an
        # array, every read of that array must sit exactly at the store's
        # index ``i`` — an offset read (``a[i-1]``) would observe values a
        # previous scalar iteration wrote, which lanes executed together
        # cannot reproduce.  Real vectorizers reject this in dependence
        # analysis; so do we.
        stored = {
            payload.name for kind, payload in plan if kind in ("map", "masked-map")
        }
        if stored:
            for kind, payload in plan:
                for expr in payload_exprs(kind, payload):
                    for e in ir.walk(expr):
                        if isinstance(e, ir.LoadElem) and e.name in stored:
                            if not (
                                isinstance(e.index, ir.Load)
                                and e.index.name == loop.var
                            ):
                                return None
        # Every expression must widen.
        for kind, payload in plan:
            if kind == "masked-map":
                if self._widen_mask(payload.mask, loop.var) is None:
                    return None
                if (
                    self._widen(payload.value, loop.var, mask=(payload.mask, False))
                    is None
                ):
                    return None
            else:
                expr = payload.expr if kind == "reduce" else payload.value
                if self._widen(expr, loop.var) is None:
                    return None
        return plan

    def _as_reduction(self, st: ir.SAssign) -> _Reduction | None:
        v = st.value
        if not isinstance(v, ir.FBin) or v.op not in _REDUCTIONS or v.ty != st.ty:
            return None
        if st.ty not in ("float", "double"):
            return None
        left_is_acc = isinstance(v.left, ir.Load) and v.left.name == st.name
        right_is_acc = isinstance(v.right, ir.Load) and v.right.name == st.name
        if left_is_acc and not self._reads(v.right, st.name):
            return _Reduction(st.name, v.op, v.right, st.ty)
        if right_is_acc and v.op in ("+", "*") and not self._reads(v.left, st.name):
            return _Reduction(st.name, v.op, v.left, st.ty)
        return None

    @staticmethod
    def _reads(e: ir.Expr, name: str) -> bool:
        return any(
            isinstance(sub, ir.Load) and sub.name == name for sub in ir.walk(e)
        )

    # -- widening ----------------------------------------------------------------

    def _affine(self, e: ir.Expr, var: str) -> ir.Expr | None:
        """Unit-coefficient affine index in ``var``: returns the lane-0
        base expression, or None if ``e`` is not ``var (+/- invariant)``."""
        if isinstance(e, ir.Load) and e.name == var:
            return e
        if isinstance(e, ir.IBin) and e.op in ("+", "-"):
            li = self._uses_var(e.left, var)
            ri = self._uses_var(e.right, var)
            if li and not ri:
                base = self._affine(e.left, var)
                if base is None:
                    return None
                return ir.IBin(e.op, base, e.right)
            if ri and not li and e.op == "+":
                base = self._affine(e.right, var)
                if base is None:
                    return None
                return ir.IBin("+", e.left, base)
        return None

    @staticmethod
    def _uses_var(e: ir.Expr, var: str) -> bool:
        return any(
            isinstance(sub, ir.Load) and sub.name == var for sub in ir.walk(e)
        )

    def _widen_mask(self, cond: ir.Expr, var: str) -> ir.Expr | None:
        """The ``width``-lane predicate vector of a scalar condition.

        Floating comparisons whose operands widen are accepted — the
        shape if-conversion and source ternaries produce.  With
        ``int_guards`` enabled, *integer* comparisons widen too: an
        affine use of the induction variable steps per lane through
        :class:`~repro.ir.nodes.VecIota` and invariant int operands
        broadcast, so trip-count guards like ``if (i < m)`` if-convert.
        The operands are evaluated in every lane (a condition runs on
        every scalar trip too), so they widen without a mask context.
        """
        if not isinstance(cond, ir.Compare):
            return None
        if cond.fp:
            left = self._widen(cond.left, var)
            right = self._widen(cond.right, var)
        elif self.int_guards:
            left = self._widen_int(cond.left, var)
            right = self._widen_int(cond.right, var)
        else:
            return None
        if left is None or right is None:
            return None
        return ir.VecCmp(cond.op, left, right, self.width)

    def _widen_int(self, e: ir.Expr, var: str) -> ir.Expr | None:
        """The lane form of an *integer* guard operand (int-guards tier):
        loop-invariant ints broadcast, affine uses of the induction
        variable become iota vectors, everything else rejects."""
        if not self._uses_var(e, var):
            if isinstance(e, ir.ANY_VECTOR_NODES) or ir.expr_type(e) != "int":
                return None
            return ir.VecSplat(e, self.width, "int")
        base = self._affine(e, var)
        if base is None:
            return None
        return ir.VecIota(base, self.width)

    def _widen(
        self,
        e: ir.Expr,
        var: str,
        mask: tuple[ir.Expr, bool] | None = None,
    ) -> ir.Expr | None:
        """Rewrite a scalar body expression into its ``width``-lane form.

        Loop-invariant subtrees broadcast (:class:`~repro.ir.nodes.VecSplat`),
        unit-stride element reads become :class:`~repro.ir.nodes.VecLoad`,
        and uses of the induction variable step per lane through
        :class:`~repro.ir.nodes.VecIota`.  When ``masked`` is enabled, a
        ``Select`` widens to a mask blend whose arms carry ``mask`` — the
        governing ``(condition, inverted)`` context — down to their
        element reads, which become zero-masking
        :class:`~repro.ir.nodes.VecMaskedLoad` (the arm is speculated;
        its loads must not trap in lanes the scalar guard skipped).
        Anything else (non-affine indices, already-vector nodes, nested
        selects) rejects the loop.
        """
        w = self.width
        if not self._uses_var(e, var):
            # Loop-invariant: broadcast the whole subtree unwidened.  Only
            # valid for scalar expressions of known element type.  Inside
            # a masked arm the broadcast still evaluates once per vector
            # trip — invariant speculation, like a hoisted load.
            if isinstance(e, ir.ANY_VECTOR_NODES):
                return None
            ty = ir.expr_type(e)
            if ty == "int":
                return None
            return ir.VecSplat(e, w, ty)
        if isinstance(e, ir.LoadElem):
            base = self._affine(e.index, var)
            if base is None:
                return None
            if mask is None:
                return ir.VecLoad(e.name, base, w, e.ty)
            lane_mask = self._widen_mask(mask[0], var)
            if lane_mask is None:
                return None
            return ir.VecMaskedLoad(e.name, base, lane_mask, w, e.ty, mask[1])
        if isinstance(e, ir.SiToFp):
            base = self._affine(e.operand, var)
            if base is None:
                return None
            return ir.VecSiToFp(ir.VecIota(base, w), w, e.ty)
        if isinstance(e, ir.FBin):
            left = self._widen(e.left, var, mask)
            right = self._widen(e.right, var, mask)
            if left is None or right is None:
                return None
            return ir.VecBin(e.op, left, right, w, e.ty)
        if isinstance(e, ir.FNeg):
            inner = self._widen(e.operand, var, mask)
            if inner is None:
                return None
            return ir.VecNeg(inner, w, e.ty)
        if isinstance(e, ir.Fma):
            a = self._widen(e.a, var, mask)
            b = self._widen(e.b, var, mask)
            c = self._widen(e.c, var, mask)
            if a is None or b is None or c is None:
                return None
            return ir.VecFma(a, b, c, w, e.ty)
        if isinstance(e, ir.FCall):
            args = [self._widen(a, var, mask) for a in e.args]
            if any(a is None for a in args):
                return None
            return ir.VecCall(e.name, tuple(args), w, e.ty)
        if isinstance(e, (ir.FpExt, ir.FpTrunc)) and self.mixed:
            inner = self._widen(e.operand, var, mask)
            if inner is None:
                return None
            cls = ir.VecFpExt if isinstance(e, ir.FpExt) else ir.VecFpTrunc
            return cls(inner, w)
        if isinstance(e, ir.Select) and self.masked and mask is None:
            lane_mask = self._widen_mask(e.cond, var)
            if lane_mask is None:
                return None
            then = self._widen(e.then, var, mask=(e.cond, False))
            other = self._widen(e.other, var, mask=(e.cond, True))
            if then is None or other is None:
                return None
            return ir.VecSelect(lane_mask, then, other, w, e.ty)
        return None

    # -- emission ----------------------------------------------------------------

    def _lane_var(self, acc: str) -> str:
        base = f"{acc}__v{self.width}"
        name = base
        n = 1
        while name in self._taken:
            n += 1
            name = f"{base}_{n}"
        self._taken.add(name)
        return name

    def _emit(
        self,
        loop: CountedLoop,
        body: tuple[ir.Stmt, ...],
        plan: list[tuple[str, object]],
    ) -> list[ir.Stmt]:
        w = self.width
        var = loop.var
        guard = ir.Compare(
            "<", ir.IBin("+", ir.Load(var, "int"), ir.IConst(w - 1)), loop.bound, False
        )
        lane_inits: list[ir.Stmt] = []
        vector_body: list[ir.Stmt] = []
        finals: list[ir.Stmt] = []
        for kind, payload in plan:
            if kind == "map":
                st = payload
                widened = self._widen(st.value, var)
                vector_body.append(
                    ir.SVecStore(st.name, ir.Load(var, "int"), widened, st.elem_ty, w)
                )
                continue
            if kind == "masked-map":
                st = payload
                lane_mask = self._widen_mask(st.mask, var)
                widened = self._widen(st.value, var, mask=(st.mask, False))
                vector_body.append(
                    ir.SMaskedStore(
                        st.name, ir.Load(var, "int"), lane_mask, widened, st.elem_ty, w
                    )
                )
                continue
            red = payload
            lane_op, identity, reduce_op, combine_op = _REDUCTIONS[red.op]
            vacc = self._lane_var(red.acc)
            lane_inits.append(
                ir.SAssign(vacc, ir.VecConst((identity,) * w, red.ty), red.ty)
            )
            vector_body.append(
                ir.SAssign(
                    vacc,
                    ir.VecBin(
                        lane_op,
                        ir.Load(vacc, red.ty),
                        self._widen(red.expr, var),
                        w,
                        red.ty,
                    ),
                    red.ty,
                )
            )
            finals.append(
                ir.SAssign(
                    red.acc,
                    ir.FBin(
                        combine_op,
                        ir.Load(red.acc, red.ty),
                        ir.VecReduce(
                            reduce_op, ir.Load(vacc, red.ty), w, red.ty, self.style
                        ),
                        red.ty,
                    ),
                    red.ty,
                )
            )
        main = ir.SFor(
            init=(),
            cond=guard,
            step=(
                ir.SAssign(var, ir.IBin("+", ir.Load(var, "int"), ir.IConst(w)), "int"),
            ),
            body=tuple(vector_body),
        )
        return [
            *loop.init,
            ir.SIf(guard, (*lane_inits, main, *finals)),
            self._scalar_epilogue(loop, body),
        ]
