"""Reciprocal-math: ``x / y`` -> ``x * (1.0 / y)`` under fast math.

Part of ``-ffast-math`` (``-freciprocal-math``): replaces one correctly
rounded division with two roundings (reciprocal, then multiply), which
perturbs the quotient by up to an ulp or so — another fast-math-only
divergence source.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.base import ExprRewritePass

__all__ = ["ReciprocalDivision"]


class ReciprocalDivision(ExprRewritePass):
    """Fast-math ``x / y  ->  x * (1.0 / y)``: two roundings instead of
    one, so quotients drift by an ulp — and the reciprocal can overflow
    or flush where the direct division would not."""

    name = "recip-div"

    def __init__(self, constants_only: bool = False) -> None:
        #: when True, only divisions by a literal constant are rewritten
        #: (the conservative variant some compilers apply at -O2).
        self.constants_only = constants_only

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        if not (isinstance(e, ir.FBin) and e.op == "/"):
            return e
        if self.constants_only and not isinstance(e.right, ir.FConst):
            return e
        one = ir.FConst(1.0, e.ty)
        return ir.FBin("*", e.left, ir.FBin("/", one, e.right, e.ty), e.ty)
