"""FMA contraction: ``a*b + c`` becomes a single-rounding fused operation.

This is nvcc's default at every optimization level (``--fmad=true``); only
the paper's ``O0_nofma`` level disables it (Table 1).  Host compilers on a
baseline x86-64 target cannot emit FMA instructions at all, so their
pipelines never include this pass — which is exactly why the paper's
Table 5 shows ``O0`` differing from ``O0_nofma`` for nvcc but not for
gcc/clang.

``site_prob`` models ptxas' *selective* fusion: with ``--fmad=true`` the
backend is allowed to fuse every eligible site but actually fuses only
where instruction scheduling and register allocation favour it.  The
decision is a deterministic hash of the site's structure, so the same
kernel contracts identically at every optimization level — producing the
paper's flat-but-small nvcc column in Table 5 (nvcc is the most *stable*
compiler despite contraction being enabled everywhere).
"""

from __future__ import annotations

import hashlib

from repro.ir import nodes as ir
from repro.ir.passes.base import ExprRewritePass

__all__ = ["FmaContract"]


class FmaContract(ExprRewritePass):
    """Contract ``a*b + c`` into single-rounding :class:`~repro.ir.nodes.Fma`
    nodes at a deterministic, structure-hashed fraction (``site_prob``) of
    eligible sites — the ptxas selective-fusion model."""

    name = "fma-contract"

    def __init__(self, site_prob: float = 1.0) -> None:
        if not 0.0 < site_prob <= 1.0:
            raise ValueError("site_prob must be in (0, 1]")
        self.site_prob = site_prob

    def _site_selected(self, e: ir.Expr) -> bool:
        """Deterministic per-site fusion decision (hash of the subtree)."""
        if self.site_prob >= 1.0:
            return True
        digest = hashlib.blake2b(
            repr(e).encode("utf-8"), key=b"ptxas-fmad", digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2**64 < self.site_prob

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        if not isinstance(e, ir.FBin) or e.op not in ("+", "-"):
            return e
        left_mul = isinstance(e.left, ir.FBin) and e.left.op == "*" and e.left.ty == e.ty
        right_mul = (
            isinstance(e.right, ir.FBin) and e.right.op == "*" and e.right.ty == e.ty
        )
        if (left_mul or right_mul) and not self._site_selected(e):
            return e
        # Greedy left preference, matching ptxas' source-order contraction.
        if e.op == "+":
            if left_mul:
                return ir.Fma(e.left.left, e.left.right, e.right, e.ty)
            if right_mul:
                return ir.Fma(e.right.left, e.right.right, e.left, e.ty)
            return e
        # e.op == "-"
        if left_mul:
            # a*b - c  ->  fma(a, b, -c)
            return ir.Fma(e.left.left, e.left.right, ir.FNeg(e.right, e.ty), e.ty)
        if right_mul:
            # c - a*b  ->  fma(-a, b, c)
            return ir.Fma(
                ir.FNeg(e.right.left, e.ty), e.right.right, e.left, e.ty
            )
        return e
