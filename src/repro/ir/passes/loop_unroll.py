"""Loop unrolling: the scalar half of the vectorization tier.

``LoopUnroll(factor=k)`` rewrites an innermost counted loop

    for (i = L; i < B; ++i) { body(i); }

into a stride-``k`` main loop whose body is ``k`` substituted copies
(``body(i); body(i+1); ... body(i+k-1)``) followed by a scalar epilogue
loop for the remaining trips.  Unrolling alone is **semantics-preserving**
— every FP operation still executes in the original order with the
original operands — which is why triage bisection attributes a
vector-reduction flip to ``vectorize``, never to ``loop-unroll``: the
unrolled prefix replays bit-identically.  Its role is *enabling*: the
SLP half of :class:`~repro.ir.passes.vectorize.Vectorize` packs the ``k``
isomorphic statement copies into ``k``-lane vector operations.

Modeling notes:

* Only innermost, straight-line counted loops unroll (the forms the
  vectorizer can widen); loops containing branches, prints or nested
  loops are left alone, mirroring a vectorizer-driven unroller.
* The main-loop guard evaluates ``i + (k-1) < B``.  For bounds within
  ``k`` of ``INT_MAX`` that addition would overflow (a trap in this
  interpreter); generated programs bound trips at tens, so the corner is
  documented rather than guarded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import nodes as ir
from repro.ir.passes.base import Pass, rebuild_expr

__all__ = ["LoopUnroll", "CountedLoop", "match_counted_loop", "substitute_induction"]


@dataclass(frozen=True)
class CountedLoop:
    """A recognized ``for (i = ...; i [+g] < bound; i += stride)`` loop."""

    var: str  # induction variable (an int scalar)
    init: tuple[ir.Stmt, ...]  # the original init statements
    bound: ir.Expr  # loop-invariant upper bound
    stride: int  # induction increment per iteration
    guard_offset: int  # g in ``i + g < bound`` (0 for a source loop)
    body: tuple[ir.Stmt, ...]
    cond: ir.Expr
    step: tuple[ir.Stmt, ...]


def _assigned_names(stmts: tuple[ir.Stmt, ...]) -> set[str]:
    out: set[str] = set()
    for s in ir.walk_stmts(stmts):
        if isinstance(s, ir.SAssign):
            out.add(s.name)
    return out


def match_counted_loop(s: ir.Stmt) -> CountedLoop | None:
    """Recognize the canonical counted loop produced by lowering.

    Requirements: one ``init`` statement assigning an int induction
    variable, a ``<`` condition against a loop-invariant bound (an int
    constant, or an int variable assigned nowhere in the body/step), a
    single step ``i += stride``, and a body that never writes ``i``.
    Returns ``None`` for anything else.  The ``i + g < bound`` condition
    shape (with ``g == stride - 1``) matches loops already unrolled by
    :class:`LoopUnroll`, which is how the vectorizer re-rolls them.
    """
    if not isinstance(s, ir.SFor) or s.cond is None:
        return None
    if len(s.init) != 1 or len(s.step) != 1:
        return None
    init = s.init[0]
    if not isinstance(init, ir.SAssign) or init.ty != "int":
        return None
    var = init.name
    step = s.step[0]
    if not (
        isinstance(step, ir.SAssign)
        and step.name == var
        and isinstance(step.value, ir.IBin)
        and step.value.op == "+"
        and isinstance(step.value.left, ir.Load)
        and step.value.left.name == var
        and isinstance(step.value.right, ir.IConst)
        and step.value.right.value >= 1
    ):
        return None
    stride = step.value.right.value
    cond = s.cond
    if not (isinstance(cond, ir.Compare) and cond.op == "<" and not cond.fp):
        return None
    left, bound = cond.left, cond.right
    if isinstance(left, ir.Load) and left.name == var:
        guard_offset = 0
    elif (
        isinstance(left, ir.IBin)
        and left.op == "+"
        and isinstance(left.left, ir.Load)
        and left.left.name == var
        and isinstance(left.right, ir.IConst)
    ):
        guard_offset = left.right.value
    else:
        return None
    assigned = _assigned_names(s.body)
    if var in assigned:
        return None
    if isinstance(bound, ir.Load):
        if bound.ty != "int" or bound.name == var or bound.name in assigned:
            return None
    elif not isinstance(bound, ir.IConst):
        return None
    return CountedLoop(
        var=var,
        init=s.init,
        bound=bound,
        stride=stride,
        guard_offset=guard_offset,
        body=s.body,
        cond=cond,
        step=s.step,
    )


def substitute_induction(s: ir.Stmt, var: str, offset: int) -> ir.Stmt:
    """``s`` with every read of ``var`` replaced by ``var + offset``."""
    if offset == 0:
        return s

    def sub(e: ir.Expr) -> ir.Expr:
        if isinstance(e, ir.Load) and e.name == var:
            return ir.IBin("+", e, ir.IConst(offset))
        return e

    def stmt(st: ir.Stmt) -> ir.Stmt:
        rw = lambda e: rebuild_expr(e, sub)
        if isinstance(st, ir.SAssign):
            return ir.SAssign(st.name, rw(st.value), st.ty)
        if isinstance(st, ir.SStoreElem):
            return ir.SStoreElem(st.name, rw(st.index), rw(st.value), st.elem_ty)
        if isinstance(st, ir.SPrint):
            return ir.SPrint(st.fmt, tuple(rw(v) for v in st.values))
        raise ValueError(f"cannot substitute into {type(st).__name__}")

    return stmt(s)


def _straight_line(stmts: tuple[ir.Stmt, ...]) -> bool:
    """Only plain assignments and element stores (what SLP can pack)."""
    return all(isinstance(s, (ir.SAssign, ir.SStoreElem)) for s in stmts)


class LoopUnroll(Pass):
    """Unroll innermost straight-line counted loops by a fixed factor.

    >>> from repro.ir.passes.loop_unroll import LoopUnroll
    >>> LoopUnroll(4).name
    'loop-unroll'
    """

    name = "loop-unroll"

    def __init__(self, factor: int = 4) -> None:
        if factor < 2:
            raise ValueError("unroll factor must be >= 2")
        self.factor = factor

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        return kernel.with_body(self._stmts(kernel.body))

    def _stmts(self, stmts: tuple[ir.Stmt, ...]) -> tuple[ir.Stmt, ...]:
        out: list[ir.Stmt] = []
        for s in stmts:
            if isinstance(s, ir.SIf):
                out.append(ir.SIf(s.cond, self._stmts(s.then), self._stmts(s.other)))
                continue
            if isinstance(s, ir.SWhile):
                out.append(ir.SWhile(s.cond, self._stmts(s.body)))
                continue
            if isinstance(s, ir.SFor):
                out.extend(self._loop(s))
                continue
            out.append(s)
        return tuple(out)

    def _loop(self, s: ir.SFor) -> list[ir.Stmt]:
        loop = match_counted_loop(s)
        if (
            loop is None
            or loop.stride != 1
            or loop.guard_offset != 0
            or not loop.body
            or not _straight_line(loop.body)
        ):
            # Not unrollable as-is; still recurse into nested loop bodies.
            cond = s.cond
            return [ir.SFor(self._stmts(s.init), cond, self._stmts(s.step), self._stmts(s.body))]
        k = self.factor
        var = loop.var
        unrolled = tuple(
            substitute_induction(stmt, var, j) for j in range(k) for stmt in loop.body
        )
        main = ir.SFor(
            init=loop.init,
            cond=ir.Compare(
                "<",
                ir.IBin("+", ir.Load(var, "int"), ir.IConst(k - 1)),
                loop.bound,
                fp=False,
            ),
            step=(
                ir.SAssign(
                    var, ir.IBin("+", ir.Load(var, "int"), ir.IConst(k)), "int"
                ),
            ),
            body=unrolled,
        )
        epilogue = ir.SFor(init=(), cond=loop.cond, step=loop.step, body=loop.body)
        return [main, epilogue]
