"""Pass infrastructure: expression-rewriting over structured statements."""

from __future__ import annotations

from repro.ir import nodes as ir

__all__ = ["Pass", "ExprRewritePass", "PassPipeline", "rebuild_expr"]


def rebuild_expr(e: ir.Expr, fn) -> ir.Expr:
    """Bottom-up rewrite: apply ``fn`` to every node after rewriting children."""
    if isinstance(e, ir.FBin):
        e = ir.FBin(e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn), e.ty)
    elif isinstance(e, ir.IBin):
        e = ir.IBin(e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn))
    elif isinstance(e, ir.Compare):
        e = ir.Compare(e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn), e.fp)
    elif isinstance(e, ir.Logic):
        e = ir.Logic(e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn))
    elif isinstance(e, ir.FNeg):
        e = ir.FNeg(rebuild_expr(e.operand, fn), e.ty)
    elif isinstance(e, ir.INeg):
        e = ir.INeg(rebuild_expr(e.operand, fn))
    elif isinstance(e, ir.Not):
        e = ir.Not(rebuild_expr(e.operand, fn))
    elif isinstance(e, ir.Fma):
        e = ir.Fma(
            rebuild_expr(e.a, fn), rebuild_expr(e.b, fn), rebuild_expr(e.c, fn), e.ty
        )
    elif isinstance(e, ir.FCall):
        e = ir.FCall(e.name, tuple(rebuild_expr(a, fn) for a in e.args), e.ty)
    elif isinstance(e, ir.Select):
        e = ir.Select(
            rebuild_expr(e.cond, fn),
            rebuild_expr(e.then, fn),
            rebuild_expr(e.other, fn),
            e.ty,
        )
    elif isinstance(e, ir.LoadElem):
        e = ir.LoadElem(e.name, rebuild_expr(e.index, fn), e.ty)
    elif isinstance(e, ir.VecBin):
        e = ir.VecBin(
            e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn), e.lanes, e.ty
        )
    elif isinstance(e, ir.VecNeg):
        e = ir.VecNeg(rebuild_expr(e.operand, fn), e.lanes, e.ty)
    elif isinstance(e, ir.VecFma):
        e = ir.VecFma(
            rebuild_expr(e.a, fn),
            rebuild_expr(e.b, fn),
            rebuild_expr(e.c, fn),
            e.lanes,
            e.ty,
        )
    elif isinstance(e, ir.VecSplat):
        e = ir.VecSplat(rebuild_expr(e.operand, fn), e.lanes, e.ty)
    elif isinstance(e, ir.VecSiToFp):
        e = ir.VecSiToFp(rebuild_expr(e.operand, fn), e.lanes, e.ty)
    elif isinstance(e, (ir.VecFpExt, ir.VecFpTrunc)):
        e = type(e)(rebuild_expr(e.operand, fn), e.lanes)
    elif isinstance(e, ir.VecIota):
        e = ir.VecIota(rebuild_expr(e.base, fn), e.lanes)
    elif isinstance(e, ir.VecLoad):
        e = ir.VecLoad(e.name, rebuild_expr(e.index, fn), e.lanes, e.ty)
    elif isinstance(e, ir.VecCall):
        e = ir.VecCall(e.name, tuple(rebuild_expr(a, fn) for a in e.args), e.lanes, e.ty)
    elif isinstance(e, ir.VecReduce):
        e = ir.VecReduce(e.op, rebuild_expr(e.operand, fn), e.lanes, e.ty, e.style)
    elif isinstance(e, ir.VecCmp):
        e = ir.VecCmp(e.op, rebuild_expr(e.left, fn), rebuild_expr(e.right, fn), e.lanes)
    elif isinstance(e, ir.VecSelect):
        e = ir.VecSelect(
            rebuild_expr(e.mask, fn),
            rebuild_expr(e.then, fn),
            rebuild_expr(e.other, fn),
            e.lanes,
            e.ty,
        )
    elif isinstance(e, ir.VecMaskedLoad):
        e = ir.VecMaskedLoad(
            e.name,
            rebuild_expr(e.index, fn),
            rebuild_expr(e.mask, fn),
            e.lanes,
            e.ty,
            e.invert,
        )
    elif isinstance(e, (ir.SiToFp, ir.FpToSi, ir.FpExt, ir.FpTrunc)):
        cls = type(e)
        if isinstance(e, ir.SiToFp):
            e = ir.SiToFp(rebuild_expr(e.operand, fn), e.ty)
        else:
            e = cls(rebuild_expr(e.operand, fn))
    return fn(e)


class Pass:
    """A kernel-to-kernel transformation."""

    name: str = "pass"

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        raise NotImplementedError


class ExprRewritePass(Pass):
    """Base for passes that only rewrite expressions in place."""

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        raise NotImplementedError

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        return kernel.with_body(self._stmts(kernel.body))

    def _stmts(self, stmts: tuple[ir.Stmt, ...]) -> tuple[ir.Stmt, ...]:
        return tuple(self._stmt(s) for s in stmts)

    def _stmt(self, s: ir.Stmt) -> ir.Stmt:
        rw = lambda e: rebuild_expr(e, self.rewrite)
        if isinstance(s, ir.SAssign):
            return ir.SAssign(s.name, rw(s.value), s.ty)
        if isinstance(s, ir.SDeclArray):
            init = tuple(rw(e) for e in s.init) if s.init is not None else None
            return ir.SDeclArray(s.name, s.size, s.elem_ty, init)
        if isinstance(s, ir.SStoreElem):
            return ir.SStoreElem(s.name, rw(s.index), rw(s.value), s.elem_ty)
        if isinstance(s, ir.SVecStore):
            return ir.SVecStore(s.name, rw(s.index), rw(s.value), s.elem_ty, s.lanes)
        if isinstance(s, ir.SMaskedStore):
            return ir.SMaskedStore(
                s.name, rw(s.index), rw(s.mask), rw(s.value), s.elem_ty, s.lanes
            )
        if isinstance(s, ir.SIf):
            return ir.SIf(rw(s.cond), self._stmts(s.then), self._stmts(s.other))
        if isinstance(s, ir.SFor):
            cond = rw(s.cond) if s.cond is not None else None
            return ir.SFor(
                self._stmts(s.init), cond, self._stmts(s.step), self._stmts(s.body)
            )
        if isinstance(s, ir.SWhile):
            return ir.SWhile(rw(s.cond), self._stmts(s.body))
        if isinstance(s, ir.SPrint):
            return ir.SPrint(s.fmt, tuple(rw(v) for v in s.values))
        return s  # SReturn


class PassPipeline:
    """An ordered list of passes — the compiler model's optimizer."""

    def __init__(self, passes: list[Pass] | tuple[Pass, ...] = ()) -> None:
        self.passes = list(passes)

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        for p in self.passes:
            kernel = p.run(kernel)
        return kernel

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.passes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassPipeline({self.names})"
