"""If-conversion: conditional loop bodies rewritten into select form.

``IfConvert`` rewrites each :class:`~repro.ir.nodes.SIf` inside an
*innermost counted loop* into straight-line predicated statements so the
vectorizer can widen the loop:

* a scalar assignment per variable either arm writes —
  ``x = Select(cond, then_value, else_value)`` (a missing arm keeps the
  old value); when both arms are accumulations of the same operator
  (``x = x op E``), the accumulator is factored out as
  ``x = x op Select(cond, E_then, E_else)`` with the operator's identity
  filling an absent arm, which is exactly the reduction shape
  :class:`~repro.ir.passes.vectorize.Vectorize` recognizes;
* a store appearing in **both** arms at the same index becomes one store
  of a select; a store in only one arm becomes the predicated
  :class:`~repro.ir.nodes.SMaskedStore` (scalar width), the maskable
  form the vectorizer widens into a true masked vector store.

The scalar rewrite is **semantics-preserving**: scalar ``Select``
short-circuits and the scalar masked store predicates the whole access,
so every FP operation, trap and memory write of the original branchy
loop replays bit-identically — like ``loop-unroll``, this pass only
*enables*.  The observable lives downstream: once ``Vectorize(masked=True)``
widens the select form, every lane evaluates **both** arms and blends by
mask, manufacturing rounding sequences (and, under fast math, values)
the branchy scalar loop never computes.

Refusals mirror real if-converters: nested loops or further ``SIf``
nesting inside an arm, side exits (``return``/``print``), arms whose
expressions read a variable the conversion itself assigns (RAW hazards a
blend cannot express), stores the two arms disagree on, and conditions
that read converted state.  Anything refused simply stays a branch — and
therefore stays scalar.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.ir.passes.base import Pass
from repro.ir.passes.loop_unroll import match_counted_loop

__all__ = ["IfConvert"]

#: Accumulation operators with the identity used for an absent arm.
_ACC_IDENTITY = {"+": 0.0, "-": 0.0, "*": 1.0, "/": 1.0}


def _reads_scalar(e: ir.Expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ir.Load) and sub.name in names for sub in ir.walk(e)
    )


def _reads_array(e: ir.Expr, names: set[str]) -> bool:
    return any(
        isinstance(sub, ir.LoadElem) and sub.name in names for sub in ir.walk(e)
    )


class IfConvert(Pass):
    """Convert conditional bodies of innermost counted loops to select form.

    >>> from repro.ir.passes.if_convert import IfConvert
    >>> IfConvert().name
    'if-convert'
    """

    name = "if-convert"

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        return kernel.with_body(self._stmts(kernel.body))

    # -- traversal ---------------------------------------------------------------

    def _stmts(self, stmts: tuple[ir.Stmt, ...]) -> tuple[ir.Stmt, ...]:
        out: list[ir.Stmt] = []
        for s in stmts:
            if isinstance(s, ir.SIf):
                out.append(ir.SIf(s.cond, self._stmts(s.then), self._stmts(s.other)))
            elif isinstance(s, ir.SWhile):
                out.append(ir.SWhile(s.cond, self._stmts(s.body)))
            elif isinstance(s, ir.SFor):
                out.append(self._loop(s))
            else:
                out.append(s)
        return tuple(out)

    def _loop(self, s: ir.SFor) -> ir.Stmt:
        innermost = not any(
            isinstance(sub, (ir.SFor, ir.SWhile))
            for sub in ir.walk_stmts(s.body)
        )
        if innermost and match_counted_loop(s) is not None:
            body: list[ir.Stmt] = []
            for st in s.body:
                converted = (
                    self._convert(st) if isinstance(st, ir.SIf) else None
                )
                if converted is not None:
                    body.extend(converted)
                else:
                    body.append(st)
            return ir.SFor(s.init, s.cond, s.step, tuple(body))
        return ir.SFor(
            self._stmts(s.init), s.cond, self._stmts(s.step), self._stmts(s.body)
        )

    # -- one conditional ---------------------------------------------------------

    def _convert(self, s: ir.SIf) -> list[ir.Stmt] | None:
        """The select form of one two-armed conditional, or ``None``."""
        arms = []
        for arm in (s.then, s.other):
            assigns: dict[str, ir.SAssign] = {}
            stores: dict[str, ir.SStoreElem] = {}
            for st in arm:
                if isinstance(st, ir.SAssign):
                    if st.name in assigns:
                        return None  # double write: order-dependent
                    assigns[st.name] = st
                elif isinstance(st, ir.SStoreElem):
                    if st.name in stores:
                        return None
                    stores[st.name] = st
                else:
                    return None  # nested control flow or side exit
            arms.append((assigns, stores))
        (then_a, then_s), (else_a, else_s) = arms

        assigned = set(then_a) | set(else_a)
        stored = set(then_s) | set(else_s)
        # The blend evaluates everything against pre-conditional state.
        # Two reads stay safe by evaluation order and are allowed: an
        # assignment reading its own target (the select evaluates before
        # the write, like the original statement), and a store's
        # condition/index/value reading the store's *own* array (scalar
        # and vector masked stores read everything before writing).  The
        # condition may read a stored array only while a single store
        # re-evaluates it: scalar assignments emit first, so every
        # evaluation before that last store still sees pre-store memory,
        # exactly like the original's single entry evaluation.
        if _reads_scalar(s.cond, assigned):
            return None
        if len(stored) > 1 and _reads_array(s.cond, stored):
            return None
        for name, st in (*then_a.items(), *else_a.items()):
            if _reads_scalar(st.value, assigned - {name}) or _reads_array(
                st.value, stored
            ):
                return None
        for st in (*then_s.values(), *else_s.values()):
            for e in (st.index, st.value):
                if _reads_scalar(e, assigned) or _reads_array(
                    e, stored - {st.name}
                ):
                    return None

        out: list[ir.Stmt] = []
        seen: set[str] = set()
        for name in (*then_a, *else_a):
            if name in seen:
                continue
            seen.add(name)
            out.append(self._blend_assign(s.cond, then_a.get(name), else_a.get(name)))
        for name in (*then_s, *else_s):
            if name in seen:
                continue
            seen.add(name)
            converted = self._blend_store(
                s.cond, then_s.get(name), else_s.get(name)
            )
            if converted is None:
                return None
            out.append(converted)
        return out

    @staticmethod
    def _blend_assign(
        cond: ir.Expr, then: ir.SAssign | None, other: ir.SAssign | None
    ) -> ir.SAssign:
        st = then if then is not None else other
        name, ty = st.name, st.ty

        def acc_term(a: ir.SAssign | None) -> tuple[str, ir.Expr] | None:
            if a is None:
                return None
            v = a.value
            if (
                isinstance(v, ir.FBin)
                and v.op in _ACC_IDENTITY
                and isinstance(v.left, ir.Load)
                and v.left.name == name
                and not _reads_scalar(v.right, {name})
            ):
                return (v.op, v.right)
            return None

        t_acc, o_acc = acc_term(then), acc_term(other)
        ops = {a[0] for a in (t_acc, o_acc) if a is not None}
        every_present_arm_accumulates = (then is None or t_acc is not None) and (
            other is None or o_acc is not None
        )
        if len(ops) == 1 and every_present_arm_accumulates:
            # Every present arm accumulates with one operator: factor the
            # accumulator out so the loop stays a recognizable reduction.
            op = ops.pop()
            identity = ir.FConst(_ACC_IDENTITY[op], ty)
            t_term = t_acc[1] if t_acc is not None else identity
            o_term = o_acc[1] if o_acc is not None else identity
            return ir.SAssign(
                name,
                ir.FBin(
                    op,
                    ir.Load(name, ty),
                    ir.Select(cond, t_term, o_term, ty),
                    ty,
                ),
                ty,
            )
        keep = ir.Load(name, ty)
        t_val = then.value if then is not None else keep
        o_val = other.value if other is not None else keep
        return ir.SAssign(name, ir.Select(cond, t_val, o_val, ty), ty)

    @staticmethod
    def _blend_store(
        cond: ir.Expr, then: ir.SStoreElem | None, other: ir.SStoreElem | None
    ) -> ir.Stmt | None:
        if then is not None and other is not None:
            if then.index != other.index:
                return None  # arms write different elements: not a blend
            return ir.SStoreElem(
                then.name,
                then.index,
                ir.Select(cond, then.value, other.value, then.elem_ty),
                then.elem_ty,
            )
        st = then if then is not None else other
        mask = cond if then is not None else ir.Not(cond)
        return ir.SMaskedStore(st.name, st.index, mask, st.value, st.elem_ty, 1)
