"""Fast-math math-function substitutions.

Under fast math compilers expand cheap special cases of ``pow``:
``pow(x, 2.0)`` becomes ``x*x``, small integer exponents become multiply
chains, and ``pow(x, 0.5)`` becomes ``sqrt(x)``.  The expansions round
differently from the library call (and ``sqrt`` has different domain
behaviour at ``-0``/negative inputs), adding host-side fast-math
divergence.  The exponent threshold and the half-power rule differ per
compiler model.
"""

from __future__ import annotations

import math

from repro.ir import nodes as ir
from repro.ir.passes.base import ExprRewritePass

__all__ = ["FunctionSubstitution"]


class FunctionSubstitution(ExprRewritePass):
    """Fast-math call replacement: small-integer ``pow`` exponents expand
    into multiply chains (up to ``max_pow_expand``), and ``pow(x, 0.5)``
    becomes ``sqrt(x)`` when ``pow_half_to_sqrt`` — each substitution
    swaps one correctly-rounded call for differently-rounded arithmetic.
    """

    name = "func-subst"

    def __init__(self, max_pow_expand: int = 4, pow_half_to_sqrt: bool = True) -> None:
        if max_pow_expand < 1:
            raise ValueError("max_pow_expand must be >= 1")
        self.max_pow_expand = max_pow_expand
        self.pow_half_to_sqrt = pow_half_to_sqrt

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        if not (isinstance(e, ir.FCall) and e.name == "pow" and len(e.args) == 2):
            return e
        base, expo = e.args
        # A literal exponent may reach us as FConst or as FNeg(FConst)
        # (the lowering keeps the source's unary minus).
        if isinstance(expo, ir.FConst):
            v = expo.value
        elif isinstance(expo, ir.FNeg) and isinstance(expo.operand, ir.FConst):
            v = -expo.operand.value
        else:
            return e
        if self.pow_half_to_sqrt and v == 0.5:
            return ir.FCall("sqrt", (base,), e.ty)
        if not (math.isfinite(v) and v == int(v)):
            return e
        n = int(v)
        if n == 0:
            return ir.FConst(1.0, e.ty)
        if abs(n) > self.max_pow_expand:
            return e
        acc: ir.Expr = base
        for _ in range(abs(n) - 1):
            acc = ir.FBin("*", acc, base, e.ty)
        if n < 0:
            acc = ir.FBin("/", ir.FConst(1.0, e.ty), acc, e.ty)
        return acc
