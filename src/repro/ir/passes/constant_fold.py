"""Constant folding, optionally with compile-time libm evaluation.

Folding arithmetic on constants is semantics-preserving here (compile-time
IEEE equals run-time IEEE).  The interesting knob is ``fold_calls``: a real
compiler folds ``sin(0.5)`` with an MPFR-grade (correctly rounded)
evaluator, while at run time the linked libm is only faithfully rounded —
so folding *changes the printed result* whenever the two disagree.  That is
a documented host-side inconsistency mechanism (DESIGN.md mechanism 3).

``propagate`` additionally pushes const-initialized scalars into use sites
(a model of clang's more aggressive constant propagation), which reaches
call sites like ``double k = 0.5; ... sin(k)`` that literal-only folding
misses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fp.fma import fma as fma_exact
from repro.fp.formats import FP32, FP64
from repro.fp.mathlib import CorrectlyRoundedLibm, MathLibrary
from repro.ir import nodes as ir
from repro.ir.passes.base import Pass, rebuild_expr

__all__ = ["ConstantFold"]

_CONST = (ir.FConst, ir.IConst)


def _f32(x: float) -> float:
    return float(np.float32(x))


def _assigned_names(stmts: tuple[ir.Stmt, ...]) -> set[str]:
    names = set()
    for s in ir.walk_stmts(stmts):
        if isinstance(s, ir.SAssign):
            names.add(s.name)
    return names


class ConstantFold(Pass):
    """Compile-time evaluation of constant subexpressions.

    ``fold_calls`` additionally folds constant-argument libm calls with a
    *correctly rounded* compile-time evaluator (``libm``, MPFR in a real
    compiler) — which may differ from the runtime library by an ulp, a
    modeled divergence source.  ``propagate`` lets const-initialized
    locals reach later use sites before folding (the clang model's more
    aggressive variant); without it only literal operands fold.
    """

    name = "constant-fold"

    def __init__(
        self,
        fold_calls: bool = False,
        propagate: bool = False,
        libm: MathLibrary | None = None,
    ) -> None:
        self.fold_calls = fold_calls
        self.propagate = propagate
        self.libm = libm or CorrectlyRoundedLibm()

    # -- driver ----------------------------------------------------------------

    def run(self, kernel: ir.Kernel) -> ir.Kernel:
        env: dict[str, ir.Expr] = {}
        return kernel.with_body(self._stmts(kernel.body, env))

    def _stmts(
        self, stmts: tuple[ir.Stmt, ...], env: dict[str, ir.Expr]
    ) -> tuple[ir.Stmt, ...]:
        return tuple(self._stmt(s, env) for s in stmts)

    def _stmt(self, s: ir.Stmt, env: dict[str, ir.Expr]) -> ir.Stmt:
        if isinstance(s, ir.SAssign):
            value = self._fold(s.value, env)
            if self.propagate and isinstance(value, _CONST):
                env[s.name] = value
            else:
                env.pop(s.name, None)
            return ir.SAssign(s.name, value, s.ty)
        if isinstance(s, ir.SDeclArray):
            init = (
                tuple(self._fold(e, env) for e in s.init) if s.init is not None else None
            )
            return ir.SDeclArray(s.name, s.size, s.elem_ty, init)
        if isinstance(s, ir.SStoreElem):
            return ir.SStoreElem(
                s.name, self._fold(s.index, env), self._fold(s.value, env), s.elem_ty
            )
        if isinstance(s, ir.SIf):
            cond = self._fold(s.cond, env)
            then_env = dict(env)
            other_env = dict(env)
            then = self._stmts(s.then, then_env)
            other = self._stmts(s.other, other_env)
            merged = {
                k: then_env[k]
                for k in then_env.keys() & other_env.keys()
                if then_env[k] == other_env[k]
            }
            env.clear()
            env.update(merged)
            return ir.SIf(cond, then, other)
        if isinstance(s, ir.SFor):
            init = self._stmts(s.init, env)
            killed = _assigned_names(s.body) | _assigned_names(s.step) | _assigned_names(s.init)
            for k in killed:
                env.pop(k, None)
            loop_env = dict(env)
            cond = self._fold(s.cond, loop_env) if s.cond is not None else None
            body = self._stmts(s.body, dict(loop_env))
            step = self._stmts(s.step, dict(loop_env))
            return ir.SFor(init, cond, step, body)
        if isinstance(s, ir.SWhile):
            killed = _assigned_names(s.body)
            for k in killed:
                env.pop(k, None)
            loop_env = dict(env)
            cond = self._fold(s.cond, loop_env)
            body = self._stmts(s.body, dict(loop_env))
            return ir.SWhile(cond, body)
        if isinstance(s, ir.SPrint):
            return ir.SPrint(s.fmt, tuple(self._fold(v, env) for v in s.values))
        return s

    # -- expression folding ----------------------------------------------------------

    def _fold(self, e: ir.Expr, env: dict[str, ir.Expr]) -> ir.Expr:
        def step(node: ir.Expr) -> ir.Expr:
            return self._fold_node(node, env)

        return rebuild_expr(e, step)

    def _fold_node(self, e: ir.Expr, env: dict[str, ir.Expr]) -> ir.Expr:
        if isinstance(e, ir.Load) and self.propagate:
            known = env.get(e.name)
            if known is not None:
                return known
        if isinstance(e, ir.IBin) and isinstance(e.left, ir.IConst) and isinstance(
            e.right, ir.IConst
        ):
            return self._fold_ibin(e)
        if isinstance(e, ir.INeg) and isinstance(e.operand, ir.IConst):
            return ir.IConst(-e.operand.value)
        if isinstance(e, ir.FBin) and isinstance(e.left, ir.FConst) and isinstance(
            e.right, ir.FConst
        ):
            return self._fold_fbin(e)
        if isinstance(e, ir.FNeg) and isinstance(e.operand, ir.FConst):
            return ir.FConst(-e.operand.value, e.ty)
        if isinstance(e, ir.Fma) and all(
            isinstance(x, ir.FConst) for x in (e.a, e.b, e.c)
        ):
            fmt = FP32 if e.ty == "float" else FP64
            return ir.FConst(fma_exact(e.a.value, e.b.value, e.c.value, fmt), e.ty)
        if isinstance(e, ir.SiToFp) and isinstance(e.operand, ir.IConst):
            v = float(e.operand.value)
            return ir.FConst(_f32(v) if e.ty == "float" else v, e.ty)
        if isinstance(e, ir.FpExt) and isinstance(e.operand, ir.FConst):
            return ir.FConst(e.operand.value, "double")
        if isinstance(e, ir.FpTrunc) and isinstance(e.operand, ir.FConst):
            v = e.operand.value
            if math.isnan(v) or math.isinf(v):
                return ir.FConst(v, "float")
            return ir.FConst(_f32(v), "float")
        if isinstance(e, ir.FpToSi) and isinstance(e.operand, ir.FConst):
            v = e.operand.value
            if math.isfinite(v) and abs(v) < 2**31:
                return ir.IConst(math.trunc(v))
            return e  # out-of-range fp->int is UB; leave for the trap
        if isinstance(e, ir.Compare) and isinstance(e.left, _CONST) and isinstance(
            e.right, _CONST
        ):
            return self._fold_compare(e)
        if isinstance(e, ir.Not) and isinstance(e.operand, ir.IConst):
            return ir.IConst(0 if e.operand.value else 1)
        if isinstance(e, ir.Logic) and isinstance(e.left, ir.IConst):
            lv = bool(e.left.value)
            if e.op == "&&":
                return e.right if lv else ir.IConst(0)
            return ir.IConst(1) if lv else e.right
        if isinstance(e, ir.Select) and isinstance(e.cond, ir.IConst):
            return e.then if e.cond.value else e.other
        if (
            isinstance(e, ir.FCall)
            and self.fold_calls
            and all(isinstance(a, ir.FConst) for a in e.args)
        ):
            fmt = FP32 if e.ty == "float" else FP64
            args = tuple(a.value for a in e.args)
            return ir.FConst(self.libm.call(e.name, args, fmt), e.ty)
        return e

    @staticmethod
    def _fold_ibin(e: ir.IBin) -> ir.Expr:
        a, b = e.left.value, e.right.value
        if e.op == "+":
            return ir.IConst(a + b)
        if e.op == "-":
            return ir.IConst(a - b)
        if e.op == "*":
            return ir.IConst(a * b)
        if b == 0:
            return e  # UB at runtime; the interpreter traps
        if e.op == "/":
            return ir.IConst(int(a / b))  # C truncates toward zero
        return ir.IConst(a - int(a / b) * b)  # C remainder

    @staticmethod
    def _fold_fbin(e: ir.FBin) -> ir.Expr:
        a, b = e.left.value, e.right.value
        with np.errstate(all="ignore"):
            if e.ty == "float":
                fa, fb = np.float32(a), np.float32(b)
                ops = {"+": fa + fb, "-": fa - fb, "*": fa * fb}
                r = ops[e.op] if e.op in ops else np.divide(fa, fb)
            else:
                fa, fb = np.float64(a), np.float64(b)
                ops = {"+": fa + fb, "-": fa - fb, "*": fa * fb}
                r = ops[e.op] if e.op in ops else np.divide(fa, fb)
        return ir.FConst(float(r), e.ty)

    @staticmethod
    def _fold_compare(e: ir.Compare) -> ir.Expr:
        a = e.left.value
        b = e.right.value
        table = {
            "==": a == b,
            "!=": a != b,
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
        }
        return ir.IConst(1 if table[e.op] else 0)
