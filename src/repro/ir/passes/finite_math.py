"""Finite-math-only algebraic simplifications (fast math).

``-ffast-math`` implies ``-ffinite-math-only`` and ``-fno-signed-zeros``:
the compiler may simplify as if NaN, infinities and the sign of zero never
matter.  When a run *does* hit those values, the simplified binary diverges
catastrophically from the strict one — this pass is the main producer of
the extreme-value inconsistency kinds the paper observes almost exclusively
at ``O3_fastmath`` (Table 3).
"""

from __future__ import annotations

import math

from repro.ir import nodes as ir
from repro.ir.passes.base import ExprRewritePass

__all__ = ["FiniteMathSimplify"]


def _is_const(e: ir.Expr, value: float) -> bool:
    return isinstance(e, ir.FConst) and e.value == value and not math.isnan(value)


class FiniteMathSimplify(ExprRewritePass):
    """Finite-math-only algebraic simplifications (``-ffinite-math-only``):
    identities like ``x - x -> 0`` and ``0 * x -> 0`` that are wrong in
    the presence of NaN/Inf inputs — exactly where they diverge."""

    name = "finite-math"

    def rewrite(self, e: ir.Expr) -> ir.Expr:
        if isinstance(e, ir.FBin):
            return self._fbin(e)
        if isinstance(e, ir.FCall):
            return self._fcall(e)
        return e

    def _fbin(self, e: ir.FBin) -> ir.Expr:
        l, r = e.left, e.right
        if e.op == "-" and l == r:
            # x - x -> 0  (wrong if x is inf or NaN)
            return ir.FConst(0.0, e.ty)
        if e.op == "/" and l == r:
            # x / x -> 1  (wrong if x is 0, inf or NaN)
            return ir.FConst(1.0, e.ty)
        if e.op == "*":
            # x * 0 -> 0  (wrong if x is inf or NaN; drops -0 sign)
            if _is_const(l, 0.0):
                return ir.FConst(0.0, e.ty)
            if _is_const(r, 0.0):
                return ir.FConst(0.0, e.ty)
            # x * 1 -> x  (exact; harmless but canonicalizing)
            if _is_const(l, 1.0):
                return r
            if _is_const(r, 1.0):
                return l
        if e.op == "+":
            # x + 0 -> x  (wrong sign for x == -0.0)
            if _is_const(r, 0.0):
                return l
            if _is_const(l, 0.0):
                return r
        if e.op == "-" and _is_const(r, 0.0):
            return l
        if e.op == "/" and _is_const(r, 1.0):
            return l
        return e

    def _fcall(self, e: ir.FCall) -> ir.Expr:
        if e.name == "sqrt" and len(e.args) == 1:
            arg = e.args[0]
            # sqrt(x) * sqrt(x) is handled at the FBin level below via
            # x/x-style structural equality; here: sqrt(x*x) -> fabs(x).
            if isinstance(arg, ir.FBin) and arg.op == "*" and arg.left == arg.right:
                return ir.FCall("fabs", (arg.left,), e.ty)
        if e.name == "fabs" and len(e.args) == 1:
            arg = e.args[0]
            if isinstance(arg, ir.FCall) and arg.name == "fabs":
                return arg
        return e
