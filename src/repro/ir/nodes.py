"""IR node definitions.

Expressions are immutable trees; statements form a structured CFG (no
gotos — the source subset is structured).  Every expression knows whether
it is floating-point (``fp``) or integer, and FP expressions carry their
precision ("float"/"double") so mixed-precision programs lower correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ----------------------------------------------------------------------- expressions


@dataclass(frozen=True, slots=True)
class FConst:
    value: float
    ty: str = "double"  # "float" | "double"


@dataclass(frozen=True, slots=True)
class IConst:
    value: int


@dataclass(frozen=True, slots=True)
class Load:
    """Read a scalar variable."""

    name: str
    ty: str  # "int" | "float" | "double"


@dataclass(frozen=True, slots=True)
class LoadElem:
    """Read an array/pointer element."""

    name: str
    index: "Expr"
    ty: str  # element type


@dataclass(frozen=True, slots=True)
class FBin:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class FNeg:
    operand: "Expr"
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class Fma:
    """Fused a*b + c — produced only by the contraction pass."""

    a: "Expr"
    b: "Expr"
    c: "Expr"
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class FCall:
    name: str
    args: tuple["Expr", ...]
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class IBin:
    op: str  # + - * / %
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class INeg:
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class Compare:
    op: str  # == != < <= > >=
    left: "Expr"
    right: "Expr"
    fp: bool  # floating comparison vs integer comparison


@dataclass(frozen=True, slots=True)
class Logic:
    op: str  # && ||  (short-circuit)
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class Select:
    """Ternary ?: — short-circuit select."""

    cond: "Expr"
    then: "Expr"
    other: "Expr"
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class SiToFp:
    operand: "Expr"
    ty: str = "double"


# -- vector expressions (produced only by the vectorization tier) -------------
#
# A vector value is a fixed-width tuple of lanes.  Vector nodes are never
# produced by lowering — only :class:`~repro.ir.passes.vectorize.Vectorize`
# introduces them — and the interpreter evaluates each lane through the
# binary's FPEnvironment, so lane math is exactly as deterministic as the
# scalar math it widens.


@dataclass(frozen=True, slots=True)
class VecConst:
    """A literal vector, e.g. the reduction identity ``(0.0, 0.0, ...)``."""

    values: tuple[float, ...]
    ty: str = "double"  # element type

    @property
    def lanes(self) -> int:
        return len(self.values)


@dataclass(frozen=True, slots=True)
class VecSplat:
    """Broadcast of a loop-invariant scalar expression into every lane."""

    operand: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecIota:
    """The lane-stepped induction vector ``(base, base+1, ..., base+lanes-1)``.

    This is how a use of the induction variable inside a widened loop body
    survives vectorization: lane *j* observes ``i + j``.
    """

    base: "Expr"  # int expression (the scalar induction variable)
    lanes: int


@dataclass(frozen=True, slots=True)
class VecLoad:
    """A unit-stride vector load: elements ``name[index .. index+lanes-1]``."""

    name: str
    index: "Expr"
    lanes: int
    ty: str  # element type


@dataclass(frozen=True, slots=True)
class VecBin:
    """Lane-wise arithmetic; each lane rounds independently, like SIMD."""

    op: str  # + - * /
    left: "Expr"
    right: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecNeg:
    operand: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecFma:
    """Lane-wise fused multiply-add (a widened :class:`Fma` site)."""

    a: "Expr"
    b: "Expr"
    c: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecCall:
    """Lane-wise math-library call (each lane calls the binary's libm)."""

    name: str
    args: tuple["Expr", ...]
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecSiToFp:
    """Lane-wise int -> float conversion (widened ``SiToFp``)."""

    operand: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecFpExt:
    """Lane-wise float -> double widening (a widened :class:`FpExt`).

    Like its scalar counterpart, exact: every binary32 value is a
    binary64 value, so no lane rounds.
    """

    operand: "Expr"
    lanes: int


@dataclass(frozen=True, slots=True)
class VecFpTrunc:
    """Lane-wise double -> float narrowing (a widened :class:`FpTrunc`).

    Each lane rounds independently through the binary's environment —
    under FTZ the narrowing also flushes subnormal lanes, which is how
    mixed-precision bodies compose with fast-math device models.
    """

    operand: "Expr"
    lanes: int


# -- mask-typed vector nodes (the if-conversion tier) --------------------------
#
# A *mask* is a vector of lane predicates (0/1 ints).  If-conversion turns
# a conditional loop body into select form; widening that form evaluates
# BOTH arms in every lane and blends by mask — which is exactly how
# speculated lanes compute values (and rounding sequences) the scalar
# branchy loop never executes.


@dataclass(frozen=True, slots=True)
class VecCmp:
    """Lane-wise comparison producing a mask (1 where the predicate holds).

    NaN semantics match scalar :class:`Compare`: any NaN operand makes
    every ordered predicate false (and only ``!=`` true) in that lane.
    """

    op: str  # == != < <= > >=
    left: "Expr"
    right: "Expr"
    lanes: int


@dataclass(frozen=True, slots=True)
class VecSelect:
    """Lane-wise mask blend: ``mask[j] ? then[j] : other[j]``.

    Unlike the short-circuit scalar :class:`Select`, **both** operand
    vectors are fully evaluated — the defining semantics of if-converted
    lanes under SIMD/warp predication.
    """

    mask: "Expr"
    then: "Expr"
    other: "Expr"
    lanes: int
    ty: str = "double"


@dataclass(frozen=True, slots=True)
class VecMaskedLoad:
    """Unit-stride vector load with zeroing masking (AVX-512 style).

    Active lanes (mask true, or false when ``invert``) read
    ``name[index+j]`` with the usual bounds/uninitialized trapping;
    inactive lanes produce ``0.0`` without touching memory — so a load
    the scalar loop guarded (e.g. ``if (i > 0) ... a[i-1]``) cannot trap
    in lanes the guard would have skipped.
    """

    name: str
    index: "Expr"
    mask: "Expr"
    lanes: int
    ty: str  # element type
    invert: bool = False


#: Horizontal-reduction shapes.  The *shape* is the observable: each one
#: combines the same lanes in a different association order, so two
#: binaries reducing the same data with different shapes (or widths)
#: round differently and bitwise-diverge.
REDUCE_STYLES = ("adjacent", "butterfly", "ladder")


@dataclass(frozen=True, slots=True)
class VecReduce:
    """Horizontal reduction of a vector to one scalar.

    Styles (see :data:`REDUCE_STYLES`):

    * ``adjacent``  — pairwise neighbours per round: ``(l0+l1)+(l2+l3)``
      (SSE/AVX ``haddpd``-style; the gcc model).
    * ``butterfly`` — recursive halves: ``(l0+l2)+(l1+l3)`` for width 4
      (warp ``shfl_down``-style; the nvcc model).
    * ``ladder``    — sequential extract-and-accumulate:
      ``((l0+l1)+l2)+l3`` (scalarized extraction; the clang model).
    """

    op: str  # + *
    operand: "Expr"
    lanes: int
    ty: str = "double"
    style: str = "adjacent"


@dataclass(frozen=True, slots=True)
class FpToSi:
    operand: "Expr"


@dataclass(frozen=True, slots=True)
class FpExt:
    """float -> double widening."""

    operand: "Expr"


@dataclass(frozen=True, slots=True)
class FpTrunc:
    """double -> float narrowing (a rounding step)."""

    operand: "Expr"


Expr = Union[
    FConst,
    IConst,
    Load,
    LoadElem,
    FBin,
    FNeg,
    Fma,
    FCall,
    IBin,
    INeg,
    Compare,
    Logic,
    Not,
    Select,
    SiToFp,
    FpToSi,
    FpExt,
    FpTrunc,
    VecConst,
    VecSplat,
    VecIota,
    VecLoad,
    VecBin,
    VecNeg,
    VecFma,
    VecCall,
    VecSiToFp,
    VecFpExt,
    VecFpTrunc,
    VecCmp,
    VecSelect,
    VecMaskedLoad,
    VecReduce,
]

_FP_NODES = (FConst, FBin, FNeg, Fma, FCall, SiToFp, FpExt, FpTrunc)

#: Every vector-valued node (``VecReduce`` consumes a vector but produces
#: a scalar, so it is *not* in this set).
VECTOR_NODES = (
    VecConst, VecSplat, VecIota, VecLoad, VecBin, VecNeg, VecFma, VecCall,
    VecSiToFp, VecFpExt, VecFpTrunc, VecCmp, VecSelect, VecMaskedLoad,
)

#: Every node of the vector tier, vector-valued or not — the isinstance
#: filter shared by the interpreter's dispatch and the devectorizer.
ANY_VECTOR_NODES = VECTOR_NODES + (VecReduce,)


def expr_type(e: Expr) -> str:
    """Static *element* type of an IR expression: 'int', 'float' or 'double'.

    Vector nodes report their lane type; use :func:`lanes_of` to tell a
    vector from a scalar.
    """
    if isinstance(
        e, (IConst, IBin, INeg, Compare, Logic, Not, FpToSi, VecIota, VecCmp)
    ):
        return "int"
    if isinstance(e, (Load, LoadElem)):
        return e.ty
    if isinstance(e, (FpExt, VecFpExt)):
        return "double"
    if isinstance(e, (FpTrunc, VecFpTrunc)):
        return "float"
    if isinstance(e, Select):
        return e.ty
    return e.ty  # FConst, FBin, FNeg, Fma, FCall, SiToFp, Vec*


def is_fp(e: Expr) -> bool:
    return expr_type(e) in ("float", "double")


def lanes_of(e: Expr) -> int:
    """Vector width of an expression's value (1 for scalars)."""
    if isinstance(e, VECTOR_NODES):
        return e.lanes if not isinstance(e, VecConst) else len(e.values)
    return 1


def walk(e: Expr):
    """Yield ``e`` and all sub-expressions, pre-order."""
    yield e
    if isinstance(e, (FBin, IBin, Compare, Logic, VecBin, VecCmp)):
        yield from walk(e.left)
        yield from walk(e.right)
    elif isinstance(
        e,
        (FNeg, INeg, Not, SiToFp, FpToSi, FpExt, FpTrunc, VecSplat, VecNeg,
         VecSiToFp, VecFpExt, VecFpTrunc, VecReduce),
    ):
        yield from walk(e.operand)
    elif isinstance(e, (Fma, VecFma)):
        yield from walk(e.a)
        yield from walk(e.b)
        yield from walk(e.c)
    elif isinstance(e, (FCall, VecCall)):
        for a in e.args:
            yield from walk(a)
    elif isinstance(e, Select):
        yield from walk(e.cond)
        yield from walk(e.then)
        yield from walk(e.other)
    elif isinstance(e, VecSelect):
        yield from walk(e.mask)
        yield from walk(e.then)
        yield from walk(e.other)
    elif isinstance(e, (LoadElem, VecLoad)):
        yield from walk(e.index)
    elif isinstance(e, VecMaskedLoad):
        yield from walk(e.index)
        yield from walk(e.mask)
    elif isinstance(e, VecIota):
        yield from walk(e.base)


# ----------------------------------------------------------------------- statements


@dataclass(frozen=True, slots=True)
class SAssign:
    """Scalar assignment ``name = value`` (compound ops already expanded)."""

    name: str
    value: Expr
    ty: str  # declared type of the variable


@dataclass(frozen=True, slots=True)
class SDeclArray:
    name: str
    size: int
    elem_ty: str
    init: tuple[Expr, ...] | None = None


@dataclass(frozen=True, slots=True)
class SStoreElem:
    name: str
    index: Expr
    value: Expr
    elem_ty: str


@dataclass(frozen=True, slots=True)
class SVecStore:
    """Unit-stride vector store: ``name[index .. index+lanes-1] = value``.

    ``value`` must be a vector expression of the same width; produced only
    by the vectorizer when it widens a map loop's element store.
    """

    name: str
    index: Expr
    value: Expr
    elem_ty: str
    lanes: int = 4


@dataclass(frozen=True, slots=True)
class SMaskedStore:
    """Predicated element store; the masked variant of a store.

    At ``lanes == 1`` this is the *scalar* predicated form if-conversion
    produces for a store that appears in only one arm: ``mask`` is a
    scalar condition, evaluated first, and the store (index, value and
    memory write) happens only when it is true — bit- and trap-identical
    to the original guarded store.  The vectorizer widens it in place:
    at ``lanes > 1`` the mask is a lane predicate vector and only active
    lanes are bounds-checked and written (AVX-512 ``vmovupd {k}`` /
    predicated warp store).
    """

    name: str
    index: Expr
    mask: Expr
    value: Expr
    elem_ty: str
    lanes: int = 1


@dataclass(frozen=True, slots=True)
class SIf:
    cond: Expr
    then: tuple["Stmt", ...]
    other: tuple["Stmt", ...] = ()


@dataclass(frozen=True, slots=True)
class SFor:
    """Structured counted loop: init; while(cond) { body; step; }"""

    init: tuple["Stmt", ...]
    cond: Expr | None
    step: tuple["Stmt", ...]
    body: tuple["Stmt", ...]


@dataclass(frozen=True, slots=True)
class SWhile:
    cond: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True, slots=True)
class SPrint:
    """printf with a literal format (the program's observable output)."""

    fmt: str
    values: tuple[Expr, ...] = ()


@dataclass(frozen=True, slots=True)
class SReturn:
    pass


Stmt = Union[
    SAssign,
    SDeclArray,
    SStoreElem,
    SVecStore,
    SMaskedStore,
    SIf,
    SFor,
    SWhile,
    SPrint,
    SReturn,
]


def walk_stmts(stmts: tuple[Stmt, ...]):
    """Yield every statement, pre-order, recursing into bodies."""
    for s in stmts:
        yield s
        if isinstance(s, SIf):
            yield from walk_stmts(s.then)
            yield from walk_stmts(s.other)
        elif isinstance(s, SFor):
            yield from walk_stmts(s.init)
            yield from walk_stmts(s.body)
            yield from walk_stmts(s.step)
        elif isinstance(s, SWhile):
            yield from walk_stmts(s.body)


def stmt_exprs(s: Stmt):
    """Top-level expressions of one statement (no recursion into bodies)."""
    if isinstance(s, SAssign):
        yield s.value
    elif isinstance(s, SDeclArray) and s.init is not None:
        yield from s.init
    elif isinstance(s, (SStoreElem, SVecStore)):
        yield s.index
        yield s.value
    elif isinstance(s, SMaskedStore):
        yield s.mask
        yield s.index
        yield s.value
    elif isinstance(s, SIf):
        yield s.cond
    elif isinstance(s, SFor):
        if s.cond is not None:
            yield s.cond
    elif isinstance(s, SWhile):
        yield s.cond
    elif isinstance(s, SPrint):
        yield from s.values


# ----------------------------------------------------------------------- kernel


@dataclass(frozen=True, slots=True)
class Param:
    name: str
    ty: str  # 'int' | 'float' | 'double' | 'float*' | 'double*'

    @property
    def is_pointer(self) -> bool:
        return self.ty.endswith("*")

    @property
    def scalar_ty(self) -> str:
        return self.ty.rstrip("*")


@dataclass(frozen=True, slots=True)
class Kernel:
    """Lowered `compute` function: what a toolchain optimizes and runs."""

    name: str
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]
    var_types: dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def with_body(self, body: tuple[Stmt, ...]) -> "Kernel":
        return Kernel(self.name, self.params, body, self.var_types)
