"""Lowering: checked AST -> typed IR kernel.

All implicit C conversions become explicit nodes (``SiToFp``, ``FpExt``,
``FpTrunc``, ``FpToSi``), compound assignments and ``++``/``--`` are
expanded, and nested-scope shadowing is resolved by renaming, so the IR is
flat-named and every rounding step is visible to the passes and the
interpreter.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.frontend import ast
from repro.frontend.sema import SemaResult
from repro.fp.mathlib import MATH_FUNCTIONS
from repro.ir import nodes as ir
from repro.ir.nodes import expr_type

__all__ = ["lower_unit", "lower_compute"]


class _Renamer:
    """Maps source names to unique IR names across nested scopes."""

    def __init__(self) -> None:
        self._scopes: list[dict[str, str]] = [{}]
        self._counts: dict[str, int] = {}

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def declare(self, name: str) -> str:
        n = self._counts.get(name, 0)
        self._counts[name] = n + 1
        unique = name if n == 0 else f"{name}__{n + 1}"
        self._scopes[-1][name] = unique
        return unique

    def resolve(self, name: str) -> str:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CompileError(f"unresolved name {name!r} during lowering")


class _Lowerer:
    def __init__(self, sema: SemaResult) -> None:
        self._sema = sema
        self._names = _Renamer()
        self._var_types: dict[str, str] = {}

    # -- types ----------------------------------------------------------------

    def _src_type(self, expr: ast.Expr) -> str:
        t = self._sema.type_of(expr)
        if t.is_indexable:
            return t.element.base + "*"
        return t.base

    @staticmethod
    def _convert(e: ir.Expr, to_ty: str) -> ir.Expr:
        frm = expr_type(e)
        if frm == to_ty:
            return e
        if frm == "int" and to_ty in ("float", "double"):
            return ir.SiToFp(e, to_ty)
        if frm in ("float", "double") and to_ty == "int":
            return ir.FpToSi(e)
        if frm == "float" and to_ty == "double":
            return ir.FpExt(e)
        if frm == "double" and to_ty == "float":
            return ir.FpTrunc(e)
        raise CompileError(f"cannot convert {frm} to {to_ty}")

    @staticmethod
    def _common(a: ir.Expr, b: ir.Expr) -> str:
        ta, tb = expr_type(a), expr_type(b)
        if "double" in (ta, tb):
            return "double"
        if "float" in (ta, tb):
            return "float"
        return "int"

    # -- kernel -----------------------------------------------------------------

    def lower(self, fn: ast.FunctionDef) -> ir.Kernel:
        params = []
        for p in fn.params:
            self._names.declare(p.name)
            ty = p.type.base + ("*" if p.type.pointers else "")
            params.append(ir.Param(p.name, ty))
            self._var_types[p.name] = ty
        body = self._block(fn.body)
        return ir.Kernel(fn.name, tuple(params), body, dict(self._var_types))

    def _block(self, block: ast.Block) -> tuple[ir.Stmt, ...]:
        self._names.push()
        out: list[ir.Stmt] = []
        for s in block.stmts:
            out.extend(self._stmt(s))
        self._names.pop()
        return tuple(out)

    # -- statements ----------------------------------------------------------------

    def _stmt(self, s: ast.Stmt) -> list[ir.Stmt]:
        if isinstance(s, ast.Decl):
            return self._decl(s)
        if isinstance(s, ast.Assign):
            return [self._assign(s)]
        if isinstance(s, ast.IncDec):
            return [self._incdec(s)]
        if isinstance(s, ast.ExprStmt):
            return self._expr_stmt(s)
        if isinstance(s, ast.Block):
            return list(self._block(s))
        if isinstance(s, ast.If):
            cond = self._expr(s.cond)
            then = self._block(s.then)
            other = self._block(s.other) if s.other is not None else ()
            return [ir.SIf(cond, then, other)]
        if isinstance(s, ast.For):
            self._names.push()
            init: tuple[ir.Stmt, ...] = ()
            if s.init is not None:
                init = tuple(self._stmt(s.init))
            cond = self._expr(s.cond) if s.cond is not None else None
            step: tuple[ir.Stmt, ...] = ()
            if s.step is not None:
                step = tuple(self._stmt(s.step))
            body = self._block(s.body)
            self._names.pop()
            return [ir.SFor(init, cond, step, body)]
        if isinstance(s, ast.While):
            return [ir.SWhile(self._expr(s.cond), self._block(s.body))]
        if isinstance(s, ast.Return):
            return [ir.SReturn()]
        raise CompileError(f"cannot lower statement {type(s).__name__}")

    def _decl(self, s: ast.Decl) -> list[ir.Stmt]:
        out: list[ir.Stmt] = []
        for d in s.declarators:
            unique = self._names.declare(d.name)
            if d.array_size is not None:
                self._var_types[unique] = s.base.base + "*"
                init = None
                if d.array_init is not None:
                    init = tuple(
                        self._convert(self._expr(e), s.base.base) for e in d.array_init
                    )
                out.append(ir.SDeclArray(unique, d.array_size, s.base.base, init))
            else:
                self._var_types[unique] = s.base.base
                if d.init is not None:
                    value = self._convert(self._expr(d.init), s.base.base)
                    out.append(ir.SAssign(unique, value, s.base.base))
                # uninitialized scalars only exist until first assignment;
                # sema proved no read precedes it, so no IR is needed here.
        return out

    def _assign(self, s: ast.Assign) -> ir.Stmt:
        value = self._expr(s.value)
        if isinstance(s.target, ast.Ident):
            name = self._names.resolve(s.target.name)
            ty = self._var_types[name]
            if s.op != "=":
                cur: ir.Expr = ir.Load(name, ty)
                value = self._apply_compound(s.op, cur, value)
            return ir.SAssign(name, self._convert(value, ty), ty)
        assert isinstance(s.target, ast.Index)
        base = s.target.base
        if not isinstance(base, ast.Ident):
            raise CompileError("stores through computed bases are not supported")
        name = self._names.resolve(base.name)
        elem_ty = self._var_types[name].rstrip("*")
        index = self._convert(self._expr(s.target.index), "int")
        if s.op != "=":
            cur = ir.LoadElem(name, index, elem_ty)
            value = self._apply_compound(s.op, cur, value)
        return ir.SStoreElem(name, index, self._convert(value, elem_ty), elem_ty)

    def _apply_compound(self, op: str, cur: ir.Expr, value: ir.Expr) -> ir.Expr:
        base_op = op[0]  # '+=' -> '+'
        common = self._common(cur, value)
        if common == "int":
            return ir.IBin(base_op, cur, value)
        return ir.FBin(base_op, self._convert(cur, common), self._convert(value, common), common)

    def _incdec(self, s: ast.IncDec) -> ir.Stmt:
        if not isinstance(s.target, ast.Ident):
            raise CompileError("++/-- on array elements is not supported")
        name = self._names.resolve(s.target.name)
        ty = self._var_types[name]
        op = "+" if s.op == "++" else "-"
        if ty == "int":
            return ir.SAssign(name, ir.IBin(op, ir.Load(name, "int"), ir.IConst(1)), ty)
        one = ir.FConst(1.0, ty)
        return ir.SAssign(name, ir.FBin(op, ir.Load(name, ty), one, ty), ty)

    def _expr_stmt(self, s: ast.ExprStmt) -> list[ir.Stmt]:
        e = s.expr
        if isinstance(e, ast.Call) and e.name == "printf":
            fmt = e.args[0]
            assert isinstance(fmt, ast.StrLit)
            values = tuple(self._expr(a) for a in e.args[1:])
            return [ir.SPrint(fmt.value, values)]
        # Any other expression statement is effect-free in this subset;
        # evaluate-and-discard has no observable so it lowers to nothing.
        return []

    # -- expressions -----------------------------------------------------------------

    def _expr(self, e: ast.Expr) -> ir.Expr:
        if isinstance(e, ast.IntLit):
            return ir.IConst(e.value)
        if isinstance(e, ast.FloatLit):
            if e.is_single:
                import struct

                v = struct.unpack("<f", struct.pack("<f", e.value))[0]
                return ir.FConst(v, "float")
            return ir.FConst(e.value, "double")
        if isinstance(e, ast.Ident):
            name = self._names.resolve(e.name)
            return ir.Load(name, self._var_types[name])
        if isinstance(e, ast.Unary):
            inner = self._expr(e.operand)
            if e.op == "+":
                return inner
            if e.op == "!":
                return ir.Not(inner)
            ty = expr_type(inner)
            if ty == "int":
                return ir.INeg(inner)
            return ir.FNeg(inner, ty)
        if isinstance(e, ast.Binary):
            return self._binary(e)
        if isinstance(e, ast.Ternary):
            cond = self._expr(e.cond)
            then = self._expr(e.then)
            other = self._expr(e.other)
            common = self._common(then, other)
            return ir.Select(
                cond,
                self._convert(then, common),
                self._convert(other, common),
                common,
            )
        if isinstance(e, ast.Call):
            spec = MATH_FUNCTIONS.get(e.name)
            if spec is None:
                raise CompileError(f"cannot lower call to {e.name!r}")
            # C libm entry points take and return double.
            args = tuple(self._convert(self._expr(a), "double") for a in e.args)
            return ir.FCall(e.name, args, "double")
        if isinstance(e, ast.Index):
            base = e.base
            if not isinstance(base, ast.Ident):
                raise CompileError("indexing computed bases is not supported")
            name = self._names.resolve(base.name)
            elem_ty = self._var_types[name].rstrip("*")
            index = self._convert(self._expr(e.index), "int")
            return ir.LoadElem(name, index, elem_ty)
        if isinstance(e, ast.Cast):
            return self._convert(self._expr(e.operand), e.type.base)
        raise CompileError(f"cannot lower expression {type(e).__name__}")

    def _binary(self, e: ast.Binary) -> ir.Expr:
        left = self._expr(e.left)
        right = self._expr(e.right)
        if e.op in ("&&", "||"):
            return ir.Logic(e.op, left, right)
        if e.op in ("==", "!=", "<", "<=", ">", ">="):
            common = self._common(left, right)
            fp = common != "int"
            return ir.Compare(
                e.op, self._convert(left, common), self._convert(right, common), fp
            )
        if e.op == "%":
            return ir.IBin("%", left, right)
        common = self._common(left, right)
        if common == "int":
            return ir.IBin(e.op, left, right)
        return ir.FBin(
            e.op, self._convert(left, common), self._convert(right, common), common
        )


def lower_compute(sema: SemaResult) -> ir.Kernel:
    """Lower the checked unit's ``compute`` function to an IR kernel."""
    fn = sema.unit.function("compute")
    return _Lowerer(sema).lower(fn)


def lower_unit(sema: SemaResult) -> ir.Kernel:
    """Alias of :func:`lower_compute` — `compute` is the program's kernel."""
    return lower_compute(sema)
