"""Token streams for the diversity metrics.

Reuses the frontend lexer so metric tokenization agrees with the language
definition.  ``normalize_tokens`` implements the NiCad-style
normalizations: Type-2 renames identifiers/literals to category
placeholders; Type-2c renames identifiers *consistently* (same source name
-> same placeholder index).
"""

from __future__ import annotations

from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

__all__ = ["c_tokens", "normalize_tokens"]


def c_tokens(source: str) -> list[str]:
    """Lex C source to a token-text list (EOF dropped).

    Raises :class:`LexError` on unlexable input — metric callers filter
    invalid programs beforehand.
    """
    lexed = tokenize(source)
    return [t.text for t in lexed.tokens if t.kind is not TokenKind.EOF]


def _kinds(source: str) -> list[Token]:
    return [t for t in tokenize(source).tokens if t.kind is not TokenKind.EOF]


def normalize_tokens(source: str, consistent: bool = False) -> list[str]:
    """Type-2 normalization: identifiers/literals become placeholders.

    With ``consistent=True`` (Type-2c), each distinct identifier maps to a
    stable indexed placeholder (``ID1``, ``ID2``, ...), so only *consistent*
    renamings match.
    """
    out: list[str] = []
    mapping: dict[str, str] = {}
    for tok in _kinds(source):
        if tok.kind is TokenKind.IDENT:
            if consistent:
                if tok.text not in mapping:
                    mapping[tok.text] = f"ID{len(mapping) + 1}"
                out.append(mapping[tok.text])
            else:
                out.append("ID")
        elif tok.kind in (TokenKind.INT_LIT, TokenKind.FLOAT_LIT):
            out.append("LIT")
        elif tok.kind is TokenKind.STRING_LIT:
            out.append("STR")
        else:
            out.append(tok.text)
    return out
