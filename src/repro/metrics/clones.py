"""NiCad-style clone detection (Cordy & Roy 2011; Roy & Cordy taxonomy).

The paper checks Type-1, Type-2 and Type-2c clones across each approach's
1,000 generated programs and finds none (§3.2.3).  Definitions:

* Type-1  — identical code up to whitespace/comments (equal token streams);
* Type-2  — identical up to arbitrary renaming of identifiers/literals/types
  (equal blind-normalized streams);
* Type-2c — NiCad's stricter subtype: identical up to *consistent* renaming
  (equal consistently-indexed normalized streams).

An optional near-miss mode reports pairs above a token-level similarity
threshold, NiCad's UPI-style knob, useful for corpus inspection.
"""

from __future__ import annotations

import difflib
import enum
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import LexError
from repro.metrics.ctokens import c_tokens, normalize_tokens

__all__ = ["CloneType", "CloneReport", "detect_clones", "near_miss_pairs"]


class CloneType(enum.Enum):
    TYPE1 = "Type-1"
    TYPE2 = "Type-2"
    TYPE2C = "Type-2c"


@dataclass
class CloneReport:
    """Clone classes per type: lists of program-index groups (size >= 2)."""

    classes: dict[CloneType, list[list[int]]] = field(default_factory=dict)
    skipped: list[int] = field(default_factory=list)  # unlexable programs

    def count(self, clone_type: CloneType) -> int:
        """Number of clone *instances*: members beyond each class's first."""
        return sum(len(group) - 1 for group in self.classes.get(clone_type, []))

    @property
    def clone_free(self) -> bool:
        return all(self.count(t) == 0 for t in CloneType)


def _stream(source: str, clone_type: CloneType) -> tuple[str, ...] | None:
    try:
        if clone_type is CloneType.TYPE1:
            return tuple(c_tokens(source))
        if clone_type is CloneType.TYPE2:
            return tuple(normalize_tokens(source, consistent=False))
        return tuple(normalize_tokens(source, consistent=True))
    except LexError:
        return None


def detect_clones(sources: list[str]) -> CloneReport:
    """Exact Type-1/2/2c clone classes over a program corpus."""
    report = CloneReport()
    skipped: set[int] = set()
    for clone_type in CloneType:
        buckets: dict[tuple[str, ...], list[int]] = defaultdict(list)
        for i, src in enumerate(sources):
            stream = _stream(src, clone_type)
            if stream is None:
                skipped.add(i)
                continue
            buckets[stream].append(i)
        report.classes[clone_type] = [
            group for group in buckets.values() if len(group) >= 2
        ]
    report.skipped = sorted(skipped)
    return report


def near_miss_pairs(
    sources: list[str], threshold: float = 0.9, consistent: bool = True
) -> list[tuple[int, int, float]]:
    """Pairs whose normalized token streams exceed ``threshold`` similarity.

    Similarity is difflib's ratio over Type-2(-c) normalized streams —
    NiCad's near-miss spirit without its line-based diffing.  Quadratic;
    intended for corpus inspection, not the inner loop.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    streams: list[tuple[int, tuple[str, ...]]] = []
    for i, src in enumerate(sources):
        try:
            streams.append((i, tuple(normalize_tokens(src, consistent=consistent))))
        except LexError:
            continue
    out: list[tuple[int, int, float]] = []
    for a in range(len(streams)):
        ia, sa = streams[a]
        for b in range(a + 1, len(streams)):
            ib, sb = streams[b]
            ratio = difflib.SequenceMatcher(None, sa, sb).ratio()
            if ratio >= threshold:
                out.append((ia, ib, ratio))
    return out
