"""BLEU over token sequences (Papineni et al. 2002), the CodeBLEU base."""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

__all__ = ["ngram_counts", "modified_precision", "bleu_score"]


def ngram_counts(tokens: Sequence[str], n: int) -> Counter:
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def modified_precision(
    candidate: Sequence[str],
    reference: Sequence[str],
    n: int,
    weights: dict[str, float] | None = None,
) -> tuple[float, float]:
    """Clipped n-gram precision (numerator, denominator).

    ``weights`` optionally weight n-grams by their first token (used by the
    CodeBLEU keyword-weighted variant).
    """
    cand = ngram_counts(candidate, n)
    ref = ngram_counts(reference, n)
    if not cand:
        return 0.0, 0.0

    def w(gram: tuple[str, ...]) -> float:
        if weights is None:
            return 1.0
        return weights.get(gram[0], 1.0)

    num = sum(min(count, ref.get(gram, 0)) * w(gram) for gram, count in cand.items())
    den = sum(count * w(gram) for gram, count in cand.items())
    return num, den


def bleu_score(
    candidate: Sequence[str],
    reference: Sequence[str],
    max_n: int = 4,
    weights: dict[str, float] | None = None,
) -> float:
    """Sentence BLEU with uniform n-gram weights and brevity penalty.

    Uses add-epsilon smoothing for empty n-gram matches so short programs
    still produce informative scores.
    """
    if not candidate or not reference:
        return 0.0
    precisions: list[float] = []
    for n in range(1, max_n + 1):
        num, den = modified_precision(candidate, reference, n, weights)
        if den == 0.0:
            precisions.append(1e-9)
        else:
            precisions.append(max(num / den, 1e-9))
    log_avg = sum(math.log(p) for p in precisions) / max_n
    c, r = len(candidate), len(reference)
    bp = 1.0 if c > r else math.exp(1 - r / max(c, 1))
    return bp * math.exp(log_avg)
