"""Program-diversity metrics: CodeBLEU and NiCad-style clone detection (§3.2.2)."""

from repro.metrics.ctokens import c_tokens, normalize_tokens
from repro.metrics.bleu import bleu_score
from repro.metrics.codebleu import codebleu, CodeBleuParts
from repro.metrics.clones import CloneReport, detect_clones, CloneType
from repro.metrics.diversity import average_pairwise_codebleu, corpus_diversity

__all__ = [
    "c_tokens",
    "normalize_tokens",
    "bleu_score",
    "codebleu",
    "CodeBleuParts",
    "CloneReport",
    "detect_clones",
    "CloneType",
    "average_pairwise_codebleu",
    "corpus_diversity",
]
