"""Semantic dataflow match — the fourth CodeBLEU component.

Extracts position-normalized def-use edges from each program: variables are
renamed VAR_k by first appearance, and an edge (def VAR_a -> use in the
definition of VAR_b) is recorded for every read that feeds an assignment.
The match is the clipped fraction of candidate edges present in the
reference, as in Ren et al.'s data-flow match.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ReproError
from repro.frontend import ast
from repro.frontend.parser import parse_program

__all__ = ["dataflow_edges", "dataflow_match"]


def _reads(e: ast.Expr) -> list[str]:
    return [n.name for n in ast.walk_exprs(e) if isinstance(n, ast.Ident)]


def dataflow_edges(source: str) -> Counter:
    """Multiset of normalized def-use edges over all functions."""
    try:
        unit = parse_program(source)
    except ReproError:
        return Counter()
    edges: Counter = Counter()
    for fn in unit.functions:
        norm: dict[str, str] = {}

        def name_of(v: str) -> str:
            if v not in norm:
                norm[v] = f"VAR_{len(norm)}"
            return norm[v]

        for p in fn.params:
            name_of(p.name)

        for s in ast.walk_stmts(fn.body):
            if isinstance(s, ast.Decl):
                for d in s.declarators:
                    target = name_of(d.name)
                    inits = list(d.init and [d.init] or []) + list(d.array_init or [])
                    for e in inits:
                        for read in _reads(e):
                            edges[(name_of(read), target)] += 1
            elif isinstance(s, ast.Assign):
                if isinstance(s.target, ast.Ident):
                    target = name_of(s.target.name)
                elif isinstance(s.target, ast.Index) and isinstance(
                    s.target.base, ast.Ident
                ):
                    target = name_of(s.target.base.name)
                else:
                    continue
                for read in _reads(s.value):
                    edges[(name_of(read), target)] += 1
                if s.op != "=":
                    edges[(target, target)] += 1
    return edges


def dataflow_match(candidate: str, reference: str) -> float:
    """Clipped fraction of candidate def-use edges present in the reference."""
    cand = dataflow_edges(candidate)
    ref = dataflow_edges(reference)
    total = sum(cand.values())
    if total == 0:
        return 0.0
    matched = sum(min(c, ref.get(edge, 0)) for edge, c in cand.items())
    return matched / total
