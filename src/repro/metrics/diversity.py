"""Corpus diversity: average pairwise CodeBLEU (§3.2.2).

The paper computes pairwise CodeBLEU between all N generated programs and
reports the average (lower = more diverse).  All-pairs is O(N^2) CodeBLEU
evaluations; for large corpora we sample pairs deterministically, which
estimates the same mean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.clones import CloneReport, detect_clones
from repro.metrics.codebleu import codebleu
from repro.utils.rng import SplittableRng

__all__ = ["average_pairwise_codebleu", "corpus_diversity", "DiversityReport"]


def average_pairwise_codebleu(
    sources: list[str],
    max_pairs: int | None = 2000,
    seed: int = 7,
) -> float:
    """Mean CodeBLEU over (sampled) ordered pairs of distinct programs."""
    n = len(sources)
    if n < 2:
        return 0.0
    all_pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
    if max_pairs is not None and len(all_pairs) > max_pairs:
        rng = SplittableRng(seed, "codebleu-pairs")
        pairs = rng.sample(all_pairs, max_pairs)
    else:
        pairs = all_pairs
    total = 0.0
    for i, j in pairs:
        total += codebleu(sources[i], sources[j]).score
    return total / len(pairs)


@dataclass(frozen=True)
class DiversityReport:
    """Table 2's diversity columns for one approach's corpus."""

    codebleu: float
    clones: CloneReport

    @property
    def clone_free(self) -> bool:
        return self.clones.clone_free


def corpus_diversity(
    sources: list[str], max_pairs: int | None = 2000, seed: int = 7
) -> DiversityReport:
    """CodeBLEU average + clone report for one corpus."""
    return DiversityReport(
        codebleu=average_pairwise_codebleu(sources, max_pairs, seed),
        clones=detect_clones(sources),
    )
