"""Syntactic AST match — the third CodeBLEU component.

Counts candidate AST subtrees (shape signatures with leaf values
anonymized, per Ren et al.) that also occur in the reference.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ReproError
from repro.frontend import ast
from repro.frontend.parser import parse_program

__all__ = ["subtree_signatures", "ast_match"]


def _expr_sig(e: ast.Expr) -> str:
    if isinstance(e, ast.IntLit):
        return "Int"
    if isinstance(e, ast.FloatLit):
        return "Float"
    if isinstance(e, ast.StrLit):
        return "Str"
    if isinstance(e, ast.Ident):
        return "Id"
    if isinstance(e, ast.Unary):
        return f"U{e.op}({_expr_sig(e.operand)})"
    if isinstance(e, ast.Binary):
        return f"B{e.op}({_expr_sig(e.left)},{_expr_sig(e.right)})"
    if isinstance(e, ast.Ternary):
        return f"T({_expr_sig(e.cond)},{_expr_sig(e.then)},{_expr_sig(e.other)})"
    if isinstance(e, ast.Call):
        args = ",".join(_expr_sig(a) for a in e.args)
        return f"Call:{e.name}({args})"
    if isinstance(e, ast.Index):
        return f"Ix({_expr_sig(e.base)},{_expr_sig(e.index)})"
    if isinstance(e, ast.Cast):
        return f"Cast:{e.type}({_expr_sig(e.operand)})"
    raise TypeError(type(e).__name__)


def _stmt_sig(s: ast.Stmt) -> str:
    if isinstance(s, ast.Decl):
        parts = ",".join(
            ("arr" if d.array_size is not None else "var")
            + ("=" + _expr_sig(d.init) if d.init is not None else "")
            for d in s.declarators
        )
        return f"Decl:{s.base.base}[{parts}]"
    if isinstance(s, ast.Assign):
        return f"Asg{s.op}({_expr_sig(s.target)},{_expr_sig(s.value)})"
    if isinstance(s, ast.IncDec):
        return f"Inc{s.op}({_expr_sig(s.target)})"
    if isinstance(s, ast.ExprStmt):
        return f"Expr({_expr_sig(s.expr)})"
    if isinstance(s, ast.Block):
        return "Blk(" + ";".join(_stmt_sig(x) for x in s.stmts) + ")"
    if isinstance(s, ast.If):
        other = _stmt_sig(s.other) if s.other is not None else ""
        return f"If({_expr_sig(s.cond)},{_stmt_sig(s.then)},{other})"
    if isinstance(s, ast.For):
        init = _stmt_sig(s.init) if s.init is not None else ""
        cond = _expr_sig(s.cond) if s.cond is not None else ""
        step = _stmt_sig(s.step) if s.step is not None else ""
        return f"For({init};{cond};{step};{_stmt_sig(s.body)})"
    if isinstance(s, ast.While):
        return f"While({_expr_sig(s.cond)},{_stmt_sig(s.body)})"
    if isinstance(s, ast.Return):
        return "Ret" + (f"({_expr_sig(s.value)})" if s.value is not None else "")
    raise TypeError(type(s).__name__)


def subtree_signatures(source: str) -> Counter:
    """Multiset of subtree signatures of all functions in ``source``.

    Every expression and statement node contributes one signature covering
    its full subtree.  Unparsable source yields an empty counter.
    """
    try:
        unit = parse_program(source)
    except ReproError:
        return Counter()
    sigs: Counter = Counter()
    for fn in unit.functions:
        for s in ast.walk_stmts(fn.body):
            sigs[_stmt_sig(s)] += 1
            for top in ast.stmt_exprs(s):
                for e in ast.walk_exprs(top):
                    sigs[_expr_sig(e)] += 1
    return sigs


def ast_match(candidate: str, reference: str) -> float:
    """Fraction of candidate subtrees found in the reference (clipped)."""
    cand = subtree_signatures(candidate)
    ref = subtree_signatures(reference)
    total = sum(cand.values())
    if total == 0:
        return 0.0
    matched = sum(min(c, ref.get(sig, 0)) for sig, c in cand.items())
    return matched / total
