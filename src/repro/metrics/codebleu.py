"""CodeBLEU (Ren et al. 2020): the paper's similarity metric (§3.2.2).

CodeBLEU = a·BLEU + b·BLEU_weighted + c·Match_ast + d·Match_df with the
reference implementation's default uniform weights (0.25 each).  The
keyword-weighted BLEU up-weights n-grams led by C keywords by 5x.  Lower
average pairwise CodeBLEU over a generated corpus means more diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError
from repro.frontend.tokens import KEYWORDS
from repro.metrics.astmatch import ast_match
from repro.metrics.bleu import bleu_score
from repro.metrics.ctokens import c_tokens
from repro.metrics.dataflow import dataflow_match

__all__ = ["CodeBleuParts", "codebleu"]

#: keyword weight used by the reference CodeBLEU implementation
_KEYWORD_WEIGHT = 5.0
_KEYWORD_WEIGHTS = {kw: _KEYWORD_WEIGHT for kw in KEYWORDS}


@dataclass(frozen=True)
class CodeBleuParts:
    """The four CodeBLEU components and their weighted combination."""

    ngram: float
    weighted_ngram: float
    ast: float
    dataflow: float
    weights: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25)

    @property
    def score(self) -> float:
        a, b, c, d = self.weights
        return a * self.ngram + b * self.weighted_ngram + c * self.ast + d * self.dataflow


def codebleu(
    candidate: str,
    reference: str,
    weights: tuple[float, float, float, float] = (0.25, 0.25, 0.25, 0.25),
) -> CodeBleuParts:
    """CodeBLEU similarity of ``candidate`` against ``reference``.

    Symmetric use (corpus diversity) simply averages both directions at the
    caller's discretion; the metric itself is directional like BLEU.
    """
    if abs(sum(weights) - 1.0) > 1e-9:
        raise ValueError("component weights must sum to 1")
    try:
        cand_toks = c_tokens(candidate)
        ref_toks = c_tokens(reference)
    except LexError:
        return CodeBleuParts(0.0, 0.0, 0.0, 0.0, weights)
    return CodeBleuParts(
        ngram=bleu_score(cand_toks, ref_toks),
        weighted_ngram=bleu_score(cand_toks, ref_toks, weights=_KEYWORD_WEIGHTS),
        ast=ast_match(candidate, reference),
        dataflow=dataflow_match(candidate, reference),
        weights=weights,
    )
