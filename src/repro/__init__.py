"""LLM4FP reproduction: LLM-guided floating-point differential compiler testing.

Quickstart::

    from repro import SplittableRng, make_generator, run_campaign, default_compilers
    from repro.difftest import CampaignConfig, CampaignReport

    rng = SplittableRng(42)
    generator = make_generator("llm4fp", rng)
    result = run_campaign(generator, default_compilers(), CampaignConfig(budget=50))
    print(CampaignReport(result).summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.harness import DifferentialHarness, run_campaign
from repro.difftest.report import CampaignReport
from repro.experiments.approaches import ALL_APPROACHES, APPROACHES, make_generator
from repro.fp.formats import Precision
from repro.generation import LoopReductionGenerator, SimLLM, VarityGenerator
from repro.toolchains import default_compilers, OptLevel
from repro.triage import (
    TriageReport,
    bisect_signature,
    reduce_program,
    triage_campaign,
    triage_results,
)
from repro.utils.rng import SplittableRng

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CampaignConfig",
    "CampaignEngine",
    "EngineConfig",
    "DifferentialHarness",
    "run_campaign",
    "CampaignReport",
    "ALL_APPROACHES",
    "APPROACHES",
    "make_generator",
    "Precision",
    "SimLLM",
    "LoopReductionGenerator",
    "VarityGenerator",
    "default_compilers",
    "OptLevel",
    "SplittableRng",
    "TriageReport",
    "bisect_signature",
    "reduce_program",
    "triage_campaign",
    "triage_results",
]
