"""Units-in-the-last-place distances and neighbours on the binary64 lattice.

The libm models express their accuracy contracts in ulps; these helpers walk
and measure the double lattice exactly (no epsilon arithmetic).
"""

from __future__ import annotations

import math

from repro.fp.bits import bits_to_double, double_to_bits

_SIGN = 1 << 63


def _ordered_key(x: float) -> int:
    """Map a double onto a signed integer line where adjacent doubles differ
    by exactly 1, negative values below zero, preserving order."""
    bits = double_to_bits(x)
    if bits & _SIGN:
        return -(bits & ~_SIGN)
    return bits


def ulp_distance(a: float, b: float) -> int:
    """Number of representable doubles strictly between ``a`` and ``b``,
    plus one if they differ; 0 when bit-identical.

    ``+0.0`` and ``-0.0`` are one ulp apart (their bit patterns differ,
    which is what the paper's hex comparison sees).  NaNs are infinitely
    far from everything, including other NaNs with different payloads
    (returned as a large sentinel).
    """
    if math.isnan(a) or math.isnan(b):
        if double_to_bits(a) == double_to_bits(b):
            return 0
        return 1 << 64
    ka, kb = _ordered_key(a), _ordered_key(b)
    # Signed zeros share key 0 but have distinct bit patterns.
    if ka == kb and double_to_bits(a) != double_to_bits(b):
        return 1
    return abs(ka - kb)


def offset_by_ulps(x: float, n: int) -> float:
    """The double exactly ``n`` lattice steps from ``x`` (n may be negative).

    Saturates at infinity past the largest finite doubles.  Not defined for
    NaN input.
    """
    if math.isnan(x):
        raise ValueError("cannot offset a NaN by ulps")
    if math.isinf(x) or n == 0:
        # n == 0 must be exact identity: the ordered key conflates the
        # signed zeros, so walking 0 steps through it would turn -0.0
        # into +0.0 — a 1-ulp move by this module's own metric.
        return x
    key = _ordered_key(x) + n
    limit = double_to_bits(math.inf)
    if key >= 0:
        if key >= limit:
            return math.inf
        return bits_to_double(key)
    mag = -key
    if mag >= limit:
        return -math.inf
    return bits_to_double(_SIGN | mag)


def next_up(x: float) -> float:
    """Smallest double strictly greater than ``x``."""
    if math.isnan(x):
        return x
    if x == math.inf:
        return x
    if x == 0.0:
        return bits_to_double(1)
    return offset_by_ulps(x, 1)


def next_down(x: float) -> float:
    """Largest double strictly less than ``x``."""
    if math.isnan(x):
        return x
    if x == -math.inf:
        return x
    if x == 0.0:
        return bits_to_double(_SIGN | 1)
    return offset_by_ulps(x, -1)
