"""Conversions between floats, raw bit patterns, and hex encodings.

The paper's differential comparison (§2.4) operates on "the hexadecimal
encoding of the floating-point result, such as when two 64-bit doubles yield
different 16-character strings".  These helpers define that encoding.
"""

from __future__ import annotations

import struct

__all__ = [
    "double_to_bits",
    "bits_to_double",
    "double_to_hex",
    "hex_to_double",
    "single_to_bits",
    "bits_to_single",
    "single_to_hex",
]


def double_to_bits(x: float) -> int:
    """Raw IEEE binary64 bit pattern of ``x`` as an unsigned 64-bit int."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]


def bits_to_double(bits: int) -> float:
    """Double whose IEEE binary64 bit pattern is ``bits``."""
    if not 0 <= bits < 1 << 64:
        raise ValueError(f"bit pattern out of range: {bits:#x}")
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def double_to_hex(x: float) -> str:
    """The paper's 16-character lowercase hex encoding of a double."""
    return f"{double_to_bits(x):016x}"


def hex_to_double(s: str) -> float:
    """Inverse of :func:`double_to_hex`."""
    if len(s) != 16:
        raise ValueError(f"expected 16 hex digits, got {len(s)}: {s!r}")
    return bits_to_double(int(s, 16))


def single_to_bits(x: float) -> int:
    """Raw IEEE binary32 bit pattern of ``x`` (rounded to single)."""
    return struct.unpack("<I", struct.pack("<f", x))[0]


def bits_to_single(bits: int) -> float:
    """Float whose IEEE binary32 bit pattern is ``bits`` (widened to double)."""
    if not 0 <= bits < 1 << 32:
        raise ValueError(f"bit pattern out of range: {bits:#x}")
    return struct.unpack("<f", struct.pack("<I", bits))[0]


def single_to_hex(x: float) -> str:
    """8-character lowercase hex encoding of a single-precision value."""
    return f"{single_to_bits(x):08x}"
