"""The floating-point execution environment bound to one compiled binary.

Every (compiler, optimization level) pair in :mod:`repro.toolchains` builds
an :class:`FPEnvironment` describing *how that binary computes*: the linked
math library, whether subnormals are flushed to zero (device fast math),
and whether division and square root are correctly rounded (nvcc
``--prec-div/--prec-sqrt``).  The interpreter routes every arithmetic
operation through this object at the operation's own precision (``ty`` is
``"float"`` or ``"double"``), so mixed-precision programs evaluate with C
semantics and two binaries differ exactly where their environments and
optimized IR differ.
"""

from __future__ import annotations

import hashlib
import math
import operator
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.fp.bits import double_to_bits
from repro.fp.fma import fma as _fma_exact
from repro.fp.formats import FP32, FP64, FloatFormat, Precision
from repro.fp.mathlib import CorrectlyRoundedLibm, MathLibrary
from repro.fp.ulp import offset_by_ulps

__all__ = ["FPEnvironment"]

_F32_MIN_NORMAL = float(np.finfo(np.float32).tiny)
_F64_MIN_NORMAL = float(np.finfo(np.float64).tiny)

# -- specialized scalar kernels (the tape executor's fast paths) ---------------
#
# The generic ``_binary`` path costs ~2µs per operation: an ``np.errstate``
# context manager plus numpy-scalar boxing per call.  Interpretation is
# pure FP arithmetic, so the tape compiler binds one of the closures below
# per (op, type, environment) *site* instead.  They are bit-identical to
# the numpy path — including NaN sign/payload propagation, which rides the
# same hardware double ops either way — pinned by the differential hammer
# in ``tests/fp/test_env_impl.py``.

_PACK_F32 = struct.Struct("<f").pack
_UNPACK_F32 = struct.Struct("<f").unpack
_INF = math.inf
#: x86's default quiet NaN (sign bit set) — what the hardware, and hence
#: numpy, produces for 0/0.
_NEG_QNAN = struct.unpack("<d", b"\x00\x00\x00\x00\x00\x00\xf8\xff")[0]


def _round_f32(x: float) -> float:
    """Round a double to binary32 and back (round-to-nearest-even).

    Bit-identical to ``float(np.float32(x))``: NaN quietness and sign
    survive the pack/unpack, and overflow rounds to same-signed infinity.
    Double-rounding is exact for +,-,*,/ of binary32 operands evaluated
    in binary64 (Figueroa: 53 >= 2*24 + 2).
    """
    try:
        return _UNPACK_F32(_PACK_F32(x))[0]
    except OverflowError:
        return math.copysign(_INF, x)


def _div_double(a: float, b: float) -> float:
    """IEEE binary64 division with numpy's (hardware) zero-divisor cases."""
    if b == 0.0:
        if a != a:
            # NaN propagates sign and payload, but the hardware quiets a
            # signaling NaN; + 0.0 applies the same quieting.
            return a + 0.0
        if a == 0.0:
            return _NEG_QNAN
        sign = (a > 0.0) == (math.copysign(1.0, b) > 0.0)
        return _INF if sign else -_INF
    return a / b


def _flush32(x: float) -> float:
    """FTZ at binary32: subnormals to same-signed zero (NaN/inf untouched)."""
    if -_F32_MIN_NORMAL < x < _F32_MIN_NORMAL and x != 0.0:
        return math.copysign(0.0, x)
    return x


def _flush64(x: float) -> float:
    if -_F64_MIN_NORMAL < x < _F64_MIN_NORMAL and x != 0.0:
        return math.copysign(0.0, x)
    return x


def _identity(x: float) -> float:
    return x


_PY_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _div_double,
}


def _approx_perturb(salt: bytes, op: str, operands: tuple[float, ...], ref: float,
                    max_ulps: int, prob: float) -> float:
    """Deterministic ulp perturbation modelling approximate div/sqrt units."""
    if math.isnan(ref) or math.isinf(ref) or ref == 0.0:
        return ref
    payload = op.encode() + b"".join(double_to_bits(v).to_bytes(8, "little") for v in operands)
    digest = hashlib.blake2b(payload, key=salt[:64], digest_size=16).digest()
    u = int.from_bytes(digest[:8], "little") / 2**64
    if u >= prob:
        return ref
    span = 2 * max_ulps
    k = int.from_bytes(digest[8:], "little") % span
    offset = k - max_ulps
    if offset >= 0:
        offset += 1
    return offset_by_ulps(ref, offset)


@dataclass(frozen=True)
class FPEnvironment:
    """Floating-point semantics of one compiled binary.

    Attributes:
        precision: default kernel precision (used for reporting; operations
            carry their own precision).
        libm: math library linked into the binary.
        ftz: flush subnormal inputs and results to (same-signed) zero.
        approx_div: division is a hardware approximation (<=2 ulp) rather
            than correctly rounded (nvcc ``--prec-div=false``).
        approx_sqrt: sqrt is approximate (nvcc ``--prec-sqrt=false``).
    """

    precision: Precision = Precision.DOUBLE
    libm: MathLibrary = field(default_factory=CorrectlyRoundedLibm)
    ftz: bool = False
    approx_div: bool = False
    approx_sqrt: bool = False
    _salt: bytes = b"device-approx-unit"
    #: Vector math library linked for auto-vectorized call sites (libmvec,
    #: SLEEF, SIMT intrinsics).  ``None`` means vector lanes call the scalar
    #: ``libm`` — the pre-vec-libm-tier behaviour.
    veclibm: MathLibrary | None = None

    @property
    def fmt(self) -> FloatFormat:
        return self.precision.fmt

    # -- subnormal policy --------------------------------------------------------

    def _flush(self, x: float, ty: str) -> float:
        if not self.ftz or x == 0.0 or math.isnan(x) or math.isinf(x):
            return x
        tiny = _F32_MIN_NORMAL if ty == "float" else _F64_MIN_NORMAL
        if abs(x) < tiny:
            return math.copysign(0.0, x)
        return x

    def canon(self, x: float, ty: str = "double") -> float:
        """Round an arbitrary double into type ``ty`` under this environment."""
        if ty == "float" and not (math.isnan(x) or math.isinf(x)):
            x = float(np.float32(x))
        return self._flush(x, ty)

    # -- arithmetic ---------------------------------------------------------------

    def _binary(self, op: str, a: float, b: float, ty: str) -> float:
        a, b = self._flush(a, ty), self._flush(b, ty)
        with np.errstate(all="ignore"):
            if ty == "float":
                fa, fb = np.float32(a), np.float32(b)
            else:
                fa, fb = np.float64(a), np.float64(b)
            if op == "+":
                r = fa + fb
            elif op == "-":
                r = fa - fb
            elif op == "*":
                r = fa * fb
            else:
                r = np.divide(fa, fb)
        return self._flush(float(r), ty)

    def add(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("+", a, b, ty)

    def sub(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("-", a, b, ty)

    def mul(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("*", a, b, ty)

    def div(self, a: float, b: float, ty: str = "double") -> float:
        r = self._binary("/", a, b, ty)
        if self.approx_div:
            r = self._flush(_approx_perturb(self._salt, "div", (a, b), r, 2, 0.5), ty)
        return r

    def neg(self, a: float, ty: str = "double") -> float:
        # Result flushed like _binary: negating a flushed input cannot
        # itself produce a subnormal today, but the symmetry keeps future
        # approx hooks (which may perturb before the final flush) from
        # leaking subnormals through negation alone.
        return self._flush(-self._flush(a, ty), ty)

    def fma(self, a: float, b: float, c: float, ty: str = "double") -> float:
        """Single-rounding fused multiply-add (used by contracted IR)."""
        a, b, c = (self._flush(v, ty) for v in (a, b, c))
        fmt = FP32 if ty == "float" else FP64
        return self._flush(_fma_exact(a, b, c, fmt), ty)

    # -- library calls ----------------------------------------------------------------

    def call(self, fn: str, args: tuple[float, ...], ty: str = "double") -> float:
        return self._lib_call(self.libm, fn, args, ty)

    def veccall(self, fn: str, args: tuple[float, ...], ty: str = "double") -> float:
        """A vectorized lane's library call.

        Resolves through :attr:`veclibm` when one is linked (the vec-libm
        tier); otherwise bit-identical to :meth:`call`, which is how
        pre-tier campaigns replay unchanged.
        """
        return self._lib_call(self.veclibm or self.libm, fn, args, ty)

    def _lib_call(self, lib: MathLibrary, fn: str, args: tuple[float, ...], ty: str) -> float:
        args = tuple(self._flush(a, ty) for a in args)
        fmt = FP32 if ty == "float" else FP64
        if fn == "sqrt" and self.approx_sqrt:
            ref = lib.call("sqrt", args, fmt)
            return self._flush(_approx_perturb(self._salt, "sqrt", args, ref, 2, 0.5), ty)
        return self._flush(lib.call(fn, args, fmt), ty)

    # -- specialized implementations ---------------------------------------------
    #
    # The tape compiler calls these once per operation *site* and binds the
    # returned plain-Python callable into a closure, avoiding the per-call
    # numpy/errstate overhead of the generic methods above.  Each impl is
    # bit-identical to the corresponding method (including NaN sign and
    # payload, signed zeros, subnormal flushing order, and the approximate
    # div/sqrt perturbation, which sees the *original* unflushed operands
    # exactly as ``div``/``call`` do).

    def _flush_impl(self, ty: str):
        if not self.ftz:
            return _identity
        return _flush32 if ty == "float" else _flush64

    def op_impl(self, op: str, ty: str):
        """A ``f(a, b)`` bit-identical to ``add/sub/mul/div(a, b, ty)``.

        The float path rounds both operands to binary32, evaluates the
        hardware double op, and rounds once more — exact by Figueroa's
        double-rounding theorem (binary64 is wide enough that the double
        rounding of +,-,*,/ over binary32 operands never differs from a
        single rounding).
        """
        base = _PY_OPS[op]
        if ty == "float":
            if self.ftz:
                def core(a: float, b: float, _op=base) -> float:
                    return _flush32(
                        _round_f32(_op(_round_f32(_flush32(a)), _round_f32(_flush32(b))))
                    )
            else:
                def core(a: float, b: float, _op=base) -> float:
                    return _round_f32(_op(_round_f32(a), _round_f32(b)))
        elif self.ftz:
            def core(a: float, b: float, _op=base) -> float:
                return _flush64(_op(_flush64(a), _flush64(b)))
        else:
            core = base
        if op == "/" and self.approx_div:
            salt, flush = self._salt, self._flush_impl(ty)

            def approx(a: float, b: float, _core=core) -> float:
                r = _core(a, b)
                return flush(_approx_perturb(salt, "div", (a, b), r, 2, 0.5))

            return approx
        return core

    def neg_impl(self, ty: str):
        """A ``f(a)`` bit-identical to ``neg(a, ty)`` (no f32 rounding)."""
        if not self.ftz:
            return operator.neg
        flush = self._flush_impl(ty)

        def impl(a: float) -> float:
            return flush(-flush(a))

        return impl

    def fma_impl(self, ty: str):
        """A ``f(a, b, c)`` bit-identical to ``fma(a, b, c, ty)``."""
        fmt = FP32 if ty == "float" else FP64
        if not self.ftz:
            def impl(a: float, b: float, c: float) -> float:
                return _fma_exact(a, b, c, fmt)
        else:
            flush = self._flush_impl(ty)

            def impl(a: float, b: float, c: float) -> float:
                return flush(_fma_exact(flush(a), flush(b), flush(c), fmt))

        return impl

    def call_impl(self, fn: str, ty: str):
        """A ``f(args)`` bit-identical to ``call(fn, args, ty)``."""
        return self._lib_call_impl(self.libm, fn, ty)

    def veccall_impl(self, fn: str, ty: str):
        """A ``f(args)`` bit-identical to ``veccall(fn, args, ty)``."""
        return self._lib_call_impl(self.veclibm or self.libm, fn, ty)

    def _lib_call_impl(self, lib: MathLibrary, fn: str, ty: str):
        fmt = FP32 if ty == "float" else FP64
        libm_call = lib.call
        flush = self._flush_impl(ty)
        if fn == "sqrt" and self.approx_sqrt:
            salt = self._salt

            def impl(args: tuple) -> float:
                args = tuple(flush(a) for a in args)
                ref = libm_call("sqrt", args, fmt)
                return flush(_approx_perturb(salt, "sqrt", args, ref, 2, 0.5))

        elif not self.ftz:
            def impl(args: tuple) -> float:
                return libm_call(fn, args, fmt)

        else:
            def impl(args: tuple) -> float:
                return flush(libm_call(fn, tuple(flush(a) for a in args), fmt))

        return impl

    def canon_impl(self, ty: str):
        """A ``f(x)`` bit-identical to ``canon(x, ty)``."""
        flush = self._flush_impl(ty)
        if ty != "float":
            return flush

        def impl(x: float) -> float:
            # Same nan/inf guard as ``canon``: a NaN's full payload
            # survives (struct rounding would truncate the low bits).
            if x == x and x != _INF and x != -_INF:
                x = _round_f32(x)
            return flush(x)

        return impl

    def describe(self) -> str:
        bits = [self.precision.value, f"libm={self.libm.name}"]
        if self.veclibm is not None:
            bits.append(f"veclibm={self.veclibm.name}")
        if self.ftz:
            bits.append("ftz")
        if self.approx_div:
            bits.append("approx-div")
        if self.approx_sqrt:
            bits.append("approx-sqrt")
        return ",".join(bits)
