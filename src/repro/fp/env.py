"""The floating-point execution environment bound to one compiled binary.

Every (compiler, optimization level) pair in :mod:`repro.toolchains` builds
an :class:`FPEnvironment` describing *how that binary computes*: the linked
math library, whether subnormals are flushed to zero (device fast math),
and whether division and square root are correctly rounded (nvcc
``--prec-div/--prec-sqrt``).  The interpreter routes every arithmetic
operation through this object at the operation's own precision (``ty`` is
``"float"`` or ``"double"``), so mixed-precision programs evaluate with C
semantics and two binaries differ exactly where their environments and
optimized IR differ.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.fp.bits import double_to_bits
from repro.fp.fma import fma as _fma_exact
from repro.fp.formats import FP32, FP64, FloatFormat, Precision
from repro.fp.mathlib import CorrectlyRoundedLibm, MathLibrary
from repro.fp.ulp import offset_by_ulps

__all__ = ["FPEnvironment"]

_F32_MIN_NORMAL = float(np.finfo(np.float32).tiny)
_F64_MIN_NORMAL = float(np.finfo(np.float64).tiny)


def _approx_perturb(salt: bytes, op: str, operands: tuple[float, ...], ref: float,
                    max_ulps: int, prob: float) -> float:
    """Deterministic ulp perturbation modelling approximate div/sqrt units."""
    if math.isnan(ref) or math.isinf(ref) or ref == 0.0:
        return ref
    payload = op.encode() + b"".join(double_to_bits(v).to_bytes(8, "little") for v in operands)
    digest = hashlib.blake2b(payload, key=salt[:64], digest_size=16).digest()
    u = int.from_bytes(digest[:8], "little") / 2**64
    if u >= prob:
        return ref
    span = 2 * max_ulps
    k = int.from_bytes(digest[8:], "little") % span
    offset = k - max_ulps
    if offset >= 0:
        offset += 1
    return offset_by_ulps(ref, offset)


@dataclass(frozen=True)
class FPEnvironment:
    """Floating-point semantics of one compiled binary.

    Attributes:
        precision: default kernel precision (used for reporting; operations
            carry their own precision).
        libm: math library linked into the binary.
        ftz: flush subnormal inputs and results to (same-signed) zero.
        approx_div: division is a hardware approximation (<=2 ulp) rather
            than correctly rounded (nvcc ``--prec-div=false``).
        approx_sqrt: sqrt is approximate (nvcc ``--prec-sqrt=false``).
    """

    precision: Precision = Precision.DOUBLE
    libm: MathLibrary = field(default_factory=CorrectlyRoundedLibm)
    ftz: bool = False
    approx_div: bool = False
    approx_sqrt: bool = False
    _salt: bytes = b"device-approx-unit"

    @property
    def fmt(self) -> FloatFormat:
        return self.precision.fmt

    # -- subnormal policy --------------------------------------------------------

    def _flush(self, x: float, ty: str) -> float:
        if not self.ftz or x == 0.0 or math.isnan(x) or math.isinf(x):
            return x
        tiny = _F32_MIN_NORMAL if ty == "float" else _F64_MIN_NORMAL
        if abs(x) < tiny:
            return math.copysign(0.0, x)
        return x

    def canon(self, x: float, ty: str = "double") -> float:
        """Round an arbitrary double into type ``ty`` under this environment."""
        if ty == "float" and not (math.isnan(x) or math.isinf(x)):
            x = float(np.float32(x))
        return self._flush(x, ty)

    # -- arithmetic ---------------------------------------------------------------

    def _binary(self, op: str, a: float, b: float, ty: str) -> float:
        a, b = self._flush(a, ty), self._flush(b, ty)
        with np.errstate(all="ignore"):
            if ty == "float":
                fa, fb = np.float32(a), np.float32(b)
            else:
                fa, fb = np.float64(a), np.float64(b)
            if op == "+":
                r = fa + fb
            elif op == "-":
                r = fa - fb
            elif op == "*":
                r = fa * fb
            else:
                r = np.divide(fa, fb)
        return self._flush(float(r), ty)

    def add(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("+", a, b, ty)

    def sub(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("-", a, b, ty)

    def mul(self, a: float, b: float, ty: str = "double") -> float:
        return self._binary("*", a, b, ty)

    def div(self, a: float, b: float, ty: str = "double") -> float:
        r = self._binary("/", a, b, ty)
        if self.approx_div:
            r = self._flush(_approx_perturb(self._salt, "div", (a, b), r, 2, 0.5), ty)
        return r

    def neg(self, a: float, ty: str = "double") -> float:
        # Result flushed like _binary: negating a flushed input cannot
        # itself produce a subnormal today, but the symmetry keeps future
        # approx hooks (which may perturb before the final flush) from
        # leaking subnormals through negation alone.
        return self._flush(-self._flush(a, ty), ty)

    def fma(self, a: float, b: float, c: float, ty: str = "double") -> float:
        """Single-rounding fused multiply-add (used by contracted IR)."""
        a, b, c = (self._flush(v, ty) for v in (a, b, c))
        fmt = FP32 if ty == "float" else FP64
        return self._flush(_fma_exact(a, b, c, fmt), ty)

    # -- library calls ----------------------------------------------------------------

    def call(self, fn: str, args: tuple[float, ...], ty: str = "double") -> float:
        args = tuple(self._flush(a, ty) for a in args)
        fmt = FP32 if ty == "float" else FP64
        if fn == "sqrt" and self.approx_sqrt:
            ref = self.libm.call("sqrt", args, fmt)
            return self._flush(_approx_perturb(self._salt, "sqrt", args, ref, 2, 0.5), ty)
        return self._flush(self.libm.call(fn, args, fmt), ty)

    def describe(self) -> str:
        bits = [self.precision.value, f"libm={self.libm.name}"]
        if self.ftz:
            bits.append("ftz")
        if self.approx_div:
            bits.append("approx-div")
        if self.approx_sqrt:
            bits.append("approx-sqrt")
        return ",".join(bits)
