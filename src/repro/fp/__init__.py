"""IEEE-754 substrate: bit manipulation, classification, ulp, FMA, libm models.

This package provides the numerical ground truth for the simulated
toolchains.  All arithmetic the interpreter performs routes through
:class:`repro.fp.env.FPEnvironment`, which binds a precision
(:data:`~repro.fp.formats.FP64` / :data:`~repro.fp.formats.FP32`), a
flush-to-zero policy, and a math-library model.
"""

from repro.fp.formats import FP32, FP64, FloatFormat, Precision
from repro.fp.bits import (
    bits_to_double,
    bits_to_single,
    double_to_bits,
    double_to_hex,
    hex_to_double,
    single_to_bits,
    single_to_hex,
)
from repro.fp.classify import FPClass, classify_double
from repro.fp.ulp import ulp_distance, next_up, next_down
from repro.fp.fma import fma, round_scaled_int
from repro.fp.mathlib import (
    MathLibrary,
    CorrectlyRoundedLibm,
    HostLibm,
    CudaLibm,
    FastHostLibm,
    FastCudaLibm,
    MATH_FUNCTIONS,
)
from repro.fp.env import FPEnvironment

__all__ = [
    "FP32",
    "FP64",
    "FloatFormat",
    "Precision",
    "bits_to_double",
    "bits_to_single",
    "double_to_bits",
    "double_to_hex",
    "hex_to_double",
    "single_to_bits",
    "single_to_hex",
    "FPClass",
    "classify_double",
    "ulp_distance",
    "next_up",
    "next_down",
    "fma",
    "round_scaled_int",
    "MathLibrary",
    "CorrectlyRoundedLibm",
    "HostLibm",
    "CudaLibm",
    "FastHostLibm",
    "FastCudaLibm",
    "MATH_FUNCTIONS",
    "FPEnvironment",
]
