"""Math-library models for the simulated toolchains.

The paper's host compilers link the GNU C Library's libm while nvcc links
the CUDA Math Library (§3.1.1); host-device result mismatches on
transcendental functions are a primary inconsistency source (RQ3).  We model
each library as *correctly rounded result + deterministic faithful-rounding
perturbation*: a keyed hash of (library salt, function, argument bits)
decides whether and how far (in ulps) the returned value sits from the
correctly rounded one, within the library's documented accuracy budget.

Two properties matter for the reproduction:

* determinism — the same (library, function, argument) always returns the
  same value, like a real libm; and
* decorrelation — different libraries disagree on a stable, input-dependent
  subset of calls, like real glibc vs. CUDA libm.

IEEE-exact operations (sqrt, fabs, floor, ...) are never perturbed, matching
the standard's correct-rounding requirements for them.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.fp.bits import double_to_bits
from repro.fp.formats import FP64, FloatFormat
from repro.fp.ulp import offset_by_ulps

__all__ = [
    "MATH_FUNCTIONS",
    "MathFunction",
    "MathLibrary",
    "CorrectlyRoundedLibm",
    "PerturbedLibm",
    "HostLibm",
    "CudaLibm",
    "FastHostLibm",
    "FastCudaLibm",
    "GccVecLibm",
    "ClangVecLibm",
    "NvccVecLibm",
]


@dataclass(frozen=True, slots=True)
class MathFunction:
    """Description of one C math-library entry point."""

    name: str
    arity: int
    exact: bool  # IEEE requires correct rounding -> never perturbed


def _registry() -> dict[str, MathFunction]:
    exact = ["sqrt", "fabs", "floor", "ceil", "trunc", "fmod", "fmin", "fmax", "copysign"]
    trans1 = [
        "sin", "cos", "tan", "asin", "acos", "atan",
        "sinh", "cosh", "tanh", "exp", "expm1", "exp2",
        "log", "log2", "log10", "log1p", "cbrt", "erf",
    ]
    trans2 = ["pow", "atan2", "hypot", "fdim"]
    table: dict[str, MathFunction] = {}
    for n in exact:
        table[n] = MathFunction(n, 2 if n in ("fmod", "fmin", "fmax", "copysign") else 1, True)
    for n in trans1:
        table[n] = MathFunction(n, 1, False)
    for n in trans2:
        table[n] = MathFunction(n, 2, False)
    return table


#: Every math function the generators and the frontend accept.
MATH_FUNCTIONS: dict[str, MathFunction] = _registry()


def _c_semantics(name: str, args: tuple[float, ...]) -> float:
    """Evaluate ``name(args)`` with C99 libm edge-case behaviour.

    Python's :mod:`math` raises where C returns NaN/inf; this shim converts.
    The underlying platform libm is our model's "correctly rounded" truth.
    """
    if name == "fdim":
        x, y = args
        if math.isnan(x) or math.isnan(y):
            return math.nan
        return x - y if x > y else 0.0
    if name == "fmin":
        x, y = args
        if math.isnan(x):
            return y
        if math.isnan(y):
            return x
        return min(x, y)
    if name == "fmax":
        x, y = args
        if math.isnan(x):
            return y
        if math.isnan(y):
            return x
        return max(x, y)
    if name == "fmod":
        x, y = args
        if math.isnan(x) or math.isnan(y) or math.isinf(x) or y == 0.0:
            return math.nan
        if math.isinf(y):
            return x
        try:
            return math.fmod(x, y)
        except ValueError:
            return math.nan
    if name == "pow":
        x, y = args
        try:
            r = math.pow(x, y)
        except OverflowError:
            return math.copysign(math.inf, 1.0)
        except ValueError:
            return math.nan
        return r
    if name == "exp2":
        fn = lambda v: math.exp2(v) if hasattr(math, "exp2") else 2.0**v
    elif name == "cbrt":
        fn = lambda v: math.copysign(abs(v) ** (1.0 / 3.0), v) if not hasattr(math, "cbrt") else math.cbrt(v)
    else:
        fn = getattr(math, name)
    try:
        return fn(*args)
    except ValueError:  # domain error: C returns NaN (errno aside)
        return math.nan
    except OverflowError:  # range error: C returns +/-inf
        # All registered functions that overflow do so toward +inf except
        # sinh/expm1 with large negative args (which underflow instead).
        if name in ("sinh", "tan") and args[0] < 0:
            return -math.inf
        return math.inf


def _to_format(x: float, fmt: FloatFormat) -> float:
    """Round a double to ``fmt`` (identity for FP64)."""
    if fmt is FP64 or math.isnan(x) or math.isinf(x):
        return x
    import struct

    return struct.unpack("<f", struct.pack("<f", x))[0]


def _is_trivial(x: float) -> bool:
    """Values real libms get exact: integers of small magnitude, 0, +/-1."""
    return x == x and abs(x) <= 2**20 and x == math.floor(x)


class MathLibrary:
    """Interface: evaluate a libm function under a library model."""

    #: short identifier used in reports ("glibc", "cuda", ...)
    name: str = "abstract"

    def call(self, fn: str, args: tuple[float, ...], fmt: FloatFormat = FP64) -> float:
        raise NotImplementedError

    def _reference(self, fn: str, args: tuple[float, ...], fmt: FloatFormat) -> float:
        spec = MATH_FUNCTIONS.get(fn)
        if spec is None:
            raise KeyError(f"unknown math function {fn!r}")
        if len(args) != spec.arity:
            raise TypeError(f"{fn} expects {spec.arity} args, got {len(args)}")
        if fmt is not FP64:
            args = tuple(_to_format(a, fmt) for a in args)
        return _to_format(_c_semantics(fn, args), fmt)


class CorrectlyRoundedLibm(MathLibrary):
    """The model's ground truth; used by compile-time constant folding.

    Real compilers fold constant libm calls with MPFR-grade evaluation,
    which is how a folded call can disagree with the runtime library —
    one of the host-side inconsistency mechanisms in DESIGN.md.
    """

    name = "cr"

    def call(self, fn: str, args: tuple[float, ...], fmt: FloatFormat = FP64) -> float:
        return self._reference(fn, args, fmt)


class PerturbedLibm(MathLibrary):
    """A faithful-but-not-correctly-rounded library model.

    ``max_ulps`` bounds the deviation, ``perturb_prob`` is the fraction of
    (function, argument) points that deviate at all.  Both are enforced by
    a keyed blake2b hash so every call is reproducible.

    Beyond ``huge_trig_threshold``, trigonometric argument reduction is
    modelled as library-specific: each library returns its own
    deterministic value in [-1, 1] (different reductions agree on no
    digits at such magnitudes), and with probability ``huge_trig_nan_prob``
    the reduction fails outright and returns NaN.  This is the mechanism
    behind the large digit differences and the {Real, NaN}-type kinds the
    paper's Varity observes at *every* optimization level (Tables 3-4):
    its wide-range inputs routinely reach ``sin(1e120)``-like calls, where
    glibc's Payne-Hanek reduction and the CUDA Math Library genuinely
    diverge.
    """

    #: trig argument reduction decorrelates past this magnitude
    huge_trig_threshold: float = 1e8

    def __init__(
        self,
        name: str,
        salt: str,
        max_ulps: int,
        perturb_prob: float,
        huge_trig_nan_prob: float = 0.0,
    ) -> None:
        if max_ulps < 1:
            raise ValueError("max_ulps must be >= 1")
        if not 0.0 <= perturb_prob <= 1.0:
            raise ValueError("perturb_prob must be in [0, 1]")
        if not 0.0 <= huge_trig_nan_prob <= 1.0:
            raise ValueError("huge_trig_nan_prob must be in [0, 1]")
        self.name = name
        self._salt = salt.encode("utf-8")
        self.max_ulps = max_ulps
        self.perturb_prob = perturb_prob
        self.huge_trig_nan_prob = huge_trig_nan_prob

    def _draw(self, fn: str, args: tuple[float, ...]) -> tuple[float, int]:
        payload = fn.encode("utf-8") + b"".join(
            double_to_bits(a).to_bytes(8, "little") for a in args
        )
        digest = hashlib.blake2b(payload, key=self._salt[:64], digest_size=16).digest()
        u = int.from_bytes(digest[:8], "little") / 2**64
        span = 2 * self.max_ulps  # offsets in [-max_ulps, max_ulps] \ {0}
        k = int.from_bytes(digest[8:], "little") % span
        offset = k - self.max_ulps
        if offset >= 0:
            offset += 1
        return u, offset

    def _huge_trig(self, fn: str, args: tuple[float, ...]) -> float:
        """Library-specific result of trig argument reduction at huge |x|."""
        payload = b"reduce:" + fn.encode("utf-8") + double_to_bits(args[0]).to_bytes(
            8, "little"
        )
        digest = hashlib.blake2b(payload, key=self._salt[:64], digest_size=16).digest()
        u = int.from_bytes(digest[:8], "little") / 2**64
        if u < self.huge_trig_nan_prob:
            return math.nan
        v = int.from_bytes(digest[8:], "little") / 2**64
        value = 2.0 * v - 1.0  # deterministic point in [-1, 1]
        if fn == "tan":
            return value / max(1e-6, 1.0 - abs(value))  # tan's unbounded range
        return value

    def call(self, fn: str, args: tuple[float, ...], fmt: FloatFormat = FP64) -> float:
        if (
            fn in ("sin", "cos", "tan")
            and math.isfinite(args[0])
            and abs(args[0]) > self.huge_trig_threshold
        ):
            return _to_format(self._huge_trig(fn, args), fmt)
        ref = self._reference(fn, args, fmt)
        if MATH_FUNCTIONS[fn].exact:
            return ref
        if math.isnan(ref) or math.isinf(ref) or ref == 0.0:
            return ref
        if _is_trivial(ref) or all(_is_trivial(a) for a in args):
            # Real libms hit these points exactly (sin(0), exp(0), pow of
            # small integers, ...); perturbing them would be noise the
            # paper's programs never see.
            return ref
        u, offset = self._draw(fn, args)
        if u >= self.perturb_prob:
            return ref
        if fmt is FP64:
            return offset_by_ulps(ref, offset)
        # Walk the binary32 lattice instead, then widen.
        import struct

        bits = struct.unpack("<I", struct.pack("<f", ref))[0]
        sign = bits >> 31
        mag = bits & 0x7FFFFFFF
        key = -mag if sign else mag
        key += offset
        inf32 = 0x7F800000
        if key >= 0:
            bits = min(key, inf32)
        else:
            bits = 0x80000000 | min(-key, inf32)
        return struct.unpack("<f", struct.pack("<I", bits))[0]


def HostLibm() -> PerturbedLibm:
    """glibc model: faithful rounding, <=1 ulp, most points exact.

    glibc's Payne-Hanek reduction keeps huge-argument trig finite.
    """
    return PerturbedLibm(
        "glibc", salt="glibc-2.31", max_ulps=1, perturb_prob=0.35,
        huge_trig_nan_prob=0.02,
    )


def CudaLibm() -> PerturbedLibm:
    """CUDA Math Library model: documented bounds of a few ulps.

    Large-magnitude trig arguments are outside the documented accuracy
    range; the reduction occasionally degenerates entirely.
    """
    return PerturbedLibm(
        "cuda", salt="cuda-12.3", max_ulps=2, perturb_prob=0.55,
        huge_trig_nan_prob=0.12,
    )


def FastHostLibm() -> PerturbedLibm:
    """Host libm under ``-ffast-math`` (finite-math entry points, relaxed)."""
    return PerturbedLibm(
        "glibc-fast", salt="glibc-finite", max_ulps=4, perturb_prob=0.70,
        huge_trig_nan_prob=0.05,
    )


def FastCudaLibm() -> PerturbedLibm:
    """Device intrinsics under ``--use_fast_math`` (hardware approximations)."""
    return PerturbedLibm(
        "cuda-fast", salt="cuda-intrinsic", max_ulps=8, perturb_prob=0.80,
        huge_trig_nan_prob=0.20,
    )


# -- vector math libraries (the vec-libm divergence tier) ----------------------
#
# Auto-vectorized libm calls do not go through the scalar entry points: gcc
# emits libmvec's ``_ZGV*`` symbols, clang (with ``-fveclib``) targets
# SLEEF-style kernels, and nvcc's fast-math path lowers to SIMT intrinsics.
# Each is a *different implementation* from the scalar library it shadows,
# with its own accuracy budget, so a vectorized loop body can disagree with
# the same source evaluated scalar — per call site, per lane.  The models
# below plug into :class:`repro.fp.env.FPEnvironment.veclibm`; ``VecCall``
# lanes resolve through them while scalar ``FCall`` keeps the scalar libm.


def GccVecLibm() -> PerturbedLibm:
    """glibc's libmvec (``_ZGVbN*`` kernels): ~4 ulp vector transcendentals."""
    return PerturbedLibm(
        "libmvec", salt="glibc-libmvec", max_ulps=4, perturb_prob=0.65,
        huge_trig_nan_prob=0.08,
    )


def ClangVecLibm() -> PerturbedLibm:
    """A SLEEF-style vector library (clang ``-fveclib=SLEEF``): ~3.5 ulp."""
    return PerturbedLibm(
        "sleef", salt="sleef-3.6", max_ulps=3, perturb_prob=0.60,
        huge_trig_nan_prob=0.05,
    )


def NvccVecLibm() -> PerturbedLibm:
    """SIMT fast-math intrinsics across a warp (``__sinf``-class accuracy)."""
    return PerturbedLibm(
        "simt-intrinsic", salt="cuda-simt", max_ulps=16, perturb_prob=0.85,
        huge_trig_nan_prob=0.25,
    )
