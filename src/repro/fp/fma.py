"""Correctly rounded fused multiply-add, implemented exactly.

CPython 3.11 has no ``math.fma``, and emulating FMA with double-double
tricks risks double-rounding corner cases, so we compute ``a*b + c``
exactly over the integers (every finite double is ``n * 2**e``) and round
once to the target format.  This is the single-rounding semantics the
simulated nvcc uses when Fused Multiply-Add contraction is enabled
(``--fmad=true``, the default — paper §3.1.2).
"""

from __future__ import annotations

import math

from repro.fp.formats import FP64, FloatFormat

__all__ = ["round_scaled_int", "fma"]


def round_scaled_int(n: int, e: int, fmt: FloatFormat = FP64) -> float:
    """Round the exact value ``n * 2**e`` to ``fmt`` (nearest, ties-to-even).

    Returns a Python float holding the rounded value; for FP32 the result is
    the binary32 value widened back to a double (exact).  Overflow saturates
    to the signed infinity.  ``n == 0`` returns ``+0.0``; callers that need
    IEEE signed-zero semantics handle the sign separately.
    """
    if n == 0:
        return 0.0
    sign = -1.0 if n < 0 else 1.0
    m = abs(n)

    # Unbiased exponent of the leading bit of the exact value.
    top = m.bit_length() - 1 + e
    if top > fmt.emax + 1:
        return sign * math.inf

    # Position (power of two) of the result's least significant bit: normal
    # numbers keep `precision` bits below the leading bit; anything below
    # emin falls into the subnormal range with a fixed lsb position.
    lsb_exp = max(top - (fmt.precision - 1), fmt.emin - (fmt.precision - 1))
    shift = lsb_exp - e

    if shift <= 0:
        q = m << (-shift)
    else:
        q = m >> shift
        rem = m & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if rem > half or (rem == half and (q & 1)):
            q += 1
            # Rounding up may carry into a new binade; when that binade is
            # still subnormal-positioned, the lsb stays put and q simply
            # gained a bit, which the overflow check below accounts for.

    if q == 0:
        return sign * 0.0
    new_top = q.bit_length() - 1 + lsb_exp
    if new_top > fmt.emax:
        return sign * math.inf
    return sign * math.ldexp(float(q), lsb_exp)


def _decompose(x: float) -> tuple[int, int]:
    """Exact (n, e) with ``x == n * 2**e`` for a finite double."""
    num, den = x.as_integer_ratio()
    return num, -(den.bit_length() - 1)


def fma(a: float, b: float, c: float, fmt: FloatFormat = FP64) -> float:
    """Correctly rounded ``a*b + c`` with a single rounding step.

    Inputs must already be exact members of ``fmt`` (for FP32, doubles that
    round-trip through binary32).  Follows IEEE 754 special-case rules:
    ``0 * inf`` is NaN regardless of ``c``; exact cancellation yields +0.
    """
    if math.isnan(a) or math.isnan(b) or math.isnan(c):
        return math.nan
    if math.isinf(a) or math.isinf(b):
        if a == 0.0 or b == 0.0:
            return math.nan  # 0 * inf
        prod_sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        if math.isinf(c) and math.copysign(1.0, c) != prod_sign:
            return math.nan  # inf - inf
        return prod_sign * math.inf
    if math.isinf(c):
        return c

    if a == 0.0 or b == 0.0:
        # Exact product is a signed zero; adding c follows ordinary rules.
        prod_neg = (math.copysign(1.0, a) * math.copysign(1.0, b)) < 0
        if c == 0.0:
            c_neg = math.copysign(1.0, c) < 0
            return -0.0 if (prod_neg and c_neg) else 0.0
        return c

    na, ea = _decompose(a)
    nb, eb = _decompose(b)
    n_prod = na * nb
    e_prod = ea + eb
    if c == 0.0:
        n, e = n_prod, e_prod
    else:
        nc, ec = _decompose(c)
        if e_prod <= ec:
            n = n_prod + (nc << (ec - e_prod))
            e = e_prod
        else:
            n = (n_prod << (e_prod - ec)) + nc
            e = ec
    if n == 0:
        return 0.0  # exact cancellation rounds to +0 in round-to-nearest
    return round_scaled_int(n, e, fmt)
