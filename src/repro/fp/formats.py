"""Binary floating-point format descriptions (IEEE 754 binary32/binary64)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FloatFormat:
    """Parameters of an IEEE 754 binary interchange format.

    Attributes:
        name: human-readable name ("binary64").
        precision: significand width in bits, *including* the hidden bit.
        emax: maximum unbiased exponent of a normal number.
        width: total storage width in bits.
    """

    name: str
    precision: int
    emax: int
    width: int

    @property
    def emin(self) -> int:
        """Minimum unbiased exponent of a normal number."""
        return 1 - self.emax

    @property
    def bias(self) -> int:
        return self.emax

    @property
    def mantissa_bits(self) -> int:
        """Stored (explicit) significand bits."""
        return self.precision - 1

    @property
    def exponent_bits(self) -> int:
        return self.width - self.precision

    @property
    def max_finite(self) -> float:
        return float((2 - 2 ** (1 - self.precision)) * 2.0**self.emax)

    @property
    def min_normal(self) -> float:
        return float(2.0**self.emin)

    @property
    def min_subnormal(self) -> float:
        return float(2.0 ** (self.emin - self.mantissa_bits))

    @property
    def hex_digits(self) -> int:
        """Number of hex digits in the bit pattern (16 for binary64)."""
        return self.width // 4


FP64 = FloatFormat(name="binary64", precision=53, emax=1023, width=64)
FP32 = FloatFormat(name="binary32", precision=24, emax=127, width=32)


class Precision(enum.Enum):
    """Floating-point precision selector used by generators and toolchains."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def fmt(self) -> FloatFormat:
        return FP32 if self is Precision.SINGLE else FP64

    @property
    def c_type(self) -> str:
        return "float" if self is Precision.SINGLE else "double"
