"""The paper's five-way value classification (§3.3.1).

RQ2 buckets every result into one of {Real, Zero, +Inf, -Inf, NaN}:
*Real* covers normal and subnormal numbers; *Zero* covers both signed zeros.
"""

from __future__ import annotations

import enum
import math


class FPClass(enum.Enum):
    """Numerical category of a floating-point result."""

    REAL = "Real"
    ZERO = "Zero"
    POS_INF = "+Inf"
    NEG_INF = "-Inf"
    NAN = "NaN"

    def __str__(self) -> str:
        return self.value


def classify_double(x: float) -> FPClass:
    """Classify ``x`` into the paper's five categories."""
    if math.isnan(x):
        return FPClass.NAN
    if math.isinf(x):
        return FPClass.POS_INF if x > 0 else FPClass.NEG_INF
    if x == 0.0:
        return FPClass.ZERO
    return FPClass.REAL


#: Canonical ordering used when labelling inconsistency kinds, matching the
#: x-axis of the paper's Figure 3.
CLASS_ORDER: tuple[FPClass, ...] = (
    FPClass.REAL,
    FPClass.ZERO,
    FPClass.NAN,
    FPClass.POS_INF,
    FPClass.NEG_INF,
)
