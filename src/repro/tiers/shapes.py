"""Shape extractors of the newer divergence tiers.

Each extractor maps (optimized kernel, FP environment) to a deterministic
tuple; the compare stage attributes an inconsistency to the lowest-ranked
tier whose two sides extract *different* shapes (under the shared
preconditions — observationally equal environments, content-identical
vector-stripped scalar parts).  An extractor returns the empty tuple when
the kernel exhibits none of its tier's constructs, so a campaign compiled
without the tier (the ``baseline`` profile) sees equal empty shapes on
both sides and tags exactly as before the tier existed.

The legacy tiers' extractors —
:func:`~repro.difftest.classify.masked_shape` and
:func:`~repro.difftest.classify.vector_shape` — live in
:mod:`repro.difftest.classify`; the registry wraps them to this module's
uniform ``(kernel, env)`` signature.
"""

from __future__ import annotations

from repro.fp.env import FPEnvironment
from repro.ir import nodes as ir

__all__ = ["veclibm_shape", "mixed_precision_shape", "int_guard_shape"]


def _walk_exprs(kernel: ir.Kernel):
    for s in ir.walk_stmts(kernel.body):
        for top in ir.stmt_exprs(s):
            yield from ir.walk(top)


def veclibm_shape(kernel: ir.Kernel, env: FPEnvironment | None = None) -> tuple:
    """The kernel's vectorized-libm call sites under ``env``.

    Non-empty exactly when the environment links a vector math library
    *and* the kernel contains widened call sites: only then do lanes
    resolve through a different implementation than the scalar libm.
    The library's identity leads the shape, so two sides that widened the
    same calls to the same lanes but link different vector libraries
    (gcc's libmvec vs. clang's SLEEF build) still disagree.
    """
    if env is None or env.veclibm is None:
        return ()
    sites = tuple(
        ("call", e.name, e.lanes, e.ty)
        for e in _walk_exprs(kernel)
        if isinstance(e, ir.VecCall)
    )
    if not sites:
        return ()
    lib = env.veclibm
    return (("lib", type(lib).__name__, lib.name),) + sites


def mixed_precision_shape(kernel: ir.Kernel, env: FPEnvironment | None = None) -> tuple:
    """The kernel's widened conversion sites plus the reductions they feed.

    Non-empty exactly when the vectorizer widened ``FpExt``/``FpTrunc``
    sites (the mixed-precision tier).  The kernel's reduction sites ride
    along because a mixed-precision loop body usually feeds a reduction,
    and the horizontal style is what actually distinguishes two hosts
    that widened the same conversions at the same width.
    """
    mixed: list[tuple] = []
    reduces: list[tuple] = []
    for e in _walk_exprs(kernel):
        if isinstance(e, ir.VecFpExt):
            mixed.append(("ext", e.lanes))
        elif isinstance(e, ir.VecFpTrunc):
            mixed.append(("trunc", e.lanes))
        elif isinstance(e, ir.VecReduce):
            reduces.append(("reduce", e.op, e.lanes, e.style))
    if not mixed:
        return ()
    return tuple(mixed) + tuple(reduces)


def int_guard_shape(kernel: ir.Kernel, env: FPEnvironment | None = None) -> tuple:
    """The kernel's widened *integer* guard masks and the masked region.

    Non-empty exactly when a lane compare's operands are integers (an
    iota/splat mask from a trip-dependent guard like ``if (i < m)`` — the
    int-guards tier); floating-point lane compares belong to the plain
    masked-lane tier.  The full masked shape rides along so two sides
    that built the same integer mask still disagree when the guarded
    region's reductions differ in style or width.
    """
    from repro.difftest.classify import masked_shape

    icmps = tuple(
        ("icmp", e.op, e.lanes)
        for e in _walk_exprs(kernel)
        if isinstance(e, ir.VecCmp) and ir.expr_type(e.left) == "int"
    )
    if not icmps:
        return ()
    return icmps + masked_shape(kernel)
