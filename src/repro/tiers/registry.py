"""The divergence-tier registry itself.

Tiers are consulted in ascending **rank** order; the first tier whose two
sides extracted different shapes names the inconsistency.  Ranks are
explicit (not list order) so precedence between tiers is a reviewed,
stable property: a more *specific* mechanism gets a lower rank and
therefore wins when one kernel exhibits several tiers' constructs at
once — a masked loop whose lanes also call a vector math library tags
``vec-libm``, not ``masked-lane``, deterministically.

Built-in ranks::

    10  vec-libm            vectorized math-library call sites
    20  mixed-precision     widened FpExt/FpTrunc conversion sites
    25  masked-int-guard    integer (iota/splat) guard masks
    30  masked-lane         if-converted (masked) lanes
    40  vector-reduction    horizontal-reduction shape alone

The two highest ranks reproduce the pre-registry precedence exactly
(masked shapes were checked before reduction shapes), so existing
campaigns replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.difftest.classify import (
    MASKED_LANE,
    VECTOR_REDUCTION,
    devectorized_fingerprint,
    masked_shape,
    vector_shape,
)
from repro.tiers.shapes import int_guard_shape, mixed_precision_shape, veclibm_shape

__all__ = [
    "DivergenceTier",
    "register",
    "registry",
    "tier_by_tag",
    "tier_tags",
    "shape_vector",
    "structural_tag_from_shapes",
    "VEC_LIBM",
    "MIXED_PRECISION",
    "MASKED_INT_GUARD",
    "MASKED_LANE",
    "VECTOR_REDUCTION",
]

#: Structural kind: vectorized lanes resolved libm calls through a vector
#: math library (libmvec / SLEEF / SIMT intrinsics) that differs between
#: the sides.
VEC_LIBM = "vec-libm"

#: Structural kind: the vectorizer widened mixed-precision conversion
#: sites (``FpExt``/``FpTrunc``) whose composed reductions differ.
MIXED_PRECISION = "mixed-precision"

#: Structural kind: a trip-dependent *integer* guard widened into an
#: iota/splat mask and the guarded regions differ.
MASKED_INT_GUARD = "masked-int-guard"


@dataclass(frozen=True)
class DivergenceTier:
    """One divergence mechanism of the modeled vectorizing toolchains.

    Attributes:
        tag: the structural kind string — what
            :class:`~repro.difftest.record.ComparisonRecord.tag` carries,
            :func:`~repro.triage.signature.signature_of` folds into the
            triage signature, and the trigger corpus keys on.
        rank: explicit precedence; lower ranks are consulted first and
            should name more specific mechanisms.
        extract: ``(kernel, env) -> tuple`` — the structural shape whose
            per-side disagreement attributes an inconsistency to this
            tier.  Must return ``()`` when the kernel/environment exhibit
            none of the tier's constructs.
        policy_field: name of the
            :class:`~repro.toolchains.optlevels.TierPolicy` field that
            enables the tier for a (family, level, profile).
        strip_fingerprint: ``kernel -> str`` content hash of the kernel
            with the tier's (and all vector) constructs stripped — the
            scalar-parts-equal precondition shared by every tier today.
        description: one-line human summary for reports and docs.
    """

    tag: str
    rank: int
    extract: Callable
    policy_field: str
    strip_fingerprint: Callable = devectorized_fingerprint
    description: str = ""


_REGISTRY: dict[str, DivergenceTier] = {}


def register(tier: DivergenceTier) -> DivergenceTier:
    """Add ``tier`` to the registry (tags and ranks must be unique)."""
    if tier.tag in _REGISTRY:
        raise ValueError(f"divergence tier {tier.tag!r} already registered")
    if any(t.rank == tier.rank for t in _REGISTRY.values()):
        raise ValueError(f"divergence-tier rank {tier.rank} already taken")
    _REGISTRY[tier.tag] = tier
    return tier


def registry() -> tuple[DivergenceTier, ...]:
    """All registered tiers in ascending rank (= precedence) order."""
    return tuple(sorted(_REGISTRY.values(), key=lambda t: t.rank))


def tier_by_tag(tag: str) -> DivergenceTier:
    return _REGISTRY[tag]


def tier_tags() -> tuple[str, ...]:
    """Every registered structural kind, precedence order."""
    return tuple(t.tag for t in registry())


def shape_vector(kernel, env=None) -> tuple[tuple, ...]:
    """Every tier's extracted shape for ``(kernel, env)``, registry order.

    The compare stage computes this once per (kernel, environment) and
    compares positionally — the vector is only meaningful against another
    vector extracted by the same registry state.
    """
    return tuple(t.extract(kernel, env) for t in registry())


def structural_tag_from_shapes(
    shapes_a: tuple[tuple, ...],
    shapes_b: tuple[tuple, ...],
    envs_equal: bool,
    scalar_parts_equal: bool,
) -> str | None:
    """The structural kind of one inconsistent comparison, or ``None``.

    Precondition for any tag: the sides' environments are observationally
    equal (scalar projection — a vec-libm difference is this registry's
    business, not a disqualifier) and their vector-stripped scalar parts
    are content-identical, so nothing but the vectorizing tiers can be
    the cause.  Then the lowest-ranked tier whose shapes differ wins.
    """
    if not envs_equal or not scalar_parts_equal:
        return None
    for tier, sa, sb in zip(registry(), shapes_a, shapes_b):
        if sa != sb:
            return tier.tag
    return None


register(
    DivergenceTier(
        tag=VEC_LIBM,
        rank=10,
        extract=veclibm_shape,
        policy_field="vec_libm",
        description="lanes resolve libm calls through a vector math library",
    )
)
register(
    DivergenceTier(
        tag=MIXED_PRECISION,
        rank=20,
        extract=mixed_precision_shape,
        policy_field="mixed_precision",
        description="widened FpExt/FpTrunc conversion sites feed reductions",
    )
)
register(
    DivergenceTier(
        tag=MASKED_INT_GUARD,
        rank=25,
        extract=int_guard_shape,
        policy_field="int_guards",
        description="integer trip guards widen into iota/splat masks",
    )
)
register(
    DivergenceTier(
        tag=MASKED_LANE,
        rank=30,
        extract=lambda kernel, env=None: masked_shape(kernel),
        policy_field="if_convert",
        description="if-converted lanes execute both arms and blend by mask",
    )
)
register(
    DivergenceTier(
        tag=VECTOR_REDUCTION,
        rank=40,
        extract=lambda kernel, env=None: vector_shape(kernel),
        policy_field="vector_width",
        description="horizontal-reduction shapes (width/style) differ",
    )
)
