"""The pluggable divergence-tier registry.

A *divergence tier* is one mechanism by which the modeled vectorizing
toolchains make two observationally-equal binaries disagree: the plain
vector-reduction reassociation, masked (if-converted) lanes, integer
guard masks, mixed-precision lane widening, vectorized math libraries.
Each tier is described once, as a :class:`DivergenceTier` bundling

* its structural **tag** (the kind string reports, triage and the trigger
  corpus see) and an explicit precedence **rank**;
* the **shape extractor** whose per-side disagreement attributes an
  inconsistency to the tier;
* the **kernel-stripping fingerprint** that guards precision (sides must
  agree on all scalar code);
* the name of the :class:`~repro.toolchains.optlevels.TierPolicy` field
  that **enables** the tier per (compiler family, level, profile).

The compare stage, the classifier, the triage clusterer and the store
iterate :func:`registry` instead of hard-coding individual tags, so
landing a new tier is one :func:`register` call.
"""

from repro.tiers.registry import (
    MASKED_INT_GUARD,
    MASKED_LANE,
    MIXED_PRECISION,
    VEC_LIBM,
    VECTOR_REDUCTION,
    DivergenceTier,
    register,
    registry,
    shape_vector,
    structural_tag_from_shapes,
    tier_by_tag,
    tier_tags,
)
from repro.tiers.shapes import (
    int_guard_shape,
    mixed_precision_shape,
    veclibm_shape,
)

__all__ = [
    "DivergenceTier",
    "register",
    "registry",
    "tier_by_tag",
    "tier_tags",
    "shape_vector",
    "structural_tag_from_shapes",
    "VEC_LIBM",
    "MIXED_PRECISION",
    "MASKED_INT_GUARD",
    "MASKED_LANE",
    "VECTOR_REDUCTION",
    "veclibm_shape",
    "mixed_precision_shape",
    "int_guard_shape",
]
