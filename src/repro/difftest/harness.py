"""Compatibility facade over the staged campaign engine.

Historically this module held the monolithic campaign loop; the stages now
live in :mod:`repro.difftest.engine`.  :class:`DifferentialHarness` and
:func:`run_campaign` keep their original signatures and produce
byte-identical results, so every table/figure reproduces unchanged —
they are thin shims that construct a
:class:`~repro.difftest.engine.CampaignEngine` and delegate.
"""

from __future__ import annotations

from repro.difftest.config import CampaignConfig
from repro.difftest.engine import CampaignEngine, EngineConfig
from repro.difftest.record import CampaignResult, ProgramOutcome
from repro.generation.program import GeneratedProgram, ProgramGenerator
from repro.toolchains.base import Compiler

__all__ = ["DifferentialHarness", "run_campaign"]


class DifferentialHarness:
    """Compiles, runs and compares one program across all configurations.

    A facade over :class:`~repro.difftest.engine.CampaignEngine` for
    callers that test programs one at a time (triage scripts, examples).
    Raises :class:`ValueError` naming the offending compilers when the
    matrix is degenerate (fewer than two compilers, duplicate names).
    """

    def __init__(
        self,
        compilers: list[Compiler],
        config: CampaignConfig,
        engine_config: EngineConfig | None = None,
    ) -> None:
        self._engine = CampaignEngine(compilers, config, engine_config)
        self.compilers = self._engine.compilers
        self.config = self._engine.config

    @property
    def engine(self) -> CampaignEngine:
        return self._engine

    def test_program(self, index: int, program: GeneratedProgram) -> ProgramOutcome:
        return self._engine.test_program(index, program)


def run_campaign(
    generator: ProgramGenerator,
    compilers: list[Compiler],
    config: CampaignConfig | None = None,
    progress: object = None,
    engine_config: EngineConfig | None = None,
    store: object = None,
) -> CampaignResult:
    """Run one approach's full campaign (Figure 1's outer loop).

    ``progress``, if given, is called as ``progress(i, outcome)`` after each
    program.  ``engine_config`` selects the execution backend, worker
    count, sharding and caching
    (:class:`~repro.difftest.engine.EngineConfig`); the default is a
    single-worker engine with the compile cache on, which matches the
    legacy serial loop bit-for-bit while skipping redundant recompiles.
    ``store``, if given, is a
    :class:`~repro.difftest.store.CampaignStore` used to checkpoint and
    resume the campaign.  Returns the aggregate :class:`CampaignResult`
    with time cost split into per-stage buckets, plus simulated LLM
    latency when the generator's client models it.
    """
    engine = CampaignEngine(compilers, config, engine_config)
    return engine.run(generator, progress=progress, store=store)
