"""The differential-testing campaign loop (paper Figure 1).

For each generated program: compile with every (compiler, level) — host
compilers take the C source, the device compiler takes the CUDA translation
— run every binary on the program's input vector, compare outputs bitwise
for every compiler pair at each level, classify inconsistencies, and feed
triggering programs back to the generator's successful set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.difftest.compare import digit_difference
from repro.difftest.config import CampaignConfig
from repro.difftest.record import CampaignResult, ComparisonRecord, ProgramOutcome
from repro.errors import CompileError, ReproError
from repro.execution.result import ExecutionResult
from repro.frontend.parser import parse_program
from repro.frontend.sema import check_program
from repro.fp.bits import hex_to_double
from repro.generation.program import GeneratedProgram, ProgramGenerator
from repro.ir.lower import lower_compute
from repro.toolchains.base import Binary, Compiler, CompilerKind
from repro.toolchains.cuda import translate_to_cuda
from repro.utils.timing import Stopwatch

__all__ = ["DifferentialHarness", "run_campaign"]


@dataclass
class _BinaryRun:
    """Signature + final value of one (compiler, level) execution."""

    signature: str | None
    value: float | None
    printed: tuple[float, ...] = ()


class DifferentialHarness:
    """Compiles, runs and compares one program across all configurations."""

    def __init__(self, compilers: list[Compiler], config: CampaignConfig) -> None:
        if len(compilers) < 2:
            raise ValueError("differential testing needs at least two compilers")
        names = [c.name for c in compilers]
        if len(set(names)) != len(names):
            raise ValueError("compiler names must be unique")
        self.compilers = compilers
        self.config = config

    # -- one program -----------------------------------------------------------

    def test_program(self, index: int, program: GeneratedProgram) -> ProgramOutcome:
        outcome = ProgramOutcome(index=index, program=program)
        runs = self._compile_and_run_all(program, outcome)
        self._compare_all(index, runs, outcome)
        outcome.triggered = any(not c.consistent for c in outcome.comparisons)
        return outcome

    def _compile_and_run_all(
        self, program: GeneratedProgram, outcome: ProgramOutcome
    ) -> dict[tuple[str, object], _BinaryRun]:
        runs: dict[tuple[str, object], _BinaryRun] = {}
        kernels = self._frontend(program.source)
        for compiler in self.compilers:
            kernel = kernels.get(compiler.kind)
            for level in self.config.levels:
                key = (compiler.name, level)
                label = f"{compiler.name}/{level}"
                if kernel is None:
                    outcome.compiled[label] = False
                    continue
                try:
                    binary = compiler.compile_kernel(kernel, level)
                except CompileError:
                    outcome.compiled[label] = False
                    continue
                outcome.compiled[label] = True
                result = binary.run(program.inputs, self.config.max_steps)
                outcome.ran[label] = result.ok
                if result.ok:
                    sig = result.signature()
                    runs[key] = _BinaryRun(sig, result.value, result.printed)
                    if sig is not None:
                        outcome.signatures[label] = sig
                        outcome.values[label] = result.value
        return runs

    def _frontend(self, source: str):
        """Front-end the program once per target kind.

        Host compilers share the C parse; the device compiler receives the
        CUDA translation (§2.4).  A front-end failure for a kind means all
        its compilations fail (recorded per-binary by the caller).
        """
        kernels: dict[CompilerKind, object] = {}
        try:
            unit = parse_program(source)
            sema = check_program(unit)
            kernels[CompilerKind.HOST] = lower_compute(sema)
        except ReproError:
            return kernels
        try:
            cuda_unit = translate_to_cuda(unit)
            cuda_sema = check_program(cuda_unit)
            kernels[CompilerKind.DEVICE] = lower_compute(cuda_sema)
        except ReproError:
            pass
        return kernels

    # -- comparisons ---------------------------------------------------------------

    def _compare_all(
        self,
        index: int,
        runs: dict[tuple[str, object], _BinaryRun],
        outcome: ProgramOutcome,
    ) -> None:
        for level in self.config.levels:
            for ca, cb in combinations(self.compilers, 2):
                ra = runs.get((ca.name, level))
                rb = runs.get((cb.name, level))
                if ra is None or rb is None or ra.signature is None or rb.signature is None:
                    continue  # not comparable; still in the denominator
                consistent = ra.signature == rb.signature
                if consistent:
                    outcome.comparisons.append(
                        ComparisonRecord(index, ca.name, cb.name, level, True)
                    )
                    continue
                va, vb = _differing_values(ra, rb)
                outcome.comparisons.append(
                    ComparisonRecord(
                        index,
                        ca.name,
                        cb.name,
                        level,
                        False,
                        value_a=va,
                        value_b=vb,
                        digit_diff=_diffing_digits(va, vb),
                    )
                )


def _differing_values(ra: _BinaryRun, rb: _BinaryRun) -> tuple[float, float]:
    """The first printed pair whose encodings differ (fallback: finals)."""
    from repro.execution.result import _value_hex

    for a, b in zip(ra.printed, rb.printed):
        if _value_hex(a) != _value_hex(b):
            return a, b
    return ra.value, rb.value  # different print counts: compare finals


def _diffing_digits(a: float, b: float) -> int:
    from repro.execution.result import _value_hex

    return digit_difference(_value_hex(a), _value_hex(b))


def run_campaign(
    generator: ProgramGenerator,
    compilers: list[Compiler],
    config: CampaignConfig | None = None,
    progress: object = None,
) -> CampaignResult:
    """Run one approach's full campaign (Figure 1's outer loop).

    ``progress``, if given, is called as ``progress(i, outcome)`` after each
    program.  Returns the aggregate :class:`CampaignResult` with time cost
    split into generation / compile+execute buckets, plus simulated LLM
    latency when the generator's client models it.
    """
    config = config or CampaignConfig()
    harness = DifferentialHarness(compilers, config)
    result = CampaignResult(
        approach=getattr(generator, "name", type(generator).__name__),
        budget=config.budget,
        levels=config.levels,
        compilers=tuple(c.name for c in compilers),
    )
    sw = Stopwatch()
    for i in range(config.budget):
        with sw.phase("generate"):
            program = generator.generate()
        with sw.phase("test"):
            outcome = harness.test_program(i, program)
        if outcome.triggered:
            generator.notify_success(program)
        result.outcomes.append(outcome)
        if progress is not None:
            progress(i, outcome)
    result.generation_seconds = sw.buckets.get("generate", 0.0)
    result.execute_seconds = sw.buckets.get("test", 0.0)
    llm = getattr(generator, "llm", None)
    if llm is not None:
        result.llm_latency_seconds = getattr(llm, "simulated_latency_seconds", 0.0)
    return result
