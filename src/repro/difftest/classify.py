"""Inconsistency-kind classification (paper §3.3, RQ2).

An inconsistency between results ``r_i != r_j`` is labelled by the
unordered pair of their numerical categories in
{Real, Zero, +Inf, -Inf, NaN}; e.g. a real number vs. a zero counts once as
{Real, Zero}.  The eleven possible kinds are the x-axis of Figure 3.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations_with_replacement

from repro.fp.classify import CLASS_ORDER, FPClass, classify_double

__all__ = ["inconsistency_kind", "ALL_KINDS", "kind_label", "KindCount"]


def inconsistency_kind(a: float, b: float) -> frozenset[FPClass]:
    """The unordered category pair of an inconsistent result pair."""
    return frozenset((classify_double(a), classify_double(b)))


def kind_label(kind: frozenset[FPClass]) -> str:
    """Human-readable label in the paper's Figure 3 ordering, e.g.
    '{Real, NaN}'."""
    members = sorted(kind, key=CLASS_ORDER.index)
    if len(members) == 1:
        members = members * 2
    return "{" + ", ".join(str(m) for m in members) + "}"


#: All unordered category pairs, in Figure 3 order: same-class pairs first
#: ({Real, Real}), then mixed pairs.
ALL_KINDS: tuple[frozenset[FPClass], ...] = tuple(
    frozenset(pair)
    for pair in combinations_with_replacement(CLASS_ORDER, 2)
)


@dataclass
class KindCount:
    """A tally of inconsistency kinds (one bar group of Figure 3)."""

    counts: Counter = field(default_factory=Counter)

    def record(self, a: float, b: float) -> None:
        self.counts[inconsistency_kind(a, b)] += 1

    def merge(self, other: "KindCount") -> None:
        self.counts.update(other.counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def get(self, *classes: FPClass) -> int:
        return self.counts.get(frozenset(classes), 0)

    def as_labels(self) -> dict[str, int]:
        """Nonzero kinds as {label: count}, Figure 3 ordering."""
        out: dict[str, int] = {}
        for kind in ALL_KINDS:
            n = self.counts.get(kind, 0)
            if n:
                out[kind_label(kind)] = n
        return out
