"""Inconsistency-kind classification (paper §3.3, RQ2).

An inconsistency between results ``r_i != r_j`` is labelled by the
unordered pair of their numerical categories in
{Real, Zero, +Inf, -Inf, NaN}; e.g. a real number vs. a zero counts once as
{Real, Zero}.  The eleven possible kinds are the x-axis of Figure 3.

Beyond the value-class taxonomy, the vectorization tier adds one
*structural* kind: :data:`VECTOR_REDUCTION` marks an inconsistent
comparison attributable to the vector tier *alone*.  Three conditions,
all deterministic functions of the two optimized kernels:

1. the sides reduce loops with **different vector shapes** (different
   widths / horizontal-reduction styles);
2. their FP environments are observationally equal (so the optimized IR
   is the only possible divergence source); and
3. stripped of every vector construct, the kernels are
   **content-identical** — the sides agree on all scalar code, so no
   other pass (reassociation, folding, contraction) can be the cause.

Without (3) a program that merely *contains* a vectorizable loop would
be mislabeled whenever an unrelated scalar transform (e.g. fast-math
reassociation of a straight-line sum) flips the comparison.  The tag is
precise by construction; triage bisection remains the ground truth for
*which* pass flipped a comparison.

The if-conversion tier adds a second structural kind,
:data:`MASKED_LANE`: the same environment/scalar-part preconditions,
but the sides differ in their *masked* shapes — mask sites
(``VecSelect``/``VecCmp``/masked load/store) or the reductions those
masked regions feed (:func:`masked_shape`).  Masked lanes execute both
arms of a converted conditional and blend by mask, so the divergent
association includes work the scalar branchy loop never did; the kind
takes precedence over plain ``vector-reduction`` because it names the
narrower mechanism, while sides that masked *identically* and diverge
only through an unmasked reduction's shape still tag
``vector-reduction``.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations_with_replacement

from repro.fp.classify import CLASS_ORDER, FPClass, classify_double
from repro.ir import nodes as ir

__all__ = [
    "inconsistency_kind",
    "ALL_KINDS",
    "kind_label",
    "KindCount",
    "VECTOR_REDUCTION",
    "MASKED_LANE",
    "vector_shape",
    "masked_shape",
    "devectorized_body",
    "devectorized_fingerprint",
    "vector_reduction_tag",
    "structural_tag",
]

#: Structural inconsistency kind: the two sides disagree on how loop
#: reductions were vectorized (shape below), under equal environments.
VECTOR_REDUCTION = "vector-reduction"

#: Structural inconsistency kind: like ``vector-reduction``, but at least
#: one side widened *if-converted* (masked) code — speculated lanes
#: executed both arms of a conditional and blended by mask.
MASKED_LANE = "masked-lane"


def vector_shape(kernel: ir.Kernel) -> tuple[tuple[str, int, str], ...]:
    """The kernel's reduction shape: every :class:`~repro.ir.nodes.VecReduce`
    site as ``(op, lanes, style)``, in deterministic pre-order.

    Two optimized kernels with different shapes associate their reduction
    sums differently, so equal inputs can round to different results.
    """
    shape = []
    for s in ir.walk_stmts(kernel.body):
        for top in ir.stmt_exprs(s):
            for e in ir.walk(top):
                if isinstance(e, ir.VecReduce):
                    shape.append((e.op, e.lanes, e.style))
    return tuple(shape)


def masked_shape(kernel: ir.Kernel) -> tuple[tuple, ...]:
    """The kernel's if-conversion sites, in deterministic pre-order.

    Site descriptors: ``("cmp", op, lanes)`` for lane compares,
    ``("select", lanes)`` for blends, ``("mload", lanes)`` for masked
    loads, ``("mstore", lanes)`` for masked vector stores — and, inside
    a *masked region* (a guarded vector block whose subtree contains
    mask nodes), ``("reduce", op, lanes, style)`` for its horizontal
    reductions: a reduction fed by blended lanes belongs to the masking
    mechanism, while a reduction in an unmasked loop elsewhere in the
    same kernel stays out of this shape (so a pure reduction-style
    divergence next to an identically-masked loop tags
    ``vector-reduction``, not ``masked-lane``).

    Non-empty exactly when the kernel contains *widened* if-converted
    code (scalar select form, including the scalar epilogue the
    vectorizer emits, does not count: it executes one arm, not both).
    """
    shape: list[tuple] = []

    def leaf_sites(s: ir.Stmt, include_reduce: bool) -> None:
        if isinstance(s, ir.SMaskedStore) and s.lanes > 1:
            shape.append(("mstore", s.lanes))
        for top in ir.stmt_exprs(s):
            for e in ir.walk(top):
                if isinstance(e, ir.VecCmp):
                    shape.append(("cmp", e.op, e.lanes))
                elif isinstance(e, ir.VecSelect):
                    shape.append(("select", e.lanes))
                elif isinstance(e, ir.VecMaskedLoad):
                    shape.append(("mload", e.lanes))
                elif include_reduce and isinstance(e, ir.VecReduce):
                    shape.append(("reduce", e.op, e.lanes, e.style))

    def has_mask(s: ir.Stmt) -> bool:
        for sub in ir.walk_stmts((s,)):
            if isinstance(sub, ir.SMaskedStore) and sub.lanes > 1:
                return True
            for top in ir.stmt_exprs(sub):
                if any(
                    isinstance(e, (ir.VecCmp, ir.VecSelect, ir.VecMaskedLoad))
                    for e in ir.walk(top)
                ):
                    return True
        return False

    def visit(stmts: tuple[ir.Stmt, ...]) -> None:
        for s in stmts:
            if isinstance(s, ir.SIf) and has_mask(s):
                # A masked vector region (the vectorizer's guard block):
                # consume it whole, reductions included.
                for sub in ir.walk_stmts((s,)):
                    leaf_sites(sub, include_reduce=True)
            elif isinstance(s, ir.SIf):
                leaf_sites(s, include_reduce=False)  # own condition only
                visit(s.then)
                visit(s.other)
            elif isinstance(s, ir.SFor):
                leaf_sites(s, include_reduce=False)
                visit(s.init)
                visit(s.body)
                visit(s.step)
            elif isinstance(s, ir.SWhile):
                leaf_sites(s, include_reduce=False)
                visit(s.body)
            else:
                leaf_sites(s, include_reduce=False)

    visit(kernel.body)
    return tuple(shape)


def _expr_has_vector(e: ir.Expr) -> bool:
    return any(isinstance(sub, ir.ANY_VECTOR_NODES) for sub in ir.walk(e))


def _stmt_has_vector(s: ir.Stmt) -> bool:
    for sub in ir.walk_stmts((s,)):
        if isinstance(sub, ir.SVecStore):
            return True
        if isinstance(sub, ir.SMaskedStore) and sub.lanes > 1:
            return True
        for top in ir.stmt_exprs(sub):
            if _expr_has_vector(top):
                return True
    return False


def devectorized_body(kernel: ir.Kernel) -> tuple[ir.Stmt, ...]:
    """The kernel's statements with every vector construct dropped.

    Vector-bearing leaf statements are removed; compound statements
    recurse, and a vector-bearing compound whose stripped bodies come
    out empty vanishes whole — for a vectorizer-emitted loop that is
    exactly the guarded vector block (lane inits, width-strided main
    loop, horizontal combines), leaving the hoisted induction init and
    the scalar epilogue, even when the vectorized loop sits nested
    inside source control flow.  The result is width- and
    style-independent, so two kernels that differ *only* in how the
    vector tier widened them strip to identical bodies.

    A surviving compound statement whose own *condition* contains vector
    nodes (a mask feeding control flow) has the condition scalarized to
    a constant placeholder: conditions belong to the statement, not its
    body, so leaving a width-carrying mask in place would make the
    stripped bodies of two widths spuriously differ and silently
    mis-tag.
    """

    def scalarized(e: ir.Expr | None) -> ir.Expr | None:
        if e is None or not _expr_has_vector(e):
            return e
        return ir.IConst(1)

    def strip(stmts: tuple[ir.Stmt, ...]) -> tuple[ir.Stmt, ...]:
        out: list[ir.Stmt] = []
        for s in stmts:
            if isinstance(s, ir.SIf):
                then, other = strip(s.then), strip(s.other)
                if then or other or not _stmt_has_vector(s):
                    out.append(ir.SIf(scalarized(s.cond), then, other))
            elif isinstance(s, ir.SFor):
                body = strip(s.body)
                if body or not _stmt_has_vector(s):
                    out.append(
                        ir.SFor(
                            strip(s.init), scalarized(s.cond), strip(s.step), body
                        )
                    )
            elif isinstance(s, ir.SWhile):
                body = strip(s.body)
                if body or not _stmt_has_vector(s):
                    out.append(ir.SWhile(scalarized(s.cond), body))
            elif not _stmt_has_vector(s):
                out.append(s)
        return tuple(out)

    return strip(kernel.body)


def devectorized_fingerprint(kernel: ir.Kernel) -> str:
    """Content hash of :func:`devectorized_body` — what the compare stage
    stores and compares (no retained IR, no per-pair deep tuple walks)."""
    return hashlib.sha256(repr(devectorized_body(kernel)).encode("utf-8")).hexdigest()


def vector_reduction_tag(
    shape_a: tuple, shape_b: tuple, envs_equal: bool, scalar_parts_equal: bool
) -> str | None:
    """``VECTOR_REDUCTION`` when an inconsistency is attributable to the
    vector tier alone: reduction shapes differ, the FP environments are
    observationally equal, and the devectorized kernels coincide (see the
    module docstring's three conditions).  ``None`` otherwise."""
    if envs_equal and scalar_parts_equal and shape_a != shape_b:
        return VECTOR_REDUCTION
    return None


def structural_tag(
    shape_a: tuple,
    shape_b: tuple,
    masked_a: tuple,
    masked_b: tuple,
    envs_equal: bool,
    scalar_parts_equal: bool,
) -> str | None:
    """The structural kind of one inconsistent comparison, or ``None``.

    Precondition for any tag is the precision pair of the module
    docstring: observationally equal environments and content-identical
    select-stripped scalar parts, so nothing but the vectorizing tiers
    can be the cause.  The tiers themselves come from the divergence-tier
    registry (:mod:`repro.tiers`), consulted in rank order — the lowest
    rank whose shapes differ names the inconsistency.  This legacy entry
    point carries only the two original tiers' shapes (masked sites rank
    ahead of plain reduction shapes, exactly the pre-registry
    precedence); callers with per-environment shapes for every registered
    tier — the engine's compare stage — use
    :func:`repro.tiers.structural_tag_from_shapes` directly.
    """
    from repro.tiers import registry

    if not envs_equal or not scalar_parts_equal:
        return None
    sides_a = {MASKED_LANE: masked_a, VECTOR_REDUCTION: shape_a}
    sides_b = {MASKED_LANE: masked_b, VECTOR_REDUCTION: shape_b}
    for tier in registry():
        if sides_a.get(tier.tag, ()) != sides_b.get(tier.tag, ()):
            return tier.tag
    return None


def inconsistency_kind(a: float, b: float) -> frozenset[FPClass]:
    """The unordered category pair of an inconsistent result pair."""
    return frozenset((classify_double(a), classify_double(b)))


def kind_label(kind: frozenset[FPClass]) -> str:
    """Human-readable label in the paper's Figure 3 ordering, e.g.
    '{Real, NaN}'."""
    members = sorted(kind, key=CLASS_ORDER.index)
    if len(members) == 1:
        members = members * 2
    return "{" + ", ".join(str(m) for m in members) + "}"


#: All unordered category pairs, in Figure 3 order: same-class pairs first
#: ({Real, Real}), then mixed pairs.
ALL_KINDS: tuple[frozenset[FPClass], ...] = tuple(
    frozenset(pair)
    for pair in combinations_with_replacement(CLASS_ORDER, 2)
)


@dataclass
class KindCount:
    """A tally of inconsistency kinds (one bar group of Figure 3)."""

    counts: Counter = field(default_factory=Counter)

    def record(self, a: float, b: float) -> None:
        self.counts[inconsistency_kind(a, b)] += 1

    def merge(self, other: "KindCount") -> None:
        self.counts.update(other.counts)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def get(self, *classes: FPClass) -> int:
        return self.counts.get(frozenset(classes), 0)

    def as_labels(self) -> dict[str, int]:
        """Nonzero kinds as {label: count}, Figure 3 ordering."""
        out: dict[str, int] = {}
        for kind in ALL_KINDS:
            n = self.counts.get(kind, 0)
            if n:
                out[kind_label(kind)] = n
        return out
